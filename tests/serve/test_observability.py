"""Service observability over real TCP: per-job traces, histograms,
the enriched health snapshot, and the follow/obs CLI verbs.

The acceptance criteria under test: ``GET /jobs/{id}/trace`` returns
the span tree of a completed served job (queue wait, lease
acquisition, the run itself, stitched step spans) and ``/metrics``
exposes submit-to-done and queue-wait latency histograms -- all
through the live HTTP server, not scheduler internals.
"""

import io
import json

from repro.cli import main as cli_main
from repro.obs.analyze import build_tree, critical_path, load_trace


def _submit_done(client, tiny_run):
    doc = client.submit({"kind": "run", "params": tiny_run})
    final = client.wait(doc["id"], timeout=120)
    assert final["state"] == "done"
    return final


class TestJobTrace:
    def test_trace_endpoint_returns_span_tree(self, server_pair,
                                              tiny_run):
        _, client = server_pair
        final = _submit_done(client, tiny_run)
        assert len(final["trace_id"]) == 32

        trace = client.trace(final["id"])
        assert trace["schema"] == "repro.trace/v1"
        assert trace["job"] == final["id"]
        assert trace["trace_id"] == final["trace_id"]
        names = {s["name"] for s in trace["spans"]}
        assert "serve.queue_wait" in names
        assert "serve.lease_acquire" in names
        assert "serve.job" in names
        assert "serve.checkpoint" in names
        assert "step" in names  # the simulation's own spans nest in

        # the document is exactly what `repro obs` consumes
        doc = load_trace(trace)
        roots = build_tree(doc["spans"])
        job_span = next(r for r in roots if r["name"] == "serve.job")
        kids = {c["name"] for c in job_span["children"]}
        assert "step" in kids
        assert job_span["attrs"]["outcome"] == "done"

    def test_critical_path_covers_job_wall(self, server_pair,
                                           tiny_run):
        _, client = server_pair
        final = _submit_done(client, tiny_run)
        cp = critical_path(client.trace(final["id"])["spans"])
        assert cp["total_seconds"] > 0
        # acceptance bound: buckets sum within 5% of the total
        parts = sum(cp["resources"].values())
        assert abs(parts - cp["total_seconds"]) \
            <= 0.05 * cp["total_seconds"]

    def test_trace_of_queued_job_is_wellformed(self, server_pair,
                                               tiny_run):
        _, client = server_pair
        doc = client.submit({"kind": "run", "params": tiny_run})
        trace = client.trace(doc["id"])  # may still be queued/running
        assert trace["schema"] == "repro.trace/v1"
        assert isinstance(trace["spans"], list)
        client.wait(doc["id"], timeout=120)

    def test_unknown_job_trace_is_404(self, server_pair):
        import pytest
        from repro.serve import ServeHTTPError
        with pytest.raises(ServeHTTPError) as e:
            server_pair[1].trace("j-nope")
        assert e.value.status == 404


class TestMetricsHistograms:
    def test_latency_histograms_exposed(self, server_pair, tiny_run):
        _, client = server_pair
        _submit_done(client, tiny_run)
        text = client.metrics()
        for fam in ("repro_serve_submit_to_done_seconds",
                    "repro_serve_queue_wait_seconds",
                    "repro_serve_job_seconds"):
            assert f"# TYPE {fam} histogram" in text
            assert f'{fam}_bucket{{le="+Inf"}}' in text
            count = int(next(
                l for l in text.splitlines()
                if l.startswith(f"{fam}_count")).split()[1])
            assert count >= 1


class TestHealthz:
    def test_snapshot_fields(self, server_pair, tiny_run):
        _, client = server_pair
        h = client.healthz()
        assert h["status"] == "ok"
        assert h["queue_limit"] == 16
        assert h["queue_depth"] == h["queued"]
        assert h["leases_in_use"] >= 0
        assert h["uptime_seconds"] >= 0.0


class TestCliVerbs:
    def _cli(self, *argv):
        out = io.StringIO()
        return cli_main(list(argv), out=out), out.getvalue()

    def test_jobs_follow_streams_events(self, server_pair, tiny_run):
        server, client = server_pair
        doc = client.submit({"kind": "run", "params": tiny_run})
        code, text = self._cli("jobs", "--port", str(server.port),
                               "--follow", doc["id"])
        assert code == 0
        assert "step" in text
        assert f"{doc['id']}: done" in text

    def test_jobs_job_trace_pipes_into_obs(self, server_pair,
                                           tiny_run, tmp_path):
        server, client = server_pair
        final = _submit_done(client, tiny_run)
        code, text = self._cli("jobs", "--port", str(server.port),
                               "--job-trace", final["id"])
        assert code == 0
        saved = tmp_path / "trace.json"
        saved.write_text(text)
        code, rendered = self._cli("obs", "tree", str(saved))
        assert code == 0
        assert "serve.job" in rendered
        code, cp = self._cli("obs", "critical-path", str(saved))
        assert code == 0
        assert "100.0%" in cp

    def test_follow_requires_job_id(self, server_pair):
        server, _ = server_pair
        code, text = self._cli("jobs", "--port", str(server.port),
                               "--follow")
        assert code == 2
