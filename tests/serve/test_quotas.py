"""Per-tenant quotas and token-bucket rate limits at admission.

Three layers, tested innermost-out:

* :class:`~repro.serve.quotas.AdmissionController` -- pure policy,
  clock-injectable, no sleeps;
* the scheduler's submit path -- quota counted store-wide against
  non-terminal jobs, rejections typed and counted in metrics;
* the HTTP surface -- ``429 Too Many Requests`` with an integral
  ``Retry-After`` header, surfaced to callers as
  :class:`~repro.serve.client.Backpressure` (RFC 9110 conformance:
  the header is a non-negative integer number of seconds).
"""

import pytest

from repro.serve import (AdmissionController, JobSpec, QuotaExceeded,
                         RateLimited, Scheduler, TenantPolicy)
from repro.serve.client import Backpressure

from tests.serve.conftest import TINY_RUN, live_server


class TestTenantPolicy:
    def test_defaults_are_unlimited(self):
        p = TenantPolicy()
        assert p.max_active is None and p.rate is None

    @pytest.mark.parametrize("kw", [
        {"max_active": 0}, {"rate": 0.0}, {"rate": -1}, {"burst": 0},
    ])
    def test_invalid_limits_rejected(self, kw):
        with pytest.raises(ValueError):
            TenantPolicy(**kw)


class TestAdmissionController:
    def test_unlimited_by_default(self):
        ctrl = AdmissionController()
        for i in range(100):
            ctrl.admit("anyone", active=i, now=0.0)

    def test_max_active_ceiling(self):
        ctrl = AdmissionController(TenantPolicy(max_active=2))
        ctrl.admit("t", active=0)
        ctrl.admit("t", active=1)
        with pytest.raises(QuotaExceeded) as exc:
            ctrl.admit("t", active=2)
        assert exc.value.retry_after > 0

    def test_token_bucket_burst_then_starve(self):
        ctrl = AdmissionController(TenantPolicy(rate=1.0, burst=3))
        for _ in range(3):
            ctrl.admit("t", active=0, now=100.0)
        with pytest.raises(RateLimited) as exc:
            ctrl.admit("t", active=0, now=100.0)
        # empty bucket at 1 token/s: next token exactly 1s away
        assert exc.value.retry_after == pytest.approx(1.0)

    def test_tokens_refill_continuously(self):
        ctrl = AdmissionController(TenantPolicy(rate=2.0, burst=1))
        ctrl.admit("t", active=0, now=0.0)
        with pytest.raises(RateLimited):
            ctrl.admit("t", active=0, now=0.1)
        ctrl.admit("t", active=0, now=0.6)       # 0.5s = one token

    def test_quota_rejection_spends_no_token(self):
        """Hammering a full quota must not also drain the bucket."""
        ctrl = AdmissionController(
            TenantPolicy(max_active=1, rate=1.0, burst=1))
        for _ in range(5):
            with pytest.raises(QuotaExceeded):
                ctrl.admit("t", active=1, now=0.0)
        ctrl.admit("t", active=0, now=0.0)       # token still there

    def test_buckets_are_per_tenant(self):
        ctrl = AdmissionController(TenantPolicy(rate=1.0, burst=1))
        ctrl.admit("a", active=0, now=0.0)
        with pytest.raises(RateLimited):
            ctrl.admit("a", active=0, now=0.0)
        ctrl.admit("b", active=0, now=0.0)       # unaffected

    def test_per_tenant_override_beats_default(self):
        ctrl = AdmissionController(
            default=TenantPolicy(max_active=1),
            per_tenant={"vip": TenantPolicy(max_active=10)})
        with pytest.raises(QuotaExceeded):
            ctrl.admit("pleb", active=1)
        ctrl.admit("vip", active=5)

    def test_errors_are_admission_errors(self):
        from repro.serve import AdmissionError
        assert issubclass(QuotaExceeded, AdmissionError)
        assert issubclass(RateLimited, AdmissionError)


class TestSchedulerQuota:
    """Quota enforcement on the submit path.

    The schedulers here are never started, so submitted jobs stay
    ``queued`` (= active) and the tests are sleep-free.
    """

    def make(self, tmp_path, quota):
        return Scheduler(slots=1, workdir=tmp_path / "w", quota=quota)

    def test_active_quota_blocks_submission(self, tmp_path):
        s = self.make(tmp_path, TenantPolicy(max_active=1))
        s.submit(JobSpec(kind="force_eval", params={"n": 64}))
        with pytest.raises(QuotaExceeded):
            s.submit(JobSpec(kind="force_eval", params={"n": 128}))

    def test_quota_is_per_tenant(self, tmp_path):
        s = self.make(tmp_path, TenantPolicy(max_active=1))
        s.submit(JobSpec(kind="force_eval", params={"n": 64},
                         tenant="a"))
        s.submit(JobSpec(kind="force_eval", params={"n": 64},
                         tenant="b"))            # b has its own budget
        with pytest.raises(QuotaExceeded):
            s.submit(JobSpec(kind="force_eval", params={"n": 128},
                             tenant="a"))

    def test_terminal_jobs_free_the_quota(self, tmp_path):
        s = self.make(tmp_path, TenantPolicy(max_active=1))
        job = s.submit(JobSpec(kind="force_eval", params={"n": 64}))
        s.cancel(job.id)
        s.submit(JobSpec(kind="force_eval", params={"n": 128}))

    def test_quota_counts_store_wide(self, tmp_path):
        """Replicated workers share one tenant budget through the
        store, not per-worker counters."""
        from repro.serve import SQLiteJobStore
        store = SQLiteJobStore(tmp_path / "jobs.db")
        try:
            a = Scheduler(workdir=tmp_path / "wa", store=store,
                          worker_id="A",
                          quota=TenantPolicy(max_active=1))
            b = Scheduler(workdir=tmp_path / "wb", store=store,
                          worker_id="B",
                          quota=TenantPolicy(max_active=1))
            a.submit(JobSpec(kind="force_eval", params={"n": 64}))
            with pytest.raises(QuotaExceeded):
                b.submit(JobSpec(kind="force_eval", params={"n": 128}))
        finally:
            store.close()

    def test_rejections_are_counted(self, tmp_path):
        s = self.make(tmp_path, TenantPolicy(max_active=1))
        s.submit(JobSpec(kind="force_eval", params={"n": 64}))
        for _ in range(3):
            with pytest.raises(QuotaExceeded):
                s.submit(JobSpec(kind="force_eval", params={"n": 128}))
        snap = s.metrics.snapshot()
        assert snap["serve.quota_rejected"]["value"] == 3
        assert snap["serve.jobs_rejected"]["value"] == 3

    def test_rate_limit_on_submit(self, tmp_path):
        s = self.make(tmp_path, TenantPolicy(rate=0.001, burst=2))
        s.submit(JobSpec(kind="force_eval", params={"n": 1}))
        s.submit(JobSpec(kind="force_eval", params={"n": 2}))
        with pytest.raises(RateLimited) as exc:
            s.submit(JobSpec(kind="force_eval", params={"n": 3}))
        assert exc.value.retry_after > 0


class TestQuotaOverHTTP:
    def test_429_retry_after_conformance(self, tmp_path):
        """An exhausted token bucket answers 429 with an integral
        Retry-After >= 1 (RFC 9110), surfaced as Backpressure."""
        with live_server(slots=1, workdir=tmp_path / "serve",
                         quota=TenantPolicy(rate=0.01, burst=1)
                         ) as (server, client):
            client.submit({"kind": "force_eval", "params": {"n": 64}})
            with pytest.raises(Backpressure) as exc:
                client.submit({"kind": "force_eval",
                               "params": {"n": 128}})
            assert exc.value.status == 429
            assert exc.value.retry_after >= 1
            assert exc.value.retry_after == int(exc.value.retry_after)

    def test_quota_429_then_admitted_after_completion(self, tmp_path):
        with live_server(slots=1, workdir=tmp_path / "serve",
                         quota=TenantPolicy(max_active=1)
                         ) as (server, client):
            first = client.submit({"kind": "run", "params": TINY_RUN})
            with pytest.raises(Backpressure):
                client.submit({"kind": "run", "params": TINY_RUN})
            done = client.wait(first["id"], timeout=120)
            assert done["state"] == "done"
            second = client.submit({"kind": "force_eval",
                                    "params": {"n": 64}})
            assert client.wait(second["id"], timeout=60)[
                "state"] == "done"

    def test_rejected_submission_leaves_no_job(self, tmp_path):
        with live_server(slots=1, workdir=tmp_path / "serve",
                         quota=TenantPolicy(rate=0.01, burst=1)
                         ) as (server, client):
            client.submit({"kind": "force_eval", "params": {"n": 64}})
            with pytest.raises(Backpressure):
                client.submit({"kind": "force_eval",
                               "params": {"n": 128}})
            assert len(client.jobs()) == 1
