"""Restart smoke: a real server process dies mid-job (SIGKILL) and a
restarted process on the same store finishes the job bit-identically.

Unlike the in-process crash drills in ``test_store_durability`` this
goes through the real deployment surface -- ``python -m repro serve``
subprocesses, the SQLite store file on disk, the HTTP wire -- and an
actual ``kill -9``, so nothing gets a chance to flush gracefully.
The restarted server reuses the first one's worker id (the default is
``host:port``), so it reclaims its own orphaned jobs immediately
instead of waiting out the claim TTL.

The same flow runs in CI (see ``.github/workflows/ci.yml``).
"""

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

ROOT = Path(__file__).resolve().parents[2]

#: slow enough to be killed mid-flight (the kill window is the ~6
#: steps left after progress is observed), fast enough for a smoke
RUN_SPEC = {
    "kind": "run",
    "params": {"ngrid": 8, "steps": 8, "z_final": 12.0},
    "checkpoint_every": 1,
}


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def start_server(port, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--slots", "1", "--no-cache",
         "--workdir", str(tmp_path / "work"),
         "--store", str(tmp_path / "jobs.db"),
         "--claim-ttl", "5"],
        cwd=ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def wait_healthy(client, proc, timeout=30.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early (rc={proc.returncode})")
        try:
            return client.healthz()
        except OSError:
            time.sleep(0.1)
    raise TimeoutError("server never became healthy")


def wait_for_progress(client, job_id, steps=2, timeout=120.0):
    """Poll until the job has at least ``steps`` steps done (so at
    least one checkpoint generation exists on disk)."""
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        doc = client.job(job_id)
        if doc["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(
                f"job reached {doc['state']} before the kill -- "
                "enlarge RUN_SPEC")
        if (doc["state"] == "running"
                and doc["progress"]["steps_done"] >= steps):
            return doc
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} never made progress")


class TestRestartSmoke:
    def test_kill9_restart_resumes_bit_identical(self, tmp_path):
        port = free_port()
        client = ServeClient(port=port, timeout=10.0)
        first = start_server(port, tmp_path)
        try:
            health = wait_healthy(client, first)
            assert health["store"] == "sqlite"

            job = client.submit(RUN_SPEC)
            wait_for_progress(client, job["id"], steps=2)

            first.kill()                          # SIGKILL, no flush
            first.wait(timeout=30)

            second = start_server(port, tmp_path)
            try:
                health = wait_healthy(client, second)
                # same worker id (host:port) => orphans reclaimed at
                # startup, no TTL wait
                done = client.wait(job["id"], timeout=300)
                assert done["state"] == "done", done.get("error")
                assert done["attempt"] >= 1
                events = [e["event"]
                          for e in client.events(job["id"])]
                assert "resumed" in events, \
                    "restart must continue from the checkpoint, " \
                    "not step 0"

                # bit-identity: an uninterrupted run of the same spec
                # on the restarted server produces the same digest
                ref = client.wait(client.submit(RUN_SPEC)["id"],
                                  timeout=300)
                assert ref["state"] == "done"
                assert "resumed" not in [
                    e["event"] for e in client.events(ref["id"])]
                assert ref["result"]["digest"] == \
                    done["result"]["digest"]

                # the store snapshot agrees and is intact
                snap = client.store()
                assert snap["jobs"].get("done") == 2
                assert snap["findings"] == []
            finally:
                second.kill()
                second.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=30)
