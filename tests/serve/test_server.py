"""HTTP acceptance suite for the service.

Covers the ISSUE 5 acceptance criterion end-to-end: two concurrent
jobs submitted over HTTP run to completion with disjoint GRAPE
leases, bit-identical results to the same run issued serially via
``repro run``, and admission control answers 429 once the queue
bound is hit.
"""

import io
import time

import pytest

from repro.serve import JOB_SCHEMA, Backpressure, ServeHTTPError

FE_SPEC = {"schema": JOB_SCHEMA, "kind": "force_eval",
           "params": {"n": 128}}


def _run_spec(tiny_run, **over):
    doc = {"schema": JOB_SCHEMA, "kind": "run", "params": tiny_run}
    doc.update(over)
    return doc


class TestEndpoints:
    def test_healthz_reports_capacity(self, server_pair):
        server, client = server_pair
        h = client.healthz()
        assert h["status"] == "ok"
        assert h["slots"] == 2
        assert h["running"] == 0 and h["queued"] == 0

    def test_metrics_is_prometheus_text(self, server_pair):
        _, client = server_pair
        text = client.metrics()
        assert "repro_serve_queue_limit 16" in text
        assert "# TYPE repro_serve_jobs_running gauge" in text

    def test_unknown_job_is_404(self, server_pair):
        _, client = server_pair
        with pytest.raises(ServeHTTPError) as exc:
            client.job("j999999")
        assert exc.value.status == 404

    def test_malformed_spec_is_400(self, server_pair):
        _, client = server_pair
        with pytest.raises(ServeHTTPError) as exc:
            client.submit({"schema": JOB_SCHEMA, "kind": "run",
                           "color": "red"})
        assert exc.value.status == 400
        assert "unknown job field" in str(exc.value)

    def test_bad_kernels_is_400(self, server_pair):
        _, client = server_pair
        with pytest.raises(ServeHTTPError) as exc:
            client.submit({"schema": JOB_SCHEMA, "kind": "force_eval",
                           "params": {"n": 64},
                           "kernels": "fortran"})
        assert exc.value.status == 400
        assert "unknown kernels" in str(exc.value)

    def test_unknown_route_is_404(self, server_pair):
        _, client = server_pair
        with pytest.raises(ServeHTTPError) as exc:
            client._request("GET", "/teapot")
        assert exc.value.status == 404


class TestJobsOverHTTP:
    def test_submit_wait_events(self, server_pair):
        _, client = server_pair
        doc = client.submit(FE_SPEC)
        assert doc["state"] == "queued" and doc["id"].startswith("j")
        final = client.wait(doc["id"], timeout=60)
        assert final["state"] == "done"
        assert final["result"]["interactions"] > 0
        events = list(client.events(doc["id"]))
        kinds = [e["event"] for e in events]
        assert "leased" in kinds
        assert events[-1] == {"event": "state", "state": "done"}

    def test_cancel_queued_job(self, tmp_path, serve_factory, tiny_run):
        with serve_factory(slots=1, workdir=tmp_path) as (_, client):
            slow = client.submit(_run_spec(tiny_run))
            victim = client.submit(FE_SPEC)
            doc = client.cancel(victim["id"])
            assert doc["state"] == "cancelled"
            assert client.wait(slow["id"],
                               timeout=120)["state"] == "done"

    def test_kernels_mode_runs_and_surfaces(self, server_pair):
        """A numpy-kernel job completes, reports its mode on
        GET /jobs/{id}, and walks the exact same interaction lists as
        the python reference job."""
        _, client = server_pair
        fast = client.submit({**FE_SPEC, "kernels": "numpy"})
        assert fast["kernels"] == "numpy"
        ref = client.submit(FE_SPEC)
        done_fast = client.wait(fast["id"], timeout=60)
        done_ref = client.wait(ref["id"], timeout=60)
        assert done_fast["state"] == done_ref["state"] == "done"
        assert done_fast["kernels"] == "numpy"
        assert done_ref["kernels"] is None
        assert (done_fast["result"]["interactions"]
                == done_ref["result"]["interactions"])

    def test_jobs_listing(self, server_pair):
        _, client = server_pair
        a = client.submit(FE_SPEC)
        b = client.submit(FE_SPEC)
        listed = {d["id"] for d in client.jobs()}
        assert {a["id"], b["id"]} <= listed
        client.wait(a["id"], timeout=60)
        client.wait(b["id"], timeout=60)


class TestAcceptance:
    """The ISSUE 5 acceptance criterion, verbatim."""

    def _reference_digest(self, tmp_path, tiny_run):
        """The same tiny run issued serially via ``repro run``."""
        from repro import cli
        from repro.sim.checkpoint import load_checkpoint
        from repro.sim.recipes import state_digest
        ckpt = tmp_path / "reference.npz"
        rc = cli.main(["run", "--ngrid", str(tiny_run["ngrid"]),
                       "--steps", str(tiny_run["steps"]),
                       "--z-final", str(tiny_run["z_final"]),
                       "--checkpoint", str(ckpt)], out=io.StringIO())
        assert rc == 0
        sim = load_checkpoint(ckpt)
        return state_digest(sim.pos, sim.vel, sim.t)

    def test_concurrent_http_jobs_disjoint_leases_bit_identical(
            self, tmp_path, serve_factory, tiny_run):
        expected = self._reference_digest(tmp_path, tiny_run)
        with serve_factory(slots=2, workdir=tmp_path / "serve") as \
                (server, client):
            a = client.submit(_run_spec(tiny_run))
            b = client.submit(_run_spec(tiny_run))
            # both jobs must hold a slot at the same time
            deadline = time.monotonic() + 30
            seen_concurrent = False
            while time.monotonic() < deadline:
                h = client.healthz()
                if h["running"] == 2 and h["leases_in_use"] == 2:
                    seen_concurrent = True
                    break
                time.sleep(0.02)
            assert seen_concurrent, "jobs never ran concurrently"
            da = client.wait(a["id"], timeout=120)
            db = client.wait(b["id"], timeout=120)
            assert da["state"] == "done" and db["state"] == "done"
            # disjoint GRAPE leases
            assert da["lease"] != db["lease"]
            # bit-identical to the serial CLI run
            assert da["result"]["digest"] == expected
            assert db["result"]["digest"] == expected

    def test_admission_control_returns_429(self, tmp_path,
                                           serve_factory, tiny_run):
        with serve_factory(slots=1, queue_depth=1,
                           workdir=tmp_path) as (_, client):
            runner = client.submit(_run_spec(tiny_run))
            # wait until the slow job holds the slot, then fill the
            # single queue seat deterministically
            deadline = time.monotonic() + 30
            while (client.job(runner["id"])["state"]
                   not in ("scheduled", "running")):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            client.submit(FE_SPEC)
            with pytest.raises(Backpressure) as exc:
                client.submit(FE_SPEC)
            assert exc.value.retry_after >= 1.0
            client.wait(runner["id"], timeout=120)
