"""Job model unit tests: schema validation and the lifecycle graph."""

import json

import pytest

from repro.serve import JOB_SCHEMA, Job, JobError, JobSpec


class TestJobSpec:
    def test_defaults_filled_per_kind(self):
        spec = JobSpec(kind="run")
        assert spec.params["ngrid"] == 16
        assert spec.params["backend"] == "grape"
        assert JobSpec(kind="sweep").params["n"] == 8192
        assert JobSpec(kind="force_eval").params["eps"] == 0.01

    def test_params_coerced_to_schema_types(self):
        spec = JobSpec(kind="run", params={"ngrid": "12",
                                           "z_final": "2"})
        assert spec.params["ngrid"] == 12
        assert spec.params["z_final"] == 2.0

    @pytest.mark.parametrize("bad", [
        dict(kind="telepathy"),
        dict(kind="run", engine="quantum"),
        dict(kind="run", params={"warp": 9}),
        dict(kind="run", params={"ngrid": "lots"}),
        dict(kind="run", max_recoveries=-1),
        dict(kind="run", checkpoint_every=-2),
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(JobError):
            JobSpec(**bad)

    def test_roundtrip_through_wire_format(self):
        spec = JobSpec(kind="run", params={"ngrid": 8}, priority=3,
                       tenant="alice", checkpoint_every=2)
        doc = {"schema": JOB_SCHEMA, **spec.to_dict()}
        again = JobSpec.from_dict(json.loads(json.dumps(doc)))
        assert again == spec

    def test_from_dict_rejects_wrong_schema_and_fields(self):
        with pytest.raises(JobError, match="schema"):
            JobSpec.from_dict({"schema": "repro.job/v99", "kind": "run"})
        with pytest.raises(JobError, match="missing 'kind'"):
            JobSpec.from_dict({})
        with pytest.raises(JobError, match="unknown job field"):
            JobSpec.from_dict({"kind": "run", "color": "red"})
        with pytest.raises(JobError):
            JobSpec.from_dict("not an object")


class TestLifecycle:
    def test_happy_path(self):
        job = Job(spec=JobSpec(kind="run"))
        assert job.state == "queued" and not job.terminal
        for state in ("scheduled", "running", "done"):
            job.advance(state)
        assert job.terminal
        assert job.started_at is not None
        assert job.finished_at >= job.started_at

    def test_pause_resume_cycle(self):
        job = Job(spec=JobSpec(kind="run"))
        job.advance("scheduled")
        job.advance("running")
        job.advance("paused")
        job.advance("queued")  # resume re-queues
        job.advance("scheduled")
        job.advance("running")
        job.advance("done")

    @pytest.mark.parametrize("start,bad", [
        ("queued", "running"), ("queued", "done"),
        ("running", "queued"), ("done", "running"),
        ("cancelled", "queued"), ("failed", "done"),
    ])
    def test_illegal_transitions_raise(self, start, bad):
        job = Job(spec=JobSpec(kind="run"))
        job.state = start
        with pytest.raises(JobError, match="illegal transition"):
            job.advance(bad)

    def test_terminal_states_are_sinks(self):
        for terminal in ("done", "failed", "cancelled"):
            job = Job(spec=JobSpec(kind="run"))
            job.state = terminal
            for anywhere in ("queued", "running", "paused"):
                with pytest.raises(JobError):
                    job.advance(anywhere)

    def test_wire_document_shape(self):
        job = Job(spec=JobSpec(kind="force_eval", tenant="bob"))
        doc = json.loads(job.to_json())
        assert doc["schema"] == JOB_SCHEMA
        assert doc["id"] == job.id
        assert doc["state"] == "queued"
        assert doc["tenant"] == "bob"
        assert doc["progress"] == {"steps_done": 0, "steps_total": 0,
                                   "events": 0}

    def test_ids_are_unique_and_ordered(self):
        a, b = Job(spec=JobSpec(kind="run")), Job(spec=JobSpec(kind="run"))
        assert a.id != b.id
        assert b.seq > a.seq
