"""Replicated schedulers over one store.

Two (or more) :class:`~repro.serve.scheduler.Scheduler` workers
sharing one :class:`~repro.serve.store.JobStore` must behave like one
bigger scheduler:

* a job is executed by exactly one worker (claim compare-and-swap --
  racing claimants produce one winner, checked both at the store
  primitive under a thread barrier and end-to-end by counting
  ``leased`` events per job);
* a worker that stops heartbeating loses its claim after the TTL and
  a surviving worker takes the job over (``attempt`` bump, the
  ``serve.takeovers`` counter);
* fair share holds *across* workers, because the pick rank is
  computed from store-wide tenant load, not per-worker counters.
"""

import threading
import time

import pytest

from repro.serve import JobSpec, Scheduler, SQLiteJobStore


def tiny_spec(seed=0, tenant="default", priority=0):
    return JobSpec(kind="force_eval", params={"n": 64, "seed": seed},
                   tenant=tenant, priority=priority)


@pytest.fixture
def store(tmp_path):
    s = SQLiteJobStore(tmp_path / "jobs.db")
    yield s
    s.close()


def worker(store, tmp_path, name, **kw):
    kw.setdefault("slots", 1)
    kw.setdefault("poll_interval", 0.02)
    kw.setdefault("cache", False)
    return Scheduler(workdir=tmp_path / "work", store=store,
                     worker_id=name, **kw)


class TestClaimRace:
    def test_racing_claims_have_one_winner(self, store):
        """The CAS primitive under a real thread barrier."""
        from tests.serve.test_store_durability import seeded_job
        job = seeded_job(store)
        barrier = threading.Barrier(8)
        wins = []

        def contender(i):
            barrier.wait()
            wins.append(store.claim(job.id, f"w{i}",
                                    now=time.time(), ttl=30.0))

        threads = [threading.Thread(target=contender, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 1

    def test_two_workers_never_double_claim(self, store, tmp_path):
        """End-to-end: every job is leased exactly once and both
        workers participate."""
        a = worker(store, tmp_path, "A").start()
        b = worker(store, tmp_path, "B").start()
        jobs = [a.submit(tiny_spec(seed=i)) for i in range(8)]
        try:
            for j in jobs:
                assert a.wait(j.id, timeout=60), j.id
            docs = {j.id: store.get(j.id) for j in jobs}
            assert all(d["state"] == "done" for d in docs.values())
            # exactly one 'leased' event per job = exactly one executor
            for j in jobs:
                leased = [e for e in store.events(j.id)
                          if e["event"] == "leased"]
                assert len(leased) == 1, \
                    f"job {j.id} leased {len(leased)} times"
            assert {d["worker"] for d in docs.values()} == {"A", "B"}
        finally:
            a.stop(drain=False)
            b.stop(drain=False)


class TestTakeover:
    def test_expired_claim_is_taken_over(self, store, tmp_path):
        """A job claimed by a dead worker (no heartbeats) is re-queued
        after the TTL and completed by a live worker."""
        from tests.serve.test_store_durability import seeded_job
        job = seeded_job(store)
        assert store.claim(job.id, "dead", now=time.time() - 60.0,
                           ttl=1.0)
        b = worker(store, tmp_path, "B", claim_ttl=5.0,
                   heartbeat_interval=0.05).start()
        try:
            assert b.wait(job.id, timeout=60)
            doc = store.get(job.id)
            assert doc["state"] == "done"
            assert doc["worker"] == "B"
            assert doc["attempt"] == 1
        finally:
            b.stop(drain=False)

    def test_takeover_is_counted(self, store, tmp_path):
        from tests.serve.test_store_durability import seeded_job
        job = seeded_job(store)
        assert store.claim(job.id, "dead", now=time.time() - 60.0,
                           ttl=1.0)
        b = worker(store, tmp_path, "B", heartbeat_interval=0.05)
        b.start()
        try:
            assert b.wait(job.id, timeout=60)
            snap = b.metrics.snapshot()
            requeued = (snap.get("serve.takeovers", {}).get("value", 0)
                        + snap.get("serve.jobs_requeued", {})
                        .get("value", 0))
            assert requeued >= 1
        finally:
            b.stop(drain=False)

    def test_live_heartbeats_prevent_takeover(self, store, tmp_path):
        """A healthy worker's claim is never stolen, even with a TTL
        much shorter than the job."""
        a = worker(store, tmp_path, "A", claim_ttl=0.3,
                   heartbeat_interval=0.05).start()
        b = worker(store, tmp_path, "B", claim_ttl=0.3,
                   heartbeat_interval=0.05).start()
        job = a.submit(JobSpec(kind="run",
                               params={"ngrid": 6, "steps": 2,
                                       "z_final": 12.0}))
        try:
            assert a.wait(job.id, timeout=120)
            doc = store.get(job.id)
            assert doc["state"] == "done"
            assert doc["attempt"] == 0, "healthy claim was stolen"
            leased = [e for e in store.events(job.id)
                      if e["event"] == "leased"]
            assert len(leased) == 1
        finally:
            a.stop(drain=False)
            b.stop(drain=False)


class TestCrossWorkerControl:
    def test_submit_on_one_worker_runs_on_another(self, store,
                                                  tmp_path):
        """Only worker B has slots; A is submit-only (slots exist but
        we keep it stopped), so the job must travel via the store."""
        a = worker(store, tmp_path, "A")          # never started
        b = worker(store, tmp_path, "B").start()
        job = a.submit(tiny_spec())
        try:
            assert b.wait(job.id, timeout=60)
            assert store.get(job.id)["worker"] == "B"
            # the submitting worker's view follows the store
            assert a.wait(job.id, timeout=10)
            assert a.get(job.id).state == "done"
            assert a.get(job.id).result is not None
        finally:
            b.stop(drain=False)
            a.stop(drain=False)

    def test_cancel_travels_between_workers(self, store, tmp_path):
        """Cancelling a queued job on worker A prevents worker B from
        ever executing it."""
        a = worker(store, tmp_path, "A")          # never started
        job = a.submit(tiny_spec())
        assert a.cancel(job.id).state == "cancelled"
        b = worker(store, tmp_path, "B").start()
        try:
            time.sleep(0.3)
            assert store.get(job.id)["state"] == "cancelled"
            assert store.get(job.id)["worker"] is None
        finally:
            b.stop(drain=False)
            a.stop(drain=False)


class TestFairShareAcrossWorkers:
    def test_pick_rank_uses_store_wide_load(self, store, tmp_path):
        """With tenant `a` hogging the store, the next claim goes to
        tenant `b` even on a worker that never saw `a`'s jobs."""
        a = worker(store, tmp_path, "A")          # submit-only
        hogs = [a.submit(tiny_spec(seed=i, tenant="a"))
                for i in range(3)]
        small = a.submit(tiny_spec(seed=99, tenant="b"))
        # fabricate tenant `a` load: one of its jobs already running
        assert store.claim(hogs[0].id, "elsewhere", now=time.time(),
                           ttl=60.0)
        b = worker(store, tmp_path, "B")          # fresh worker
        with b._cv:
            picked = b._claim_next_locked()
        assert picked is not None
        assert picked.spec.tenant == "b", \
            f"expected tenant b, got {picked.spec.tenant}"
        assert picked.id == small.id
        a.stop(drain=False)
        b.stop(drain=False)

    def test_priority_beats_fair_share_across_workers(self, store,
                                                      tmp_path):
        a = worker(store, tmp_path, "A")
        a.submit(tiny_spec(seed=1, tenant="hog"))
        urgent = a.submit(tiny_spec(seed=2, tenant="hog", priority=5))
        b = worker(store, tmp_path, "B")
        with b._cv:
            picked = b._claim_next_locked()
        assert picked is not None and picked.id == urgent.id
        a.stop(drain=False)
        b.stop(drain=False)
