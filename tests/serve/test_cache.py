"""Content-addressed result cache.

The contract (ISSUE 8): a repeated identical submission (same kind,
params, kernel set) is served from the store's result cache --

* byte-identical to recomputation (modulo the per-run ``lease`` id,
  which deliberately stays out of the cache);
* without acquiring a GRAPE lease (no ``leased`` event, ``lease`` is
  null, the broker's acquisition counters stay put);
* visible in ``/metrics`` (``serve.cache_hits``) and ``/healthz`` /
  ``/store`` (entries/hits/dropped);
* any spec difference in a result-determining field is a miss, and a
  damaged cache row is a *miss*, never a wrong answer;
* jobs carrying a fault plan are never cached or served from cache.
"""

import time

import pytest

from repro.serve import JobSpec, Scheduler, spec_hash

from tests.serve.conftest import live_server


def _result_sans_lease(job):
    return {k: v for k, v in job.result.items() if k != "lease"}


@pytest.fixture
def sched(tmp_path):
    s = Scheduler(slots=1, workdir=tmp_path / "work", cache=True,
                  poll_interval=0.02).start()
    yield s
    s.stop()


def _submit_wait(sched, spec):
    job = sched.submit(spec)
    assert sched.wait(job.id, timeout=120)
    assert job.state == "done", (job.state, job.error)
    return job


class TestSpecHash:
    def test_result_determining_fields_only(self):
        a = JobSpec(kind="force_eval", params={"n": 64})
        same = JobSpec(kind="force_eval", params={"n": 64},
                       priority=7, tenant="other", max_retries=0)
        other = JobSpec(kind="force_eval", params={"n": 128})
        assert spec_hash(a) == spec_hash(same)
        assert spec_hash(a) != spec_hash(other)

    def test_kernels_and_kind_are_keyed(self):
        a = JobSpec(kind="force_eval", params={"n": 64})
        k = JobSpec(kind="force_eval", params={"n": 64},
                    kernels="numpy")
        s = JobSpec(kind="sweep", params={"n": 8192})
        assert len({spec_hash(a), spec_hash(k), spec_hash(s)}) == 3

    def test_accepts_plain_documents(self):
        spec = JobSpec(kind="force_eval", params={"n": 64})
        assert spec_hash(spec.to_dict()) == spec_hash(spec)


class TestCacheServe:
    def test_hit_is_byte_identical_and_leaseless(self, sched):
        spec = JobSpec(kind="force_eval", params={"n": 128})
        first = _submit_wait(sched, spec)
        assert first.cache_hit is False
        assert first.lease is not None
        second = _submit_wait(
            sched, JobSpec(kind="force_eval", params={"n": 128}))
        assert second.cache_hit is True
        assert second.lease is None
        assert _result_sans_lease(second) == _result_sans_lease(first)
        assert second.result["digest"] == first.result["digest"]
        events = {e["event"] for e in sched.store.events(second.id)}
        assert "cache_hit" in events
        assert "leased" not in events, \
            "cache hits must not consume a GRAPE lease"
        snap = sched.metrics.snapshot()
        assert snap["serve.cache_hits"]["value"] == 1
        assert snap["serve.cache_misses"]["value"] == 1

    def test_spec_difference_is_a_miss(self, sched):
        a = _submit_wait(sched,
                         JobSpec(kind="force_eval", params={"n": 64}))
        b = _submit_wait(sched,
                         JobSpec(kind="force_eval",
                                 params={"n": 64, "seed": 8}))
        assert b.cache_hit is False
        assert b.result["digest"] != a.result["digest"]
        assert sched.metrics.snapshot()["serve.cache_misses"][
            "value"] == 2

    def test_scheduling_fields_do_not_break_the_hit(self, sched):
        _submit_wait(sched, JobSpec(kind="force_eval",
                                    params={"n": 64}))
        hit = _submit_wait(sched,
                           JobSpec(kind="force_eval", params={"n": 64},
                                   priority=3, tenant="someone-else"))
        assert hit.cache_hit is True

    def test_fault_jobs_bypass_the_cache(self, tmp_path):
        s = Scheduler(slots=1, workdir=tmp_path / "w", cache=True,
                      poll_interval=0.02).start()
        try:
            clean = _submit_wait(
                s, JobSpec(kind="force_eval", params={"n": 64}))
            chaotic = s.submit(
                JobSpec(kind="force_eval", params={"n": 64},
                        faults="transient_error@site=grape.compute,"
                               "call=0,count=1"))
            assert s.wait(chaotic.id, timeout=120)
            assert s.get(chaotic.id).cache_hit is False
            assert s.store.cache_stats()["hits"] == 0
            assert clean.cache_hit is False
        finally:
            s.stop()

    def test_cache_disabled_always_computes(self, tmp_path):
        s = Scheduler(slots=1, workdir=tmp_path / "w", cache=False,
                      poll_interval=0.02).start()
        try:
            _submit_wait(s, JobSpec(kind="force_eval",
                                    params={"n": 64}))
            again = _submit_wait(s, JobSpec(kind="force_eval",
                                            params={"n": 64}))
            assert again.cache_hit is False
            assert s.store.cache_stats() == \
                {"entries": 0, "hits": 0, "dropped": 0, "bytes": 0,
                 "budget": None, "evictions": 0}
        finally:
            s.stop()


class TestCacheOverHTTP:
    def test_hits_visible_in_metrics_and_store(self, tmp_path):
        spec = {"kind": "force_eval", "params": {"n": 128}}
        with live_server(slots=1, workdir=tmp_path / "serve",
                         cache=True) as (server, client):
            first = client.submit(spec)
            done = client.wait(first["id"], timeout=120)
            assert done["state"] == "done"
            assert done["cache_hit"] is False
            second = client.submit(spec)
            done2 = client.wait(second["id"], timeout=120)
            assert done2["state"] == "done"
            assert done2["cache_hit"] is True
            assert done2["lease"] is None
            assert done2["result"]["digest"] == \
                done["result"]["digest"]
            text = client.metrics()
            assert "repro_serve_cache_hits 1" in text
            health = client.healthz()
            assert health["cache"]["hits"] == 1
            snap = client.store()
            assert snap["schema"] == "repro.store/v1"
            assert snap["cache"]["entries"] == 1
            assert snap["cache"]["hits"] == 1
            assert snap["findings"] == []
            assert snap["jobs"]["done"] == 2

    def test_run_jobs_cache_end_to_end(self, tmp_path, tiny_run=None):
        run = {"ngrid": 6, "steps": 2, "z_final": 12.0}
        spec = {"kind": "run", "params": run}
        with live_server(slots=1, workdir=tmp_path / "serve",
                         cache=True) as (server, client):
            a = client.wait(client.submit(spec)["id"], timeout=180)
            t0 = time.monotonic()
            b = client.wait(client.submit(spec)["id"], timeout=180)
            hit_latency = time.monotonic() - t0
            assert b["cache_hit"] is True
            assert b["result"]["digest"] == a["result"]["digest"]
            assert b["result"]["interactions"] == \
                a["result"]["interactions"]
            # a cache hit skips the whole simulation
            assert hit_latency < 5.0
