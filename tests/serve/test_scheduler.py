"""Scheduler behaviour: admission control, ordering, leases,
pause/resume.  Everything here drives the scheduler directly (no
HTTP); the wire layer has its own suite in test_server.py."""

import time

import pytest

from repro.serve import (AdmissionError, JobError, JobSpec, LeaseBroker,
                         LeaseError, Scheduler)

FE = dict(kind="force_eval", params={"n": 128})


@pytest.fixture
def sched(tmp_path):
    s = Scheduler(slots=1, queue_depth=3, workdir=tmp_path).start()
    yield s
    s.stop()


class TestAdmission:
    def test_queue_bound_rejects_with_retry_after(self, tmp_path):
        s = Scheduler(slots=1, queue_depth=2, workdir=tmp_path)
        # not started: jobs stay queued, so the bound is deterministic
        s.submit(JobSpec(**FE))
        s.submit(JobSpec(**FE))
        with pytest.raises(AdmissionError) as exc:
            s.submit(JobSpec(**FE))
        assert exc.value.retry_after >= 1.0
        assert s.metrics.value("serve.jobs_rejected") == 1
        assert s.metrics.value("serve.queue_depth") == 2
        s.stop()

    def test_submit_after_stop_rejected(self, tmp_path):
        s = Scheduler(slots=1, workdir=tmp_path).start()
        s.stop()
        with pytest.raises(AdmissionError):
            s.submit(JobSpec(**FE))


class TestExecution:
    def test_job_runs_to_done_with_lease_and_metrics(self, sched):
        job = sched.submit(JobSpec(**FE))
        assert sched.wait(job.id, timeout=60)
        assert job.state == "done"
        assert job.error is None
        assert job.lease is not None
        assert job.result["interactions"] > 0
        assert sched.metrics.value("serve.jobs_done") == 1
        assert sched.metrics.value("serve.leases_in_use") == 0

    def test_failed_job_leaves_scheduler_serving(self, sched):
        bad = sched.submit(JobSpec(kind="run", params={"ngrid": 6,
                                                       "steps": 1},
                                   faults="transient_error@site=grape.compute,"
                                          "call=0,count=9",
                                   max_retries=0))
        good = sched.submit(JobSpec(**FE))
        assert sched.wait(bad.id, timeout=60)
        assert sched.wait(good.id, timeout=60)
        assert bad.state == "failed"
        assert "TransientBackendError" in bad.error
        assert good.state == "done"
        assert sched.metrics.value("serve.jobs_failed") == 1

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        s = Scheduler(slots=1, queue_depth=4, workdir=tmp_path)
        victim = s.submit(JobSpec(**FE))
        s.cancel(victim.id)
        assert victim.state == "cancelled"
        s.stop()

    def test_unknown_job_raises_keyerror(self, sched):
        with pytest.raises(KeyError):
            sched.get("j999999")


class TestOrdering:
    def _drain_order(self, s, jobs):
        for j in jobs:
            assert s.wait(j.id, timeout=120)
        done = [j for j in jobs if j.state == "done"]
        return [j.id for j in sorted(done,
                                     key=lambda j: j.started_at)]

    def test_priority_beats_fifo(self, tmp_path):
        s = Scheduler(slots=1, queue_depth=8, workdir=tmp_path)
        low = s.submit(JobSpec(**FE, priority=0))
        high = s.submit(JobSpec(**FE, priority=5))
        s.start()
        order = self._drain_order(s, [low, high])
        assert order.index(high.id) < order.index(low.id)
        s.stop()

    def test_fair_share_interleaves_tenants(self, tmp_path):
        s = Scheduler(slots=1, queue_depth=8, workdir=tmp_path)
        a1 = s.submit(JobSpec(**FE, tenant="a"))
        a2 = s.submit(JobSpec(**FE, tenant="a"))
        a3 = s.submit(JobSpec(**FE, tenant="a"))
        b1 = s.submit(JobSpec(**FE, tenant="b"))
        s.start()
        order = self._drain_order(s, [a1, a2, a3, b1])
        # b may not be starved to the back of a's backlog
        assert order.index(b1.id) <= 1
        s.stop()


class TestPauseResume:
    def test_pause_checkpoints_and_resume_is_bit_identical(
            self, tmp_path):
        params = {"ngrid": 6, "steps": 4, "z_final": 12.0}
        ref = Scheduler(slots=1, workdir=tmp_path / "ref").start()
        rj = ref.submit(JobSpec(kind="run", params=params,
                                checkpoint_every=1))
        assert ref.wait(rj.id, timeout=120) and rj.state == "done"
        ref.stop()

        s = Scheduler(slots=1, workdir=tmp_path / "paused").start()
        job = s.submit(JobSpec(kind="run", params=params,
                               checkpoint_every=1))
        s.pause(job.id)  # flag observed after the first step
        assert s.wait(job.id, timeout=120)
        assert job.state == "paused"
        assert job.steps_done < params["steps"]
        s.resume(job.id)
        assert s.wait(job.id, timeout=120)
        assert job.state == "done"
        # resumed from checkpoint, not restarted: digests agree with
        # the uninterrupted reference run
        assert job.result["digest"] == rj.result["digest"]
        assert any(e["event"] == "resumed" for e in job.events)
        s.stop()

    def test_resume_of_non_paused_job_raises(self, sched):
        job = sched.submit(JobSpec(**FE))
        assert sched.wait(job.id, timeout=60)
        with pytest.raises(JobError):
            sched.resume(job.id)


class TestLeaseBroker:
    def test_exhaustion_then_release(self):
        from repro.obs import MetricsRegistry
        m = MetricsRegistry()
        broker = LeaseBroker(2, metrics=m)
        l1, l2 = broker.acquire(), broker.acquire()
        assert {l1.slot, l2.slot} == {0, 1}
        assert m.value("serve.leases_in_use") == 2
        with pytest.raises(LeaseError):
            broker.acquire(timeout=0.05)
        broker.release(l1)
        l3 = broker.acquire(timeout=1.0)
        assert l3.slot == l1.slot
        broker.release(l2)
        broker.release(l3)
        assert m.value("serve.leases_in_use") == 0
        broker.close()

    def test_double_release_raises(self):
        broker = LeaseBroker(1)
        lease = broker.acquire()
        broker.release(lease)
        with pytest.raises(LeaseError, match="double release"):
            broker.release(lease)
        broker.close()

    def test_leased_contexts_are_disjoint_systems(self):
        broker = LeaseBroker(2)
        l1, l2 = broker.acquire(), broker.acquire()
        assert l1.context is not l2.context
        assert l1.context.system is not l2.context.system
        # both model the same paper configuration
        assert (l1.context.system.peak_flops
                == l2.context.system.peak_flops)
        broker.release(l1)
        broker.release(l2)
        broker.close()

    def test_leased_context_is_latched_to_holder(self):
        import threading
        from repro.grape.api import G5Error
        broker = LeaseBroker(1)
        lease = broker.acquire()
        errors = []

        def intruder():
            try:
                lease.context.set_eps_to_all(0.01)
            except G5Error as e:
                errors.append(str(e))

        t = threading.Thread(target=intruder)
        t.start()
        t.join()
        assert errors, "cross-thread staging on a leased context " \
                       "must fail"
        broker.release(lease)
        broker.close()
