"""Shared serve-test plumbing: a live server on an ephemeral port.

The asyncio server runs on a private event loop in a daemon thread
(the same shape as production ``repro serve``, minus signals); tests
talk to it through the stdlib :class:`~repro.serve.client.ServeClient`
over real TCP, so the full wire format is exercised.
"""

import asyncio
import threading
from contextlib import contextmanager

import pytest

from repro.serve import Scheduler, ServeClient, Server

#: tiny but non-trivial paper run: finishes in a couple of seconds
TINY_RUN = {"ngrid": 6, "steps": 2, "z_final": 12.0}


@contextmanager
def live_server(*, slots=2, queue_depth=16, workdir=None, **sched_kw):
    """Start a service, yield ``(server, client)``, tear down.

    The result cache defaults *off* here (tests that race identical
    specs rely on both actually computing); cache tests pass
    ``cache=True`` explicitly.
    """
    sched_kw.setdefault("cache", False)
    sched = Scheduler(slots=slots, queue_depth=queue_depth,
                      workdir=workdir, **sched_kw)
    server = Server(sched, port=0)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(server.start(),
                                         loop).result(timeout=10)
        yield server, ServeClient(port=server.port)
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(),
                                         loop).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


@pytest.fixture
def server_pair(tmp_path):
    with live_server(workdir=tmp_path / "serve") as pair:
        yield pair


@pytest.fixture
def serve_factory():
    """The :func:`live_server` context manager, for tests that need
    non-default slots / queue depth."""
    return live_server


@pytest.fixture
def tiny_run():
    return dict(TINY_RUN)
