"""Durable job store: contract, crash/reopen, damage detection.

Three layers, mirroring ``tests/chaos/test_checkpoint_faults.py``:

* **contract** -- the :class:`~repro.serve.store.JobStore` semantics
  (claim CAS, heartbeat expiry, takeover, stale-write rejection) hold
  identically for the in-memory reference store and the SQLite store;
* **kill-and-reopen** -- at every lifecycle edge (inserted, claimed,
  running, paused, done) abandoning one store handle and opening a
  fresh one on the same file sees exactly the state that was written,
  and :meth:`~repro.serve.store.JobStore.recover` turns orphaned
  claims back into work;
* **damage sweep** -- property-based (hypothesis, derandomized):
  torn writes and truncation of the event log and tampered row
  payloads are always *detected and typed* (:class:`StoreCorrupt` /
  ``verify()`` findings / a dropped cache entry) -- never returned as
  a plausible-but-wrong document.

The crash-resume acceptance test fabricates a dead worker's store row
over a real checkpointed workdir and asserts the resumed job reaches
a ``state_digest`` bit-identical to an uninterrupted run.
"""

import sqlite3
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import corrupt_file
from repro.serve import (JobSpec, MemoryJobStore, Scheduler,
                         SQLiteJobStore, StoreCorrupt, StoreError,
                         open_store, spec_hash)
from repro.serve.jobs import Job


def make_store(kind, tmp_path):
    if kind == "memory":
        return MemoryJobStore()
    return SQLiteJobStore(tmp_path / "jobs.db")


def seeded_job(store, *, state="queued", tenant="default",
               priority=0, spec=None):
    """Allocate + insert one job document, returning the Job."""
    spec = spec or JobSpec(kind="force_eval", params={"n": 64})
    jid, seq = store.allocate()
    job = Job(spec=spec, id=jid)
    job.seq = seq
    job.state = state
    doc = job.to_store_doc()
    doc["tenant"] = tenant
    doc["priority"] = priority
    store.insert(doc)
    return job


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    s = make_store(request.param, tmp_path)
    yield s
    s.close()


class TestContract:
    """Semantics shared by both implementations."""

    def test_allocate_is_unique_and_monotone(self, store):
        pairs = [store.allocate() for _ in range(5)]
        ids = [p[0] for p in pairs]
        seqs = [p[1] for p in pairs]
        assert len(set(ids)) == 5
        assert seqs == sorted(seqs)

    def test_insert_get_list_roundtrip(self, store):
        a = seeded_job(store)
        b = seeded_job(store)
        assert store.get(a.id)["id"] == a.id
        assert store.get("nope") is None
        assert [d["id"] for d in store.list()] == [a.id, b.id]
        assert [d["id"] for d in store.queued()] == [a.id, b.id]

    def test_claim_cas_exactly_one_winner(self, store):
        job = seeded_job(store)
        now = time.time()
        wins = [store.claim(job.id, w, now=now, ttl=30.0)
                for w in ("w1", "w2", "w3")]
        assert wins == [True, False, False]
        doc = store.get(job.id)
        assert doc["state"] == "scheduled"
        assert doc["worker"] == "w1"

    def test_claim_refuses_non_queued(self, store):
        job = seeded_job(store, state="done")
        assert not store.claim(job.id, "w1", now=time.time(), ttl=30.0)

    def test_heartbeat_keeps_claim_alive(self, store):
        job = seeded_job(store)
        assert store.claim(job.id, "w1", now=100.0, ttl=10.0)
        # would expire at 110; heartbeats walk the expiry forward
        for now in (105.0, 112.0, 119.0):
            flags = store.heartbeat(job.id, "w1", now=now, ttl=10.0)
            assert flags == {"cancel_requested": False}
        # claim alive at t=125 -> recover() must not touch it
        assert store.recover(now=125.0) == []

    def test_expired_claim_recovered_with_attempt_bump(self, store):
        job = seeded_job(store)
        assert store.claim(job.id, "w1", now=100.0, ttl=10.0)
        assert store.recover(now=105.0) == []          # still alive
        assert store.recover(now=111.0) == [job.id]    # expired
        doc = store.get(job.id)
        assert doc["state"] == "queued"
        assert doc["attempt"] == 1
        assert doc["worker"] is None
        # the dead worker's next heartbeat reports the lost claim
        assert store.heartbeat(job.id, "w1", now=112.0, ttl=10.0) \
            is None

    def test_recover_reclaims_own_worker_immediately(self, store):
        """A restarted worker (same id) owns nothing: its old claims
        are re-queued without waiting out the TTL."""
        job = seeded_job(store)
        assert store.claim(job.id, "w1", now=100.0, ttl=300.0)
        assert store.recover(now=101.0) == []           # not expired
        assert store.recover(now=101.0, worker="w1") == [job.id]

    def test_stale_write_after_takeover_is_dropped(self, store):
        job = seeded_job(store)
        assert store.claim(job.id, "w1", now=100.0, ttl=10.0)
        store.recover(now=111.0)                        # takeover
        job.state = "done"
        assert store.update(job.to_store_doc(), worker="w1") is False
        assert store.get(job.id)["state"] == "queued"
        # an unguarded write (store-side authority) still lands
        assert store.update(store.get(job.id)) is True

    def test_heartbeat_never_resurrects_terminal_state(self, store):
        job = seeded_job(store)
        assert store.claim(job.id, "w1", now=100.0, ttl=30.0)
        job.state = "done"
        assert store.update(job.to_store_doc(), worker="w1")
        stale = dict(store.get(job.id))
        stale["state"] = "running"
        store.heartbeat(job.id, "w1", now=101.0, ttl=30.0, doc=stale)
        assert store.get(job.id)["state"] == "done"

    def test_request_cancel_semantics(self, store):
        queued = seeded_job(store)
        assert store.request_cancel(queued.id) == "cancelled"
        assert store.get(queued.id)["state"] == "cancelled"
        assert store.request_cancel(queued.id) is None  # terminal
        running = seeded_job(store)
        assert store.claim(running.id, "w1", now=100.0, ttl=30.0)
        assert store.request_cancel(running.id) == "requested"
        flags = store.heartbeat(running.id, "w1", now=101.0, ttl=30.0)
        assert flags == {"cancel_requested": True}
        assert store.request_cancel("nope") is None

    def test_requeue_from_paused(self, store):
        job = seeded_job(store, state="paused")
        assert store.requeue(job.id) is True
        assert store.get(job.id)["state"] == "queued"
        assert store.requeue(job.id) is False           # already queued

    def test_event_log_roundtrip(self, store):
        a = seeded_job(store)
        b = seeded_job(store)
        store.append_event(a.id, {"event": "submitted"})
        store.append_event(b.id, {"event": "submitted"})
        store.append_event(a.id, {"event": "leased", "lease": "L1"})
        assert [e["event"] for e in store.events(a.id)] == \
            ["submitted", "leased"]
        assert [e["event"] for e in store.events(b.id)] == ["submitted"]

    def test_cache_roundtrip_and_stats(self, store):
        key = spec_hash(JobSpec(kind="force_eval", params={"n": 64}))
        assert store.cache_get(key) is None
        store.cache_put(key, "d" * 64, {"digest": "d" * 64, "n": 64})
        assert store.cache_get(key) == {"digest": "d" * 64, "n": 64}
        stats = store.cache_stats()
        assert stats["entries"] == 1 and stats["hits"] == 1

    def test_tenant_active_counts_non_terminal(self, store):
        seeded_job(store, tenant="a")
        seeded_job(store, tenant="a", state="running")
        seeded_job(store, tenant="a", state="done")
        seeded_job(store, tenant="b")
        assert store.tenant_active("a") == 2
        assert store.tenant_active("b") == 1

    def test_verify_clean_store(self, store):
        seeded_job(store)
        assert store.verify() == []


class TestOpenStore:
    def test_coercions(self, tmp_path):
        assert open_store(None).kind == "memory"
        s = SQLiteJobStore(tmp_path / "a.db")
        assert open_store(s) is s
        s.close()
        t = open_store(tmp_path / "sub" / "b.db")
        assert t.kind == "sqlite" and (tmp_path / "sub" / "b.db").exists()
        t.close()


#: lifecycle edges the reopen sweep kills at: (state, claimed)
_EDGES = [("queued", False), ("scheduled", True), ("running", True),
          ("paused", False), ("done", False)]


class TestKillAndReopen:
    """Abandon the handle (simulated crash) at every lifecycle edge;
    a fresh store on the same file sees exactly what was written."""

    @pytest.mark.parametrize("state,claimed", _EDGES)
    def test_reopen_sees_the_edge(self, tmp_path, state, claimed):
        s1 = SQLiteJobStore(tmp_path / "jobs.db")
        job = seeded_job(s1)
        store_claims = claimed or state in ("running",)
        if store_claims:
            assert s1.claim(job.id, "w1", now=time.time(), ttl=0.2)
        if state != "queued" and not (state == "scheduled"):
            job.state = state
            s1.update(job.to_store_doc(),
                      worker="w1" if store_claims else None)
        s1.append_event(job.id, {"event": "edge", "state": state})
        # crash: no close(); the WAL handles the abandoned handle
        s2 = SQLiteJobStore(tmp_path / "jobs.db")
        doc = s2.get(job.id)
        assert doc["state"] == state
        assert [e["state"] for e in s2.events(job.id)] == [state]
        assert s2.verify() == []
        # scheduled/running edges: the orphaned claim expires and the
        # job becomes claimable work again
        requeued = s2.recover(now=time.time() + 1.0)
        if state in ("scheduled", "running"):
            assert requeued == [job.id]
            assert s2.get(job.id)["attempt"] == 1
        else:
            assert requeued == []
        s1.close()
        s2.close()

    def test_seq_allocation_survives_reopen(self, tmp_path):
        s1 = SQLiteJobStore(tmp_path / "jobs.db")
        id1, seq1 = s1.allocate()
        s2 = SQLiteJobStore(tmp_path / "jobs.db")
        id2, seq2 = s2.allocate()
        assert seq2 == seq1 + 1 and id2 != id1
        s1.close()
        s2.close()

    def test_cache_survives_reopen(self, tmp_path):
        s1 = SQLiteJobStore(tmp_path / "jobs.db")
        s1.cache_put("k" * 64, "dig", {"digest": "dig", "x": 1})
        s2 = SQLiteJobStore(tmp_path / "jobs.db")
        assert s2.cache_get("k" * 64) == {"digest": "dig", "x": 1}
        s1.close()
        s2.close()


class TestDamageDetection:
    """Damage is always detected and typed, never served."""

    def _event_store(self, tmp_path, n=6):
        s = SQLiteJobStore(tmp_path / "jobs.db")
        job = seeded_job(s)
        for i in range(n):
            s.append_event(job.id, {"event": "step", "step": i})
        originals = s.events(job.id)
        s.close()
        return job.id, originals

    @settings(derandomize=True, max_examples=30, deadline=None)
    @given(frac=st.floats(min_value=0.0, max_value=1.0),
           mode=st.sampled_from(["truncate", "flip"]))
    def test_event_log_damage_sweep(self, tmp_path_factory, frac, mode):
        """Any torn write / byte flip in the event log yields an
        intact *prefix* of what was written plus typed damage -- never
        an invented or altered event."""
        tmp_path = tmp_path_factory.mktemp("dmg")
        jid, originals = self._event_store(tmp_path)
        log = tmp_path / "jobs.db.events.jsonl"
        size = log.stat().st_size
        offset = min(int(frac * size), size - 1)
        corrupt_file(log, mode=mode, offset=offset)
        s = SQLiteJobStore(tmp_path / "jobs.db")
        got = s.events(jid)
        assert got == originals[:len(got)], \
            "damaged log must yield a prefix, never altered events"
        if mode == "flip":
            # a flipped byte always breaks a line's self-digest
            assert len(got) < len(originals)
            assert s.verify(), "flip must be reported by verify()"
            assert any("event log" in f for f in s.verify())
        s.close()

    @settings(derandomize=True, max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_job_row_tamper_is_typed(self, tmp_path_factory, seed):
        """A torn row payload (byte flipped under SQLite's nose)
        raises StoreCorrupt on read and shows in verify()."""
        tmp_path = tmp_path_factory.mktemp("row")
        s = SQLiteJobStore(tmp_path / "jobs.db")
        job = seeded_job(s)
        s.close()
        db = sqlite3.connect(tmp_path / "jobs.db")
        text = db.execute("SELECT doc FROM jobs").fetchone()[0]
        i = seed % len(text)
        tampered = text[:i] + chr((ord(text[i]) + 1) % 128) + \
            text[i + 1:]
        db.execute("UPDATE jobs SET doc = ?", (tampered,))
        db.commit()
        db.close()
        s = SQLiteJobStore(tmp_path / "jobs.db")
        with pytest.raises(StoreCorrupt):
            s.get(job.id)
        with pytest.raises(StoreCorrupt):
            s.list()
        findings = s.verify()
        assert any("jobs" in f and "SHA-256" in f for f in findings)
        s.close()

    def test_cache_row_tamper_is_a_miss_never_wrong(self, tmp_path):
        s = SQLiteJobStore(tmp_path / "jobs.db")
        s.cache_put("k" * 64, "dig", {"digest": "dig", "value": 42})
        s.close()
        db = sqlite3.connect(tmp_path / "jobs.db")
        db.execute("UPDATE cache SET result = replace(result,"
                   " '42', '43')")
        db.commit()
        db.close()
        s = SQLiteJobStore(tmp_path / "jobs.db")
        assert s.cache_get("k" * 64) is None
        assert s.cache_stats()["dropped"] == 1
        assert s.cache_stats()["entries"] == 0
        s.close()

    def test_truncated_database_is_typed(self, tmp_path):
        s = SQLiteJobStore(tmp_path / "jobs.db")
        for _ in range(8):
            seeded_job(s)
        s.close()
        corrupt_file(tmp_path / "jobs.db", mode="truncate", offset=40)
        with pytest.raises(StoreError):
            SQLiteJobStore(tmp_path / "jobs.db")

    def test_flipped_header_is_typed(self, tmp_path):
        s = SQLiteJobStore(tmp_path / "jobs.db")
        seeded_job(s)
        s.close()
        corrupt_file(tmp_path / "jobs.db", mode="flip", offset=0)
        with pytest.raises(StoreCorrupt):
            SQLiteJobStore(tmp_path / "jobs.db")


class TestCrashResume:
    """The acceptance path: a worker dies mid-run; a fresh scheduler
    on the same store resumes from the last-good checkpoint and
    reaches a bit-identical ``state_digest``."""

    RUN = {"ngrid": 6, "steps": 4, "z_final": 12.0}

    def _spec(self):
        return JobSpec(kind="run", params=dict(self.RUN),
                       checkpoint_every=1)

    def test_dead_worker_job_resumes_bit_identical(self, tmp_path):
        store = SQLiteJobStore(tmp_path / "jobs.db")
        # phase 1: run partway on worker A, checkpointing every step;
        # pause produces exactly the on-disk state a crash would leave
        A = Scheduler(slots=1, workdir=tmp_path / "work", store=store,
                      worker_id="A", poll_interval=0.02).start()
        job = A.submit(self._spec())
        deadline = time.monotonic() + 60
        while job.steps_done < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.steps_done >= 2, "job never progressed"
        A.pause(job.id)
        assert A.wait(job.id, timeout=60)
        assert job.state == "paused"
        A.stop(drain=False)
        # phase 2: doctor the store row into what a SIGKILLed worker
        # leaves behind -- running, claimed by a dead worker, expired
        doc = store.get(job.id)
        doc["state"] = "running"
        doc["worker"] = "dead"
        assert store.update(doc)
        db = sqlite3.connect(tmp_path / "jobs.db")
        db.execute("UPDATE jobs SET state = 'running',"
                   " claimed_by = 'dead', claim_expires = ?"
                   " WHERE id = ?", (time.time() - 60.0, job.id))
        db.commit()
        db.close()
        # phase 3: a fresh scheduler recovers, re-claims, resumes
        B = Scheduler(slots=1, workdir=tmp_path / "work", store=store,
                      worker_id="B", claim_ttl=10.0,
                      poll_interval=0.02, cache=False).start()
        assert B.wait(job.id, timeout=120)
        resumed = B.get(job.id)
        assert resumed.state == "done"
        assert resumed.worker == "B"
        assert resumed.attempt == 1
        events = store.events(job.id)
        assert any(e["event"] == "resumed" for e in events)
        digest = resumed.result["digest"]
        # reference: the same spec end-to-end with no interruption
        ref = B.submit(JobSpec(kind="run", params=dict(self.RUN)))
        assert B.wait(ref.id, timeout=120)
        assert B.get(ref.id).state == "done"
        assert B.get(ref.id).result["digest"] == digest
        B.stop(drain=False)
        store.close()

    def test_graceful_drain_requeues_via_checkpoint(self, tmp_path):
        """stop() on a durable store checkpoints running jobs and
        re-queues them instead of cancelling."""
        store = SQLiteJobStore(tmp_path / "jobs.db")
        A = Scheduler(slots=1, workdir=tmp_path / "work", store=store,
                      worker_id="A", poll_interval=0.02).start()
        job = A.submit(self._spec())
        deadline = time.monotonic() + 60
        while job.steps_done < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        A.stop()                     # drain=auto -> on for sqlite
        doc = store.get(job.id)
        assert doc["state"] in ("queued", "done")
        if doc["state"] == "queued":
            B = Scheduler(slots=1, workdir=tmp_path / "work",
                          store=store, worker_id="B",
                          poll_interval=0.02, cache=False).start()
            assert B.wait(job.id, timeout=120)
            assert B.get(job.id).state == "done"
            B.stop(drain=False)
        store.close()
