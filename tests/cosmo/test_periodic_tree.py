"""Periodic treecode tests."""

import numpy as np
import pytest

from repro.cosmo.ewald import EwaldCorrectionTable, PeriodicDirectSummation
from repro.cosmo.periodic_tree import PeriodicTreeCode


@pytest.fixture(scope="module")
def table():
    return EwaldCorrectionTable(1.0)


@pytest.fixture(scope="module")
def workload(table):
    rng = np.random.default_rng(77)
    n = 600
    pos = rng.uniform(0, 1, (n, 3))
    mass = rng.uniform(0.5, 1.5, n) / n
    eps = 0.01
    acc, pot = PeriodicDirectSummation(
        box=1.0, table=table).accelerations(pos, mass, eps)
    return pos, mass, eps, acc, pot


class TestAgainstPeriodicDirect:
    def test_exact_at_tiny_theta(self, workload, table):
        """theta -> 0 reproduces the periodic direct solver to
        round-off: every image bookkeeping step is exact."""
        pos, mass, eps, acc_ref, pot_ref = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.05, n_crit=32,
                              ewald_table=table)
        acc, pot = tc.accelerations(pos, mass, eps)
        scale = np.abs(acc_ref).max()
        assert np.allclose(acc, acc_ref, atol=1e-11 * scale)
        assert np.allclose(pot, pot_ref, atol=1e-11 * np.abs(pot_ref).max())

    def test_production_theta_accuracy(self, workload, table):
        """At theta = 0.5 the error is a small fraction of the typical
        force (periodic net forces partially cancel, so per-sink
        relative errors overstate the approximation)."""
        pos, mass, eps, acc_ref, _ = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.5, n_crit=64,
                              ewald_table=table)
        acc, _ = tc.accelerations(pos, mass, eps)
        scale = np.mean(np.linalg.norm(acc_ref, axis=1))
        err = np.linalg.norm(acc - acc_ref, axis=1) / scale
        assert np.sqrt(np.mean(err**2)) < 0.02

    def test_cheaper_than_direct(self, workload, table):
        pos, mass, eps, _, _ = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.7, n_crit=64,
                              ewald_table=table)
        tc.accelerations(pos, mass, eps)
        n = len(pos)
        assert tc.last_stats.total_interactions < 0.7 * n * n


class TestPeriodicBehaviour:
    def test_translation_invariance_mod_box(self, workload, table):
        pos, mass, eps, _, _ = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.5, n_crit=64,
                              ewald_table=table)
        a0, _ = tc.accelerations(pos, mass, eps)
        a1, _ = tc.accelerations(np.mod(pos + 0.43, 1.0), mass, eps)
        scale = np.abs(a0).max()
        # the wrapped tree differs, so agreement is at the tree-error
        # level, not round-off
        err = np.abs(a1 - a0).max() / scale
        assert err < 0.05

    def test_unwrapped_input_accepted(self, workload, table):
        """Positions outside [0, L) are wrapped internally."""
        pos, mass, eps, _, _ = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.5, n_crit=64,
                              ewald_table=table)
        a0, p0 = tc.accelerations(pos, mass, eps)
        a1, p1 = tc.accelerations(pos + 7.0, mass, eps)
        assert np.allclose(a0, a1, rtol=1e-12)
        assert np.allclose(p0, p1, rtol=1e-12)

    def test_momentum_conserved_at_tiny_theta(self, workload, table):
        pos, mass, eps, _, _ = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.05, n_crit=32,
                              ewald_table=table)
        acc, _ = tc.accelerations(pos, mass, eps)
        p = (mass[:, None] * acc).sum(axis=0)
        assert np.abs(p).max() < 1e-9 * np.abs(acc).max()

    def test_lattice_forces_vanish(self, table):
        edge = (np.arange(5) + 0.5) / 5
        gx, gy, gz = np.meshgrid(edge, edge, edge, indexing="ij")
        pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)
        tc = PeriodicTreeCode(box=1.0, theta=0.3, n_crit=16,
                              ewald_table=table)
        acc, _ = tc.accelerations(pos, np.ones(125), 0.0)
        scale = 25.0  # pair force at the lattice spacing
        assert np.abs(acc).max() < 2e-3 * scale


class TestConstruction:
    def test_validation(self, table):
        with pytest.raises(ValueError):
            PeriodicTreeCode(box=0.0)
        with pytest.raises(ValueError):
            PeriodicTreeCode(box=2.0, ewald_table=table)  # mismatch

    def test_mac_gets_box(self):
        tc = PeriodicTreeCode(box=1.0,
                              ewald_table=EwaldCorrectionTable(1.0, n=4))
        assert tc.mac.box == 1.0

    def test_grape_backend_works(self, workload, table):
        from repro.grape import GrapeBackend
        pos, mass, eps, acc_ref, _ = workload
        tc = PeriodicTreeCode(box=1.0, theta=0.5, n_crit=64,
                              backend=GrapeBackend(), ewald_table=table)
        acc, _ = tc.accelerations(pos, mass, eps)
        scale = np.mean(np.linalg.norm(acc_ref, axis=1))
        err = np.linalg.norm(acc - acc_ref, axis=1) / scale
        assert np.sqrt(np.mean(err**2)) < 0.03
