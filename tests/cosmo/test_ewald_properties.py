"""Hypothesis property tests for the periodic-gravity substrates."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cosmo.ewald import ewald_kernels, minimum_image
from repro.cosmo.pm import ParticleMesh

COMMON = dict(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


class TestEwaldProperties:
    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.floats(1.2, 3.5),
           st.floats(0.5, 8.0))
    def test_alpha_and_box_scaling(self, seed, alpha_scale, box):
        """Exactness in alpha, and the scaling law
        g(s*d; s*L) = g(d; L) / s^2 (gravity is scale-free)."""
        rng = np.random.default_rng(seed)
        d = rng.uniform(-0.45, 0.45, (6, 3))
        g1, p1 = ewald_kernels(d, 1.0, alpha=2.0, nreal=4, nk=5)
        g2, p2 = ewald_kernels(d, 1.0, alpha=alpha_scale, nreal=4, nk=5)
        assert np.allclose(g1, g2, rtol=1e-7, atol=1e-9)
        assert np.allclose(p1, p2, rtol=1e-7, atol=1e-9)
        gs, ps = ewald_kernels(box * d, box, nreal=4, nk=5)
        assert np.allclose(gs, g1 / box**2, rtol=1e-7, atol=1e-9)
        assert np.allclose(ps, p1 / box, rtol=1e-7, atol=1e-9)

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1))
    def test_pair_antisymmetry_random(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.uniform(-0.49, 0.49, (8, 3))
        g1, p1 = ewald_kernels(d, 1.0)
        g2, p2 = ewald_kernels(-d, 1.0)
        assert np.allclose(g1, -g2, atol=1e-10)
        assert np.allclose(p1, p2, atol=1e-10)

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(-3, 3),
           st.integers(-3, 3), st.integers(-3, 3))
    def test_lattice_periodicity_random(self, seed, nx, ny, nz):
        rng = np.random.default_rng(seed)
        d = rng.uniform(-0.49, 0.49, (5, 3))
        shift = np.array([nx, ny, nz], dtype=np.float64)
        g1, p1 = ewald_kernels(d, 1.0)
        g2, p2 = ewald_kernels(d + shift, 1.0)
        assert np.allclose(g1, g2, atol=1e-10)
        assert np.allclose(p1, p2, atol=1e-10)


class TestMinimumImageProperties:
    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.floats(0.5, 10.0))
    def test_wrap_in_half_box(self, seed, box):
        rng = np.random.default_rng(seed)
        d = rng.uniform(-5 * box, 5 * box, (50, 3))
        w = minimum_image(d, box)
        assert np.all(np.abs(w) <= 0.5 * box * (1 + 1e-12))
        # difference is an integer number of boxes
        k = (d - w) / box
        assert np.allclose(k, np.round(k), atol=1e-9)


class TestPMProperties:
    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(8, 24))
    def test_momentum_and_mass_any_config(self, seed, ngrid):
        rng = np.random.default_rng(seed)
        pm = ParticleMesh(box=1.0, ngrid=ngrid)
        n = 50 + seed % 100
        pos = rng.uniform(0, 1, (n, 3))
        mass = rng.uniform(0.1, 2.0, n)
        rho = pm.density(pos, mass)
        assert rho.sum() * pm.cell**3 == pytest.approx(mass.sum(),
                                                       rel=1e-10)
        acc, _ = pm.accelerations(pos, mass)
        p = np.abs((mass[:, None] * acc).sum(axis=0)).max()
        assert p < 1e-8 * max(np.abs(acc).max(), 1e-300)

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1))
    def test_linearity_in_mass(self, seed):
        rng = np.random.default_rng(seed)
        pm = ParticleMesh(box=1.0, ngrid=16)
        pos = rng.uniform(0, 1, (40, 3))
        mass = rng.uniform(0.1, 1.0, 40)
        a1, p1 = pm.accelerations(pos, mass)
        a2, p2 = pm.accelerations(pos, 3.0 * mass)
        assert np.allclose(a2, 3.0 * a1, rtol=1e-10)
        assert np.allclose(p2, 3.0 * p1, rtol=1e-10)
