"""Unit-system sanity: the constants our unit choices rest on."""

import pytest

from repro.cosmo.units import (G, GYR_PER_TIME_UNIT, RHO_CRIT_H100,
                               SEC_PER_TIME_UNIT, Units)


class TestConstants:
    def test_g_in_astronomer_units(self):
        # canonical value: 4.30e-9 Mpc (km/s)^2 / M_sun
        assert G == pytest.approx(4.301e-9, rel=1e-3)

    def test_time_unit_gyr(self):
        # Mpc / (km/s) ~ 977.8 Gyr
        assert GYR_PER_TIME_UNIT == pytest.approx(977.8, rel=1e-3)

    def test_rho_crit(self):
        # 2.775e11 M_sun/Mpc^3 for H0 = 100
        assert RHO_CRIT_H100 == pytest.approx(2.775e11, rel=1e-3)

    def test_seconds_per_time_unit(self):
        assert SEC_PER_TIME_UNIT == pytest.approx(3.086e19, rel=1e-3)


class TestUnits:
    def test_hubble_time(self):
        u = Units()
        assert u.hubble_time(50.0) == pytest.approx(0.02)
        with pytest.raises(ValueError):
            u.hubble_time(0.0)

    def test_rho_crit_scales_h_squared(self):
        u = Units()
        assert u.rho_crit(50.0) == pytest.approx(RHO_CRIT_H100 / 4.0)

    def test_kepler_consistency(self):
        """A circular orbit at 1 Mpc around 1e12 M_sun: v = sqrt(GM/r)
        must come out in km/s (~65.6)."""
        v = (G * 1e12 / 1.0) ** 0.5
        assert v == pytest.approx(65.6, rel=1e-2)
