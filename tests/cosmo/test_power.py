"""Power-spectrum tests: BBKS shape and sigma_8 normalisation."""

import numpy as np
import pytest

from repro.cosmo.cosmology import Cosmology
from repro.cosmo.power import PowerSpectrum, bbks_transfer


class TestBBKSTransfer:
    def test_unity_at_large_scales(self):
        assert float(bbks_transfer(np.array([1e-8]))[0]) == pytest.approx(
            1.0, abs=1e-4)

    def test_monotone_decreasing(self):
        q = np.geomspace(1e-4, 1e2, 200)
        t = bbks_transfer(q)
        assert np.all(np.diff(t) < 0)

    def test_small_scale_suppression(self):
        """T ~ ln(q)/q^2 asymptotically: strong suppression."""
        assert float(bbks_transfer(np.array([100.0]))[0]) < 1e-3

    def test_positive_everywhere(self):
        q = np.geomspace(1e-6, 1e4, 100)
        assert np.all(bbks_transfer(q) > 0)


class TestPowerSpectrum:
    def test_sigma8_normalisation(self):
        ps = PowerSpectrum(sigma8=0.6)
        assert ps.sigma_r(8.0 / ps.cosmology.h) == pytest.approx(0.6,
                                                                 rel=1e-6)

    def test_shape_parameter_scdm(self):
        assert PowerSpectrum().gamma == pytest.approx(0.5)

    def test_large_scale_slope(self):
        """P ~ k^n at small k (transfer -> 1)."""
        ps = PowerSpectrum(n=1.0)
        k = np.array([1e-5, 2e-5])
        p = ps(k)
        assert p[1] / p[0] == pytest.approx(2.0, rel=1e-2)

    def test_zero_k_is_zero(self):
        ps = PowerSpectrum()
        assert float(ps(np.array([0.0]))[0]) == 0.0

    def test_sigma_decreases_with_radius(self):
        ps = PowerSpectrum()
        assert ps.sigma_r(4.0) > ps.sigma_r(16.0) > ps.sigma_r(64.0)

    def test_amplitude_scales_with_sigma8_squared(self):
        a1 = PowerSpectrum(sigma8=0.5).amplitude
        a2 = PowerSpectrum(sigma8=1.0).amplitude
        assert a2 / a1 == pytest.approx(4.0, rel=1e-9)

    def test_peak_location_tracks_gamma(self):
        """Lower Gamma pushes the turnover to larger scales (smaller k):
        the classic shape-parameter effect."""
        k = np.geomspace(1e-4, 10, 600)
        scdm = PowerSpectrum()
        lcdm = PowerSpectrum(
            cosmology=Cosmology(h=0.7, omega_m=0.3, omega_l=0.7))
        k_peak_scdm = k[np.argmax(scdm(k))]
        k_peak_lcdm = k[np.argmax(lcdm(k))]
        assert k_peak_lcdm < k_peak_scdm
