"""Two-point correlation function tests."""

import numpy as np
import pytest

from repro.cosmo.correlation import (correlation_function, pair_counts,
                                     power_law_fit, sphere_rr)


class TestPairCounts:
    def test_small_exact(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0], [0, 2.0, 0]])
        edges = np.array([0.5, 1.5, 2.5])
        # pairs: (0,1) r=1; (0,2) r=2; (1,2) r=sqrt(5)~2.24
        counts = pair_counts(pos, edges)
        assert counts.tolist() == [1, 2]

    def test_total_pairs(self, rng):
        pos = rng.uniform(0, 1, (50, 3))
        edges = np.array([0.0, 10.0])
        assert pair_counts(pos, edges)[0] == 50 * 49 // 2

    def test_tile_invariance(self, rng):
        pos = rng.uniform(0, 1, (80, 3))
        edges = np.linspace(0.0, 2.0, 10)
        a = pair_counts(pos, edges)
        b = pair_counts(pos, edges, tile=128)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            pair_counts(np.zeros((3, 2)), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            pair_counts(np.zeros((3, 3)), np.array([1.0, 0.5]))


class TestSphereRR:
    def test_total_matches_pair_count(self, rng):
        n = 200
        edges = np.array([0.0, 3.0])  # diameter bin: all pairs
        rr = sphere_rr(n, 1.5, edges, rng=rng)
        assert rr[0] == pytest.approx(n * (n - 1) / 2, rel=1e-6)

    def test_uniform_points_give_zero_xi(self, rng):
        """xi of actually-uniform points must vanish within noise."""
        n = 3000
        v = rng.standard_normal((n, 3))
        v /= np.linalg.norm(v, axis=1)[:, None]
        pos = (rng.uniform(0, 1, n) ** (1 / 3))[:, None] * v * 2.0
        edges = np.geomspace(0.2, 1.5, 8)
        r, xi = correlation_function(pos, 2.0, edges, rng=rng)
        assert np.nanmax(np.abs(xi)) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            sphere_rr(10, 0.0, np.array([0.0, 1.0]))


class TestCorrelationFunction:
    def test_clustered_points_positive_xi(self, rng):
        """Clumped points show strong small-scale excess."""
        centers = rng.uniform(-1.0, 1.0, (20, 3))
        pts = (centers[:, None, :]
               + 0.03 * rng.standard_normal((20, 100, 3))).reshape(-1, 3)
        r = np.linalg.norm(pts, axis=1)
        pts = pts[r < 2.0]
        edges = np.geomspace(0.01, 1.0, 10)
        rc, xi = correlation_function(pts, 2.0, edges, rng=rng)
        assert np.nanmax(xi[:4]) > 5.0  # big clumping signal
        # and it decays outward
        inner = np.nanmean(xi[:3])
        outer = np.nanmean(xi[-3:])
        assert inner > outer

    def test_bin_centers_geometric(self, rng):
        edges = np.geomspace(0.1, 10.0, 5)
        pos = rng.uniform(-1, 1, (30, 3))
        rc, _ = correlation_function(pos, 2.0, edges, rng=rng)
        assert np.allclose(rc, np.sqrt(edges[:-1] * edges[1:]))


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        r = np.geomspace(0.1, 10.0, 20)
        xi = (r / 2.0) ** -1.8
        r0, gamma = power_law_fit(r, xi)
        assert r0 == pytest.approx(2.0, rel=1e-6)
        assert gamma == pytest.approx(1.8, rel=1e-6)

    def test_range_restriction(self):
        r = np.geomspace(0.1, 10.0, 20)
        xi = (r / 2.0) ** -1.8
        xi[:5] = 100.0  # corrupt small scales
        r0, gamma = power_law_fit(r, xi, rmin=0.5)
        assert gamma == pytest.approx(1.8, rel=1e-6)

    def test_rejects_insufficient_data(self):
        with pytest.raises(ValueError):
            power_law_fit(np.array([1.0, 2.0]), np.array([-1.0, np.nan]))

    def test_rejects_rising_xi(self):
        r = np.geomspace(0.1, 10.0, 10)
        with pytest.raises(ValueError):
            power_law_fit(r, r**2)
