"""Zel'dovich IC tests: growth scaling, Hubble flow, paper arithmetic."""

import numpy as np
import pytest

from repro.cosmo.cosmology import SCDM
from repro.cosmo.zeldovich import ZeldovichIC, lattice_positions


@pytest.fixture(scope="module")
def ic():
    return ZeldovichIC(box=100.0, ngrid=16, seed=42)


class TestLattice:
    def test_count_and_bounds(self):
        q = lattice_positions(8, 50.0)
        assert q.shape == (512, 3)
        assert q.min() == pytest.approx(50.0 / 16)
        assert q.max() == pytest.approx(50.0 - 50.0 / 16)

    def test_uniform_spacing(self):
        q = lattice_positions(4, 8.0)
        xs = np.unique(q[:, 0])
        assert np.allclose(np.diff(xs), 2.0)


class TestZeldovichIC:
    def test_particle_count(self, ic):
        assert ic.n_particles == 16**3

    def test_particle_mass_paper_value(self):
        """Box mass / N reproduces the paper's 1.7e10 M_sun when the
        mean density and particle loading match the headline run."""
        # paper: sphere radius 50 Mpc, 2,159,038 particles; equivalent
        # cubic loading: N_box = N_sphere / (pi/6)
        ic = ZeldovichIC(box=100.0, ngrid=2)  # mass is ngrid-independent
        n_box_equiv = 2_159_038 / (np.pi / 6.0)
        m = (ic.cosmology.mean_matter_density() * 100.0**3) / n_box_equiv
        assert m == pytest.approx(1.7e10, rel=0.02)

    def test_comoving_positions_in_box(self, ic):
        x, v = ic.comoving(24.0)
        assert x.min() >= 0.0 and x.max() < 100.0

    def test_displacements_grow_as_d(self, ic):
        """x(z) - q scales exactly with D(z) (EdS: with a)."""
        q = lattice_positions(16, 100.0)
        x24, _ = ic.comoving(24.0)
        x99, _ = ic.comoving(99.0)
        d24 = x24 - q
        d99 = x99 - q
        # undo periodic wrap for the comparison
        d24 = (d24 + 50.0) % 100.0 - 50.0
        d99 = (d99 + 50.0) % 100.0 - 50.0
        ratio = float(SCDM.growth_factor(24.0) / SCDM.growth_factor(99.0))
        assert np.allclose(d24, ratio * d99, rtol=1e-8, atol=1e-12)

    def test_peculiar_velocity_relation(self, ic):
        """EdS: v_pec = a H f D psi = H(a) a * disp; check the ratio."""
        q = lattice_positions(16, 100.0)
        z = 24.0
        x, v = ic.comoving(z)
        disp = (x - q + 50.0) % 100.0 - 50.0
        a = 1.0 / 25.0
        expect = a * float(SCDM.H(a)) * disp
        assert np.allclose(v, expect, rtol=1e-8, atol=1e-10)

    def test_physical_frame_hubble_flow(self, ic):
        """Total velocity is Hubble flow + peculiar: for the centered
        box the mean radial velocity gradient is H(z)."""
        r, v = ic.physical(24.0)
        a = 1.0 / 25.0
        h = float(SCDM.H(a))
        rr = np.sqrt(np.einsum("ij,ij->i", r, r))
        vr = np.einsum("ij,ij->i", v, r) / rr
        assert np.median(vr / rr) == pytest.approx(h, rel=0.05)

    def test_physical_positions_scale(self, ic):
        r, _ = ic.physical(24.0)
        # physical extent ~ a * box
        assert np.abs(r).max() < 1.05 * (100.0 / 25.0) * 0.5 * 1.2

    def test_fields_cached(self, ic):
        d1 = ic.delta
        d2 = ic.delta
        assert d1 is d2

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeldovichIC(box=0.0, ngrid=8)
        with pytest.raises(ValueError):
            ZeldovichIC(box=10.0, ngrid=1)

    def test_different_seeds_differ(self):
        a = ZeldovichIC(box=100.0, ngrid=8, seed=1).delta
        b = ZeldovichIC(box=100.0, ngrid=8, seed=2).delta
        assert not np.allclose(a, b)
