"""Gaussian random field tests: statistics match the input spectrum."""

import numpy as np
import pytest

from repro.cosmo.gaussian import (displacement_field, gaussian_density_field,
                                  grid_wavenumbers)
from repro.cosmo.power import PowerSpectrum


class TestWavenumbers:
    def test_shapes_broadcast(self):
        kx, ky, kz = grid_wavenumbers(8, 100.0)
        assert kx.shape == (8, 1, 1)
        assert ky.shape == (1, 8, 1)
        assert kz.shape == (1, 1, 8)

    def test_fundamental_mode(self):
        kx, _, _ = grid_wavenumbers(16, 50.0)
        assert kx[1, 0, 0] == pytest.approx(2.0 * np.pi / 50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_wavenumbers(1, 10.0)
        with pytest.raises(ValueError):
            grid_wavenumbers(8, 0.0)


class TestDensityField:
    def test_real_and_zero_mean(self, rng):
        ps = PowerSpectrum()
        d = gaussian_density_field(ps, 16, 100.0, rng)
        assert d.shape == (16, 16, 16)
        assert d.dtype == np.float64
        assert abs(d.mean()) < 1e-10  # DC mode removed exactly

    def test_deterministic_given_seed(self):
        ps = PowerSpectrum()
        d1 = gaussian_density_field(ps, 8, 100.0,
                                    np.random.default_rng(11))
        d2 = gaussian_density_field(ps, 8, 100.0,
                                    np.random.default_rng(11))
        assert np.array_equal(d1, d2)

    def test_variance_matches_spectrum(self):
        """<delta^2> on the mesh = (1/V) sum_k P(k): check to ~15 %
        over an ensemble of a few realisations."""
        ps = PowerSpectrum()
        ngrid, box = 16, 200.0
        kx, ky, kz = grid_wavenumbers(ngrid, box)
        kk = np.sqrt(kx**2 + ky**2 + kz**2)
        p = ps(kk)
        # the generator zeroes the DC mode and the Nyquist planes
        p[0, 0, 0] = 0.0
        p[ngrid // 2, :, :] = 0.0
        p[:, ngrid // 2, :] = 0.0
        p[:, :, ngrid // 2] = 0.0
        expect = p.sum() / box**3
        got = np.mean([
            gaussian_density_field(ps, ngrid, box,
                                   np.random.default_rng(s)).var()
            for s in range(5)])
        assert got == pytest.approx(expect, rel=0.15)

    def test_amplitude_scales_with_power(self, rng):
        ps1 = PowerSpectrum(sigma8=0.3)
        ps2 = PowerSpectrum(sigma8=0.6)
        d1 = gaussian_density_field(ps1, 8, 100.0,
                                    np.random.default_rng(3))
        d2 = gaussian_density_field(ps2, 8, 100.0,
                                    np.random.default_rng(3))
        assert np.allclose(d2, 2.0 * d1, rtol=1e-10)


class TestDisplacementField:
    def test_shapes(self, rng):
        ps = PowerSpectrum()
        delta, psi = displacement_field(ps, 8, 100.0, rng)
        assert delta.shape == (8, 8, 8)
        assert psi.shape == (8, 8, 8, 3)

    def test_continuity_relation(self, rng):
        """div psi = -delta (linear continuity), checked spectrally."""
        ps = PowerSpectrum()
        ngrid, box = 16, 100.0
        delta, psi = displacement_field(ps, ngrid, box, rng)
        kx, ky, kz = grid_wavenumbers(ngrid, box)
        div_k = (1j * kx * np.fft.fftn(psi[..., 0])
                 + 1j * ky * np.fft.fftn(psi[..., 1])
                 + 1j * kz * np.fft.fftn(psi[..., 2]))
        div = np.fft.ifftn(div_k).real
        assert np.allclose(div, -delta, atol=1e-8 * np.abs(delta).max())

    def test_displacement_is_curl_free(self, rng):
        """psi = grad(phi): its curl must vanish (checked spectrally)."""
        ps = PowerSpectrum()
        ngrid, box = 16, 100.0
        _, psi = displacement_field(ps, ngrid, box, rng)
        kx, ky, kz = grid_wavenumbers(ngrid, box)
        fx = np.fft.fftn(psi[..., 0])
        fy = np.fft.fftn(psi[..., 1])
        curl_z = np.fft.ifftn(1j * kx * fy - 1j * ky * fx).real
        assert np.abs(curl_z).max() < 1e-8 * np.abs(psi).max()
