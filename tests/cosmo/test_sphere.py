"""Sphere-carving tests: geometry, mass budget, the paper's region."""

import numpy as np
import pytest

from repro.cosmo.cosmology import SCDM
from repro.cosmo.sphere import carve_sphere
from repro.cosmo.zeldovich import ZeldovichIC


@pytest.fixture(scope="module")
def ic():
    return ZeldovichIC(box=100.0, ngrid=20, seed=5)


class TestCarveSphere:
    def test_selection_count_matches_volume_fraction(self, ic):
        """N_sphere / N_box ~ (pi/6) for a sphere inscribed in the box."""
        region = carve_sphere(ic, radius=50.0, z_init=24.0)
        frac = region.n_particles / ic.n_particles
        assert frac == pytest.approx(np.pi / 6.0, rel=0.02)

    def test_total_mass_budget(self, ic):
        """Selected mass ~ rho_m * (4/3) pi R^3."""
        region = carve_sphere(ic, radius=50.0, z_init=24.0)
        expect = (SCDM.mean_matter_density()
                  * 4.0 / 3.0 * np.pi * 50.0**3)
        assert region.total_mass == pytest.approx(expect, rel=0.02)

    def test_positions_roughly_spherical(self, ic):
        """At z=24 displacements are small: physical radius ~ a R."""
        region = carve_sphere(ic, radius=50.0, z_init=24.0)
        r = np.sqrt(np.einsum("ij,ij->i", region.pos, region.pos))
        a = 1.0 / 25.0
        assert r.max() < a * 50.0 * 1.2
        assert np.percentile(r, 99) > a * 50.0 * 0.8

    def test_uniform_particle_mass(self, ic):
        region = carve_sphere(ic, radius=50.0, z_init=24.0)
        assert np.all(region.mass == region.mass[0])
        assert region.mass[0] == pytest.approx(ic.particle_mass)

    def test_smaller_radius_fewer_particles(self, ic):
        big = carve_sphere(ic, radius=50.0, z_init=24.0)
        small = carve_sphere(ic, radius=25.0, z_init=24.0)
        assert small.n_particles < big.n_particles
        assert small.n_particles == pytest.approx(
            big.n_particles / 8.0, rel=0.15)

    def test_sphere_must_fit(self, ic):
        with pytest.raises(ValueError):
            carve_sphere(ic, radius=60.0, z_init=24.0)

    def test_radius_positive(self, ic):
        with pytest.raises(ValueError):
            carve_sphere(ic, radius=0.0, z_init=24.0)

    def test_metadata(self, ic):
        region = carve_sphere(ic, radius=40.0, z_init=24.0)
        assert region.radius_comoving == 40.0
        assert region.z_init == 24.0
