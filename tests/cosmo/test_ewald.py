"""Ewald periodic-gravity tests: the classic validation battery."""

import numpy as np
import pytest

from repro.cosmo.ewald import (EwaldCorrectionTable,
                               PeriodicDirectSummation, ewald_kernels,
                               minimum_image)


class TestKernels:
    def test_short_range_limit(self):
        """Close pairs feel the bare Newtonian kernel."""
        d = np.array([[0.01, 0.0, 0.0]])
        g, psi = ewald_kernels(d, 1.0)
        assert g[0, 0] == pytest.approx(1.0 / 0.01**2, rel=1e-4)
        # psi = 1/r + lattice constant
        assert psi[0] - 100.0 == pytest.approx(-2.837297, abs=1e-3)

    def test_alpha_independence(self):
        """The split is exact: results cannot depend on alpha."""
        d = np.array([[0.3, 0.1, -0.2], [0.45, -0.4, 0.05]])
        ref_g, ref_p = ewald_kernels(d, 1.0, alpha=2.0, nreal=4, nk=5)
        for a in (1.5, 3.0):
            g, p = ewald_kernels(d, 1.0, alpha=a, nreal=4, nk=5)
            assert np.allclose(g, ref_g, rtol=1e-9)
            assert np.allclose(p, ref_p, rtol=1e-9)

    def test_symmetry_points_zero_force(self):
        """Force vanishes at the body center and face centers."""
        pts = np.array([[0.5, 0.5, 0.5], [0.5, 0.0, 0.0],
                        [0.5, 0.5, 0.0]])
        g, _ = ewald_kernels(pts, 1.0)
        assert np.abs(g).max() < 1e-10

    def test_periodicity(self):
        d = np.array([[0.3, -0.2, 0.1]])
        g1, p1 = ewald_kernels(d, 1.0)
        g2, p2 = ewald_kernels(d + np.array([[1.0, -2.0, 3.0]]), 1.0)
        assert np.allclose(g1, g2, atol=1e-9)
        assert np.allclose(p1, p2, atol=1e-9)

    def test_antisymmetry(self):
        d = np.array([[0.31, -0.17, 0.22]])
        g1, p1 = ewald_kernels(d, 1.0)
        g2, p2 = ewald_kernels(-d, 1.0)
        assert np.allclose(g1, -g2)
        assert p1[0] == pytest.approx(p2[0])

    def test_madelung_constant(self):
        """NaCl Madelung constant 1.747565 from the 8-site cubic cell
        (kernels are linear in 'mass', so signed charges work)."""
        pos, q = [], []
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    pos.append([i / 2, j / 2, k / 2])
                    q.append((-1.0) ** (i + j + k))
        pos, q = np.array(pos), np.array(q)
        # self-lattice constant: psi(r) - 1/r as r -> 0
        eps = np.array([[1e-4, 0, 0]])
        _, p0 = ewald_kernels(eps, 1.0, nreal=4, nk=6)
        phi = q[0] * (p0[0] - 1e4)
        for j in range(1, 8):
            _, pj = ewald_kernels((pos[j] - pos[0])[None], 1.0,
                                  nreal=4, nk=6)
            phi += q[j] * pj[0]
        madelung = -phi * 0.5  # nearest-neighbour spacing 1/2
        assert madelung == pytest.approx(1.747565, abs=2e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ewald_kernels(np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            ewald_kernels(np.zeros((2, 3)), 0.0)


class TestMinimumImage:
    def test_wrap(self):
        d = np.array([[0.7, -0.6, 0.2]])
        w = minimum_image(d, 1.0)
        assert np.allclose(w, [[-0.3, 0.4, 0.2]])

    def test_idempotent(self, rng):
        d = rng.uniform(-3, 3, (50, 3))
        w = minimum_image(d, 1.0)
        assert np.allclose(minimum_image(w, 1.0), w)
        assert np.all(np.abs(w) <= 0.5 + 1e-12)


class TestCorrectionTable:
    def test_matches_exact_kernels(self, rng):
        table = EwaldCorrectionTable(1.0, n=24)
        d = minimum_image(rng.uniform(-0.5, 0.5, (50, 3)), 1.0)
        gc, pc = table.correction(d)
        g_ex, p_ex = ewald_kernels(d, 1.0)
        r2 = np.einsum("ij,ij->i", d, d)
        r = np.sqrt(r2)
        bare_g = d / (r2 * r)[:, None]
        bare_p = 1.0 / r
        # interpolation error small relative to the typical force scale
        scale = np.abs(g_ex).max()
        assert np.abs((gc + bare_g) - g_ex).max() < 2e-3 * scale
        assert np.abs((pc + bare_p) - p_ex).max() < 1e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            EwaldCorrectionTable(0.0)
        with pytest.raises(ValueError):
            EwaldCorrectionTable(1.0, n=1)


class TestPeriodicDirect:
    @pytest.fixture(scope="class")
    def solver(self):
        return PeriodicDirectSummation(box=1.0)

    def test_lattice_equilibrium(self, solver):
        """A perfect lattice is a (unstable) equilibrium: forces ~ 0
        up to table-interpolation error."""
        edge = (np.arange(4) + 0.5) / 4
        gx, gy, gz = np.meshgrid(edge, edge, edge, indexing="ij")
        pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)
        acc, pot = solver.accelerations(pos, np.ones(64), 0.0)
        # typical pair force scale at the lattice spacing
        scale = 1.0 / (1.0 / 4.0) ** 2
        assert np.abs(acc).max() < 5e-4 * scale
        assert pot.std() < 1e-10  # uniform potential by symmetry

    def test_momentum_conserved(self, solver, rng):
        pos = rng.uniform(0, 1, (60, 3))
        mass = rng.uniform(0.5, 1.5, 60)
        acc, _ = solver.accelerations(pos, mass, 0.01)
        p = (mass[:, None] * acc).sum(axis=0)
        assert np.abs(p).max() < 1e-10 * np.abs(acc).max()

    def test_matches_exact_ewald(self, solver, rng):
        pos = rng.uniform(0, 1, (30, 3))
        mass = rng.uniform(0.5, 1.5, 30)
        acc, _ = solver.accelerations(pos, mass, 0.0)
        d = pos[1:] - pos[0]
        g, _ = ewald_kernels(d, 1.0, nreal=4, nk=5)
        exact = (mass[1:, None] * g).sum(axis=0)
        assert np.linalg.norm(acc[0] - exact) < 2e-3 * np.linalg.norm(
            exact) + 1e-3

    def test_translation_invariance(self, solver, rng):
        """Periodic forces are invariant under a global shift."""
        pos = rng.uniform(0, 1, (40, 3))
        mass = rng.uniform(0.5, 1.5, 40)
        a1, _ = solver.accelerations(pos, mass, 0.01)
        a2, _ = solver.accelerations((pos + 0.37) % 1.0, mass, 0.01)
        assert np.allclose(a1, a2, atol=1e-4 * np.abs(a1).max())

    def test_tile_invariance(self, rng):
        pos = rng.uniform(0, 1, (25, 3))
        mass = np.ones(25)
        big = PeriodicDirectSummation(box=1.0)
        small = PeriodicDirectSummation(box=1.0, tile=64)
        a1, p1 = big.accelerations(pos, mass, 0.01)
        a2, p2 = small.accelerations(pos, mass, 0.01)
        assert np.allclose(a1, a2, rtol=1e-12)
        assert np.allclose(p1, p2, rtol=1e-12)

    def test_box_mismatch_rejected(self):
        t = EwaldCorrectionTable(2.0, n=4)
        with pytest.raises(ValueError):
            PeriodicDirectSummation(box=1.0, table=t)
