"""Press--Schechter mass-function tests."""

import numpy as np
import pytest

from repro.cosmo.cosmology import Cosmology
from repro.cosmo.massfunction import DELTA_C, PressSchechter
from repro.cosmo.power import PowerSpectrum


@pytest.fixture(scope="module")
def ps():
    return PressSchechter()


class TestScales:
    def test_lagrangian_radius_mass_relation(self, ps):
        """R(M) inverts M = (4/3) pi rho R^3."""
        m = 1e14
        r = float(ps.lagrangian_radius(np.array([m]))[0])
        rho = ps.cosmology.mean_matter_density()
        assert 4.0 / 3.0 * np.pi * rho * r**3 == pytest.approx(m,
                                                               rel=1e-9)

    def test_sigma_decreases_with_mass(self, ps):
        m = np.array([1e12, 1e13, 1e14, 1e15])
        s = ps.sigma_m(m)
        assert np.all(np.diff(s) < 0)

    def test_nu_grows_with_mass_and_redshift(self, ps):
        m = np.array([1e13])
        assert float(ps.nu(m, 0.0)[0]) < float(ps.nu(m, 2.0)[0])
        assert float(ps.nu(np.array([1e12]))[0]) < float(ps.nu(np.array([1e15]))[0])

    def test_characteristic_mass_order(self, ps):
        """M* for SCDM sigma8=0.6 sits at group scale, ~1e13-1e14."""
        mstar = ps.characteristic_mass()
        assert 1e12 < mstar < 1e14
        assert float(ps.nu(np.array([mstar]))[0]) == pytest.approx(1.0,
                                                                abs=0.01)

    def test_characteristic_mass_falls_with_z(self, ps):
        assert ps.characteristic_mass(2.0) < ps.characteristic_mass(0.0)


class TestAbundance:
    def test_exponential_cutoff(self, ps):
        """Above M*, abundance falls faster than any power."""
        m = np.array([1e14, 1e15, 1e16])
        dn = ps.dn_dlnm(m)
        assert dn[1] / dn[0] < 0.2
        assert dn[2] / dn[1] < dn[1] / dn[0]

    def test_mass_integral_accounts_for_all_matter(self, ps):
        """With the famous factor of 2 included (as here), PS places
        *all* matter in halos: the mass integral converges to rho_m.
        Over [1e8, 1e17] M_sun most, but not quite all, of it is
        captured (the remainder sits in still-smaller objects)."""
        lnm = np.linspace(np.log(1e8), np.log(1e17), 120)
        m = np.exp(lnm)
        rho_in_halos = np.trapezoid(m * ps.dn_dlnm(m), lnm)
        rho = ps.cosmology.mean_matter_density()
        assert 0.7 * rho < rho_in_halos < 1.0 * rho

    def test_number_in_sphere_scales_with_volume(self, ps):
        n1 = ps.number_in_sphere(1e13, 1e15, 25.0)
        n2 = ps.number_in_sphere(1e13, 1e15, 50.0)
        assert n2 == pytest.approx(8.0 * n1, rel=1e-9)

    def test_abundance_grows_with_time(self, ps):
        m = np.array([1e14])
        assert float(ps.dn_dlnm(m, 0.0)[0]) > float(ps.dn_dlnm(m, 2.0)[0])

    def test_higher_sigma8_more_big_halos(self):
        lo = PressSchechter(PowerSpectrum(sigma8=0.4))
        hi = PressSchechter(PowerSpectrum(sigma8=0.8))
        m = np.array([1e15])
        assert float(hi.dn_dlnm(m)[0]) > float(lo.dn_dlnm(m)[0])

    def test_validation(self, ps):
        with pytest.raises(ValueError):
            ps.dn_dlnm(np.array([-1.0]))
        with pytest.raises(ValueError):
            ps.number_in_sphere(1e15, 1e13, 50.0)

    def test_delta_c_value(self):
        assert DELTA_C == pytest.approx(1.686, abs=1e-3)
