"""Particle-mesh solver tests."""

import numpy as np
import pytest

from repro.cosmo.ewald import ewald_kernels
from repro.cosmo.pm import ParticleMesh


@pytest.fixture(scope="module")
def pm():
    return ParticleMesh(box=1.0, ngrid=32)


class TestDeposit:
    def test_mass_conserved(self, pm, rng):
        pos = rng.uniform(0, 1, (200, 3))
        mass = rng.uniform(0.5, 1.5, 200)
        rho = pm.density(pos, mass)
        assert rho.sum() * pm.cell**3 == pytest.approx(mass.sum(),
                                                       rel=1e-12)

    def test_particle_at_cell_center_single_cell(self, pm):
        pos = np.array([[pm.cell * 3.5, pm.cell * 4.5, pm.cell * 5.5]])
        rho = pm.density(pos, np.array([2.0]))
        assert rho[3, 4, 5] == pytest.approx(2.0 / pm.cell**3)
        assert np.count_nonzero(rho) == 1

    def test_wrapping(self, pm, rng):
        pos = rng.uniform(0, 1, (50, 3))
        mass = np.ones(50)
        a = pm.density(pos, mass)
        b = pm.density(pos + 3.0, mass)
        assert np.allclose(a, b)

    def test_validation(self, pm):
        with pytest.raises(ValueError):
            pm.density(np.zeros((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            pm.density(np.zeros((3, 3)), np.ones(4))
        with pytest.raises(ValueError):
            ParticleMesh(box=0.0, ngrid=8)
        with pytest.raises(ValueError):
            ParticleMesh(box=1.0, ngrid=2)


class TestForces:
    def test_two_body_matches_ewald_at_large_separation(self, pm):
        pos = np.array([[0.2, 0.5, 0.5], [0.5, 0.5, 0.5]])
        mass = np.array([1.0, 1.0])
        acc, _ = pm.accelerations(pos, mass)
        g, _ = ewald_kernels(np.array([[0.3, 0.0, 0.0]]), 1.0)
        assert acc[0, 0] == pytest.approx(g[0, 0], rel=0.05)
        assert acc[1, 0] == pytest.approx(-g[0, 0], rel=0.05)

    def test_force_smoothed_below_mesh_scale(self):
        """Separations under ~2 cells feel a weaker-than-Newtonian
        force -- the PM 'softening' (tested without deconvolution,
        which intentionally re-sharpens and can ring near the mesh
        scale)."""
        pm = ParticleMesh(box=1.0, ngrid=32, deconvolve=False)
        d = 1.5 * pm.cell
        pos = np.array([[0.5 - d / 2, 0.5, 0.5], [0.5 + d / 2, 0.5, 0.5]])
        acc, _ = pm.accelerations(pos, np.ones(2))
        assert abs(acc[0, 0]) < 1.0 / d**2

    def test_momentum_conserved(self, pm, rng):
        pos = rng.uniform(0, 1, (300, 3))
        mass = rng.uniform(0.5, 1.5, 300)
        acc, _ = pm.accelerations(pos, mass)
        p = np.abs((mass[:, None] * acc).sum(axis=0)).max()
        assert p < 1e-10 * np.abs(acc).max()

    def test_uniform_lattice_zero_force(self):
        pm = ParticleMesh(box=1.0, ngrid=16)
        edge = (np.arange(16) + 0.5) / 16
        gx, gy, gz = np.meshgrid(edge, edge, edge, indexing="ij")
        pos = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)
        acc, pot = pm.accelerations(pos, np.ones(16**3))
        assert np.abs(acc).max() < 1e-9
        assert pot.std() < 1e-9

    def test_antisymmetry_of_pair(self, pm, rng):
        pos = rng.uniform(0.2, 0.8, (2, 3))
        acc, _ = pm.accelerations(pos, np.ones(2))
        assert np.allclose(acc[0], -acc[1], atol=1e-12)

    def test_mesh_potential_zero_mean(self, pm, rng):
        """k = 0 zeroing subtracts the background: the solved mesh
        potential has exactly zero mean.  (The *particle-sampled*
        potential is biased negative -- particles sit in their own
        wells -- which is physics, not a solver defect.)"""
        pos = rng.uniform(0, 1, (2000, 3))
        rho = pm.density(pos, np.full(2000, 1.0 / 2000))
        phi = pm.potential_mesh(rho)
        assert abs(phi.mean()) < 1e-12 * np.abs(phi).max()

    def test_finer_mesh_better_two_body_force(self):
        pos = np.array([[0.35, 0.5, 0.5], [0.55, 0.5, 0.5]])
        g, _ = ewald_kernels(np.array([[0.2, 0.0, 0.0]]), 1.0)
        errs = []
        for ngrid in (16, 48):
            pm = ParticleMesh(box=1.0, ngrid=ngrid)
            acc, _ = pm.accelerations(pos, np.ones(2))
            errs.append(abs(acc[0, 0] - g[0, 0]) / abs(g[0, 0]))
        assert errs[1] < errs[0]

    def test_both_deconvolution_modes_near_ewald(self):
        """With and without CIC deconvolution, the two-body force at
        several mesh cells' separation stays within a few percent of
        the exact periodic value (they bracket it: the raw mode
        under-responds at high k, deconvolution slightly overshoots
        through the finite-difference gradient)."""
        pos = np.array([[0.3, 0.5, 0.5], [0.6, 0.5, 0.5]])
        g, _ = ewald_kernels(np.array([[0.3, 0.0, 0.0]]), 1.0)
        for dec in (False, True):
            pmx = ParticleMesh(box=1.0, ngrid=16, deconvolve=dec)
            a, _ = pmx.accelerations(pos, np.ones(2))
            assert a[0, 0] == pytest.approx(g[0, 0], rel=0.05)
