"""Background cosmology tests: the paper's SCDM and the general model."""

import numpy as np
import pytest

from repro.cosmo.cosmology import Cosmology, SCDM


class TestSCDM:
    def test_is_eds(self):
        assert SCDM.is_eds
        assert SCDM.h == 0.5
        assert SCDM.H0 == 50.0

    def test_age_of_universe(self):
        """EdS, h = 0.5: t0 = 2/(3 H0) ~ 13.0 Gyr."""
        from repro.cosmo.units import GYR_PER_TIME_UNIT
        t0 = SCDM.age(0.0)
        assert t0 == pytest.approx(2.0 / (3.0 * 50.0))
        assert t0 * GYR_PER_TIME_UNIT == pytest.approx(13.0, abs=0.1)

    def test_age_at_z24(self):
        """t(z) = t0 (1+z)^{-3/2}: the paper's start is t0/125."""
        assert SCDM.age(24.0) == pytest.approx(SCDM.age(0.0) / 125.0)

    def test_a_of_t_inverts_age(self):
        for z in (0.0, 1.0, 24.0):
            a = float(SCDM.a_of_z(z))
            assert SCDM.a_of_t(SCDM.age(z)) == pytest.approx(a, rel=1e-10)

    def test_growth_is_scale_factor(self):
        z = np.array([0.0, 1.0, 24.0])
        assert np.allclose(SCDM.growth_factor(z), 1.0 / (1.0 + z))

    def test_growth_rate_is_one(self):
        assert float(SCDM.growth_rate(3.0)) == 1.0

    def test_hubble_scaling(self):
        """EdS: H(z) = H0 (1+z)^{3/2}."""
        assert float(SCDM.H(SCDM.a_of_z(24.0))) == pytest.approx(
            50.0 * 25.0**1.5)

    def test_mean_density_matches_paper_particle_mass(self):
        """rho_m * V(50 Mpc sphere) / 2,159,038 ~ 1.7e10 M_sun."""
        rho = SCDM.mean_matter_density()
        m = rho * (4.0 / 3.0) * np.pi * 50.0**3 / 2_159_038
        assert m == pytest.approx(1.7e10, rel=0.02)


class TestGeneralCosmology:
    def test_lcdm_growth_suppressed(self):
        """Lambda suppresses growth: D_LCDM(z)/D_LCDM(0) > a at z > 0
        ... i.e. normalised growth at high z exceeds the EdS value."""
        lcdm = Cosmology(h=0.7, omega_m=0.3, omega_l=0.7)
        d = float(lcdm.growth_factor(2.0))
        assert d > 1.0 / 3.0  # EdS would give exactly a = 1/3

    def test_lcdm_age_exceeds_eds(self):
        lcdm = Cosmology(h=0.5, omega_m=0.3, omega_l=0.7)
        assert lcdm.age(0.0) > SCDM.age(0.0)

    def test_e_function_at_a1(self):
        c = Cosmology(h=0.7, omega_m=0.3, omega_l=0.7)
        assert float(c.E(1.0)) == pytest.approx(1.0)

    def test_growth_normalised_at_z0(self):
        c = Cosmology(h=0.7, omega_m=0.3, omega_l=0.7)
        assert float(c.growth_factor(0.0)) == pytest.approx(1.0, rel=1e-6)

    def test_growth_rate_omega055(self):
        c = Cosmology(h=0.7, omega_m=0.3, omega_l=0.7)
        f0 = float(c.growth_rate(0.0))
        assert f0 == pytest.approx(0.3**0.55, rel=1e-6)

    def test_a_of_t_inverts_age_lcdm(self):
        c = Cosmology(h=0.7, omega_m=0.3, omega_l=0.7)
        t = c.age(1.0)
        assert c.a_of_t(t) == pytest.approx(0.5, rel=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cosmology(h=0.0)
        with pytest.raises(ValueError):
            Cosmology(omega_m=0.0)

    def test_a_of_t_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SCDM.a_of_t(0.0)
