"""Simulation-driver tests."""

import numpy as np
import pytest

from repro.core import DirectSummation, TreeCode
from repro.cosmo.cosmology import SCDM
from repro.cosmo.sphere import carve_sphere
from repro.cosmo.zeldovich import ZeldovichIC
from repro.sim.models import plummer_model
from repro.sim.simulation import Simulation
from repro.sim.timestep import paper_schedule


@pytest.fixture
def small_plummer(rng):
    pos, vel, mass = plummer_model(300, rng)
    # G = 1 code units for the isolated model
    return Simulation(pos=pos, vel=vel, mass=mass, eps=0.02, G=1.0,
                      force=DirectSummation())


class TestBasics:
    def test_energy_conserved_isolated(self, small_plummer):
        sim = small_plummer
        _, _, e0 = sim.energies()
        for _ in range(50):
            sim.step(0.005)
        _, _, e1 = sim.energies()
        assert abs(e1 - e0) / abs(e0) < 5e-3

    def test_virial_plummer(self, small_plummer):
        """A sampled equilibrium Plummer starts near virial: -2K/W ~ 1."""
        k, w, _ = small_plummer.energies()
        assert -2.0 * k / w == pytest.approx(1.0, abs=0.15)

    def test_momentum_drift_small(self, small_plummer):
        sim = small_plummer
        p0 = sim.momentum()
        for _ in range(20):
            sim.step(0.01)
        drift = np.linalg.norm(sim.momentum() - p0)
        scale = np.sum(sim.mass * np.linalg.norm(sim.vel, axis=1))
        assert drift < 1e-8 * scale  # direct forces are antisymmetric

    def test_history_recorded(self, small_plummer):
        sim = small_plummer
        sim.run([0.01] * 5)
        assert len(sim.history) == 5
        assert sim.history[-1].step == 5
        assert sim.t == pytest.approx(0.05)
        assert all(r.interactions == 300 * 300 for r in sim.history)

    def test_callback_invoked(self, small_plummer):
        seen = []
        small_plummer.run([0.01] * 3,
                          callback=lambda s, r: seen.append(r.step))
        assert seen == [1, 2, 3]

    def test_treecode_stats_flow_through(self, rng):
        pos, vel, mass = plummer_model(500, rng)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.02, G=1.0,
                         force=TreeCode(theta=0.7, n_crit=64))
        sim.run([0.01] * 3)
        assert sim.total_interactions > 0
        assert sim.mean_list_length > 0
        assert sim.history[0].n_groups > 1

    def test_validation(self, rng):
        pos, vel, mass = plummer_model(10, rng)
        with pytest.raises(ValueError):
            Simulation(pos=pos, vel=vel[:5], mass=mass, eps=0.1)
        with pytest.raises(ValueError):
            Simulation(pos=pos, vel=vel, mass=mass[:5], eps=0.1)
        with pytest.raises(ValueError):
            Simulation(pos=pos, vel=vel, mass=mass, eps=-1.0)


class TestCosmologicalSphere:
    def test_from_sphere_and_expansion(self):
        """A short scaled paper run: the sphere must expand (Hubble
        flow) and develop structure (interaction lists lengthen)."""
        ic = ZeldovichIC(box=100.0, ngrid=12, seed=3)
        region = carve_sphere(ic, radius=50.0, z_init=24.0)
        sim = Simulation.from_sphere(
            region, force=TreeCode(theta=0.8, n_crit=64))
        sim.t = SCDM.age(24.0)
        r0 = np.median(np.linalg.norm(sim.pos, axis=1))
        sim.run(paper_schedule(SCDM, 24.0, 4.0, 10))
        r1 = np.median(np.linalg.norm(sim.pos, axis=1))
        assert r1 > 2.0 * r0  # a grows 5x from z=24 to z=4

    def test_default_eps_reasonable(self):
        ic = ZeldovichIC(box=100.0, ngrid=10, seed=3)
        region = carve_sphere(ic, radius=50.0, z_init=24.0)
        sim = Simulation.from_sphere(region)
        # a few percent of the interparticle spacing at z=24 (~0.4 Mpc
        # physical for this loading)
        assert 0.001 < sim.eps < 0.2


class TestAdaptiveRun:
    def test_reaches_t_end_exactly(self, rng):
        from repro.sim.timestep import AccelerationTimestep
        pos, vel, mass = plummer_model(150, rng)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.05, G=1.0,
                         force=DirectSummation())
        policy = AccelerationTimestep(eta=0.3, eps=0.05, dt_max=0.05)
        recs = sim.run_adaptive(0.5, policy)
        assert sim.t == pytest.approx(0.5, rel=1e-12)
        assert len(recs) == len(sim.history)

    def test_adaptive_conserves_energy(self, rng):
        from repro.sim.timestep import AccelerationTimestep
        pos, vel, mass = plummer_model(150, rng)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.05, G=1.0,
                         force=DirectSummation())
        _, _, e0 = sim.energies()
        sim.run_adaptive(0.5, AccelerationTimestep(eta=0.2, eps=0.05,
                                                   dt_max=0.05))
        _, _, e1 = sim.energies()
        assert abs((e1 - e0) / e0) < 5e-3

    def test_validation(self, rng):
        from repro.sim.timestep import AccelerationTimestep
        pos, vel, mass = plummer_model(20, rng)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.05, G=1.0,
                         force=DirectSummation())
        with pytest.raises(ValueError):
            sim.run_adaptive(-1.0, AccelerationTimestep())
        with pytest.raises(RuntimeError):
            sim.run_adaptive(10.0, AccelerationTimestep(
                eta=1e-9, eps=1e-12, dt_max=1e-9), max_steps=5)
