"""Physics validation against closed-form results.

These are the classical N-body code acceptance tests: if any of these
fail, no performance number from the code means anything.
"""

import numpy as np
import pytest

from repro.core import DirectSummation, TreeCode
from repro.sim.models import cold_lattice_sphere, plummer_model
from repro.sim.simulation import Simulation


class TestTopHatCollapse:
    def test_collapse_time(self):
        """A cold uniform sphere collapses at
        t_ff = pi/2 * sqrt(R^3 / (2 G M)): the minimum of its radius
        must occur near that time (softening keeps it finite)."""
        pos, vel, mass = cold_lattice_sphere(12, total_mass=1.0,
                                             radius=1.0)
        t_ff = np.pi / 2.0 * np.sqrt(1.0 / 2.0)  # G = M = R = 1
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.02, G=1.0,
                         force=TreeCode(theta=0.5, n_crit=64))
        n_steps = 200
        dt = 1.3 * t_ff / n_steps
        r90_history = []
        for _ in range(n_steps):
            sim.step(dt)
            r = np.sqrt(np.einsum("ij,ij->i", sim.pos, sim.pos))
            r90_history.append(np.percentile(r, 90))
        t_min = dt * (1 + int(np.argmin(r90_history)))
        assert t_min == pytest.approx(t_ff, rel=0.10)

    def test_sphere_stays_spherical_before_collapse(self):
        """Homogeneous collapse preserves shape: axis ratios stay ~1
        through the first half of the collapse."""
        pos, vel, mass = cold_lattice_sphere(10)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.02, G=1.0,
                         force=TreeCode(theta=0.5, n_crit=64))
        t_ff = np.pi / 2.0 * np.sqrt(0.5)
        for _ in range(50):
            sim.step(0.5 * t_ff / 50)
        extents = sim.pos.max(axis=0) - sim.pos.min(axis=0)
        assert extents.max() / extents.min() < 1.15


class TestTimeReversal:
    def test_leapfrog_is_time_reversible(self, rng):
        """Run forward, flip velocities, run back: positions must
        return to the start to near round-off (leapfrog symmetry).
        Requires a deterministic force -- direct summation."""
        pos, vel, mass = plummer_model(100, rng)
        sim = Simulation(pos=pos.copy(), vel=vel.copy(), mass=mass,
                         eps=0.05, G=1.0, force=DirectSummation())
        n, dt = 50, 0.01
        for _ in range(n):
            sim.step(dt)
        sim.vel *= -1.0
        sim._integrator._acc = None  # re-prime after the flip
        for _ in range(n):
            sim.step(dt)
        scale = np.abs(pos).max()
        assert np.max(np.abs(sim.pos - pos)) < 1e-9 * scale

    def test_treecode_run_reversibility_is_approximate(self, rng):
        """With tree forces the reversal error is set by the force
        error, not round-off -- still small over a short run."""
        pos, vel, mass = plummer_model(300, rng)
        sim = Simulation(pos=pos.copy(), vel=vel.copy(), mass=mass,
                         eps=0.05, G=1.0,
                         force=TreeCode(theta=0.4, n_crit=64))
        n, dt = 20, 0.01
        for _ in range(n):
            sim.step(dt)
        sim.vel *= -1.0
        sim._integrator._acc = None
        for _ in range(n):
            sim.step(dt)
        scale = np.abs(pos).max()
        assert np.max(np.abs(sim.pos - pos)) < 1e-2 * scale


class TestTwoBody:
    def test_kepler_ellipse_conserved(self):
        """Two bodies on an eccentric orbit: semi-major axis (energy)
        and eccentricity (angular momentum) must hold over 3 orbits."""
        m = np.array([1.0, 1e-3])
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        vel = np.array([[0.0, 0, 0], [0.0, 0.8, 0.0]])
        sim = Simulation(pos=pos, vel=vel, mass=m, eps=0.0, G=1.0,
                         force=DirectSummation())
        # specific orbital energy of the light body
        def elements():
            r = sim.pos[1] - sim.pos[0]
            v = sim.vel[1] - sim.vel[0]
            e = 0.5 * v @ v - 1.0 / np.linalg.norm(r)
            a = -0.5 / e
            l = np.linalg.norm(np.cross(r, v))
            ecc = np.sqrt(max(0.0, 1.0 + 2.0 * e * l * l))
            return a, ecc

        a0, e0 = elements()
        period = 2 * np.pi * a0**1.5
        steps = 3000
        for _ in range(steps):
            sim.step(3 * period / steps)
        a1, e1 = elements()
        assert a1 == pytest.approx(a0, rel=2e-3)
        assert e1 == pytest.approx(e0, abs=5e-3)
