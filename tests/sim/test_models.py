"""Particle-model sampler tests."""

import numpy as np
import pytest

from repro.sim.models import (cold_lattice_sphere, hernquist_model,
                              plummer_model, uniform_sphere)


class TestPlummer:
    def test_shapes_and_mass(self, rng):
        pos, vel, mass = plummer_model(500, rng, total_mass=2.0)
        assert pos.shape == (500, 3) and vel.shape == (500, 3)
        assert mass.sum() == pytest.approx(2.0)

    def test_half_mass_radius(self, rng):
        """Plummer half-mass radius = a / sqrt(2^(2/3) - 1) ~ 1.3 a."""
        pos, _, _ = plummer_model(20000, rng, scale_radius=1.0)
        r = np.sort(np.linalg.norm(pos, axis=1))
        r_half = r[len(r) // 2]
        expect = 1.0 / np.sqrt(2.0 ** (2.0 / 3.0) - 1.0)
        assert r_half == pytest.approx(expect, rel=0.05)

    def test_virial_velocities(self, rng):
        """Sampled speeds never exceed escape speed; mean-square speed
        matches the virial theorem: <v^2> = -2E_kin_specific ... for
        Plummer <v^2> = (3 pi / 64) * 2 * GM/a x ... check 2K ~ -W via
        the known K = (3 pi / 64) GM^2/a."""
        n = 20000
        pos, vel, mass = plummer_model(n, rng, virial=True)
        k = 0.5 * np.sum(mass[:, None] * vel**2)
        expect_k = 3.0 * np.pi / 64.0
        assert k == pytest.approx(expect_k, rel=0.05)

    def test_cold_option(self, rng):
        _, vel, _ = plummer_model(100, rng, virial=False)
        assert np.allclose(vel, 0.0)

    def test_isotropy(self, rng):
        pos, _, _ = plummer_model(20000, rng)
        mean_dir = (pos / np.linalg.norm(pos, axis=1)[:, None]).mean(axis=0)
        assert np.linalg.norm(mean_dir) < 0.02

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            plummer_model(0, rng)


class TestHernquist:
    def test_half_mass_radius(self, rng):
        """Hernquist: M(r)/M = r^2/(r+a)^2 = 1/2 at r = a(1+sqrt(2))."""
        pos, _, _ = hernquist_model(20000, rng)
        r = np.sort(np.linalg.norm(pos, axis=1))
        r_half = r[len(r) // 2]
        assert r_half == pytest.approx(1.0 + np.sqrt(2.0), rel=0.05)

    def test_cuspier_than_plummer(self, rng):
        ph, _, _ = hernquist_model(20000, rng)
        pp, _, _ = plummer_model(20000, rng)
        inner_h = np.mean(np.linalg.norm(ph, axis=1) < 0.1)
        inner_p = np.mean(np.linalg.norm(pp, axis=1) < 0.1)
        assert inner_h > 2.0 * inner_p


class TestUniformSphere:
    def test_density_profile_flat(self, rng):
        pos, _, _ = uniform_sphere(20000, rng, radius=2.0)
        r = np.linalg.norm(pos, axis=1)
        assert r.max() <= 2.0
        # M(<r) ~ r^3
        frac_inner = np.mean(r < 1.0)
        assert frac_inner == pytest.approx(1.0 / 8.0, rel=0.1)


class TestColdLattice:
    def test_deterministic(self):
        a, _, _ = cold_lattice_sphere(8)
        b, _, _ = cold_lattice_sphere(8)
        assert np.array_equal(a, b)

    def test_inside_radius(self):
        pos, vel, mass = cold_lattice_sphere(10, radius=3.0)
        assert np.all(np.linalg.norm(pos, axis=1) <= 3.0)
        assert np.allclose(vel, 0.0)
        assert mass.sum() == pytest.approx(1.0)
