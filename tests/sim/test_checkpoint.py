"""Checkpoint/restart tests: a resumed run equals an uninterrupted one."""

import numpy as np
import pytest

from repro.core import DirectSummation, TreeCode
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.models import plummer_model
from repro.sim.simulation import Simulation


def _fresh(rng_seed=11, force=None):
    rng = np.random.default_rng(rng_seed)
    pos, vel, mass = plummer_model(200, rng)
    return Simulation(pos=pos, vel=vel, mass=mass, eps=0.02, G=1.0,
                      force=force if force is not None
                      else DirectSummation())


class TestRoundTrip:
    def test_state_preserved(self, tmp_path):
        sim = _fresh()
        sim.run([0.01] * 5)
        path = save_checkpoint(tmp_path / "ck.npz", sim)
        back = load_checkpoint(path, force=DirectSummation())
        assert np.array_equal(back.pos, sim.pos)
        assert np.array_equal(back.vel, sim.vel)
        assert np.array_equal(back.mass, sim.mass)
        assert back.t == sim.t
        assert back.eps == sim.eps
        assert back.G == sim.G

    def test_history_preserved(self, tmp_path):
        sim = _fresh()
        sim.run([0.01] * 4)
        path = save_checkpoint(tmp_path / "ck.npz", sim)
        back = load_checkpoint(path, force=DirectSummation())
        assert len(back.history) == 4
        assert back.total_interactions == sim.total_interactions
        assert [r.step for r in back.history] == [1, 2, 3, 4]

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        """10 straight steps == 5 steps + checkpoint + 5 steps."""
        full = _fresh()
        full.run([0.01] * 10)

        half = _fresh()
        half.run([0.01] * 5)
        path = save_checkpoint(tmp_path / "ck.npz", half)
        resumed = load_checkpoint(path, force=DirectSummation())
        resumed.run([0.01] * 5)

        assert np.allclose(resumed.pos, full.pos, rtol=1e-12, atol=1e-14)
        assert np.allclose(resumed.vel, full.vel, rtol=1e-12, atol=1e-14)
        assert resumed.total_interactions == full.total_interactions
        assert resumed.history[-1].step == 10

    def test_resume_with_different_backend(self, tmp_path):
        """A host run can resume on the emulated GRAPE (and vice
        versa) -- the checkpoint carries no solver state."""
        from repro.grape import GrapeBackend
        sim = _fresh()
        sim.run([0.01] * 2)
        path = save_checkpoint(tmp_path / "ck.npz", sim)
        resumed = load_checkpoint(
            path, force=TreeCode(theta=0.7, n_crit=64,
                                 backend=GrapeBackend()))
        resumed.run([0.01] * 2)
        assert len(resumed.history) == 4
        assert np.all(np.isfinite(resumed.pos))

    def test_version_rejected(self, tmp_path):
        sim = _fresh()
        path = save_checkpoint(tmp_path / "ck.npz", sim)
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_checkpoint(path)
