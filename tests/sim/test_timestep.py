"""Step-schedule tests."""

import numpy as np
import pytest

from repro.cosmo.cosmology import SCDM
from repro.sim.timestep import AccelerationTimestep, paper_schedule


class TestPaperSchedule:
    def test_999_steps_span_z24_to_0(self):
        dts = paper_schedule(SCDM, 24.0, 0.0, 999)
        assert len(dts) == 999
        assert dts.sum() == pytest.approx(SCDM.age(0.0) - SCDM.age(24.0))

    def test_step_size_about_13_myr(self):
        """The paper's plan: ~13.0 Gyr / ~1000 steps ~ 13 Myr each."""
        from repro.cosmo.units import GYR_PER_TIME_UNIT
        dts = paper_schedule(SCDM, 24.0, 0.0, 999)
        myr = float(dts[0]) * GYR_PER_TIME_UNIT * 1000.0
        assert myr == pytest.approx(13.0, rel=0.05)

    def test_equal_steps(self):
        dts = paper_schedule(SCDM, 24.0, 0.0, 10)
        assert np.allclose(dts, dts[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_schedule(SCDM, 24.0, 0.0, 0)
        with pytest.raises(ValueError):
            paper_schedule(SCDM, 0.0, 24.0, 10)


class TestAccelerationTimestep:
    def test_scaling(self):
        ts = AccelerationTimestep(eta=0.2, eps=0.04)
        acc = np.array([[4.0, 0.0, 0.0]])
        assert ts(acc) == pytest.approx(0.2 * np.sqrt(0.04 / 4.0))

    def test_uses_max_acceleration(self):
        ts = AccelerationTimestep(eta=1.0, eps=1.0)
        acc = np.array([[1.0, 0, 0], [100.0, 0, 0]])
        assert ts(acc) == pytest.approx(0.1)

    def test_clipping(self):
        ts = AccelerationTimestep(eta=1.0, eps=1.0, dt_max=0.05,
                                  dt_min=0.01)
        assert ts(np.array([[1e-8, 0, 0]])) == 0.05
        assert ts(np.array([[1e8, 0, 0]])) == 0.01

    def test_zero_acceleration_gives_max(self):
        ts = AccelerationTimestep(dt_max=2.0)
        assert ts(np.zeros((3, 3))) == 2.0


class TestScheduleSpacing:
    def test_loga_sums_to_span(self):
        dts = paper_schedule(SCDM, 24.0, 0.0, 40, spacing="loga")
        assert len(dts) == 40
        assert dts.sum() == pytest.approx(SCDM.age(0.0) - SCDM.age(24.0))

    def test_loga_early_steps_resolve_initial_expansion(self):
        """The whole point of log-a spacing: the first step is a small
        fraction of the initial age even with few total steps (the
        uniform-in-t plan's first step is ~4x the initial age at
        n=30, which blows up scaled collapse runs)."""
        t_i = SCDM.age(24.0)
        loga = paper_schedule(SCDM, 24.0, 0.0, 30, spacing="loga")
        uniform = paper_schedule(SCDM, 24.0, 0.0, 30, spacing="t")
        assert loga[0] < 0.5 * t_i
        assert uniform[0] > 2.0 * t_i

    def test_steps_increase_with_time(self):
        dts = paper_schedule(SCDM, 24.0, 0.0, 20, spacing="loga")
        assert np.all(np.diff(dts) > 0)

    def test_a_spacing(self):
        dts = paper_schedule(SCDM, 24.0, 0.0, 25, spacing="a")
        assert dts.sum() == pytest.approx(SCDM.age(0.0) - SCDM.age(24.0))
        assert dts[0] < dts[-1]

    def test_unknown_spacing(self):
        with pytest.raises(ValueError):
            paper_schedule(SCDM, 24.0, 0.0, 10, spacing="weird")
