"""Diagnostics tests."""

import numpy as np
import pytest

from repro.core import DirectSummation
from repro.sim.diagnostics import (EnergyLedger, interaction_totals,
                                   lagrangian_radii, virial_ratio)
from repro.sim.models import plummer_model, uniform_sphere
from repro.sim.simulation import Simulation


@pytest.fixture
def sim(rng):
    pos, vel, mass = plummer_model(200, rng)
    return Simulation(pos=pos, vel=vel, mass=mass, eps=0.02, G=1.0,
                      force=DirectSummation())


class TestEnergyLedger:
    def test_records_and_drift(self, sim):
        led = EnergyLedger.empty()
        led.record(sim)
        for _ in range(10):
            sim.step(0.01)
        led.record(sim)
        assert len(led.times) == 2
        assert led.max_relative_drift() < 0.01

    def test_empty_ledger_zero_drift(self):
        assert EnergyLedger.empty().max_relative_drift() == 0.0

    def test_total_is_sum(self, sim):
        led = EnergyLedger.empty()
        led.record(sim)
        assert led.total[0] == pytest.approx(led.kinetic[0]
                                             + led.potential[0])


class TestVirialRatio:
    def test_equilibrium_plummer_near_one(self, sim):
        assert virial_ratio(sim) == pytest.approx(1.0, abs=0.2)

    def test_cold_system_zero(self, rng):
        pos, vel, mass = uniform_sphere(100, rng)
        s = Simulation(pos=pos, vel=vel, mass=mass, eps=0.05, G=1.0,
                       force=DirectSummation())
        assert virial_ratio(s) == pytest.approx(0.0, abs=1e-12)


class TestLagrangianRadii:
    def test_uniform_sphere_radii(self, rng):
        pos, _, mass = uniform_sphere(50000, rng, radius=1.0)
        r10, r50, r90 = lagrangian_radii(pos, mass)
        # uniform: r_f = f^(1/3)
        assert r10 == pytest.approx(0.1 ** (1 / 3), rel=0.05)
        assert r50 == pytest.approx(0.5 ** (1 / 3), rel=0.03)
        assert r90 == pytest.approx(0.9 ** (1 / 3), rel=0.03)

    def test_monotone(self, rng):
        pos, _, mass = plummer_model(5000, rng)
        radii = lagrangian_radii(pos, mass, fractions=(0.25, 0.5, 0.75))
        assert radii[0] < radii[1] < radii[2]

    def test_invalid_fraction(self, rng):
        pos, _, mass = plummer_model(100, rng)
        with pytest.raises(ValueError):
            lagrangian_radii(pos, mass, fractions=(0.0,))


class TestInteractionTotals:
    def test_empty_run(self, sim):
        d = interaction_totals(sim)
        assert d["steps"] == 0 and d["interactions"] == 0

    def test_after_run(self, sim):
        sim.run([0.01] * 4)
        d = interaction_totals(sim)
        assert d["steps"] == 4
        assert d["interactions"] == 4 * 200 * 200
        assert d["interactions_per_step"] == 200 * 200
        assert d["wall_seconds_host"] > 0
