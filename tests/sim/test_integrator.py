"""Integrator tests: order, energy behaviour, closed-form orbits."""

import numpy as np
import pytest

from repro.cosmo.cosmology import SCDM
from repro.sim.integrator import ComovingLeapfrog, LeapfrogKDK


def _kepler_force(m_central=1.0):
    def force(pos):
        r2 = np.einsum("ij,ij->i", pos, pos)
        rinv3 = r2 ** -1.5
        return -m_central * pos * rinv3[:, None], -m_central / np.sqrt(r2)
    return force


class TestLeapfrogKDK:
    def test_circular_orbit_period(self):
        """Unit circular orbit: after one period 2*pi the particle must
        return to its start (second-order accurate)."""
        lf = LeapfrogKDK(force=_kepler_force())
        pos = np.array([[1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 1.0, 0.0]])
        n = 2000
        dt = 2.0 * np.pi / n
        for _ in range(n):
            pos, vel = lf.step(pos, vel, dt)
        assert np.linalg.norm(pos[0] - [1.0, 0.0, 0.0]) < 2e-3

    def test_energy_conservation_eccentric(self):
        """Energy error stays bounded over many orbits (symplectic)."""
        lf = LeapfrogKDK(force=_kepler_force())
        pos = np.array([[1.0, 0.0, 0.0]])
        vel = np.array([[0.0, 0.7, 0.0]])  # eccentric

        def energy(p, v):
            return 0.5 * np.sum(v**2) - 1.0 / np.linalg.norm(p)

        e0 = energy(pos, vel)
        errs = []
        for _ in range(4000):
            pos, vel = lf.step(pos, vel, 0.002)
            errs.append(abs(energy(pos, vel) - e0) / abs(e0))
        assert max(errs) < 5e-3

    def test_second_order_convergence(self):
        """Halving dt must reduce the position error ~4x."""
        def run(n):
            lf = LeapfrogKDK(force=_kepler_force())
            pos = np.array([[1.0, 0.0, 0.0]])
            vel = np.array([[0.0, 1.0, 0.0]])
            dt = 1.0 / n
            for _ in range(n):
                pos, vel = lf.step(pos, vel, dt)
            return pos[0]

        ref = np.array([np.cos(1.0), np.sin(1.0), 0.0])
        e1 = np.linalg.norm(run(100) - ref)
        e2 = np.linalg.norm(run(200) - ref)
        assert e1 / e2 == pytest.approx(4.0, rel=0.3)

    def test_one_force_eval_per_step(self):
        calls = []

        def force(pos):
            calls.append(1)
            return np.zeros_like(pos), np.zeros(len(pos))

        lf = LeapfrogKDK(force=force)
        pos = np.zeros((3, 3))
        vel = np.zeros((3, 3))
        for _ in range(10):
            pos, vel = lf.step(pos, vel, 0.1)
        # 1 priming call + 1 per step
        assert sum(calls) == 11

    def test_free_particle_drifts(self):
        def force(pos):
            return np.zeros_like(pos), np.zeros(len(pos))
        lf = LeapfrogKDK(force=force)
        pos = np.zeros((1, 3))
        vel = np.array([[1.0, 2.0, 3.0]])
        pos, vel = lf.step(pos, vel, 0.5)
        assert np.allclose(pos, [[0.5, 1.0, 1.5]])

    def test_potentials_exposed(self):
        lf = LeapfrogKDK(force=_kepler_force())
        with pytest.raises(RuntimeError):
            lf.potentials
        lf.prime(np.array([[1.0, 0.0, 0.0]]))
        assert lf.potentials[0] == pytest.approx(-1.0)


class TestComovingLeapfrog:
    def test_factors_positive_and_ordered(self):
        cl = ComovingLeapfrog(force=_kepler_force(), cosmology=SCDM)
        t1 = SCDM.age(9.0)
        t2 = SCDM.age(4.0)
        k = cl.kick_factor(t1, t2)
        d = cl.drift_factor(t1, t2)
        assert k > 0 and d > 0
        # a < 1 throughout, so Int dt/a^2 > Int dt/a > Int dt
        assert d > k > (t2 - t1)

    def test_unperturbed_comoving_positions_static(self):
        """With zero force, comoving positions move only by the initial
        momentum times the drift factor."""
        def force(pos):
            return np.zeros_like(pos), np.zeros(len(pos))
        cl = ComovingLeapfrog(force=force, cosmology=SCDM)
        pos = np.array([[1.0, 0.0, 0.0]])
        mom = np.zeros((1, 3))
        t = SCDM.age(9.0)
        p2, m2 = cl.step(pos, mom, t, 1e-4)
        assert np.allclose(p2, pos)
        assert np.allclose(m2, 0.0)

    def test_eds_factors_analytic(self):
        """EdS a = (t/t0)^(2/3): kick = Int t^(-2/3) dt * t0^(2/3)."""
        cl = ComovingLeapfrog(force=_kepler_force(), cosmology=SCDM)
        t0 = SCDM.age(0.0)
        t1, t2 = 0.3 * t0, 0.5 * t0
        expect = 3.0 * t0 ** (2.0 / 3.0) * (t2 ** (1.0 / 3.0)
                                            - t1 ** (1.0 / 3.0))
        assert cl.kick_factor(t1, t2) == pytest.approx(expect, rel=1e-6)
