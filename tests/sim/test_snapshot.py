"""Snapshot I/O and slab-extraction tests."""

import numpy as np
import pytest

from repro.sim.models import plummer_model
from repro.sim.simulation import Simulation
from repro.sim.snapshot import Snapshot, load_snapshot, save_snapshot, slab
from repro.core import DirectSummation


class TestSnapshotIO:
    def test_roundtrip_simulation(self, rng, tmp_path):
        pos, vel, mass = plummer_model(50, rng)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.05, G=1.0,
                         force=DirectSummation(), t=1.25)
        path = save_snapshot(tmp_path / "snap.npz", sim, z=0.5)
        snap = load_snapshot(path)
        assert np.array_equal(snap.pos, sim.pos)
        assert np.array_equal(snap.vel, sim.vel)
        assert np.array_equal(snap.mass, sim.mass)
        assert snap.t == 1.25
        assert snap.z == 0.5
        assert snap.eps == 0.05
        assert snap.n_particles == 50

    def test_roundtrip_snapshot_object(self, rng, tmp_path):
        snap = Snapshot(pos=rng.standard_normal((10, 3)),
                        vel=rng.standard_normal((10, 3)),
                        mass=np.ones(10), t=2.0, z=1.0, eps=0.01)
        path = save_snapshot(tmp_path / "s", snap)
        back = load_snapshot(path)
        assert np.array_equal(back.pos, snap.pos)
        assert back.z == 1.0

    def test_suffix_appended(self, rng, tmp_path):
        snap = Snapshot(pos=np.zeros((2, 3)), vel=np.zeros((2, 3)),
                        mass=np.ones(2), t=0.0)
        path = save_snapshot(tmp_path / "nosuffix", snap)
        assert path.suffix == ".npz"
        assert path.exists()


class TestSlab:
    def test_selection_geometry(self):
        pos = np.array([
            [0.0, 0.0, 0.0],     # in
            [10.0, 0.0, 0.0],    # out: x beyond width/2
            [0.0, 0.0, 2.0],     # out: beyond thickness
            [5.0, -5.0, 0.5],    # in (on the edge)
        ])
        xy = slab(pos, width=10.0, thickness=2.5, axis=2)
        # only particles 0 and 3 fit the 10-wide, 2.5-thick slab
        assert xy.shape == (2, 2)

    def test_paper_selection(self, rng):
        """Figure 4: a 45 x 45 x 2.5 Mpc slab keeps ~thickness/extent of
        a uniform cube's particles."""
        pos = rng.uniform(-25, 25, (20000, 3))
        xy = slab(pos, width=45.0, thickness=2.5)
        frac = len(xy) / 20000
        expect = (45.0 / 50.0) ** 2 * (2.5 / 50.0)
        assert frac == pytest.approx(expect, rel=0.1)

    def test_axis_selection(self):
        pos = np.array([[0.0, 0.0, 9.0]])
        assert len(slab(pos, width=1.0, thickness=0.5, axis=2)) == 0
        assert len(slab(pos, width=20.0, thickness=0.5, axis=0)) == 1

    def test_center_offset(self):
        pos = np.array([[5.0, 5.0, 5.0]])
        assert len(slab(pos, width=1.0, thickness=1.0)) == 0
        xy = slab(pos, width=1.0, thickness=1.0,
                  center=np.array([5.0, 5.0, 5.0]))
        assert len(xy) == 1
        assert np.allclose(xy[0], [0.0, 0.0])
