"""End-of-core tests: TreeCode accuracy, statistics, both algorithms."""

import numpy as np
import pytest

from repro.core import (AbsoluteErrorMAC, BarnesHutMAC, DirectSummation,
                        TreeCode)


def _rms_rel_err(a, ref):
    e = np.linalg.norm(a - ref, axis=1) / np.linalg.norm(ref, axis=1)
    return float(np.sqrt(np.mean(e**2)))


@pytest.fixture
def reference(plummer_pos_mass):
    pos, mass = plummer_pos_mass
    acc, pot = DirectSummation().accelerations(pos, mass, 0.01)
    return pos, mass, acc, pot


class TestAccuracy:
    def test_paper_level_error(self, reference):
        """theta = 0.75 must give a sub-percent force error (the paper
        reports ~0.1 % on its workload)."""
        pos, mass, acc_d, _ = reference
        tc = TreeCode(theta=0.75, n_crit=64)
        acc_t, _ = tc.accelerations(pos, mass, 0.01)
        assert _rms_rel_err(acc_t, acc_d) < 5e-3

    def test_error_decreases_with_theta(self, reference):
        pos, mass, acc_d, _ = reference
        errs = []
        for theta in (1.2, 0.8, 0.4):
            tc = TreeCode(theta=theta, n_crit=64)
            acc_t, _ = tc.accelerations(pos, mass, 0.01)
            errs.append(_rms_rel_err(acc_t, acc_d))
        assert errs[0] > errs[1] > errs[2]

    def test_tiny_theta_converges_to_direct(self, reference):
        pos, mass, acc_d, pot_d = reference
        tc = TreeCode(theta=0.05, n_crit=32)
        acc_t, pot_t = tc.accelerations(pos, mass, 0.01)
        assert _rms_rel_err(acc_t, acc_d) < 1e-6
        assert np.allclose(pot_t, pot_d, rtol=1e-5)

    def test_potential_accuracy(self, reference):
        pos, mass, _, pot_d = reference
        tc = TreeCode(theta=0.75, n_crit=64)
        _, pot_t = tc.accelerations(pos, mass, 0.01)
        rel = np.abs((pot_t - pot_d) / pot_d)
        assert np.sqrt(np.mean(rel**2)) < 2e-3

    def test_modified_more_accurate_than_original(self, reference):
        """Paper section 3: 'our modified tree algorithm is more
        accurate than the original tree algorithm for the same accuracy
        parameter' (Barnes 1990)."""
        pos, mass, acc_d, _ = reference
        tc = TreeCode(theta=0.9, n_crit=64)
        acc_m, _ = tc.accelerations(pos, mass, 0.01, algorithm="modified")
        acc_o, _ = tc.accelerations(pos, mass, 0.01, algorithm="original")
        assert _rms_rel_err(acc_m, acc_d) < _rms_rel_err(acc_o, acc_d)

    def test_absolute_error_mac(self, reference):
        pos, mass, acc_d, _ = reference
        amean = np.mean(np.linalg.norm(acc_d, axis=1))
        tc = TreeCode(n_crit=64, mac=AbsoluteErrorMAC(eps_abs=1e-3 * amean))
        acc_t, _ = tc.accelerations(pos, mass, 0.01)
        assert _rms_rel_err(acc_t, acc_d) < 5e-3

    def test_clustered_distribution(self, clustered_2k):
        pos, mass = clustered_2k
        acc_d, _ = DirectSummation().accelerations(pos, mass, 0.01)
        tc = TreeCode(theta=0.7, n_crit=128)
        acc_t, _ = tc.accelerations(pos, mass, 0.01)
        assert _rms_rel_err(acc_t, acc_d) < 5e-3


class TestStats:
    def test_stats_populated(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tc = TreeCode(theta=0.75, n_crit=64)
        tc.accelerations(pos, mass, 0.01)
        s = tc.last_stats
        assert s.n_particles == len(pos)
        assert s.algorithm == "modified"
        assert s.n_groups >= 1
        # total weights each group's list by its population, so it
        # dominates the raw term count
        assert s.total_interactions >= s.cell_terms + s.part_terms
        assert s.total_interactions > 0
        assert s.interactions_per_particle == pytest.approx(
            s.total_interactions / s.n_particles)
        assert set(s.times) == {"build", "group", "traverse", "eval",
                                "kernel", "host_direct"}
        assert s.times["kernel"] + s.times["host_direct"] == \
            pytest.approx(s.times["eval"], rel=0.5, abs=1e-3)

    def test_total_interactions_consistent_with_backend(self,
                                                        plummer_pos_mass):
        """The stats' interaction count is exactly what the backend
        evaluated (stats drive the paper's Gflops accounting)."""
        pos, mass = plummer_pos_mass
        tc = TreeCode(theta=0.75, n_crit=64)
        tc.backend.reset_stats()
        tc.accelerations(pos, mass, 0.01)
        assert tc.backend.interactions == tc.last_stats.total_interactions

    def test_original_stats(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tc = TreeCode(theta=0.75, n_crit=64)
        tc.accelerations(pos[:300], mass[:300], 0.01, algorithm="original")
        s = tc.last_stats
        assert s.algorithm == "original"
        assert s.n_groups == 300
        assert s.mean_group_size == 1.0

    def test_modified_does_more_interactions(self, plummer_pos_mass):
        """The grouped algorithm's raw interaction count exceeds the
        original's -- the overhead the paper corrects for."""
        pos, mass = plummer_pos_mass
        tc = TreeCode(theta=0.75, n_crit=128)
        tc.accelerations(pos, mass, 0.01, algorithm="modified")
        modified = tc.last_stats.total_interactions
        tc.accelerations(pos, mass, 0.01, algorithm="original")
        original = tc.last_stats.total_interactions
        assert modified > original

    def test_as_row_keys(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tc = TreeCode(theta=0.75, n_crit=64)
        tc.accelerations(pos, mass, 0.01)
        row = tc.last_stats.as_row()
        for k in ("algorithm", "N", "interactions", "list_len"):
            assert k in row


class TestInterface:
    def test_results_in_original_order(self, rng):
        """Shuffling the input must shuffle the output identically."""
        pos = rng.standard_normal((500, 3))
        mass = rng.uniform(0.5, 1.0, 500)
        tc = TreeCode(theta=0.5, n_crit=50)
        acc, pot = tc.accelerations(pos, mass, 0.01)
        perm = rng.permutation(500)
        acc_p, pot_p = tc.accelerations(pos[perm], mass[perm], 0.01)
        assert np.allclose(acc_p, acc[perm], rtol=1e-12)
        assert np.allclose(pot_p, pot[perm], rtol=1e-12)

    def test_unknown_algorithm(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        with pytest.raises(ValueError):
            TreeCode().accelerations(pos, mass, 0.01, algorithm="fmm")

    def test_invalid_ncrit(self):
        with pytest.raises(ValueError):
            TreeCode(n_crit=0)

    def test_single_group_equals_direct(self, rng):
        """n_crit >= N: one group, whole tree opened onto itself ->
        exact forces."""
        pos = rng.standard_normal((200, 3))
        mass = rng.uniform(0.5, 1.0, 200)
        tc = TreeCode(theta=0.7, n_crit=10**6)
        acc_t, pot_t = tc.accelerations(pos, mass, 0.05)
        acc_d, pot_d = DirectSummation().accelerations(pos, mass, 0.05)
        assert np.allclose(acc_t, acc_d, rtol=1e-10)
        assert np.allclose(pot_t, pot_d, rtol=1e-10)

    def test_grape_backend_integration(self, plummer_pos_mass):
        from repro.grape import GrapeBackend
        pos, mass = plummer_pos_mass
        backend = GrapeBackend()
        tc = TreeCode(theta=0.75, n_crit=64, backend=backend)
        acc_g, _ = tc.accelerations(pos, mass, 0.01)
        acc_d, _ = DirectSummation().accelerations(pos, mass, 0.01)
        assert _rms_rel_err(acc_g, acc_d) < 0.02
        assert backend.model_seconds > 0
