"""Acceptance-criterion tests: geometry, monotonicity, group safety."""

import numpy as np
import pytest

from repro.core.mac import AbsoluteErrorMAC, BarnesHutMAC
from repro.core.multipole import compute_moments
from repro.core.octree import build_octree


@pytest.fixture
def tree(plummer_pos_mass):
    pos, mass = plummer_pos_mass
    return compute_moments(build_octree(pos, mass))


def _far_sink(tree, dist):
    center = tree.com[0] + np.array([dist, 0.0, 0.0])
    return center[None, :], np.zeros(1)


class TestBarnesHutMAC:
    def test_far_cell_accepted(self, tree):
        mac = BarnesHutMAC(theta=0.75)
        c, r = _far_sink(tree, 100.0 * tree.size)
        assert mac.accept(tree, np.array([0]), c, r)[0]

    def test_containing_cell_rejected(self, tree):
        """A sink inside the root must open it (d_min = 0)."""
        mac = BarnesHutMAC(theta=10.0)
        c = tree.com[0][None, :]
        assert not mac.accept(tree, np.array([0]), c, np.zeros(1))[0]

    def test_smaller_theta_is_stricter(self, tree):
        cells = np.arange(tree.n_cells)
        center = tree.com[0] + np.array([2.0 * tree.size, 0, 0])
        centers = np.tile(center, (tree.n_cells, 1))
        radii = np.zeros(tree.n_cells)
        loose = BarnesHutMAC(theta=1.0).accept(tree, cells, centers, radii)
        tight = BarnesHutMAC(theta=0.3).accept(tree, cells, centers, radii)
        # everything accepted by the tight test is accepted by the loose
        assert np.all(loose[tight])

    def test_group_radius_is_stricter_than_point(self, tree):
        cells = np.arange(tree.n_cells)
        center = tree.com[0] + np.array([1.5 * tree.size, 0, 0])
        centers = np.tile(center, (tree.n_cells, 1))
        point = BarnesHutMAC(0.75).accept(tree, cells, centers,
                                          np.zeros(tree.n_cells))
        group = BarnesHutMAC(0.75).accept(
            tree, cells, centers, np.full(tree.n_cells, 0.4 * tree.size))
        assert np.all(point[group])
        assert group.sum() <= point.sum()

    def test_threshold_distance_scaling(self, tree):
        """Acceptance turns on once d_min exceeds l/theta + delta."""
        mac = BarnesHutMAC(theta=0.5)
        edge = 2.0 * tree.half[0]
        delta = np.linalg.norm(tree.com[0] - tree.center[0])
        d_crit = edge / 0.5 + delta
        direction = np.array([1.0, 0.0, 0.0])
        near = tree.com[0] + (0.9 * d_crit) * direction
        far = tree.com[0] + (1.1 * d_crit) * direction
        assert not mac.accept(tree, np.array([0]), near[None], np.zeros(1))[0]
        assert mac.accept(tree, np.array([0]), far[None], np.zeros(1))[0]

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            BarnesHutMAC(theta=0.0)
        with pytest.raises(ValueError):
            BarnesHutMAC(theta=-1.0)


class TestAbsoluteErrorMAC:
    def test_far_cell_accepted(self, tree):
        mac = AbsoluteErrorMAC(eps_abs=1e-3)
        c, r = _far_sink(tree, 100.0 * tree.size)
        assert mac.accept(tree, np.array([0]), c, r)[0]

    def test_containing_cell_rejected(self, tree):
        mac = AbsoluteErrorMAC(eps_abs=1e9)
        c = tree.com[0][None, :]
        assert not mac.accept(tree, np.array([0]), c, np.zeros(1))[0]

    def test_tighter_tolerance_is_stricter(self, tree):
        cells = np.arange(tree.n_cells)
        center = tree.com[0] + np.array([2.0 * tree.size, 0, 0])
        centers = np.tile(center, (tree.n_cells, 1))
        radii = np.zeros(tree.n_cells)
        loose = AbsoluteErrorMAC(1e-1).accept(tree, cells, centers, radii)
        tight = AbsoluteErrorMAC(1e-7).accept(tree, cells, centers, radii)
        assert np.all(loose[tight])

    def test_error_bound_holds(self, tree, plummer_pos_mass):
        """Accepted cells' true monopole error must respect the bound's
        order of magnitude (the estimate is the leading tidal term)."""
        from repro.core.kernels import pairwise_accpot
        pos, mass = plummer_pos_mass
        eps_abs = 1e-4
        mac = AbsoluteErrorMAC(eps_abs=eps_abs)
        sink = tree.com[0] + np.array([3.0, 1.0, 0.5]) * tree.size
        cells = np.arange(tree.n_cells)
        ok = mac.accept(tree, cells, np.tile(sink, (tree.n_cells, 1)),
                        np.zeros(tree.n_cells))
        picked = cells[ok][:20]
        for c in picked:
            s, n = int(tree.start[c]), int(tree.count[c])
            a_true, _ = pairwise_accpot(sink[None], tree.pos_sorted[s:s + n],
                                        tree.mass_sorted[s:s + n], 0.0)
            a_mono, _ = pairwise_accpot(sink[None], tree.com[c][None],
                                        tree.mass[c][None], 0.0)
            err = np.linalg.norm(a_true[0] - a_mono[0])
            assert err < 10.0 * eps_abs

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            AbsoluteErrorMAC(eps_abs=0.0)
