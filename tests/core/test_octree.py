"""Octree construction unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.octree import build_octree, ragged_arange


class TestRaggedArange:
    def test_basic(self):
        out = ragged_arange(np.array([0, 10]), np.array([3, 2]))
        assert np.array_equal(out, [0, 1, 2, 10, 11])

    def test_empty_total(self):
        assert len(ragged_arange(np.array([5]), np.array([0]))) == 0

    def test_empty_segments_mixed(self):
        out = ragged_arange(np.array([0, 7, 100, 4]),
                            np.array([0, 2, 0, 3]))
        assert np.array_equal(out, [7, 8, 4, 5, 6])

    def test_single_segment(self):
        out = ragged_arange(np.array([42]), np.array([4]))
        assert np.array_equal(out, [42, 43, 44, 45])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ragged_arange(np.array([0]), np.array([-1]))

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 20)),
                    min_size=1, max_size=30))
    def test_matches_python_loop(self, pairs):
        starts = np.array([p[0] for p in pairs])
        counts = np.array([p[1] for p in pairs])
        expect = np.concatenate(
            [np.arange(s, s + c) for s, c in pairs]) if counts.sum() else \
            np.empty(0, dtype=np.int64)
        assert np.array_equal(ragged_arange(starts, counts), expect)


class TestBuildOctree:
    def test_root_covers_everything(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        assert tree.count[0] == len(pos)
        assert tree.start[0] == 0

    def test_structural_invariants(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        build_octree(pos, mass, leaf_size=8).validate()

    def test_invariants_clustered(self, clustered_2k):
        pos, mass = clustered_2k
        build_octree(pos, mass, leaf_size=4).validate()

    def test_leaves_partition_particles(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        leaf_total = tree.count[tree.leaves()].sum()
        assert leaf_total == len(pos)

    def test_leaf_size_respected(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        for ls in (1, 4, 16):
            tree = build_octree(pos, mass, leaf_size=ls)
            # leaves can exceed leaf_size only at MAX_LEVEL (coincident)
            big = tree.count[tree.leaves()] > ls
            assert not np.any(big & (tree.level[tree.leaves()] < 21))

    def test_order_is_permutation(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        assert np.array_equal(np.sort(tree.order), np.arange(len(pos)))

    def test_sorted_arrays_match_order(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        assert np.allclose(tree.pos_sorted, pos[tree.order])
        assert np.allclose(tree.mass_sorted, mass[tree.order])

    def test_keys_sorted(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        assert np.all(np.diff(tree.keys.astype(np.int64)) >= 0)

    def test_single_particle(self):
        tree = build_octree(np.zeros((1, 3)), np.ones(1))
        assert tree.n_cells == 1
        assert tree.is_leaf[0]

    def test_two_coincident_particles_terminate(self):
        pos = np.zeros((2, 3))
        tree = build_octree(pos, np.ones(2), leaf_size=1)
        # construction terminates; the degenerate pair shares a deep leaf
        assert tree.count[0] == 2
        tree.validate()

    def test_mixed_coincident_and_spread(self, rng):
        pos = np.concatenate([np.zeros((5, 3)), rng.uniform(0, 1, (50, 3))])
        mass = np.ones(55)
        tree = build_octree(pos, mass, leaf_size=2)
        tree.validate()

    def test_parents_precede_children(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        nonroot = np.arange(1, tree.n_cells)
        assert np.all(tree.parent[nonroot] < nonroot)

    def test_children_level_is_parent_plus_one(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        c = np.flatnonzero(tree.child >= 0)
        parents = np.repeat(np.arange(tree.n_cells), 8)[c]
        kids = tree.child.ravel()[c]
        assert np.all(tree.level[kids] == tree.level[parents] + 1)

    def test_half_size_halves_per_level(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        expect = 0.5 * tree.size / (2.0 ** tree.level.astype(float))
        assert np.allclose(tree.half, expect)

    def test_explicit_cube(self, rng):
        pos = rng.uniform(0.2, 0.8, (64, 3))
        tree = build_octree(pos, np.ones(64), corner=np.zeros(3), size=1.0)
        assert tree.size == 1.0
        tree.validate()

    def test_input_validation(self):
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 2)), np.ones(4))
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 3)), np.ones(5))
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 3)), np.ones(4), leaf_size=0)
        with pytest.raises(ValueError):
            build_octree(np.zeros((0, 3)), np.ones(0))

    def test_input_arrays_not_mutated(self, rng):
        pos = rng.uniform(0, 1, (100, 3))
        mass = rng.uniform(0.5, 1.0, 100)
        pc, mc = pos.copy(), mass.copy()
        build_octree(pos, mass)
        assert np.array_equal(pos, pc) and np.array_equal(mass, mc)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 300), st.integers(1, 10), st.integers(0, 2**31 - 1))
    def test_property_partition(self, n, leaf_size, seed):
        """Any random set: leaves partition particles; counts consistent."""
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((n, 3))
        mass = rng.uniform(0.1, 1.0, n)
        tree = build_octree(pos, mass, leaf_size=leaf_size)
        tree.validate()
        assert tree.count[tree.leaves()].sum() == n
