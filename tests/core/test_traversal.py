"""Traversal tests: completeness, counting mode, CSR structure.

The load-bearing invariant: for any sink, the union of the accepted
cells' particle sets and the direct particles must cover every particle
exactly once (mass completeness) -- that is what makes the monopole sum
a valid approximation of the total force.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import make_groups
from repro.core.mac import BarnesHutMAC
from repro.core.multipole import compute_moments
from repro.core.octree import build_octree
from repro.core.traversal import build_interaction_lists, count_interactions


def _tree(pos, mass, leaf_size=8):
    return compute_moments(build_octree(pos, mass, leaf_size=leaf_size))


def _mass_covered(tree, lists, i):
    cells = lists.cells_of(i)
    parts = lists.parts_of(i)
    return tree.mass[cells].sum() + tree.mass_sorted[parts].sum()


class TestCompleteness:
    def test_total_mass_per_particle_sink(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        lists = build_interaction_lists(
            tree, tree.pos_sorted[:32], np.zeros(32), BarnesHutMAC(0.75))
        for i in range(32):
            assert _mass_covered(tree, lists, i) == pytest.approx(
                mass.sum(), rel=1e-12)

    def test_total_mass_per_group_sink(self, clustered_2k):
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        g = make_groups(tree, 100)
        lists = build_interaction_lists(tree, g.center, g.radius,
                                        BarnesHutMAC(0.75))
        for i in range(g.n_groups):
            assert _mass_covered(tree, lists, i) == pytest.approx(
                mass.sum(), rel=1e-12)

    def test_no_double_counting(self, plummer_pos_mass):
        """No accepted cell may be an ancestor/descendant of another,
        nor contain a direct particle of the same sink."""
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        lists = build_interaction_lists(
            tree, tree.pos_sorted[:8], np.zeros(8), BarnesHutMAC(0.75))
        for i in range(8):
            cells = lists.cells_of(i)
            parts = set(lists.parts_of(i).tolist())
            spans = [(int(tree.start[c]), int(tree.start[c] + tree.count[c]))
                     for c in cells]
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2  # disjoint slices
            for s, e in spans:
                assert not any(s <= p < e for p in parts)

    def test_own_particles_in_direct_list(self, plummer_pos_mass):
        """A group's own members appear in its direct list (the GRAPE
        convention: self force is zero under softening)."""
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        g = make_groups(tree, 64)
        lists = build_interaction_lists(tree, g.center, g.radius,
                                        BarnesHutMAC(0.75))
        for i in (0, g.n_groups // 2):
            s, n = int(g.start[i]), int(g.count[i])
            own = set(range(s, s + n))
            assert own.issubset(set(lists.parts_of(i).tolist()))


class TestCountingMode:
    def test_counts_match_lists(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        sinks = tree.pos_sorted[:64]
        radii = np.zeros(64)
        mac = BarnesHutMAC(0.75)
        lists = build_interaction_lists(tree, sinks, radii, mac)
        cells, parts = count_interactions(tree, sinks, radii, mac)
        assert np.array_equal(cells, lists.cell_counts)
        assert np.array_equal(parts, lists.part_counts)

    def test_group_counts_match_lists(self, clustered_2k):
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        g = make_groups(tree, 150)
        mac = BarnesHutMAC(0.6)
        lists = build_interaction_lists(tree, g.center, g.radius, mac)
        cells, parts = count_interactions(tree, g.center, g.radius, mac)
        assert np.array_equal(cells, lists.cell_counts)
        assert np.array_equal(parts, lists.part_counts)


class TestListStructure:
    def test_csr_offsets_monotone(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        lists = build_interaction_lists(
            tree, tree.pos_sorted[:16], np.zeros(16), BarnesHutMAC(0.75))
        assert np.all(np.diff(lists.cell_off) >= 0)
        assert np.all(np.diff(lists.part_off) >= 0)
        assert lists.cell_off[-1] == len(lists.cell_idx)
        assert lists.part_off[-1] == len(lists.part_idx)

    def test_list_lengths_property(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        lists = build_interaction_lists(
            tree, tree.pos_sorted[:16], np.zeros(16), BarnesHutMAC(0.75))
        assert np.array_equal(lists.list_lengths,
                              lists.cell_counts + lists.part_counts)
        assert lists.total_terms == lists.list_lengths.sum()

    def test_chunked_traversal_equivalent(self, clustered_2k):
        """Tiny frontier chunks must give identical lists."""
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        sinks = tree.pos_sorted[:24]
        radii = np.zeros(24)
        mac = BarnesHutMAC(0.75)
        a = build_interaction_lists(tree, sinks, radii, mac)
        b = build_interaction_lists(tree, sinks, radii, mac, chunk=64)
        for i in range(24):
            assert np.array_equal(np.sort(a.cells_of(i)),
                                  np.sort(b.cells_of(i)))
            assert np.array_equal(np.sort(a.parts_of(i)),
                                  np.sort(b.parts_of(i)))

    def test_requires_moments(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)  # no moments
        with pytest.raises(ValueError):
            build_interaction_lists(tree, pos[:1], np.zeros(1),
                                    BarnesHutMAC(0.75))

    def test_sink_shape_validation(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        with pytest.raises(ValueError):
            build_interaction_lists(tree, pos[:4, :2], np.zeros(4),
                                    BarnesHutMAC(0.75))
        with pytest.raises(ValueError):
            build_interaction_lists(tree, pos[:4], np.zeros(5),
                                    BarnesHutMAC(0.75))

    def test_smaller_theta_longer_lists(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        sinks, radii = tree.pos_sorted[:32], np.zeros(32)
        loose = build_interaction_lists(tree, sinks, radii,
                                        BarnesHutMAC(1.0))
        tight = build_interaction_lists(tree, sinks, radii,
                                        BarnesHutMAC(0.3))
        assert tight.total_terms > loose.total_terms

    @settings(max_examples=15, deadline=None)
    @given(st.integers(10, 200), st.integers(0, 2**31 - 1),
           st.floats(0.3, 1.5))
    def test_property_mass_completeness(self, n, seed, theta):
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((n, 3))
        mass = rng.uniform(0.1, 1.0, n)
        tree = _tree(pos, mass, leaf_size=4)
        g = make_groups(tree, max(1, n // 5))
        lists = build_interaction_lists(tree, g.center, g.radius,
                                        BarnesHutMAC(theta))
        for i in range(g.n_groups):
            assert _mass_covered(tree, lists, i) == pytest.approx(
                mass.sum(), rel=1e-9)
