"""Morton-key unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import morton


class TestSpreadCompact:
    def test_spread_zero(self):
        assert morton.spread_bits(np.array([0]))[0] == 0

    def test_spread_one(self):
        assert morton.spread_bits(np.array([1]))[0] == 1

    def test_spread_two_moves_to_bit3(self):
        assert morton.spread_bits(np.array([2]))[0] == 8

    def test_spread_all_21_bits(self):
        v = np.array([(1 << 21) - 1], dtype=np.uint64)
        spread = morton.spread_bits(v)[0]
        # every third bit set, 21 of them
        assert bin(int(spread)).count("1") == 21

    def test_compact_inverts_spread_exhaustive_small(self):
        v = np.arange(4096, dtype=np.uint64)
        assert np.array_equal(morton.compact_bits(morton.spread_bits(v)), v)

    @given(hnp.arrays(np.uint64, st.integers(1, 64),
                      elements=st.integers(0, (1 << 21) - 1)))
    def test_compact_inverts_spread(self, v):
        assert np.array_equal(morton.compact_bits(morton.spread_bits(v)), v)


class TestEncodeDecode:
    @given(st.integers(0, (1 << 21) - 1), st.integers(0, (1 << 21) - 1),
           st.integers(0, (1 << 21) - 1))
    def test_roundtrip(self, x, y, z):
        ix = np.array([x], dtype=np.uint64)
        iy = np.array([y], dtype=np.uint64)
        iz = np.array([z], dtype=np.uint64)
        k = morton.encode_grid(ix, iy, iz)
        rx, ry, rz = morton.decode_grid(k)
        assert (rx[0], ry[0], rz[0]) == (x, y, z)

    def test_x_is_most_significant(self):
        k_x = morton.encode_grid(np.array([1]), np.array([0]), np.array([0]))
        k_y = morton.encode_grid(np.array([0]), np.array([1]), np.array([0]))
        k_z = morton.encode_grid(np.array([0]), np.array([0]), np.array([1]))
        assert k_x[0] == 4 and k_y[0] == 2 and k_z[0] == 1

    def test_keys_fit_63_bits(self):
        m = np.array([(1 << 21) - 1], dtype=np.uint64)
        k = morton.encode_grid(m, m, m)
        assert k[0] == (np.uint64(1) << np.uint64(63)) - np.uint64(1)


class TestBoundingCube:
    def test_contains_all_points(self, rng):
        pos = rng.standard_normal((200, 3)) * 3.0
        corner, size = morton.bounding_cube(pos)
        assert np.all(pos >= corner)
        assert np.all(pos <= corner + size)

    def test_cube_is_cubic_and_padded(self, rng):
        pos = rng.uniform(0, 1, (50, 3)) * np.array([10.0, 1.0, 0.1])
        corner, size = morton.bounding_cube(pos)
        assert size > 10.0 * (pos[:, 0].max() - pos[:, 0].min()) / 10.0

    def test_single_point(self):
        corner, size = morton.bounding_cube(np.zeros((1, 3)))
        assert size > 0

    def test_coincident_points(self):
        pos = np.ones((5, 3)) * 2.5
        corner, size = morton.bounding_cube(pos)
        assert size > 0
        assert np.all(pos >= corner) and np.all(pos <= corner + size)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            morton.bounding_cube(np.zeros((3, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            morton.bounding_cube(np.zeros((0, 3)))

    def test_rejects_nan(self):
        pos = np.zeros((4, 3))
        pos[2, 1] = np.nan
        with pytest.raises(ValueError):
            morton.bounding_cube(pos)


class TestMortonKeys:
    def test_locality_order_on_axis(self):
        """Points along x at fixed (y, z) = (0, 0) must be key-ordered."""
        x = np.linspace(0.01, 0.99, 17)
        pos = np.stack([x, np.zeros_like(x), np.zeros_like(x)], axis=1)
        keys = morton.morton_keys(pos, np.zeros(3), 1.0)
        assert np.all(np.diff(keys.astype(np.int64)) > 0)

    def test_keys_deterministic(self, rng):
        pos = rng.uniform(-5, 5, (100, 3))
        corner, size = morton.bounding_cube(pos)
        k1 = morton.morton_keys(pos, corner, size)
        k2 = morton.morton_keys(pos, corner, size)
        assert np.array_equal(k1, k2)

    def test_upper_face_clamped(self):
        pos = np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
        keys = morton.morton_keys(pos, np.zeros(3), 1.0)
        ix, iy, iz = morton.decode_grid(keys)
        top = (1 << morton.MAX_LEVEL) - 1
        assert ix[0] == iy[0] == iz[0] == top
        assert ix[1] == iy[1] == iz[1] == 0

    @settings(max_examples=30)
    @given(st.integers(0, 2**31 - 1))
    def test_keys_to_positions_within_cell(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-1, 1, (16, 3))
        corner, size = morton.bounding_cube(pos)
        keys = morton.morton_keys(pos, corner, size)
        back = morton.keys_to_positions(keys, corner, size)
        cell = size / (1 << morton.MAX_LEVEL)
        assert np.all(np.abs(back - pos) <= cell)


class TestPrefixOctant:
    def test_prefix_level_zero_is_zero(self, rng):
        keys = rng.integers(0, 1 << 63, 32, dtype=np.uint64)
        assert np.all(morton.cell_prefix(keys, 0) == 0)

    def test_prefix_full_level_is_key(self, rng):
        keys = rng.integers(0, 1 << 63, 32, dtype=np.uint64)
        assert np.array_equal(morton.cell_prefix(keys, morton.MAX_LEVEL),
                              keys)

    def test_prefix_nested(self, rng):
        """Parent prefix is child prefix >> 3."""
        keys = rng.integers(0, 1 << 63, 64, dtype=np.uint64)
        for lv in (1, 5, 12):
            child = morton.cell_prefix(keys, lv)
            parent = morton.cell_prefix(keys, lv - 1)
            assert np.array_equal(child >> np.uint64(3), parent)

    def test_octant_range(self, rng):
        keys = rng.integers(0, 1 << 63, 64, dtype=np.uint64)
        for lv in (1, 7, 21):
            o = morton.octant_at_level(keys, lv)
            assert o.min() >= 0 and o.max() <= 7

    def test_octant_of_first_level_matches_halfspace(self):
        pos = np.array([[0.9, 0.1, 0.1]])  # x high, y low, z low
        keys = morton.morton_keys(pos, np.zeros(3), 1.0)
        assert morton.octant_at_level(keys, 1)[0] == 4  # x bit is MSB

    def test_level_validation(self):
        keys = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ValueError):
            morton.cell_prefix(keys, -1)
        with pytest.raises(ValueError):
            morton.cell_prefix(keys, morton.MAX_LEVEL + 1)
        with pytest.raises(ValueError):
            morton.octant_at_level(keys, 0)
