"""Barnes grouping tests: partition, maximality, bounding spheres."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import make_groups
from repro.core.multipole import compute_moments
from repro.core.octree import build_octree


def _tree(pos, mass, leaf_size=8):
    return compute_moments(build_octree(pos, mass, leaf_size=leaf_size))


class TestMakeGroups:
    def test_groups_tile_sorted_order(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        g = make_groups(tree, 64)
        assert g.start[0] == 0
        assert np.all(g.start[1:] == g.start[:-1] + g.count[:-1])
        assert g.start[-1] + g.count[-1] == tree.n_particles

    def test_every_particle_in_exactly_one_group(self, clustered_2k):
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        g = make_groups(tree, 100)
        assert g.count.sum() == tree.n_particles

    def test_group_sizes_bounded(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        for ncrit in (1, 8, 50, 500):
            g = make_groups(tree, ncrit)
            # bound can only be exceeded by un-splittable deep leaves
            over = g.count > ncrit
            assert np.all(tree.is_leaf[g.cell[over]])

    def test_maximality(self, plummer_pos_mass):
        """Each group's parent cell holds more than n_crit particles."""
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        g = make_groups(tree, 64)
        parents = tree.parent[g.cell]
        nonroot = parents >= 0
        assert np.all(tree.count[parents[nonroot]] > 64)

    def test_whole_set_one_group_when_ncrit_large(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        g = make_groups(tree, 10**6)
        assert g.n_groups == 1
        assert g.cell[0] == 0

    def test_ncrit_one_gives_leaves(self, uniform_500):
        pos, _, mass = uniform_500
        tree = _tree(pos, mass, leaf_size=1)
        g = make_groups(tree, 1)
        assert np.all(tree.is_leaf[g.cell])

    def test_bounding_sphere_contains_members(self, clustered_2k):
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        g = make_groups(tree, 128)
        for i in range(g.n_groups):
            s, n = int(g.start[i]), int(g.count[i])
            d = tree.pos_sorted[s:s + n] - g.center[i]
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            assert np.all(r <= g.radius[i] + 1e-12)

    def test_bounding_sphere_is_tight(self, plummer_pos_mass):
        """Radius equals the max member distance (not the cube bound)."""
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        g = make_groups(tree, 64)
        i = int(np.argmax(g.count))
        s, n = int(g.start[i]), int(g.count[i])
        d = tree.pos_sorted[s:s + n] - g.center[i]
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        assert g.radius[i] == pytest.approx(r.max())

    def test_members_round_trip(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        g = make_groups(tree, 64)
        all_members = np.concatenate(
            [g.members(i, tree) for i in range(g.n_groups)])
        assert np.array_equal(np.sort(all_members),
                              np.arange(tree.n_particles))

    def test_mean_size_reflects_ncrit(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        small = make_groups(tree, 16).mean_size
        large = make_groups(tree, 256).mean_size
        assert large > small

    def test_invalid_ncrit(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        with pytest.raises(ValueError):
            make_groups(tree, 0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 300), st.integers(1, 64), st.integers(0, 2**31 - 1))
    def test_property_partition(self, n, ncrit, seed):
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((n, 3))
        mass = rng.uniform(0.1, 1.0, n)
        tree = _tree(pos, mass, leaf_size=4)
        g = make_groups(tree, ncrit)
        assert g.count.sum() == n
        assert np.all(g.count >= 1)
        # slices are disjoint and ordered
        assert np.all(g.start[1:] == g.start[:-1] + g.count[:-1])
