"""Pairwise-kernel tests: closed forms, symmetry, tiling, backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (Float64Backend, pairwise_accpot,
                                self_potential_correction)


class TestClosedForms:
    def test_two_body_unsoftened(self):
        xi = np.array([[0.0, 0.0, 0.0]])
        xj = np.array([[2.0, 0.0, 0.0]])
        mj = np.array([3.0])
        acc, pot = pairwise_accpot(xi, xj, mj, eps=0.0)
        assert acc[0, 0] == pytest.approx(3.0 / 4.0)  # m/r^2 toward +x
        assert acc[0, 1] == acc[0, 2] == 0.0
        assert pot[0] == pytest.approx(-1.5)  # -m/r

    def test_two_body_softened(self):
        xi = np.zeros((1, 3))
        xj = np.array([[1.0, 0.0, 0.0]])
        mj = np.array([1.0])
        eps = 0.5
        acc, pot = pairwise_accpot(xi, xj, mj, eps=eps)
        r2 = 1.0 + eps**2
        assert acc[0, 0] == pytest.approx(1.0 / r2**1.5)
        assert pot[0] == pytest.approx(-1.0 / np.sqrt(r2))

    def test_coincident_source_no_force(self):
        xi = np.zeros((1, 3))
        acc, pot = pairwise_accpot(xi, np.zeros((1, 3)), np.ones(1), eps=0.1)
        assert np.allclose(acc, 0.0)
        assert pot[0] == pytest.approx(-1.0 / 0.1)

    def test_coincident_unsoftened_skipped(self):
        xi = np.zeros((1, 3))
        acc, pot = pairwise_accpot(xi, np.zeros((1, 3)), np.ones(1), eps=0.0)
        assert np.allclose(acc, 0.0)
        assert pot[0] == 0.0

    def test_superposition(self, rng):
        """Force from the union equals the sum of forces from parts."""
        xi = rng.standard_normal((5, 3))
        xj = rng.standard_normal((40, 3))
        mj = rng.uniform(0.5, 1.5, 40)
        a_all, p_all = pairwise_accpot(xi, xj, mj, 0.05)
        a1, p1 = pairwise_accpot(xi, xj[:17], mj[:17], 0.05)
        a2, p2 = pairwise_accpot(xi, xj[17:], mj[17:], 0.05)
        assert np.allclose(a_all, a1 + a2)
        assert np.allclose(p_all, p1 + p2)


class TestSymmetry:
    @settings(max_examples=25)
    @given(st.integers(0, 2**31 - 1), st.floats(0.0, 0.5))
    def test_newtons_third_law(self, seed, eps):
        """m_i a_ij = -m_j a_ji for every pair (hypothesis property)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, 3))
        if np.linalg.norm(x[0] - x[1]) < 1e-3:
            return
        m = rng.uniform(0.5, 2.0, 2)
        a01, _ = pairwise_accpot(x[:1], x[1:], m[1:], eps)
        a10, _ = pairwise_accpot(x[1:], x[:1], m[:1], eps)
        assert np.allclose(m[0] * a01[0], -m[1] * a10[0], rtol=1e-12)

    def test_total_momentum_rate_zero(self, rng):
        """Sum_i m_i a_i = 0 for a closed system."""
        pos = rng.standard_normal((64, 3))
        mass = rng.uniform(0.5, 1.5, 64)
        acc = np.zeros_like(pos)
        for i in range(64):
            others = np.arange(64) != i
            a, _ = pairwise_accpot(pos[i:i + 1], pos[others], mass[others],
                                   0.01)
            acc[i] = a[0]
        assert np.allclose((mass[:, None] * acc).sum(axis=0), 0.0,
                           atol=1e-10)


class TestTiling:
    def test_tile_size_invariance(self, rng):
        xi = rng.standard_normal((37, 3))
        xj = rng.standard_normal((211, 3))
        mj = rng.uniform(0.1, 1.0, 211)
        a_big, p_big = pairwise_accpot(xi, xj, mj, 0.01, tile=1 << 22)
        a_small, p_small = pairwise_accpot(xi, xj, mj, 0.01, tile=64)
        assert np.allclose(a_big, a_small, rtol=1e-13)
        assert np.allclose(p_big, p_small, rtol=1e-13)

    def test_empty_inputs(self):
        a, p = pairwise_accpot(np.zeros((0, 3)), np.zeros((5, 3)),
                               np.ones(5), 0.1)
        assert a.shape == (0, 3) and p.shape == (0,)
        a, p = pairwise_accpot(np.zeros((3, 3)), np.zeros((0, 3)),
                               np.ones(0), 0.1)
        assert np.allclose(a, 0.0) and np.allclose(p, 0.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            pairwise_accpot(np.zeros((2, 2)), np.zeros((2, 3)), np.ones(2), 0)
        with pytest.raises(ValueError):
            pairwise_accpot(np.zeros((2, 3)), np.zeros((2, 2)), np.ones(2), 0)
        with pytest.raises(ValueError):
            pairwise_accpot(np.zeros((2, 3)), np.zeros((2, 3)), np.ones(3), 0)
        with pytest.raises(ValueError):
            pairwise_accpot(np.zeros((2, 3)), np.zeros((2, 3)), np.ones(2),
                            eps=-0.1)


class TestSelfPotential:
    def test_correction_value(self):
        m = np.array([2.0, 4.0])
        corr = self_potential_correction(m, eps=0.5)
        assert np.allclose(corr, [4.0, 8.0])

    def test_zero_eps_correction_zero(self):
        assert np.allclose(self_potential_correction(np.ones(3), 0.0), 0.0)

    def test_correction_cancels_self_term(self, rng):
        pos = rng.standard_normal((10, 3))
        mass = rng.uniform(0.5, 1.0, 10)
        eps = 0.2
        # potential including self, then corrected
        _, pot = pairwise_accpot(pos, pos, mass, eps)
        pot_corr = pot + self_potential_correction(mass, eps)
        # reference: potential excluding self
        ref = np.zeros(10)
        for i in range(10):
            others = np.arange(10) != i
            _, p = pairwise_accpot(pos[i:i + 1], pos[others], mass[others],
                                   eps)
            ref[i] = p[0]
        assert np.allclose(pot_corr, ref, rtol=1e-12)


class TestFloat64Backend:
    def test_counts_interactions(self, rng):
        b = Float64Backend()
        b.compute(rng.standard_normal((7, 3)), rng.standard_normal((11, 3)),
                  np.ones(11), 0.1)
        assert b.interactions == 77
        b.compute(rng.standard_normal((2, 3)), rng.standard_normal((3, 3)),
                  np.ones(3), 0.1)
        assert b.interactions == 83
        b.reset_stats()
        assert b.interactions == 0

    def test_matches_plain_kernel(self, rng):
        xi = rng.standard_normal((9, 3))
        xj = rng.standard_normal((13, 3))
        mj = rng.uniform(0.1, 1.0, 13)
        a1, p1 = Float64Backend().compute(xi, xj, mj, 0.05)
        a2, p2 = pairwise_accpot(xi, xj, mj, 0.05)
        assert np.array_equal(a1, a2) and np.array_equal(p1, p2)
