"""Quadrupole kernel and hybrid-path tests."""

import numpy as np
import pytest

from repro.core import DirectSummation, TreeCode
from repro.core.kernels import pairwise_accpot
from repro.core.multipole import compute_moments
from repro.core.octree import build_octree
from repro.core.quadkernel import quadrupole_accpot


def _rms(a, ref):
    e = np.linalg.norm(a - ref, axis=1) / np.linalg.norm(ref, axis=1)
    return float(np.sqrt(np.mean(e**2)))


class TestQuadrupoleKernel:
    def test_pure_monopole_when_quad_zero(self, rng):
        xi = rng.standard_normal((10, 3)) + 5.0
        com = rng.standard_normal((4, 3))
        mass = rng.uniform(0.5, 1.0, 4)
        quad = np.zeros((4, 6))
        a_q, p_q = quadrupole_accpot(xi, com, mass, quad, 0.0)
        a_m, p_m = pairwise_accpot(xi, com, mass, 0.0)
        assert np.allclose(a_q, a_m, rtol=1e-12)
        assert np.allclose(p_q, p_m, rtol=1e-12)

    def test_beats_monopole_on_a_real_cell(self, rng):
        """The quadrupole field of a particle clump must be closer to
        the exact field than the monopole alone, sink by sink."""
        clump = rng.uniform(-0.5, 0.5, (64, 3))
        m = rng.uniform(0.5, 1.5, 64)
        tree = compute_moments(build_octree(clump, m), quadrupole=True)
        sinks = 4.0 * np.array([[1.0, 0.2, -0.1], [0.0, 1.5, 1.0],
                                [-2.0, 0.3, 0.4], [1.0, -1.0, 2.0]])
        a_exact, p_exact = pairwise_accpot(sinks, clump, m, 0.0)
        a_mono, p_mono = pairwise_accpot(sinks, tree.com[:1],
                                         tree.mass[:1], 0.0)
        a_quad, p_quad = quadrupole_accpot(sinks, tree.com[:1],
                                           tree.mass[:1], tree.quad[:1],
                                           0.0)
        assert _rms(a_quad, a_exact) < _rms(a_mono, a_exact)
        assert (np.abs(p_quad - p_exact).max()
                < np.abs(p_mono - p_exact).max())

    def test_convergence_order(self, rng):
        """Monopole error falls ~d^-3 relative, quadrupole ~d^-4 (for
        com-centred expansions the dipole vanishes): doubling the
        distance must shrink the quadrupole *advantage*."""
        clump = rng.uniform(-0.5, 0.5, (32, 3))
        m = rng.uniform(0.5, 1.5, 32)
        tree = compute_moments(build_octree(clump, m), quadrupole=True)
        errs = []
        for d in (3.0, 6.0, 12.0):
            sink = np.array([[d, 0.0, 0.0]])
            a_e, _ = pairwise_accpot(sink, clump, m, 0.0)
            a_q, _ = quadrupole_accpot(sink, tree.com[:1], tree.mass[:1],
                                       tree.quad[:1], 0.0)
            errs.append(np.linalg.norm(a_q - a_e)
                        / np.linalg.norm(a_e))
        # the residual after the quadrupole is the octupole, falling
        # ~d^-3 relative: expect ~8x per octave, assert at least 6x
        assert errs[1] < errs[0] / 6.0
        assert errs[2] < errs[1] / 6.0

    def test_tile_invariance(self, rng):
        xi = rng.standard_normal((7, 3)) * 5
        com = rng.standard_normal((40, 3))
        mass = rng.uniform(0.5, 1.0, 40)
        quad = rng.standard_normal((40, 6))
        a1, p1 = quadrupole_accpot(xi, com, mass, quad, 0.1)
        a2, p2 = quadrupole_accpot(xi, com, mass, quad, 0.1, tile=16)
        assert np.allclose(a1, a2, rtol=1e-13)
        assert np.allclose(p1, p2, rtol=1e-13)

    def test_validation(self):
        with pytest.raises(ValueError):
            quadrupole_accpot(np.zeros((2, 2)), np.zeros((1, 3)),
                              np.ones(1), np.zeros((1, 6)))
        with pytest.raises(ValueError):
            quadrupole_accpot(np.zeros((2, 3)), np.zeros((1, 3)),
                              np.ones(2), np.zeros((1, 6)))

    def test_empty(self):
        a, p = quadrupole_accpot(np.zeros((0, 3)), np.zeros((1, 3)),
                                 np.ones(1), np.zeros((1, 6)))
        assert a.shape == (0, 3)


class TestQuadrupoleTreeCode:
    def test_more_accurate_than_monopole(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        acc_ref, _ = DirectSummation().accelerations(pos, mass, 0.01)
        mono = TreeCode(theta=0.9, n_crit=64)
        a_m, _ = mono.accelerations(pos, mass, 0.01)
        quad = TreeCode(theta=0.9, n_crit=64, quadrupole=True)
        a_q, _ = quad.accelerations(pos, mass, 0.01)
        assert _rms(a_q, acc_ref) < 0.5 * _rms(a_m, acc_ref)

    def test_quadrupole_with_original_algorithm(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        pos, mass = pos[:400], mass[:400]
        acc_ref, _ = DirectSummation().accelerations(pos, mass, 0.01)
        quad = TreeCode(theta=0.9, n_crit=64, quadrupole=True)
        a_q, _ = quad.accelerations(pos, mass, 0.01,
                                    algorithm="original")
        mono = TreeCode(theta=0.9, n_crit=64)
        a_m, _ = mono.accelerations(pos, mass, 0.01,
                                    algorithm="original")
        assert _rms(a_q, acc_ref) < _rms(a_m, acc_ref)

    def test_potential_consistency(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        _, pot_ref = DirectSummation().accelerations(pos, mass, 0.01)
        quad = TreeCode(theta=0.75, n_crit=64, quadrupole=True)
        _, pot_q = quad.accelerations(pos, mass, 0.01)
        rel = np.abs((pot_q - pot_ref) / pot_ref)
        assert np.sqrt(np.mean(rel**2)) < 1e-3

    def test_grape_backend_gets_only_particles(self, plummer_pos_mass):
        """Hybrid mode: the backend sees only direct particles, so its
        interaction count equals the particle-term total."""
        from repro.grape import GrapeBackend
        pos, mass = plummer_pos_mass
        backend = GrapeBackend()
        tc = TreeCode(theta=0.75, n_crit=64, backend=backend,
                      quadrupole=True)
        backend.reset_stats()
        tc.accelerations(pos, mass, 0.01)
        # weighted by group size:
        lists, groups = tc.last_lists, tc.last_groups
        expect = int(np.sum(np.diff(lists.part_off) * groups.count))
        assert backend.interactions == expect