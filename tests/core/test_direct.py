"""Direct-summation baseline tests."""

import numpy as np
import pytest

from repro.core.direct import DirectSummation, direct_accelerations
from repro.core.kernels import pairwise_accpot


class TestDirectAccelerations:
    def test_matches_naive_loop(self, rng):
        pos = rng.standard_normal((30, 3))
        mass = rng.uniform(0.5, 1.5, 30)
        eps = 0.05
        acc, pot = direct_accelerations(pos, mass, eps)
        for i in range(30):
            others = np.arange(30) != i
            a, p = pairwise_accpot(pos[i:i + 1], pos[others], mass[others],
                                   eps)
            assert np.allclose(acc[i], a[0], rtol=1e-12)
            assert pot[i] == pytest.approx(p[0], rel=1e-12)

    def test_two_body_analytic(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        mass = np.array([2.0, 3.0])
        acc, pot = direct_accelerations(pos, mass, 0.0)
        assert acc[0, 0] == pytest.approx(3.0)
        assert acc[1, 0] == pytest.approx(-2.0)
        assert pot[0] == pytest.approx(-3.0)
        assert pot[1] == pytest.approx(-2.0)

    def test_momentum_conservation(self, rng):
        pos = rng.standard_normal((100, 3))
        mass = rng.uniform(0.1, 2.0, 100)
        acc, _ = direct_accelerations(pos, mass, 0.02)
        assert np.allclose((mass[:, None] * acc).sum(axis=0), 0.0,
                           atol=1e-9)

    def test_energy_pairwise_identity(self, rng):
        """Sum_i m_i phi_i = 2 * Sum_{i<j} pair energy."""
        pos = rng.standard_normal((20, 3))
        mass = rng.uniform(0.5, 1.0, 20)
        eps = 0.1
        _, pot = direct_accelerations(pos, mass, eps)
        w = 0.0
        for i in range(20):
            for j in range(i + 1, 20):
                r2 = np.sum((pos[i] - pos[j]) ** 2) + eps**2
                w -= mass[i] * mass[j] / np.sqrt(r2)
        assert 0.5 * np.sum(mass * pot) == pytest.approx(w, rel=1e-12)

    def test_tile_invariance(self, rng):
        pos = rng.standard_normal((73, 3))
        mass = rng.uniform(0.1, 1.0, 73)
        a1, p1 = direct_accelerations(pos, mass, 0.01, tile=1 << 22)
        a2, p2 = direct_accelerations(pos, mass, 0.01, tile=128)
        assert np.allclose(a1, a2, rtol=1e-13)
        assert np.allclose(p1, p2, rtol=1e-13)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            direct_accelerations(np.zeros((3, 2)), np.ones(3), 0.1)
        with pytest.raises(ValueError):
            direct_accelerations(np.zeros((3, 3)), np.ones(4), 0.1)


class TestDirectSummation:
    def test_interface_matches_function(self, rng):
        pos = rng.standard_normal((40, 3))
        mass = rng.uniform(0.5, 1.0, 40)
        ds = DirectSummation()
        a1, p1 = ds.accelerations(pos, mass, 0.05)
        a2, p2 = direct_accelerations(pos, mass, 0.05)
        assert np.array_equal(a1, a2) and np.array_equal(p1, p2)

    def test_stats_record_n_squared(self, rng):
        ds = DirectSummation()
        ds.accelerations(rng.standard_normal((17, 3)), np.ones(17), 0.1)
        assert ds.last_stats["interactions"] == 17 * 17
        assert ds.last_stats["algorithm"] == "direct"

    def test_grape_backend_pluggable(self, rng):
        from repro.grape import GrapeBackend
        pos = rng.standard_normal((50, 3))
        mass = np.full(50, 1.0 / 50)
        ds = DirectSummation(backend=GrapeBackend())
        a_g, _ = ds.accelerations(pos, mass, 0.05)
        a_r, _ = direct_accelerations(pos, mass, 0.05)
        err = (np.linalg.norm(a_g - a_r, axis=1)
               / np.linalg.norm(a_r, axis=1))
        assert np.sqrt(np.mean(err**2)) < 0.02  # reduced precision, close
        assert ds.backend.model_seconds > 0.0
