"""Multipole moment tests: mass conservation, com containment, rmax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multipole import QUAD_INDEX, cell_sums, compute_moments
from repro.core.octree import build_octree


def _tree(pos, mass, **kw):
    return compute_moments(build_octree(pos, mass, **kw))


class TestCellSums:
    def test_scalar_sums_match_slices(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        sums = cell_sums(tree, tree.mass_sorted)
        for c in (0, tree.n_cells // 2, tree.n_cells - 1):
            s, n = int(tree.start[c]), int(tree.count[c])
            assert sums[c] == pytest.approx(tree.mass_sorted[s:s + n].sum())

    def test_vector_sums(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        sums = cell_sums(tree, tree.pos_sorted)
        assert sums.shape == (tree.n_cells, 3)
        assert np.allclose(sums[0], tree.pos_sorted.sum(axis=0))

    def test_shape_validation(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = build_octree(pos, mass)
        with pytest.raises(ValueError):
            cell_sums(tree, np.ones(tree.n_particles + 1))


class TestMonopole:
    def test_root_mass_is_total(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        assert tree.mass[0] == pytest.approx(mass.sum())

    def test_children_mass_sums_to_parent(self, clustered_2k):
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        internal = np.flatnonzero(~tree.is_leaf)
        for c in internal[:50]:
            kids = tree.child[c][tree.child[c] >= 0]
            assert tree.mass[kids].sum() == pytest.approx(tree.mass[c])

    def test_root_com_matches_direct(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass)
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        assert np.allclose(tree.com[0], com)

    def test_com_inside_cell(self, clustered_2k):
        """Center of mass cannot leave the cell cube."""
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        d = np.abs(tree.com - tree.center)
        tol = 1e-9 * tree.size
        assert np.all(d <= tree.half[:, None] + tol)

    def test_rmax_bounds_particles(self, clustered_2k):
        """Every particle of a cell is within rmax of its com."""
        pos, mass = clustered_2k
        tree = _tree(pos, mass)
        for c in range(0, tree.n_cells, max(1, tree.n_cells // 40)):
            s, n = int(tree.start[c]), int(tree.count[c])
            d = tree.pos_sorted[s:s + n] - tree.com[c]
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            assert np.all(r <= tree.rmax[c] + 1e-12)

    def test_equal_masses_com_is_mean(self, rng):
        pos = rng.uniform(0, 1, (256, 3))
        tree = _tree(pos, np.ones(256))
        assert np.allclose(tree.com[0], pos.mean(axis=0))

    def test_zero_mass_cells_fall_back_to_center(self, rng):
        pos = rng.uniform(0, 1, (64, 3))
        mass = np.zeros(64)
        tree = _tree(pos, mass)
        assert np.allclose(tree.com, tree.center)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 200), st.integers(0, 2**31 - 1))
    def test_property_mass_conservation(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((n, 3))
        mass = rng.uniform(0.1, 2.0, n)
        tree = _tree(pos, mass)
        # every level's cells jointly account for <= total mass; the
        # root accounts for all of it
        assert tree.mass[0] == pytest.approx(mass.sum(), rel=1e-12)
        leaves = tree.leaves()
        assert tree.mass[leaves].sum() == pytest.approx(mass.sum(),
                                                        rel=1e-12)


class TestQuadrupole:
    def test_traceless(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        tree = _tree(pos, mass, )
        compute_moments(tree, quadrupole=True)
        trace = tree.quad[:, 0] + tree.quad[:, 1] + tree.quad[:, 2]
        assert np.allclose(trace, 0.0, atol=1e-8 * np.abs(tree.quad).max())

    def test_against_direct_computation(self, rng):
        pos = rng.standard_normal((128, 3))
        mass = rng.uniform(0.5, 1.5, 128)
        tree = compute_moments(build_octree(pos, mass), quadrupole=True)
        # check root quadrupole against the definition
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        dx = pos - com
        r2 = np.einsum("ij,ij->i", dx, dx)
        for a, (i, j) in enumerate(QUAD_INDEX):
            q = np.sum(mass * (3.0 * dx[:, i] * dx[:, j]
                               - (r2 if i == j else 0.0)))
            assert tree.quad[0, a] == pytest.approx(q, rel=1e-9, abs=1e-9)

    def test_single_particle_cell_quad_zero(self):
        pos = np.array([[0.3, 0.4, 0.5]])
        tree = compute_moments(build_octree(pos, np.ones(1)),
                               quadrupole=True)
        assert np.allclose(tree.quad[0], 0.0, atol=1e-20)
