"""Differential harness for the kernel-set registry (docs/kernels.md).

The contract between the ``python`` reference set and the vectorized
``numpy`` set:

* **tree structure and Morton keys are bit-identical** -- both sets
  share the same construction kernels, and this suite pins that as an
  observable property, not an implementation accident;
* **forces and potentials agree to tight float tolerance** -- the
  batched evaluators re-associate sums, so exact equality is not
  required, but the error budget is a few ULPs per interaction;
* the selection is **uniform**: the same ``kernels=`` value works on
  :class:`~repro.core.treecode.TreeCode`,
  :class:`~repro.cosmo.periodic_tree.PeriodicTreeCode`, the serial
  engine and the pipeline engine, and unknown names fail loudly.
"""

import warnings

import numpy as np
import pytest

from repro.core import TreeCode
from repro.core.kernels import (KernelSet, kernel_names,
                                register_kernels, resolve_kernels)
from repro.cosmo.periodic_tree import PeriodicTreeCode
from repro.exec import PipelineEngine
from repro.grape import GrapeBackend
from repro.sim.models import plummer_model

#: relative tolerance of the batched-vs-reference force comparison;
#: the observed error is ~1e-15 (re-association of per-interaction
#: sums), so 1e-12 is two-plus decades of headroom without masking a
#: real kernel bug
RTOL = 1e-12

EPS = 0.01
BOX = 10.0

#: (n, geometry, theta) sweep; the large-N points run one theta to
#: keep the suite inside tier-1 budgets
CASES = [
    (64, "open", 0.75),
    (64, "periodic", 0.75),
    (1000, "open", 0.5),
    (1000, "open", 0.75),
    (1000, "periodic", 0.5),
    (1000, "periodic", 0.75),
    (10000, "open", 0.75),
    (10000, "periodic", 0.75),
]


@pytest.fixture(scope="module")
def snapshots():
    """Deterministic particle sets per (n, geometry)."""
    cache = {}
    for n in sorted({c[0] for c in CASES}):
        rng = np.random.default_rng(1000 + n)
        pos, _, mass = plummer_model(n, rng)
        cache[(n, "open")] = (pos, mass)
        cache[(n, "periodic")] = (rng.uniform(0.0, BOX, size=(n, 3)),
                                  np.full(n, 1.0 / n))
    return cache


@pytest.fixture(scope="module")
def ewald_table():
    """One correction table shared by every periodic case (it is
    position-independent and costs more than the sweeps themselves)."""
    from repro.cosmo.ewald import EwaldCorrectionTable
    return EwaldCorrectionTable(BOX)


def _treecode(geometry, theta, kernels, ewald_table, n_crit=256,
              engine=None):
    if geometry == "open":
        return TreeCode(theta=theta, n_crit=n_crit, kernels=kernels,
                        engine=engine)
    return PeriodicTreeCode(box=BOX, theta=theta, n_crit=n_crit,
                            kernels=kernels, ewald_table=ewald_table)


class TestRegistry:
    def test_known_names(self):
        assert "python" in kernel_names()
        assert "numpy" in kernel_names()

    def test_resolve_default_is_python(self):
        assert resolve_kernels(None).name == "python"
        assert resolve_kernels(None).batched is False

    def test_resolve_passthrough(self):
        ks = resolve_kernels("numpy")
        assert resolve_kernels(ks) is ks

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            resolve_kernels("fortran")

    def test_register_rejects_non_kernelset(self):
        with pytest.raises(TypeError):
            register_kernels("numpy")

    def test_shared_tree_kernels(self):
        """Tree bit-identity by construction: both sets run the very
        same build/traverse callables."""
        py, nx = resolve_kernels("python"), resolve_kernels("numpy")
        assert py.morton_keys is nx.morton_keys
        assert py.build_tree is nx.build_tree
        assert py.traverse is nx.traverse

    def test_uniform_rejection_across_surfaces(self):
        from repro.sim.recipes import build_force
        with pytest.raises(ValueError, match="unknown kernels"):
            TreeCode(kernels="bogus")
        with pytest.raises(ValueError, match="unknown kernels"):
            PeriodicTreeCode(box=1.0, kernels="bogus")
        with pytest.raises(ValueError, match="unknown kernels"):
            build_force(theta=0.75, ncrit=256, kernels="bogus")


class TestTreeBitIdentity:
    @pytest.mark.parametrize("n", [64, 1000])
    def test_morton_and_structure_identical(self, snapshots, n):
        pos, mass = snapshots[(n, "open")]
        py, nx = resolve_kernels("python"), resolve_kernels("numpy")
        corner, size = py.bounding_cube(pos)
        assert np.array_equal(py.morton_keys(pos, corner, size),
                              nx.morton_keys(pos, corner, size))
        tp = TreeCode(theta=0.75, n_crit=256, kernels=py).build(pos, mass)
        tn = TreeCode(theta=0.75, n_crit=256, kernels=nx).build(pos, mass)
        assert np.array_equal(tp.keys, tn.keys)
        assert np.array_equal(tp.order, tn.order)
        assert np.array_equal(tp.prefix, tn.prefix)
        assert np.array_equal(tp.start, tn.start)
        assert np.array_equal(tp.count, tn.count)
        assert np.array_equal(tp.child, tn.child)
        assert np.array_equal(tp.is_leaf, tn.is_leaf)


class TestForceEquivalence:
    @pytest.mark.parametrize("n,geometry,theta", CASES)
    def test_numpy_matches_python(self, snapshots, ewald_table, n,
                                  geometry, theta):
        pos, mass = snapshots[(n, geometry)]
        ref = _treecode(geometry, theta, "python", ewald_table)
        acc0, pot0 = ref.accelerations(pos, mass, EPS)
        tc = _treecode(geometry, theta, "numpy", ewald_table)
        acc1, pot1 = tc.accelerations(pos, mass, EPS)
        scale = np.max(np.abs(acc0))
        np.testing.assert_allclose(acc1, acc0, rtol=RTOL,
                                   atol=RTOL * scale)
        # potentials cancel strongly in periodic boxes, so judge them
        # against the field's magnitude, not each near-zero entry
        np.testing.assert_allclose(pot1, pot0, rtol=RTOL,
                                   atol=RTOL * np.max(np.abs(pot0)))
        # identical lists -> identical interaction counts
        assert (tc.last_stats.total_interactions
                == ref.last_stats.total_interactions)

    def test_quadrupole_path(self, snapshots):
        pos, mass = snapshots[(1000, "open")]
        ref = TreeCode(theta=0.75, n_crit=256, quadrupole=True,
                       kernels="python")
        acc0, pot0 = ref.accelerations(pos, mass, EPS)
        tc = TreeCode(theta=0.75, n_crit=256, quadrupole=True,
                      kernels="numpy")
        acc1, pot1 = tc.accelerations(pos, mass, EPS)
        scale = np.max(np.abs(acc0))
        np.testing.assert_allclose(acc1, acc0, rtol=RTOL,
                                   atol=RTOL * scale)
        # potentials cancel strongly in periodic boxes, so judge them
        # against the field's magnitude, not each near-zero entry
        np.testing.assert_allclose(pot1, pot0, rtol=RTOL,
                                   atol=RTOL * np.max(np.abs(pot0)))

    def test_grape_backend_counters_and_forces(self, snapshots):
        """On the emulator the batched path must preserve the *model*:
        same call count, same interaction totals, same modelled
        seconds -- the paper's time accounting must not notice the
        host-side vectorization."""
        pos, mass = snapshots[(1000, "open")]
        refs = {}
        for mode in ("python", "numpy"):
            gb = GrapeBackend()
            tc = TreeCode(theta=0.5, n_crit=256, backend=gb,
                          kernels=mode)
            acc, pot = tc.accelerations(pos, mass, EPS)
            refs[mode] = (acc, pot, gb.system.n_calls,
                          gb.system.interactions,
                          gb.system.model_seconds)
        a0, p0, calls0, inter0, sec0 = refs["python"]
        a1, p1, calls1, inter1, sec1 = refs["numpy"]
        scale = np.max(np.abs(a0))
        np.testing.assert_allclose(a1, a0, rtol=RTOL,
                                   atol=RTOL * scale)
        np.testing.assert_allclose(p1, p0, rtol=RTOL)
        assert calls1 == calls0
        assert inter1 == inter0
        assert sec1 == pytest.approx(sec0, rel=1e-12)


class TestEngines:
    def test_pipeline_numpy_bit_identical_to_serial_numpy(self,
                                                          snapshots):
        """Worker batches see CSR *slices*; the per-sink arithmetic is
        row-independent, so slicing must not change a single bit."""
        pos, mass = snapshots[(1000, "open")]
        tc = TreeCode(theta=0.75, n_crit=64, kernels="numpy")
        acc0, pot0 = tc.accelerations(pos, mass, EPS)
        with PipelineEngine(workers=2, batch_nj=2048) as eng:
            tcp = TreeCode(theta=0.75, n_crit=64, kernels="numpy",
                           engine=eng)
            acc1, pot1 = tcp.accelerations(pos, mass, EPS)
        assert np.array_equal(acc1, acc0)
        assert np.array_equal(pot1, pot0)

    def test_pipeline_numpy_matches_python_reference(self, snapshots):
        pos, mass = snapshots[(1000, "open")]
        ref = TreeCode(theta=0.75, n_crit=64, kernels="python")
        acc0, pot0 = ref.accelerations(pos, mass, EPS)
        with PipelineEngine(workers=2, batch_nj=2048) as eng:
            tcp = TreeCode(theta=0.75, n_crit=64, kernels="numpy",
                           engine=eng)
            acc1, pot1 = tcp.accelerations(pos, mass, EPS)
        scale = np.max(np.abs(acc0))
        np.testing.assert_allclose(acc1, acc0, rtol=RTOL,
                                   atol=RTOL * scale)
        # potentials cancel strongly in periodic boxes, so judge them
        # against the field's magnitude, not each near-zero entry
        np.testing.assert_allclose(pot1, pot0, rtol=RTOL,
                                   atol=RTOL * np.max(np.abs(pot0)))


@pytest.mark.chaos
class TestChaosSmoke:
    def test_worker_crash_recovers_bit_identical(self, snapshots):
        """The retry ladder re-executes crashed batches; because the
        batched evaluator *assigns* output rows (never accumulates),
        the recovered sweep equals the undisturbed one exactly."""
        pos, mass = snapshots[(1000, "open")]
        with PipelineEngine(workers=2, batch_nj=2048) as eng:
            tc = TreeCode(theta=0.75, n_crit=64, kernels="numpy",
                          engine=eng)
            acc0, pot0 = tc.accelerations(pos, mass, EPS)
        from repro.obs import MetricsRegistry
        reg = MetricsRegistry()
        with PipelineEngine(workers=2, batch_nj=2048,
                            faults="worker_crash@batch=1") as eng:
            tc = TreeCode(theta=0.75, n_crit=64, kernels="numpy",
                          engine=eng, metrics=reg)
            acc1, pot1 = tc.accelerations(pos, mass, EPS)
        assert np.array_equal(acc1, acc0)
        assert np.array_equal(pot1, pot0)
        assert reg.value("exec.fault.worker_deaths") >= 1
        assert reg.value("exec.fault.batch_retries") >= 1


class TestDeprecationShim:
    def test_legacy_eval_sink_override_downgrades_once(self, snapshots):
        """A pre-registry subclass that overrides ``_eval_sink``
        without declaring batch support keeps working on the python
        set, with a single warning per class."""
        pos, mass = snapshots[(64, "open")]

        class LegacyTree(TreeCode):
            def _eval_sink(self, tree, lists, sink, xi, eps):
                return super()._eval_sink(tree, lists, sink, xi, eps)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tc = LegacyTree(theta=0.75, n_crit=32, kernels="numpy")
            tc2 = LegacyTree(theta=0.75, n_crit=32, kernels="numpy")
        deps = [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
        assert len(deps) == 1
        assert tc.kernels.name == "python"
        assert tc2.kernels.name == "python"
        ref = TreeCode(theta=0.75, n_crit=32, kernels="python")
        acc0, pot0 = ref.accelerations(pos, mass, EPS)
        acc1, pot1 = tc.accelerations(pos, mass, EPS)
        assert np.array_equal(acc1, acc0)
        assert np.array_equal(pot1, pot0)
