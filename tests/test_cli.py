"""CLI tests (in-process: main() takes argv and an output stream)."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_reports_machine_and_price(self):
        code, text = run_cli("info")
        assert code == 0
        assert "peak_Gflops: 109.44" in text
        assert "GRAPE-5 processor board" in text
        assert "$40,870" in text


class TestRun:
    def test_tiny_run(self, tmp_path):
        ck = tmp_path / "ck.npz"
        fig = tmp_path / "fig4.pgm"
        code, text = run_cli("run", "--ngrid", "6", "--steps", "2",
                             "--z-final", "12",
                             "--checkpoint", str(ck),
                             "--figure4", str(fig))
        assert code == 0
        assert ck.exists() and fig.exists()
        assert fig.read_bytes().startswith(b"P5")
        assert "interactions" in text

    def test_host_backend(self):
        code, text = run_cli("run", "--ngrid", "5", "--steps", "1",
                             "--z-final", "16", "--backend", "host")
        assert code == 0
        assert "GRAPE model" in text  # column exists, shows '-'


class TestResume:
    def test_resume_continues(self, tmp_path):
        ck = tmp_path / "ck.npz"
        run_cli("run", "--ngrid", "6", "--steps", "2", "--z-final",
                "12", "--checkpoint", str(ck))
        ck2 = tmp_path / "ck2.npz"
        code, text = run_cli("resume", str(ck), "--steps", "2",
                             "--z-final", "8",
                             "--checkpoint-out", str(ck2))
        assert code == 0
        assert "resumed at" in text
        assert ck2.exists()
        from repro.sim.checkpoint import load_checkpoint
        from repro.core import DirectSummation
        sim = load_checkpoint(ck2, force=DirectSummation())
        assert len(sim.history) == 4

    def test_resume_past_target_is_noop(self, tmp_path):
        ck = tmp_path / "ck.npz"
        run_cli("run", "--ngrid", "5", "--steps", "1", "--z-final",
                "10", "--checkpoint", str(ck))
        code, text = run_cli("resume", str(ck), "--z-final", "20")
        assert code == 0
        assert "nothing to do" in text


class TestSweep:
    def test_sweep_table(self):
        code, text = run_cli("sweep", "--n", "1024")
        assert code == 0
        assert "n_crit" in text and "mean list" in text
        # four rows beyond the header
        assert len([l for l in text.splitlines() if l.strip()]) >= 6


class TestHalos:
    def test_halo_catalogue_from_checkpoint(self, tmp_path):
        # build a checkpoint with two obvious clumps
        import numpy as np
        from repro.core import DirectSummation
        from repro.sim.checkpoint import save_checkpoint
        from repro.sim.simulation import Simulation
        rng = np.random.default_rng(2)
        pos = np.concatenate([rng.normal(0, 0.4, (200, 3)),
                              rng.normal(30.0, 0.4, (150, 3))])
        sim = Simulation(pos=pos, vel=np.zeros_like(pos),
                         mass=np.full(350, 1e12), eps=0.1, G=1.0,
                         force=DirectSummation())
        ck = tmp_path / "clumps.npz"
        save_checkpoint(ck, sim)
        code, text = run_cli("halos", str(ck), "--b", "0.3")
        assert code == 0
        assert "halos = 2" in text
        assert "Press-Schechter" in text

    def test_no_halos_graceful(self, tmp_path):
        import numpy as np
        from repro.core import DirectSummation
        from repro.sim.checkpoint import save_checkpoint
        from repro.sim.simulation import Simulation
        rng = np.random.default_rng(3)
        pos = rng.uniform(-100, 100, (100, 3))
        sim = Simulation(pos=pos, vel=np.zeros_like(pos),
                         mass=np.ones(100), eps=0.1, G=1.0,
                         force=DirectSummation())
        ck = tmp_path / "field.npz"
        save_checkpoint(ck, sim)
        code, text = run_cli("halos", str(ck), "--b", "0.05")
        assert code == 0
        assert "halos = 0" in text
