"""CLI tests (in-process: main() takes argv and an output stream)."""

import io

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_reports_machine_and_price(self):
        code, text = run_cli("info")
        assert code == 0
        assert "peak_Gflops: 109.44" in text
        assert "GRAPE-5 processor board" in text
        assert "$40,870" in text


class TestRun:
    def test_tiny_run(self, tmp_path):
        ck = tmp_path / "ck.npz"
        fig = tmp_path / "fig4.pgm"
        code, text = run_cli("run", "--ngrid", "6", "--steps", "2",
                             "--z-final", "12",
                             "--checkpoint", str(ck),
                             "--figure4", str(fig))
        assert code == 0
        assert ck.exists() and fig.exists()
        assert fig.read_bytes().startswith(b"P5")
        assert "interactions" in text

    def test_host_backend(self):
        code, text = run_cli("run", "--ngrid", "5", "--steps", "1",
                             "--z-final", "16", "--backend", "host")
        assert code == 0
        assert "GRAPE model" in text  # column exists, shows '-'


class TestResume:
    def test_resume_continues(self, tmp_path):
        ck = tmp_path / "ck.npz"
        run_cli("run", "--ngrid", "6", "--steps", "2", "--z-final",
                "12", "--checkpoint", str(ck))
        ck2 = tmp_path / "ck2.npz"
        code, text = run_cli("resume", str(ck), "--steps", "2",
                             "--z-final", "8",
                             "--checkpoint-out", str(ck2))
        assert code == 0
        assert "resumed at" in text
        assert ck2.exists()
        from repro.sim.checkpoint import load_checkpoint
        from repro.core import DirectSummation
        sim = load_checkpoint(ck2, force=DirectSummation())
        assert len(sim.history) == 4

    def test_resume_past_target_is_noop(self, tmp_path):
        ck = tmp_path / "ck.npz"
        run_cli("run", "--ngrid", "5", "--steps", "1", "--z-final",
                "10", "--checkpoint", str(ck))
        code, text = run_cli("resume", str(ck), "--z-final", "20")
        assert code == 0
        assert "nothing to do" in text


class TestSweep:
    def test_sweep_table(self):
        code, text = run_cli("sweep", "--n", "1024")
        assert code == 0
        assert "n_crit" in text and "mean list" in text
        # four rows beyond the header
        assert len([l for l in text.splitlines() if l.strip()]) >= 6

    def test_sweep_numpy_kernels_same_counts(self):
        """--kernels numpy changes throughput, never the statistics."""
        code0, text0 = run_cli("sweep", "--n", "1024")
        code1, text1 = run_cli("sweep", "--n", "1024",
                               "--kernels", "numpy")
        assert code0 == 0 and code1 == 0
        assert text0 == text1


class TestKernelsSummary:
    def test_json_summary_reports_kernels_mode(self, tmp_path):
        import json
        summary = tmp_path / "s.json"
        code, _ = run_cli("run", "--ngrid", "5", "--steps", "1",
                          "--z-final", "16", "--kernels", "numpy",
                          "--json-summary", str(summary))
        assert code == 0
        assert json.loads(summary.read_text())["kernels"] == "numpy"


class TestObservability:
    def test_profile_trace_metrics_summary(self, tmp_path):
        import json
        trace = tmp_path / "t.jsonl"
        prom = tmp_path / "m.prom"
        summary = tmp_path / "s.json"
        code, text = run_cli("run", "--ngrid", "6", "--steps", "2",
                             "--z-final", "12", "--profile",
                             "--trace", str(trace),
                             "--metrics", str(prom),
                             "--json-summary", str(summary))
        assert code == 0
        # profile table printed with distinct phases
        for phase in ("tree_build", "traverse", "eval", "grape_force",
                      "total (wall)"):
            assert phase in text
        # trace JSONL: spans plus a metrics snapshot event
        events = [json.loads(l) for l in
                  trace.read_text().splitlines()]
        kinds = {e["type"] for e in events}
        assert {"meta", "span", "metrics"} <= kinds
        spans = [e for e in events if e["type"] == "span"]
        assert {"step", "tree_build", "eval"} <= {s["name"]
                                                  for s in spans}
        # prometheus text parses and agrees with the summary
        prom_text = prom.read_text()
        assert "# TYPE repro_sim_steps_total counter" in prom_text
        s = json.loads(summary.read_text())
        assert s["schema"] == "repro.run_summary/v1"
        assert s["steps"] == 2
        assert f"repro_sim_interactions_total {s['interactions']}" \
            in prom_text
        metrics_event = [e for e in events if e["type"] == "metrics"][0]
        assert (metrics_event["metrics"]["sim.interactions_total"]
                ["value"] == s["interactions"])

    def test_profile_without_outputs(self):
        code, text = run_cli("run", "--ngrid", "5", "--steps", "1",
                             "--z-final", "16", "--profile")
        assert code == 0
        assert "total (wall)" in text

    def test_sweep_profile(self):
        code, text = run_cli("sweep", "--n", "512", "--profile")
        assert code == 0
        assert "traverse" in text

    def test_resume_with_trace(self, tmp_path):
        ck = tmp_path / "ck.npz"
        run_cli("run", "--ngrid", "5", "--steps", "1", "--z-final",
                "12", "--checkpoint", str(ck))
        trace = tmp_path / "resume.jsonl"
        code, text = run_cli("resume", str(ck), "--steps", "1",
                             "--z-final", "8", "--trace", str(trace))
        assert code == 0
        assert trace.exists() and trace.read_text().strip()

    def test_verbose_flag_accepted(self, tmp_path, capsys):
        code, _ = run_cli("-v", "info")
        assert code == 0

    def test_flightrec_dumps_engine_faults(self, tmp_path):
        import json
        fr = tmp_path / "flightrec.jsonl"
        code, text = run_cli("run", "--ngrid", "6", "--steps", "1",
                             "--z-final", "16",
                             "--engine", "pipeline", "--workers", "2",
                             "--faults", "worker_crash@batch=0",
                             "--flightrec", str(fr))
        assert code == 0
        assert f"flight recorder dumped to {fr}" in text
        events = [json.loads(l) for l in
                  fr.read_text().splitlines()]
        assert events[0]["type"] == "flightrec_meta"
        kinds = {e.get("kind") for e in events[1:]}
        assert any(k.startswith("fault.") for k in kinds)
        assert "recovery" in kinds


class TestObsVerbs:
    @pytest.fixture(scope="class")
    def pipeline_trace(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("obs") / "t.jsonl"
        code, _ = run_cli("run", "--ngrid", "6", "--steps", "2",
                          "--z-final", "12", "--engine", "pipeline",
                          "--workers", "2", "--trace", str(trace))
        assert code == 0
        return trace

    def test_tree_renders_stitched_spans(self, pipeline_trace):
        code, text = run_cli("obs", "tree", str(pipeline_trace))
        assert code == 0
        assert "step" in text
        assert "exec.batch" in text
        assert "exec.queue_wait" in text
        code, pruned = run_cli("obs", "tree", str(pipeline_trace),
                               "--depth", "1")
        assert code == 0
        assert "exec.queue_wait" not in pruned

    def test_critical_path_partitions_wall(self, pipeline_trace):
        code, text = run_cli("obs", "critical-path",
                             str(pipeline_trace))
        assert code == 0
        assert "resource attribution" in text
        for res in ("grape", "worker", "host"):
            assert res in text
        assert "100.0%" in text
        assert "dominant chain" in text

    def test_diff_compares_two_traces(self, pipeline_trace,
                                      tmp_path):
        serial = tmp_path / "serial.jsonl"
        code, _ = run_cli("run", "--ngrid", "6", "--steps", "2",
                          "--z-final", "12", "--trace", str(serial))
        assert code == 0
        code, text = run_cli("obs", "diff", str(serial),
                             str(pipeline_trace))
        assert code == 0
        assert "delta s" in text
        assert "exec.batch" in text  # pipeline-only phase shows up

    def test_traceless_file_is_usage_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, text = run_cli("obs", "tree", str(empty))
        assert code == 2
        assert "no span events" in text


class TestHalos:
    def test_halo_catalogue_from_checkpoint(self, tmp_path):
        # build a checkpoint with two obvious clumps
        import numpy as np
        from repro.core import DirectSummation
        from repro.sim.checkpoint import save_checkpoint
        from repro.sim.simulation import Simulation
        rng = np.random.default_rng(2)
        pos = np.concatenate([rng.normal(0, 0.4, (200, 3)),
                              rng.normal(30.0, 0.4, (150, 3))])
        sim = Simulation(pos=pos, vel=np.zeros_like(pos),
                         mass=np.full(350, 1e12), eps=0.1, G=1.0,
                         force=DirectSummation())
        ck = tmp_path / "clumps.npz"
        save_checkpoint(ck, sim)
        code, text = run_cli("halos", str(ck), "--b", "0.3")
        assert code == 0
        assert "halos = 2" in text
        assert "Press-Schechter" in text

    def test_no_halos_graceful(self, tmp_path):
        import numpy as np
        from repro.core import DirectSummation
        from repro.sim.checkpoint import save_checkpoint
        from repro.sim.simulation import Simulation
        rng = np.random.default_rng(3)
        pos = rng.uniform(-100, 100, (100, 3))
        sim = Simulation(pos=pos, vel=np.zeros_like(pos),
                         mass=np.ones(100), eps=0.1, G=1.0,
                         force=DirectSummation())
        ck = tmp_path / "field.npz"
        save_checkpoint(ck, sim)
        code, text = run_cli("halos", str(ck), "--b", "0.05")
        assert code == 0
        assert "halos = 0" in text


class TestExitCodes:
    """Every subcommand signals usage errors with exit code 2 --
    bad arguments and missing files are reported on the output
    stream, never as tracebacks (satellite of ISSUE 5)."""

    @pytest.mark.parametrize("argv", [
        ("run", "--faults", "not-a-fault-plan"),
        ("run", "--kernels", "fortran"),
        ("resume", "/nonexistent/checkpoint.npz"),
        ("sweep", "--faults", "bogus@@selector"),
        ("sweep", "--kernels", "bogus"),
        ("bench", "run", "--kernels", "cuda", "e3"),
        ("halos", "/nonexistent/checkpoint.npz"),
        ("bench", "report", "/nonexistent/result.json"),
        ("serve", "--slots", "0"),
        ("submit", "-p", "missing-equals-sign"),
        ("submit", "--spec", "/nonexistent/spec.json"),
        ("jobs", "--cancel"),
        ("jobs", "--follow"),
        ("obs", "tree", "/nonexistent/trace.jsonl"),
        ("obs", "diff", "/nonexistent/a.jsonl",
         "/nonexistent/b.jsonl"),
    ], ids=lambda a: " ".join(a[:2]))
    def test_usage_errors_exit_2(self, argv):
        code, text = run_cli(*argv)
        assert code == 2
        assert argv[0] in text            # "<command>: <reason>"
        assert "Traceback" not in text
