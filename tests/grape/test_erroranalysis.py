"""Error-analysis tests (paper refs [12], [13] machinery)."""

import numpy as np
import pytest

from repro.grape.erroranalysis import (ErrorSample, pairwise_error_sample,
                                       required_fraction_bits,
                                       summed_error_sample)
from repro.grape.numerics import G5Numerics


class TestErrorSample:
    def test_from_errors(self):
        s = ErrorSample.from_errors(np.array([0.0, 0.1, 0.2]))
        assert s.max == pytest.approx(0.2)
        assert s.median == pytest.approx(0.1)
        assert s.n == 3
        assert s.mean <= s.rms <= s.max


class TestPairwiseSample:
    def test_default_near_paper_value(self):
        s = pairwise_error_sample(n=800)
        assert 1.5e-3 < s.rms < 6e-3  # ~0.3 %

    def test_more_bits_less_error(self):
        lo = pairwise_error_sample(G5Numerics(force_fraction_bits=6),
                                   n=400)
        hi = pairwise_error_sample(G5Numerics(force_fraction_bits=12),
                                   n=400)
        assert hi.rms < 0.3 * lo.rms

    def test_exact_mode_tiny_error(self):
        s = pairwise_error_sample(G5Numerics().exact(), n=200)
        assert s.max < 1e-12


class TestSummedSample:
    def test_summed_below_pairwise(self):
        """Uncorrelated pair errors average out: summed-force error is
        well below the pairwise RMS (the refs [12]/[13] mechanism)."""
        pair = pairwise_error_sample(n=800)
        summed = summed_error_sample(n_sinks=128, n_sources=2048)
        assert summed.rms < pair.rms

    def test_deterministic(self):
        a = summed_error_sample(n_sinks=32, n_sources=128)
        b = summed_error_sample(n_sinks=32, n_sources=128)
        assert a.rms == b.rms


class TestRequiredBits:
    def test_paper_target_needs_about_nine_bits(self):
        bits = required_fraction_bits(3.5e-3, n=300)
        assert 8 <= bits <= 11

    def test_loose_target_needs_fewer_bits(self):
        loose = required_fraction_bits(0.05, n=300)
        tight = required_fraction_bits(3.5e-3, n=300)
        assert loose < tight

    def test_validation(self):
        with pytest.raises(ValueError):
            required_fraction_bits(0.0)
        with pytest.raises(ValueError):
            required_fraction_bits(1e-12, n=100, max_bits=8)
