"""Chip/board/system hierarchy and backend-adapter tests."""

import numpy as np
import pytest

from repro.core.kernels import pairwise_accpot
from repro.grape.board import BoardMemoryError, ProcessorBoard
from repro.grape.chip import G5Chip
from repro.grape.system import Grape5System, GrapeBackend


class TestChip:
    def test_two_pipelines(self):
        assert G5Chip().n_pipelines == 2

    def test_peak(self):
        # 2 pipes x 90 MHz x 38 ops = 6.84 Gflops
        assert G5Chip().peak_flops == pytest.approx(6.84e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            G5Chip(n_pipelines=0)


class TestBoard:
    def test_board_peak(self):
        # 8 chips x 6.84 = 54.72 Gflops
        assert ProcessorBoard().peak_flops == pytest.approx(54.72e9)

    def test_load_and_compute(self, rng):
        b = ProcessorBoard()
        b.set_range(-6, 6)  # must cover the data: out-of-range saturates
        xj = rng.standard_normal((100, 3))
        mj = rng.uniform(0.5, 1.0, 100)
        b.load_j(xj, mj)
        assert b.nj == 100
        xi = rng.standard_normal((10, 3))
        # generous softening keeps any single near pair from dominating
        # the total force, so the summed error tracks the pairwise one
        a, p = b.compute(xi, 0.25)
        r, q = pairwise_accpot(xi, xj, mj, 0.25)
        rel = np.linalg.norm(a - r, axis=1) / np.linalg.norm(r, axis=1)
        assert np.sqrt(np.mean(rel**2)) < 0.02

    def test_partial_update_at_offset(self, rng):
        b = ProcessorBoard()
        b.set_range(-6, 6)
        xj = rng.standard_normal((20, 3))
        mj = rng.uniform(0.5, 1.0, 20)
        b.load_j(xj[:10], mj[:10])
        b.load_j(xj[10:], mj[10:], adr=10)
        assert b.nj == 20
        xi = rng.standard_normal((4, 3))
        a1, _ = b.compute(xi, 0.05)
        b2 = ProcessorBoard()
        b2.set_range(-6, 6)
        b2.load_j(xj, mj)
        a2, _ = b2.compute(xi, 0.05)
        assert np.array_equal(a1, a2)

    def test_memory_overflow(self):
        b = ProcessorBoard(jmem_capacity=16)
        with pytest.raises(BoardMemoryError):
            b.load_j(np.zeros((17, 3)), np.ones(17))
        with pytest.raises(BoardMemoryError):
            b.load_j(np.zeros((10, 3)), np.ones(10), adr=10)
        with pytest.raises(BoardMemoryError):
            b.set_n(17)

    def test_empty_board_zero_force(self):
        b = ProcessorBoard()
        a, p = b.compute(np.zeros((3, 3)), 0.1)
        assert np.allclose(a, 0) and np.allclose(p, 0)


class TestSystem:
    def test_paper_configuration(self):
        s = Grape5System()
        assert len(s.boards) == 2
        assert s.n_pipelines == 32
        assert s.peak_flops == pytest.approx(109.44e9)

    def test_describe_matches_paper(self):
        d = Grape5System().describe()
        assert d["boards"] == 2
        assert d["chips_per_board"] == 8
        assert d["pipelines_per_chip"] == 2
        assert d["pipelines_total"] == 32
        assert d["pipeline_clock_MHz"] == 90.0
        assert d["peak_Gflops"] == pytest.approx(109.44)

    def test_board_split_matches_single_board_sum(self, rng):
        """j split across boards + host sum == one-board computation."""
        xi = rng.standard_normal((8, 3))
        xj = rng.standard_normal((64, 3))
        mj = rng.uniform(0.5, 1.0, 64)
        s2 = Grape5System()
        s2.set_range(-3, 3)
        a2, p2 = s2.compute(xi, xj, mj, 0.05)
        from repro.grape.timing import GrapeTimingModel
        s1 = Grape5System(timing=GrapeTimingModel(n_boards=1))
        s1.set_range(-3, 3)
        a1, p1 = s1.compute(xi, xj, mj, 0.05)
        assert np.allclose(a1, a2, rtol=1e-12)
        assert np.allclose(p1, p2, rtol=1e-12)

    def test_counters_accumulate(self, rng):
        s = Grape5System()
        s.set_range(-3, 3)
        s.compute(rng.standard_normal((5, 3)), rng.standard_normal((7, 3)),
                  np.ones(7), 0.1)
        assert s.n_calls == 1
        assert s.interactions == 35
        assert s.model_seconds > 0
        s.compute(rng.standard_normal((2, 3)), rng.standard_normal((3, 3)),
                  np.ones(3), 0.1)
        assert s.n_calls == 2
        assert s.interactions == 41
        s.reset_stats()
        assert s.n_calls == 0 and s.interactions == 0
        assert s.model_seconds == 0.0

    def test_auto_range_on_first_call(self, rng):
        s = Grape5System()
        assert s.coordinate_range is None
        s.compute(rng.standard_normal((4, 3)), rng.standard_normal((4, 3)),
                  np.ones(4), 0.1)
        lo, hi = s.coordinate_range
        assert lo < hi

    def test_model_flops_below_peak(self, rng):
        s = Grape5System()
        s.set_range(-3, 3)
        s.compute(rng.standard_normal((200, 3)),
                  rng.standard_normal((5000, 3)), np.ones(5000), 0.1)
        assert 0 < s.model_flops < s.peak_flops

    def test_empty_call(self):
        s = Grape5System()
        a, p = s.compute(np.zeros((0, 3)), np.zeros((5, 3)), np.ones(5), 0.1)
        assert a.shape == (0, 3)
        assert s.n_calls == 0


class TestGrapeBackend:
    def test_forcebackend_interface(self, rng):
        b = GrapeBackend()
        xi = rng.standard_normal((6, 3))
        xj = rng.standard_normal((9, 3))
        a, p = b.compute(xi, xj, np.ones(9), 0.1)
        assert a.shape == (6, 3) and p.shape == (6,)
        assert b.interactions == 54
        assert b.model_seconds > 0
        b.reset_stats()
        assert b.interactions == 0

    def test_name(self):
        assert GrapeBackend().name == "grape5"


class TestJMemoryChunking:
    def test_oversized_jset_split_into_passes(self, rng):
        """A j-set beyond the particle memory is processed in
        sequential resident passes with identical results."""
        from repro.grape.board import ProcessorBoard
        from repro.grape.timing import GrapeTimingModel
        small = Grape5System(
            boards=[ProcessorBoard(jmem_capacity=32),
                    ProcessorBoard(jmem_capacity=32)])
        small.set_range(-4, 4)
        big = Grape5System()
        big.set_range(-4, 4)
        xi = rng.standard_normal((5, 3))
        xj = rng.standard_normal((200, 3))  # > 64 resident slots
        mj = rng.uniform(0.5, 1.0, 200)
        a1, p1 = small.compute(xi, xj, mj, 0.05)
        a2, p2 = big.compute(xi, xj, mj, 0.05)
        assert np.allclose(a1, a2, rtol=1e-12)
        assert np.allclose(p1, p2, rtol=1e-12)
        # the chunked system charged several calls
        assert small.n_calls == 4  # ceil(200/64)
        assert big.n_calls == 1
        assert small.interactions == big.interactions == 5 * 200

    def test_chunked_costs_more_model_time(self, rng):
        from repro.grape.board import ProcessorBoard
        small = Grape5System(
            boards=[ProcessorBoard(jmem_capacity=16),
                    ProcessorBoard(jmem_capacity=16)])
        small.set_range(-4, 4)
        big = Grape5System()
        big.set_range(-4, 4)
        xi = rng.standard_normal((4, 3))
        xj = rng.standard_normal((320, 3))
        mj = np.ones(320)
        small.compute(xi, xj, mj, 0.05)
        big.compute(xi, xj, mj, 0.05)
        # per-pass latency makes many small calls slower
        assert small.model_seconds > big.model_seconds


class TestCallRecording:
    def test_call_log_records_shapes(self, rng):
        s = Grape5System(record_calls=True)
        s.set_range(-3, 3)
        s.compute(rng.standard_normal((5, 3)), rng.standard_normal((7, 3)),
                  np.ones(7), 0.1)
        s.compute(rng.standard_normal((2, 3)), rng.standard_normal((9, 3)),
                  np.ones(9), 0.1)
        assert s.call_log == [(5, 7), (2, 9)]
        s.reset_stats()
        assert s.call_log == []

    def test_recording_off_by_default(self, rng):
        s = Grape5System()
        s.set_range(-3, 3)
        s.compute(rng.standard_normal((5, 3)), rng.standard_normal((7, 3)),
                  np.ones(7), 0.1)
        assert s.call_log == []
