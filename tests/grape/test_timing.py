"""Timing-model tests: the paper's machine constants and scaling laws."""

import math

import pytest

from repro.grape.timing import GrapeTimingModel, OPS_PER_INTERACTION


@pytest.fixture
def tm():
    return GrapeTimingModel()


class TestPaperConstants:
    def test_peak_is_109_44_gflops(self, tm):
        """Paper section 2: 'The theoretical peak speed of the GRAPE-5
        system is 109.44 Gflops.'"""
        assert tm.peak_flops == pytest.approx(109.44e9)

    def test_32_pipelines(self, tm):
        assert tm.n_pipelines == 32

    def test_38_ops_per_interaction(self):
        assert OPS_PER_INTERACTION == 38

    def test_vmp_is_six(self, tm):
        assert tm.vmp == 6

    def test_i_per_pass_is_96(self, tm):
        assert tm.i_per_pass == 96


class TestScaling:
    def test_zero_work_zero_time(self, tm):
        assert tm.force_call_time(0, 100) == 0.0
        assert tm.force_call_time(100, 0) == 0.0

    def test_pipeline_time_linear_in_nj(self, tm):
        t1 = tm.pipeline_time(96, 1000)
        t2 = tm.pipeline_time(96, 2000)
        assert t2 == pytest.approx(2.0 * t1)

    def test_pipeline_time_staircase_in_ni(self, tm):
        """All n_i within one pass cost the same; one more i-particle
        beyond a pass boundary adds a whole pass."""
        assert tm.pipeline_time(1, 1000) == tm.pipeline_time(96, 1000)
        assert (tm.pipeline_time(97, 1000)
                == pytest.approx(2.0 * tm.pipeline_time(96, 1000)))

    def test_call_time_monotone(self, tm):
        assert tm.force_call_time(500, 4000) <= tm.force_call_time(500, 8000)
        assert tm.force_call_time(500, 4000) <= tm.force_call_time(1000, 4000)

    def test_latency_floor(self, tm):
        assert tm.force_call_time(1, 1) >= tm.call_latency

    def test_sustained_approaches_peak(self, tm):
        """Big balanced calls must approach (but never exceed) peak."""
        s = tm.sustained_flops(96 * 2 * 100, 100_000)
        assert 0.5 * tm.peak_flops < s < tm.peak_flops

    def test_small_calls_far_from_peak(self, tm):
        s = tm.sustained_flops(10, 100)
        assert s < 0.01 * tm.peak_flops

    def test_two_boards_split_j(self, tm):
        """Doubling the boards halves the big-call pipeline time."""
        one = GrapeTimingModel(n_boards=1)
        t2 = tm.force_call_time(96, 100_000)
        t1 = one.force_call_time(96, 100_000)
        assert t1 > 1.5 * t2

    def test_paper_step_arithmetic(self, tm):
        """The headline run's per-step GRAPE time: ~1080 calls of
        (n_g=2000) x (L=13431) should take ~10-20 s -- the accelerator
        share of the paper's 30 s/step."""
        per_call = tm.force_call_time(2000, 13431)
        step = per_call * (2_159_038 / 2000.0)
        assert 5.0 < step < 25.0
