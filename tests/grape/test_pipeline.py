"""G5 pipeline datapath tests."""

import numpy as np
import pytest

from repro.core.kernels import pairwise_accpot
from repro.grape.numerics import G5Numerics
from repro.grape.pipeline import G5Pipeline


@pytest.fixture
def pipe():
    p = G5Pipeline()
    p.set_range(-4.0, 4.0)
    return p


class TestPipelineFunctional:
    def test_close_to_reference(self, pipe, rng):
        xi = rng.standard_normal((64, 3))
        xj = rng.standard_normal((256, 3))
        mj = rng.uniform(0.1, 1.0, 256)
        a, p = pipe.compute(xi, xj, mj, 0.05)
        r, q = pairwise_accpot(xi, xj, mj, 0.05)
        rel = np.linalg.norm(a - r, axis=1) / np.linalg.norm(r, axis=1)
        assert np.sqrt(np.mean(rel**2)) < 5e-3
        prel = np.abs((p - q) / q)
        assert np.sqrt(np.mean(prel**2)) < 5e-3

    def test_deterministic(self, pipe, rng):
        xi = rng.standard_normal((16, 3))
        xj = rng.standard_normal((32, 3))
        mj = rng.uniform(0.1, 1.0, 32)
        a1, p1 = pipe.compute(xi, xj, mj, 0.05)
        a2, p2 = pipe.compute(xi, xj, mj, 0.05)
        assert np.array_equal(a1, a2) and np.array_equal(p1, p2)

    def test_tile_invariance(self, rng):
        """Hardware semantics don't depend on the emulator's tiling."""
        import repro.grape.pipeline as pl
        xi = rng.standard_normal((7, 3))
        xj = rng.standard_normal((501, 3))
        mj = rng.uniform(0.1, 1.0, 501)
        pipe = G5Pipeline()
        pipe.set_range(-4, 4)
        a1, p1 = pipe.compute(xi, xj, mj, 0.02)
        old = pl._TILE
        try:
            pl._TILE = 64
            a2, p2 = pipe.compute(xi, xj, mj, 0.02)
        finally:
            pl._TILE = old
        assert np.array_equal(a1, a2) and np.array_equal(p1, p2)

    def test_empty_inputs(self, pipe):
        a, p = pipe.compute(np.zeros((0, 3)), np.zeros((4, 3)), np.ones(4),
                            0.1)
        assert a.shape == (0, 3)
        a, p = pipe.compute(np.zeros((4, 3)), np.zeros((0, 3)), np.ones(0),
                            0.1)
        assert np.allclose(a, 0) and np.allclose(p, 0)

    def test_self_pair_zero_force_softened(self, pipe):
        x = np.array([[0.5, -0.25, 1.0]])
        a, p = pipe.compute(x, x, np.ones(1), eps=0.1)
        assert np.allclose(a, 0.0)
        assert p[0] < 0  # -m/eps, as on hardware

    def test_self_pair_unsoftened_skipped(self, pipe):
        x = np.array([[0.5, -0.25, 1.0]])
        a, p = pipe.compute(x, x, np.ones(1), eps=0.0)
        assert np.allclose(a, 0.0) and p[0] == 0.0

    def test_accumulation_is_wide(self, rng):
        """Summation must not lose small contributions: adding many
        tiny far-away sources shifts the force by their analytic sum."""
        pipe = G5Pipeline(numerics=G5Numerics(position_bits=0,
                                              force_fraction_bits=20))
        xi = np.zeros((1, 3))
        # one big near source + 10000 identical tiny far sources
        xj = np.concatenate([np.array([[1.0, 0, 0]]),
                             np.tile([[100.0, 0, 0]], (10000, 1))])
        mj = np.concatenate([[1.0], np.full(10000, 1e-7)])
        a, _ = pipe.compute(xi, xj, mj, 0.0)
        expect = 1.0 + 10000 * 1e-7 / 100.0**2
        assert a[0, 0] == pytest.approx(expect, rel=1e-4)


class TestPositionQuantization:
    def test_quantization_error_scales_with_range(self, rng):
        """A wastefully wide g5_set_range degrades close-pair forces --
        the real library pitfall the emulator must reproduce."""
        xi = rng.uniform(-0.01, 0.01, (200, 3))
        xj = rng.uniform(-0.01, 0.01, (200, 3))
        mj = np.ones(200)
        num = G5Numerics(position_bits=16, force_fraction_bits=0)
        errs = []
        for span in (0.02, 20.0):
            pipe = G5Pipeline(numerics=num)
            pipe.set_range(-span, span)
            a, _ = pipe.compute(xi, xj, mj, 0.005)
            r, _ = pairwise_accpot(xi, xj, mj, 0.005)
            rel = np.linalg.norm(a - r, axis=1) / np.linalg.norm(r, axis=1)
            errs.append(np.sqrt(np.mean(rel**2)))
        assert errs[1] > 10.0 * errs[0]

    def test_no_range_passthrough(self, rng):
        """Without set_range the coordinates pass through exactly."""
        pipe = G5Pipeline(numerics=G5Numerics(position_bits=24,
                                              force_fraction_bits=0))
        xi = rng.standard_normal((20, 3))
        xj = rng.standard_normal((30, 3))
        mj = rng.uniform(0.5, 1.0, 30)
        a, p = pipe.compute(xi, xj, mj, 0.05)
        r, q = pairwise_accpot(xi, xj, mj, 0.05)
        assert np.allclose(a, r, rtol=1e-13)
