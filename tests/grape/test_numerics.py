"""Reduced-precision format tests, including the 0.3 % calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import pairwise_accpot
from repro.grape.numerics import (FixedPointFormat, G5Numerics, G5_NUMERICS,
                                  round_mantissa)
from repro.grape.pipeline import G5Pipeline


class TestRoundMantissa:
    def test_exact_at_representable(self):
        assert round_mantissa(np.array([0.5]), 8)[0] == 0.5
        assert round_mantissa(np.array([1.0]), 8)[0] == 1.0
        assert round_mantissa(np.array([-2.0]), 4)[0] == -2.0

    def test_relative_error_bound(self, rng):
        x = rng.uniform(-1e6, 1e6, 1000)
        x = x[x != 0]
        for bits in (4, 9, 16):
            r = round_mantissa(x, bits)
            rel = np.abs(r - x) / np.abs(x)
            assert np.all(rel <= 2.0 ** -(bits) )  # <= ulp at worst

    def test_zero_preserved(self):
        assert round_mantissa(np.array([0.0]), 9)[0] == 0.0

    def test_sign_preserved(self, rng):
        x = rng.uniform(-10, 10, 100)
        r = round_mantissa(x, 6)
        assert np.all(np.sign(r) == np.sign(round_mantissa(x, 60)))

    def test_disabled_rounding_identity(self, rng):
        x = rng.standard_normal(50)
        assert np.array_equal(round_mantissa(x, 0), x)
        assert np.array_equal(round_mantissa(x, -3), x)

    def test_idempotent(self, rng):
        x = rng.standard_normal(100)
        once = round_mantissa(x, 9)
        twice = round_mantissa(once, 9)
        assert np.array_equal(once, twice)

    @given(st.floats(min_value=1e-10, max_value=1e10), st.integers(2, 30))
    def test_property_error_bound(self, x, bits):
        r = float(round_mantissa(np.array([x]), bits)[0])
        assert abs(r - x) / x <= 2.0 ** -bits


class TestFixedPointFormat:
    def test_roundtrip_resolution(self, rng):
        fmt = FixedPointFormat(bits=16, xmin=-2.0, xmax=2.0)
        x = rng.uniform(-2.0, 2.0, 500)
        back = fmt.roundtrip(x)
        assert np.all(np.abs(back - x) <= 0.5 * fmt.resolution + 1e-15)

    def test_quantize_monotone(self, rng):
        fmt = FixedPointFormat(bits=12, xmin=0.0, xmax=1.0)
        x = np.sort(rng.uniform(0, 1, 100))
        q = fmt.quantize(x)
        assert np.all(np.diff(q) >= 0)

    def test_saturates_out_of_range(self):
        fmt = FixedPointFormat(bits=8, xmin=-1.0, xmax=1.0)
        q = fmt.quantize(np.array([-5.0, 5.0]))
        assert q[0] == 0
        assert q[1] == (1 << 8) - 1

    def test_resolution(self):
        fmt = FixedPointFormat(bits=10, xmin=0.0, xmax=1.0)
        assert fmt.resolution == pytest.approx(1.0 / 1024.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPointFormat(bits=1, xmin=0, xmax=1)
        with pytest.raises(ValueError):
            FixedPointFormat(bits=70, xmin=0, xmax=1)
        with pytest.raises(ValueError):
            FixedPointFormat(bits=8, xmin=1.0, xmax=1.0)

    @settings(max_examples=30)
    @given(st.integers(4, 30), st.floats(-100, 99), st.floats(0.1, 100))
    def test_property_roundtrip_bound(self, bits, lo, width):
        fmt = FixedPointFormat(bits=bits, xmin=lo, xmax=lo + width)
        x = np.linspace(lo, lo + width * (1 - 1e-9), 64)
        back = fmt.roundtrip(x)
        # half a grid cell in the interior; up to one cell at the top
        # edge, where the last representable value is xmax - resolution
        assert np.all(np.abs(back - x) <= fmt.resolution * (1 + 1e-9))


class TestPaperCalibration:
    def test_pairwise_error_near_paper_value(self, rng):
        """The default numerics must land the RMS *pairwise* force error
        at the paper's quoted ~0.3 % (section 2)."""
        n = 1200
        xi = rng.uniform(-1, 1, (n, 3))
        xj = rng.uniform(-1, 1, (n, 3))
        mj = rng.uniform(0.5, 1.5, n)
        eps = 0.02
        pipe = G5Pipeline()
        pipe.set_range(-1.5, 1.5)
        err = np.empty(n)
        for i in range(n):
            a, _ = pipe.compute(xi[i:i + 1], xj[i:i + 1], mj[i:i + 1], eps)
            r, _ = pairwise_accpot(xi[i:i + 1], xj[i:i + 1], mj[i:i + 1],
                                   eps)
            err[i] = (np.linalg.norm(a[0] - r[0])
                      / np.linalg.norm(r[0]))
        rms = float(np.sqrt(np.mean(err**2)))
        assert 1.5e-3 < rms < 6e-3  # ~0.3 %, the paper's figure

    def test_exact_mode_is_float64(self, rng):
        xi = rng.uniform(-1, 1, (50, 3))
        xj = rng.uniform(-1, 1, (80, 3))
        mj = rng.uniform(0.5, 1.5, 80)
        pipe = G5Pipeline(numerics=G5_NUMERICS.exact())
        pipe.set_range(-1.5, 1.5)
        a, p = pipe.compute(xi, xj, mj, 0.02)
        r, q = pairwise_accpot(xi, xj, mj, 0.02)
        assert np.allclose(a, r, rtol=1e-13)
        assert np.allclose(p, q, rtol=1e-13)

    def test_numerics_defaults(self):
        assert G5_NUMERICS.position_bits == 24
        assert G5_NUMERICS.force_fraction_bits == 9
        ex = G5_NUMERICS.exact()
        assert ex.position_bits <= 0 and ex.force_fraction_bits <= 0
