"""Cluster-model tests."""

import pytest

from repro.grape.cluster import ClusterConfig, GrapeCluster

PAPER_N = 2_159_038


class TestClusterConfig:
    def test_defaults_are_paper_node(self):
        c = ClusterConfig()
        assert c.n_nodes == 1 and c.boards_per_node == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(boards_per_node=0)


class TestGrapeCluster:
    def test_single_node_matches_paper_system(self):
        c = GrapeCluster()
        assert c.peak_flops == pytest.approx(109.44e9)
        assert c.cost().total_usd == pytest.approx(40_900, rel=2e-3)
        assert c.comm_time(PAPER_N) == 0.0

    def test_single_node_report_matches_headline(self):
        r = GrapeCluster().report(PAPER_N, 2000.0, 999, 1 / 6.18)
        assert r["total_hours"] == pytest.approx(8.37, rel=0.10)
        assert r["raw_Gflops"] == pytest.approx(36.4, rel=0.10)
        assert r["usd_per_Mflops"] == pytest.approx(6.9, rel=0.10)

    def test_peak_scales_with_nodes_and_boards(self):
        c = GrapeCluster(config=ClusterConfig(n_nodes=4,
                                              boards_per_node=3))
        assert c.peak_flops == pytest.approx(4 * 3 * 54.72e9)

    def test_more_nodes_faster_wall_clock(self):
        one = GrapeCluster()
        four = GrapeCluster(config=ClusterConfig(n_nodes=4))
        assert (four.step_time(PAPER_N, 2000.0)
                < one.step_time(PAPER_N, 2000.0))

    def test_speedup_below_linear(self):
        """Communication and per-node fixed work keep the speedup
        below p."""
        one = GrapeCluster().step_time(PAPER_N, 2000.0)
        eight = GrapeCluster(
            config=ClusterConfig(n_nodes=8)).step_time(PAPER_N, 2000.0)
        assert one / eight < 8.0
        assert one / eight > 3.0

    def test_cluster_cost_includes_network(self):
        c4 = GrapeCluster(config=ClusterConfig(n_nodes=4))
        expect = 4 * (2 * 1.65e6 + 1.4e6 + 0.1e6)
        assert c4.cost().total_jpy == pytest.approx(expect)

    def test_comm_time_grows_with_nodes(self):
        c2 = GrapeCluster(config=ClusterConfig(n_nodes=2))
        c16 = GrapeCluster(config=ClusterConfig(n_nodes=16))
        assert c16.comm_time(PAPER_N) > 0
        # halo per node shrinks but latency term grows; total per-step
        # comm across regimes stays bounded
        assert c2.comm_time(PAPER_N) < 10.0

    def test_more_boards_single_node_tradeoff(self):
        """Extra boards speed the pipelines but cost money; at the
        paper's N the $/Mflops curve over boards has its minimum at a
        small board count (the paper chose 2)."""
        reports = [GrapeCluster(config=ClusterConfig(
            boards_per_node=b)).report(PAPER_N, 2000.0, 999, 1 / 6.18)
            for b in (1, 2, 4, 8)]
        prices = [r["usd_per_Mflops"] for r in reports]
        best = min(range(4), key=lambda i: prices[i])
        assert best in (0, 1, 2)  # 1, 2 or 4 boards -- not 8
        # wall clock keeps falling with boards, with diminishing returns
        hours = [r["total_hours"] for r in reports]
        assert hours[0] > hours[1] > hours[2]
