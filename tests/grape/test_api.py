"""libg5-style API tests: protocol order, results, error handling."""

import numpy as np
import pytest

from repro.core.kernels import pairwise_accpot
from repro.grape import api
from repro.grape.system import Grape5System
from repro.grape.timing import GrapeTimingModel


@pytest.fixture(autouse=True)
def _clean_api_state():
    """Ensure each test starts and ends with the device closed."""
    if api._state.system is not None:
        api.g5_close()
    yield
    if api._state.system is not None:
        api.g5_close()


def _full_sequence(rng, n_i=16, n_j=64):
    xj = rng.standard_normal((n_j, 3))
    mj = rng.uniform(0.5, 1.0, n_j)
    xi = rng.standard_normal((n_i, 3))
    api.g5_open()
    api.g5_set_range(-4.0, 4.0)
    api.g5_set_eps_to_all(0.05)
    api.g5_set_xmj(0, n_j, xj, mj)
    api.g5_set_xi(n_i, xi)
    api.g5_run()
    acc, pot = api.g5_get_force(n_i)
    api.g5_close()
    return xi, xj, mj, acc, pot


class TestProtocol:
    def test_canonical_sequence(self, rng):
        xi, xj, mj, acc, pot = _full_sequence(rng)
        ref_a, ref_p = pairwise_accpot(xi, xj, mj, 0.05)
        rel = np.linalg.norm(acc - ref_a, axis=1) / np.linalg.norm(ref_a,
                                                                   axis=1)
        assert np.max(rel) < 0.05

    def test_double_open_rejected(self):
        api.g5_open()
        with pytest.raises(api.G5Error):
            api.g5_open()

    def test_calls_require_open(self):
        with pytest.raises(api.G5Error):
            api.g5_set_range(0, 1)
        with pytest.raises(api.G5Error):
            api.g5_run()
        with pytest.raises(api.G5Error):
            api.g5_close()

    def test_run_requires_xi(self, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        with pytest.raises(api.G5Error):
            api.g5_run()

    def test_run_requires_j(self, rng):
        api.g5_open()
        api.g5_set_xi(4, rng.standard_normal((4, 3)))
        with pytest.raises(api.G5Error):
            api.g5_run()

    def test_get_force_requires_run(self, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        api.g5_set_xi(4, rng.standard_normal((4, 3)))
        with pytest.raises(api.G5Error):
            api.g5_get_force(4)

    def test_get_more_forces_than_computed(self, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        api.g5_run()
        with pytest.raises(api.G5Error):
            api.g5_get_force(3)

    def test_negative_eps_rejected(self):
        api.g5_open()
        with pytest.raises(api.G5Error):
            api.g5_set_eps_to_all(-0.1)

    def test_bad_shapes_rejected(self, rng):
        api.g5_open()
        with pytest.raises(api.G5Error):
            api.g5_set_xmj(0, 4, rng.standard_normal((5, 3)), np.ones(4))
        with pytest.raises(api.G5Error):
            api.g5_set_xi(4, rng.standard_normal((4, 2)))

    def test_memory_bounds(self, rng):
        api.g5_open()
        cap = api._state.xj.shape[0]
        with pytest.raises(api.G5Error):
            api.g5_set_n(cap + 1)
        with pytest.raises(api.G5Error):
            api.g5_set_xmj(cap - 1, 2, rng.standard_normal((2, 3)),
                           np.ones(2))


class TestBehaviour:
    def test_partial_j_update(self, rng):
        """Address-offset writes compose, like the hardware memory."""
        xj = rng.standard_normal((8, 3))
        mj = rng.uniform(0.5, 1.0, 8)
        xi = rng.standard_normal((3, 3))
        api.g5_open()
        api.g5_set_range(-4, 4)
        api.g5_set_eps_to_all(0.05)
        api.g5_set_xmj(0, 5, xj[:5], mj[:5])
        api.g5_set_xmj(5, 3, xj[5:], mj[5:])
        api.g5_set_xi(3, xi)
        api.g5_run()
        acc, _ = api.g5_get_force(3)
        ref, _ = pairwise_accpot(xi, xj, mj, 0.05)
        assert np.max(np.abs(acc - ref) / np.abs(ref).max()) < 0.05

    def test_introspection(self):
        api.g5_open()
        assert api.g5_get_number_of_pipelines() == 32
        assert api.g5_get_peak_flops() == pytest.approx(109.44e9)

    def test_custom_system(self):
        sys1 = Grape5System(timing=GrapeTimingModel(n_boards=1))
        handle = api.g5_open(sys1)
        assert handle is sys1
        assert api.g5_get_number_of_pipelines() == 16

    def test_forces_are_copies(self, rng):
        """Mutating returned arrays must not corrupt staged state."""
        api.g5_open()
        api.g5_set_range(-4, 4)
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        api.g5_run()
        a1, p1 = api.g5_get_force(2)
        a1[:] = 0.0
        a2, _ = api.g5_get_force(2)
        assert not np.allclose(a2, 0.0)
