"""Protocol-misuse matrix for the g5 API and G5Context isolation.

Complements tests/grape/test_api.py: that file checks the canonical
sequence and results; this one sweeps every call against wrong-state
invocation (before open, after close), checks that a close/reopen
cycle leaves no residue, and that independent contexts never clobber
each other's staged state.
"""

import numpy as np
import pytest

from repro.grape import api
from repro.grape.api import G5Context, G5Error
from repro.grape.system import Grape5System
from repro.grape.timing import GrapeTimingModel


@pytest.fixture(autouse=True)
def _clean_api_state():
    if api._state.system is not None:
        api.g5_close()
    yield
    if api._state.system is not None:
        api.g5_close()


def _stage_and_run(ctx, rng, n_i=4, n_j=16):
    xj = rng.standard_normal((n_j, 3))
    mj = np.ones(n_j)
    ctx.set_range(-4.0, 4.0)
    ctx.set_eps_to_all(0.05)
    ctx.set_xmj(0, n_j, xj, mj)
    ctx.set_xi(n_i, xj[:n_i])
    ctx.run()


# every module-level call that requires an open device, with minimal
# valid-looking arguments
_CALLS = [
    ("g5_close", lambda: api.g5_close()),
    ("g5_set_range", lambda: api.g5_set_range(0.0, 1.0)),
    ("g5_set_eps_to_all", lambda: api.g5_set_eps_to_all(0.01)),
    ("g5_set_n", lambda: api.g5_set_n(1)),
    ("g5_set_xmj", lambda: api.g5_set_xmj(0, 1, np.zeros((1, 3)),
                                          np.ones(1))),
    ("g5_set_xi", lambda: api.g5_set_xi(1, np.zeros((1, 3)))),
    ("g5_run", lambda: api.g5_run()),
    ("g5_get_force", lambda: api.g5_get_force(1)),
    ("g5_get_number_of_pipelines",
     lambda: api.g5_get_number_of_pipelines()),
    ("g5_get_peak_flops", lambda: api.g5_get_peak_flops()),
]


class TestCallOrderMatrix:
    @pytest.mark.parametrize("name,call", _CALLS,
                             ids=[c[0] for c in _CALLS])
    def test_before_open_raises(self, name, call):
        with pytest.raises(G5Error):
            call()

    @pytest.mark.parametrize("name,call", _CALLS,
                             ids=[c[0] for c in _CALLS])
    def test_use_after_close_raises(self, name, call, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        api.g5_run()
        api.g5_close()
        with pytest.raises(G5Error):
            call()

    def test_double_open_rejected_and_state_kept(self):
        sys1 = api.g5_open()
        with pytest.raises(G5Error):
            api.g5_open()
        # the failed second open must not have replaced the system
        assert api._state.system is sys1

    def test_set_xi_invalidates_previous_run(self, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        api.g5_run()
        api.g5_get_force(2)
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        with pytest.raises(G5Error):
            api.g5_get_force(2)


class TestCloseReopen:
    def test_reopen_starts_clean(self, rng):
        api.g5_open()
        api.g5_set_eps_to_all(0.5)
        api.g5_set_xmj(0, 8, rng.standard_normal((8, 3)), np.ones(8))
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        api.g5_run()
        api.g5_close()

        api.g5_open()
        st = api._state
        assert st.nj == 0 and st.xi is None and not st.ran
        assert st.acc is None and st.pot is None
        assert np.all(st.xj == 0.0) and np.all(st.mj == 0.0)
        # j-memory was cleared, so running again needs a fresh j-set
        api.g5_set_xi(1, np.zeros((1, 3)))
        with pytest.raises(G5Error):
            api.g5_run()

    def test_many_cycles(self):
        for _ in range(3):
            api.g5_open()
            api.g5_close()
        assert api._state.system is None


class TestMemoryBounds:
    def test_set_n_beyond_capacity(self):
        api.g5_open()
        cap = api._state.xj.shape[0]
        with pytest.raises(G5Error):
            api.g5_set_n(cap + 1)
        with pytest.raises(G5Error):
            api.g5_set_n(-1)

    def test_set_xmj_beyond_capacity(self, rng):
        api.g5_open()
        cap = api._state.xj.shape[0]
        with pytest.raises(G5Error):
            api.g5_set_xmj(cap, 1, rng.standard_normal((1, 3)),
                           np.ones(1))
        with pytest.raises(G5Error):
            api.g5_set_xmj(-1, 1, rng.standard_normal((1, 3)),
                           np.ones(1))


class TestContextIsolation:
    def test_two_contexts_do_not_clobber(self, rng):
        small = Grape5System(timing=GrapeTimingModel(n_boards=1))
        with G5Context().open() as c1, G5Context().open(small) as c2:
            _stage_and_run(c1, rng, n_i=4, n_j=16)
            _stage_and_run(c2, rng, n_i=2, n_j=8)
            # c2's staging must not have disturbed c1's results
            a1, p1 = c1.get_force(4)
            assert c1.nj == 16 and c2.nj == 8
            assert c1.get_number_of_pipelines() == 32
            assert c2.get_number_of_pipelines() == 16
            a1b, _ = c1.get_force(4)
            assert np.array_equal(a1, a1b)

    def test_default_context_is_a_g5context(self):
        assert isinstance(api._state, G5Context)

    def test_module_shims_hit_default_context(self, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        assert api._state.nj == 4
        # an explicit context is untouched by the shims
        ctx = G5Context()
        assert ctx.system is None

    def test_context_manager_closes(self):
        ctx = G5Context()
        with ctx.open():
            assert ctx.system is not None
        assert ctx.system is None
        ctx.open()  # reusable afterwards
        ctx.close()


class TestGetForceOutParams:
    def test_out_parameter_overload(self, rng):
        api.g5_open()
        api.g5_set_range(-4, 4)
        api.g5_set_eps_to_all(0.05)
        api.g5_set_xmj(0, 8, rng.standard_normal((8, 3)), np.ones(8))
        api.g5_set_xi(3, rng.standard_normal((3, 3)))
        api.g5_run()
        ref_a, ref_p = api.g5_get_force(3)
        a = np.empty((3, 3))
        p = np.empty(3)
        ra, rp = api.g5_get_force(3, a, p)
        assert ra is a and rp is p
        assert np.array_equal(a, ref_a) and np.array_equal(p, ref_p)

    def test_out_parameter_validation(self, rng):
        api.g5_open()
        api.g5_set_xmj(0, 4, rng.standard_normal((4, 3)), np.ones(4))
        api.g5_set_xi(2, rng.standard_normal((2, 3)))
        api.g5_run()
        with pytest.raises(G5Error):
            api.g5_get_force(2, np.empty((2, 3)), None)
        with pytest.raises(G5Error):
            api.g5_get_force(2, np.empty((3, 3)), np.empty(2))


class TestConcurrencyLatch:
    """acquire()/release(): the single-holder latch behind GRAPE
    leasing (repro.serve).  Double-release and cross-thread use must
    fail loudly instead of corrupting staged state."""

    def test_acquire_release_roundtrip(self, rng):
        ctx = G5Context().open()
        assert not ctx.held
        assert ctx.acquire() is ctx
        assert ctx.held
        _stage_and_run(ctx, rng)  # holder thread works normally
        ctx.release()
        assert not ctx.held
        ctx.close()

    def test_double_acquire_raises(self):
        ctx = G5Context().open()
        ctx.acquire()
        with pytest.raises(G5Error, match="already acquired"):
            ctx.acquire()
        ctx.release()
        ctx.close()

    def test_double_release_raises(self):
        ctx = G5Context().open()
        ctx.acquire()
        ctx.release()
        with pytest.raises(G5Error, match="double-release"):
            ctx.release()
        ctx.close()

    def test_release_without_acquire_raises(self):
        ctx = G5Context().open()
        with pytest.raises(G5Error):
            ctx.release()
        ctx.close()

    def test_cross_thread_use_while_held_raises(self, rng):
        import threading
        ctx = G5Context().open()
        ctx.acquire()
        errors = []

        def intruder():
            for call in (lambda: ctx.set_eps_to_all(0.01),
                         lambda: ctx.set_n(1),
                         lambda: ctx.run(),
                         lambda: ctx.release()):
                try:
                    call()
                except G5Error as e:
                    errors.append(str(e))

        t = threading.Thread(target=intruder)
        t.start()
        t.join()
        assert len(errors) == 4
        # the holder is unaffected by the failed intrusion
        _stage_and_run(ctx, rng)
        ctx.release()
        ctx.close()

    def test_unheld_context_is_open_to_any_thread(self, rng):
        import threading
        ctx = G5Context().open()
        ok = []

        def worker():
            _stage_and_run(ctx, rng)
            ok.append(True)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert ok  # back-compat: no latch, no restriction

    def test_acquire_then_handoff_between_threads(self):
        """The lease broker pattern: thread A acquires, works,
        releases; thread B then acquires the same context."""
        import threading
        ctx = G5Context().open()
        order = []

        def hold(name):
            ctx.acquire()
            order.append(name)
            ctx.release()

        a = threading.Thread(target=hold, args=("a",))
        a.start(); a.join()
        b = threading.Thread(target=hold, args=("b",))
        b.start(); b.join()
        assert order == ["a", "b"]
        ctx.close()

    def test_concurrent_acquire_admits_exactly_one(self):
        import threading
        ctx = G5Context().open()
        barrier = threading.Barrier(8)
        wins, losses = [], []

        def contend():
            barrier.wait()
            try:
                ctx.acquire()
                wins.append(threading.get_ident())
            except G5Error:
                losses.append(threading.get_ident())

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1 and len(losses) == 7
        ctx._holder = None  # the winner thread is gone; force-unlatch
        ctx.close()
