"""Cost-ledger tests against the paper's section 4."""

import pytest

from repro.host.cost import CostItem, PAPER_SYSTEM_COST, SystemCost


class TestPaperLedger:
    def test_total_jpy_is_4_7_million(self):
        """'The total cost of the GRAPE-5 system is 4.7 M JYE.'"""
        assert PAPER_SYSTEM_COST.total_jpy == pytest.approx(4.7e6)

    def test_total_usd_about_40900(self):
        """'... is about 40,900 dollars' at 115 JPY/USD."""
        assert PAPER_SYSTEM_COST.total_usd == pytest.approx(40_900, rel=1e-3)

    def test_board_price(self):
        board = PAPER_SYSTEM_COST.items[0]
        assert board.unit_price_jpy == pytest.approx(1.65e6)
        assert board.quantity == 2

    def test_host_price(self):
        host = PAPER_SYSTEM_COST.items[1]
        assert host.total_jpy == pytest.approx(1.4e6)

    def test_price_per_mflops_headline(self):
        """$40,900 / 5.92 Gflops ~ $6.9/Mflops, reported as $7.0."""
        p = PAPER_SYSTEM_COST.price_per_mflops(5.92e9)
        assert p == pytest.approx(6.91, abs=0.05)
        assert round(p, 0) == 7.0

    def test_ledger_rows(self):
        rows = PAPER_SYSTEM_COST.ledger()
        assert rows[-1]["item"] == "TOTAL"
        assert rows[-1]["total_MJPY"] == pytest.approx(4.7)
        assert len(rows) == 3


class TestSystemCost:
    def test_exchange_rate_scales_usd(self):
        c1 = SystemCost(items=(CostItem("x", 1.15e6),), jpy_per_usd=115.0)
        c2 = SystemCost(items=(CostItem("x", 1.15e6),), jpy_per_usd=230.0)
        assert c1.total_usd == pytest.approx(2.0 * c2.total_usd)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemCost(items=(), jpy_per_usd=0.0)
        with pytest.raises(ValueError):
            PAPER_SYSTEM_COST.price_per_mflops(0.0)

    def test_quantity_multiplies(self):
        item = CostItem("board", 1.0e6, 3)
        assert item.total_jpy == pytest.approx(3.0e6)
