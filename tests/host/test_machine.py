"""Host-machine model tests."""

import pytest

from repro.host.machine import ALPHASERVER_DS10, HostMachine


class TestHostMachine:
    def test_identity(self):
        assert "DS10" in ALPHASERVER_DS10.name
        assert ALPHASERVER_DS10.clock_hz == pytest.approx(466e6)
        assert ALPHASERVER_DS10.memory_bytes == 512 * 1024 * 1024

    def test_costs_scale_linearly(self):
        h = ALPHASERVER_DS10
        assert h.tree_build_time(2_000_000) == pytest.approx(
            2.0 * h.tree_build_time(1_000_000))
        assert h.traverse_time(10**7) == pytest.approx(
            10.0 * h.traverse_time(10**6))
        assert h.integrate_time(100) == pytest.approx(
            100 * h.t_integrate)

    def test_step_time_composition(self):
        h = HostMachine()
        n, groups, mll = 10_000, 20, 500.0
        t = h.step_time(n, groups, mll)
        parts = (h.tree_build_time(n) + h.traverse_time(int(groups * mll))
                 + h.integrate_time(n))
        assert t >= parts  # marshalling adds on top
        assert t < 2.0 * parts + 1.0

    def test_paper_scale_step_is_order_10s(self):
        """At the headline operating point the host share of a step
        must be O(10 s) -- about half the 30 s/step wall clock."""
        h = ALPHASERVER_DS10
        n = 2_159_038
        t = h.step_time(n, int(n / 2000), 13_431.0)
        assert 8.0 < t < 25.0

    def test_marshal_grows_with_both_sides(self):
        h = HostMachine()
        assert h.marshal_time(100, 1000) < h.marshal_time(100, 2000)
        assert h.marshal_time(100, 1000) < h.marshal_time(200, 1000)
