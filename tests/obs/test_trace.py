"""Span tracer: nesting, timing, attributes, no-op path."""

import time

import pytest

from repro.obs import NULL_TRACER, NullSpan, NullTracer, Span, Tracer, as_tracer


class TestSpanNesting:
    def test_roots_and_children(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
            with tr.span("c"):
                with tr.span("d"):
                    pass
        assert [r.name for r in tr.roots] == ["a"]
        a = tr.roots[0]
        assert [c.name for c in a.children] == ["b", "c"]
        assert [c.name for c in a.children[1].children] == ["d"]

    def test_sequential_roots(self):
        tr = Tracer()
        with tr.span("x"):
            pass
        with tr.span("y"):
            pass
        assert [r.name for r in tr.roots] == ["x", "y"]

    def test_walk_preorder(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
            with tr.span("d"):
                pass
        assert [s.name for s in tr.roots[0].walk()] == ["a", "b", "c", "d"]
        assert [s.name for s in tr.iter_spans()] == ["a", "b", "c", "d"]

    def test_current_tracks_stack(self):
        tr = Tracer()
        assert tr.current is None
        with tr.span("a") as a:
            assert tr.current is a
            with tr.span("b") as b:
                assert tr.current is b
            assert tr.current is a
        assert tr.current is None


class TestSpanTiming:
    def test_duration_positive_and_monotone(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.01)
        outer = tr.roots[0]
        inner = outer.children[0]
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration
        assert outer.t_start <= inner.t_start <= inner.t_end <= outer.t_end

    def test_self_seconds_excludes_children(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                time.sleep(0.01)
        outer = tr.roots[0]
        assert outer.self_seconds == pytest.approx(
            outer.duration - outer.children[0].duration, abs=1e-9)

    def test_injected_clock(self):
        ticks = iter([10.0, 11.0, 15.0, 20.0])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("a"):
            with tr.span("b"):
                pass
        a = tr.roots[0]
        assert a.duration == 10.0
        assert a.children[0].duration == 4.0
        assert a.self_seconds == 6.0

    def test_open_span_has_zero_duration(self):
        sp = Span("open")
        sp.t_start = 5.0
        assert sp.duration == 0.0


class TestAttributes:
    def test_kwargs_and_set(self):
        tr = Tracer()
        with tr.span("a", n=10) as sp:
            sp.set(extra="yes", m=3)
        assert tr.roots[0].attrs == {"n": 10, "extra": "yes", "m": 3}

    def test_record_synthetic_child(self):
        tr = Tracer()
        with tr.span("parent"):
            tr.record("kernel", 0.25, calls=7)
        parent = tr.roots[0]
        assert [c.name for c in parent.children] == ["kernel"]
        k = parent.children[0]
        assert k.duration == pytest.approx(0.25, abs=1e-6)
        assert k.attrs["calls"] == 7

    def test_record_at_top_level(self):
        tr = Tracer()
        tr.record("lonely", 0.1)
        assert [r.name for r in tr.roots] == ["lonely"]


class TestReset:
    def test_reset_clears(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        tr.reset()
        assert tr.roots == [] and tr.current is None


class TestNullTracer:
    def test_as_tracer(self):
        assert as_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert as_tracer(tr) is tr

    def test_null_span_is_shared_and_inert(self):
        s1 = NULL_TRACER.span("a", n=1)
        s2 = NULL_TRACER.span("b")
        assert s1 is s2
        assert isinstance(s1, NullSpan)
        with s1 as sp:
            sp.set(x=1)
        assert sp.duration == 0.0
        assert list(sp.walk()) == []

    def test_null_collects_nothing(self):
        tr = NullTracer()
        with tr.span("a"):
            tr.record("b", 1.0)
        assert list(tr.iter_spans()) == []
        assert tr.current is None
        assert not tr.enabled
        tr.reset()  # no-op, must not raise

    def test_null_overhead_small(self):
        """The no-op path must be cheap relative to a real span."""
        tr = NullTracer()
        n = 10_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tr.span("x"):
                pass
        dt = time.perf_counter() - t0
        assert dt / n < 20e-6  # generous bound: well under 20 us/span
