"""Span identity and cross-process context propagation."""

import pickle

from repro.obs import SpanContext, Tracer, new_span_id, new_trace_id


class TestIds:
    def test_formats(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)  # pure hex
        int(new_span_id(), 16)

    def test_uniqueness(self):
        assert len({new_span_id() for _ in range(256)}) == 256
        assert len({new_trace_id() for _ in range(256)}) == 256


class TestSpanContext:
    def test_create_fills_ids(self):
        ctx = SpanContext.create()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.t_origin == 0.0

    def test_create_keeps_given_trace(self):
        ctx = SpanContext.create("ab" * 16, t_origin=1.5)
        assert ctx.trace_id == "ab" * 16
        assert ctx.t_origin == 1.5

    def test_picklable_wire_form(self):
        """The context rides in pipeline task tuples -- it must
        survive pickling without growing (plain NamedTuple)."""
        ctx = SpanContext.create()
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert isinstance(clone, tuple)


class TestTracerContext:
    def test_context_names_current_span(self):
        tr = Tracer(clock=iter([0.0, 1.0, 2.0]).__next__)
        with tr.span("eval") as sp:
            ctx = tr.context()
            assert ctx.trace_id == tr.trace_id
            assert ctx.span_id == sp.span_id
        assert sp.span_id  # spans get real ids under a real tracer

    def test_tracer_accepts_external_trace_id(self):
        tid = new_trace_id()
        assert Tracer(trace_id=tid).trace_id == tid
