"""Flight recorder: bounded ring, kind precedence, atomic dumps."""

import json
import threading

import pytest

from repro.obs import FlightRecorder


def _clock(start=100.0):
    t = [start]

    def tick():
        t[0] += 1.0
        return t[0]

    return tick


class TestRing:
    def test_bounded_with_drop_accounting(self):
        fr = FlightRecorder(capacity=3, clock=_clock())
        for i in range(5):
            fr.record("tick", i=i)
        assert len(fr) == 3
        assert fr.dropped == 2
        # black-box semantics: the *last* events survive
        assert [ev["i"] for ev in fr.snapshot()] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_event_kind_beats_attr_kind(self):
        """Job specs carry a ``kind`` attr of their own; the event's
        kind must win, not raise, not be overwritten."""
        fr = FlightRecorder(clock=_clock())
        ev = fr.record("job.submitted", kind="run", job="j-1")
        assert ev["kind"] == "job.submitted"

    def test_count_by_prefix(self):
        fr = FlightRecorder(clock=_clock())
        fr.record("fault.batch")
        fr.record("fault.timeout")
        fr.record("recovery", decision="retry")
        assert fr.count("fault") == 2
        assert fr.count("recovery") == 1

    def test_extend_absorbs_dicts(self):
        fr = FlightRecorder(capacity=2, clock=_clock())
        fr.extend([{"kind": "a"}, {"kind": "b"}, {"kind": "c"}])
        assert [e["kind"] for e in fr.snapshot()] == ["b", "c"]
        assert fr.dropped == 1


class TestDump:
    def test_jsonl_with_meta_header(self, tmp_path):
        fr = FlightRecorder(capacity=8, clock=_clock())
        fr.record("fault.batch", sweep=0, batch=1)
        fr.record("recovery", decision="retry")
        out = tmp_path / "flightrec.jsonl"
        assert fr.dump(out) == 2
        lines = [json.loads(l) for l in
                 out.read_text().splitlines()]
        assert lines[0] == {"type": "flightrec_meta", "capacity": 8,
                            "dropped": 0, "events": 2}
        assert lines[1]["kind"] == "fault.batch"
        assert lines[2]["decision"] == "retry"
        assert all("t_wall" in ev for ev in lines[1:])

    def test_dump_is_atomic(self, tmp_path):
        """A dump replaces the previous file wholesale -- no partial
        or appended content, and no leftover temp file."""
        fr = FlightRecorder(clock=_clock())
        out = tmp_path / "flightrec.jsonl"
        fr.record("one")
        fr.dump(out)
        fr.record("two")
        fr.dump(out)
        lines = out.read_text().splitlines()
        assert len(lines) == 3  # meta + both events, not 1 + 1 + 2
        assert not list(tmp_path.glob("*.tmp"))

    def test_flush_uses_configured_path(self, tmp_path):
        out = tmp_path / "fr.jsonl"
        fr = FlightRecorder(path=out, clock=_clock())
        fr.record("x")
        assert fr.flush() == 1
        assert out.exists()
        assert FlightRecorder(clock=_clock()).flush() is None

    def test_unjsonable_attrs_fall_back_to_repr(self, tmp_path):
        fr = FlightRecorder(clock=_clock())
        fr.record("fault", error=ValueError("boom"))
        out = tmp_path / "fr.jsonl"
        fr.dump(out)
        ev = json.loads(out.read_text().splitlines()[1])
        assert "boom" in ev["error"]


class TestThreading:
    def test_concurrent_records(self):
        fr = FlightRecorder(capacity=10_000)
        threads = [threading.Thread(
            target=lambda: [fr.record("t") for _ in range(500)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(fr) == 2000
