"""Prometheus text-exposition conformance (format 0.0.4).

A scrape target that emits malformed exposition text fails silently
-- Prometheus drops the whole scrape.  These tests parse
:func:`~repro.obs.export.format_prometheus` output with an
independent, grammar-level parser (names, HELP/TYPE comments, label
escaping, sample values) and check the histogram invariants the
format requires: cumulative ``_bucket`` series ending in ``+Inf``,
with ``_bucket{le="+Inf"} == _count`` and ``_sum`` equal to the sum
of observations.
"""

import math
import re

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.export import format_prometheus

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                    r"(?:\{(?P<labels>[^}]*)\})? "
                    r"(?P<value>\S+)$")
LABEL = re.compile(r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>.*)"$')


def parse_exposition(text):
    """``(samples, helps, types)`` with format-level validation."""
    samples, helps, types = [], {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            assert METRIC_NAME.match(name), name
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, line
            name, kind = parts[2], parts[3]
            assert METRIC_NAME.match(name), name
            assert kind in ("counter", "gauge", "histogram",
                            "summary", "untyped"), line
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        m = SAMPLE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                lm = LABEL.match(pair)
                assert lm, f"bad label pair {pair!r} in {line!r}"
                labels[lm.group("k")] = lm.group("v")
        samples.append((m.group("name"), labels,
                        float(m.group("value"))))
    return samples, helps, types


def family(sample_name):
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[:-len(suffix)]
    return sample_name


def serve_like_registry():
    """Counters/gauges/histograms shaped like the scheduler's."""
    reg = MetricsRegistry()
    reg.counter("serve.jobs_submitted", "jobs accepted").inc(7)
    reg.gauge("serve.queue_depth", "queued jobs").set(2)
    h = reg.histogram("serve.submit_to_done_seconds",
                      "admission to completion")
    for v in (0.0001, 0.004, 0.25, 3.0):
        h.observe(v)
    reg.histogram("serve.queue_wait_seconds").observe(0.002)
    return reg


class TestGrammar:
    def test_every_sample_parses(self):
        samples, _, _ = parse_exposition(
            format_prometheus(serve_like_registry()))
        assert samples
        for name, _, value in samples:
            assert METRIC_NAME.match(name)
            assert not math.isnan(value)

    def test_every_family_has_one_type_line(self):
        text = format_prometheus(serve_like_registry())
        samples, _, types = parse_exposition(text)
        for name, _, _ in samples:
            assert family(name) in types, name
        for fam in types:
            assert text.count(f"# TYPE {fam} ") == 1

    def test_help_before_type_before_samples(self):
        lines = format_prometheus(serve_like_registry()).splitlines()
        seen_samples = set()
        for line in lines:
            if line.startswith("# HELP "):
                fam = line.split(" ")[2]
                assert fam not in seen_samples
            elif not line.startswith("#") and line:
                seen_samples.add(family(line.split("{")[0]
                                        .split(" ")[0]))

    def test_help_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("weird", 'back\\slash and\nnewline').inc()
        text = format_prometheus(reg)
        help_line = next(l for l in text.splitlines()
                         if l.startswith("# HELP repro_weird "))
        escaped = help_line.split(" ", 3)[3]
        assert "\n" not in escaped
        unescaped = escaped.replace("\\n", "\n").replace("\\\\", "\\")
        assert unescaped == 'back\\slash and\nnewline'

    def test_dotted_names_become_legal(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c.d").inc()
        samples, _, _ = parse_exposition(format_prometheus(reg))
        assert samples[0][0] == "repro_a_b_c_d"


class TestHistogramInvariants:
    def test_bucket_sum_count_consistency(self):
        samples, _, types = parse_exposition(
            format_prometheus(serve_like_registry()))
        hist_fams = [f for f, k in types.items() if k == "histogram"]
        assert hist_fams
        for fam in hist_fams:
            buckets = [(labels["le"], v) for n, labels, v in samples
                       if n == fam + "_bucket"]
            count = next(v for n, _, v in samples
                         if n == fam + "_count")
            total = next(v for n, _, v in samples
                         if n == fam + "_sum")
            assert buckets[-1][0] == "+Inf"
            counts = [v for _, v in buckets]
            assert counts == sorted(counts), "buckets not cumulative"
            assert counts[-1] == count
            bounds = [float(le) for le, _ in buckets[:-1]]
            assert bounds == sorted(bounds)
            assert total >= 0

    def test_sum_matches_observations(self):
        reg = MetricsRegistry()
        h = reg.histogram("x", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        samples, _, _ = parse_exposition(format_prometheus(reg))
        by = {(n, labels.get("le")): v for n, labels, v in samples}
        assert by[("repro_x_sum", None)] == pytest.approx(55.5)
        assert by[("repro_x_bucket", "1")] == 1
        assert by[("repro_x_bucket", "10")] == 2
        assert by[("repro_x_bucket", "+Inf")] == 3

    def test_default_buckets_resolve_sub_millisecond(self):
        """Duration histograms must not collapse into one bucket on a
        fast machine: the default bounds reach below 1 ms."""
        assert DEFAULT_BUCKETS[0] < 1e-3
        assert any(b < 1e-3 for b in DEFAULT_BUCKETS[:3])
        reg = MetricsRegistry()
        h = reg.histogram("serve.queue_wait_seconds")
        h.observe(0.0002)
        h.observe(0.002)
        assert sum(1 for c in h.bucket_counts if c) >= 2
