"""End-to-end observability: a short run produces a coherent span tree
and metrics that agree with the simulation's own accounting."""

import numpy as np
import pytest

from repro.core import TreeCode
from repro.grape import GrapeBackend
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import phase_totals, run_summary
from repro.perf.report import HeadlineReport, PAPER_OVERHEAD_RATIO
from repro.sim.models import plummer_model
from repro.sim.simulation import Simulation


@pytest.fixture
def traced_run(rng):
    pos, vel, mass = plummer_model(512, rng)
    tracer, registry = Tracer(), MetricsRegistry()
    backend = GrapeBackend().bind_metrics(registry)
    force = TreeCode(theta=0.75, n_crit=64, backend=backend,
                     tracer=tracer, metrics=registry)
    sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.01, force=force,
                     G=1.0, tracer=tracer, metrics=registry)
    sim.run([1e-3] * 3)
    return sim, tracer, registry


class TestSpanTree:
    def test_one_root_per_step(self, traced_run):
        sim, tracer, _ = traced_run
        steps = [r for r in tracer.roots if r.name == "step"]
        assert len(steps) == len(sim.history) == 3

    def test_phases_nest_under_steps(self, traced_run):
        _, tracer, _ = traced_run
        step = [r for r in tracer.roots if r.name == "step"][-1]
        names = {s.name for s in step.walk()}
        assert {"tree_build", "morton_sort", "tree_refine", "moments",
                "group", "traverse", "eval", "grape_force",
                "host_direct"} <= names

    def test_phase_times_sum_to_step_wall(self, traced_run):
        """The acceptance check: per-phase self times partition each
        step's wall time, and the recorded StepRecord wall agrees with
        the span to within 5%."""
        sim, tracer, _ = traced_run
        steps = [r for r in tracer.roots if r.name == "step"]
        for rec, span in zip(sim.history, steps):
            self_sum = sum(s.self_seconds for s in span.walk())
            assert self_sum == pytest.approx(span.duration, rel=1e-9)
            assert span.duration == pytest.approx(rec.wall_seconds,
                                                  rel=0.05, abs=2e-3)

    def test_step_record_phase_view(self, traced_run):
        sim, _, _ = traced_run
        rec = sim.history[-1]
        assert {"build", "group", "traverse", "eval", "kernel",
                "host_direct"} <= set(rec.phases)
        assert rec.phases["eval"] <= rec.wall_seconds * 1.05
        assert (rec.phases["kernel"] + rec.phases["host_direct"]
                == pytest.approx(rec.phases["eval"], rel=0.2, abs=1e-3))


class TestMetricsAgreement:
    def test_interactions_match_history(self, traced_run):
        sim, _, registry = traced_run
        assert (registry.value("sim.interactions_total")
                == sim.total_interactions)

    def test_tree_counts_include_priming_eval(self, traced_run):
        sim, _, registry = traced_run
        # KDK priming costs one extra force evaluation before step 1
        assert registry.value("tree.force_evals") == len(sim.history) + 1
        assert (registry.value("tree.interactions_total")
                >= registry.value("sim.interactions_total"))

    def test_grape_counters_match_backend(self, traced_run):
        sim, _, registry = traced_run
        system = sim.force.backend.system
        assert registry.value("grape.force_calls") == system.n_calls
        assert (registry.value("grape.interactions_total")
                == system.interactions)
        assert (registry.value("grape.model_seconds")
                == pytest.approx(system.model_seconds))

    def test_list_length_histogram_populated(self, traced_run):
        sim, _, registry = traced_run
        h = registry.get("tree.list_length")
        assert h.count > 0
        assert h.vmax >= h.mean >= 1.0

    def test_run_summary_agrees(self, traced_run):
        sim, tracer, registry = traced_run
        s = run_summary(registry, tracer=tracer)
        assert s["interactions"] == sim.total_interactions
        assert s["steps"] == 3
        assert s["n_particles"] == 512
        assert s["wall_seconds"] == pytest.approx(
            sum(r.wall_seconds for r in sim.history), rel=1e-6)
        assert "step" in s["phases"]


class TestHeadlineFromMetrics:
    def test_from_metrics(self, traced_run):
        sim, _, registry = traced_run
        rep = HeadlineReport.from_metrics(registry)
        assert rep.n_particles == 512
        assert rep.n_steps == 3
        assert rep.modified_interactions == sim.total_interactions
        assert rep.original_interactions == pytest.approx(
            sim.total_interactions / PAPER_OVERHEAD_RATIO)
        assert rep.wall_seconds == pytest.approx(
            sum(r.wall_seconds for r in sim.history), rel=1e-6)
        # the derived quantities are finite and positive
        assert rep.raw_gflops > 0
        assert rep.price_per_mflops > 0

    def test_explicit_overrides(self, traced_run):
        _, _, registry = traced_run
        rep = HeadlineReport.from_metrics(registry, wall_seconds=10.0,
                                          original_interactions=1e6)
        assert rep.wall_seconds == 10.0
        assert rep.original_interactions == 1e6


class TestDisabledTracing:
    def test_null_tracer_collects_nothing(self, rng):
        pos, vel, mass = plummer_model(256, rng)
        sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.01, G=1.0)
        sim.run([1e-3] * 2)
        assert list(sim.tracer.iter_spans()) == []
        assert sim.history[-1].phases  # times still recorded via stats

    def test_phase_totals_empty(self):
        assert phase_totals(Tracer()) == {}
