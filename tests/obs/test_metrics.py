"""Metrics registry: counters, gauges, histograms, snapshot/reset."""

import math

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert reg.value("a.b") == 42

    def test_monotone(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_float_amounts(self):
        c = MetricsRegistry().counter("t")
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_set_overwrites(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_stats(self):
        h = MetricsRegistry().histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert h.vmin == 0.5 and h.vmax == 500
        assert h.mean == pytest.approx(555.5 / 4)
        assert h.bucket_counts == [1, 1, 1, 1]  # one overflow

    def test_boundary_is_inclusive(self):
        h = MetricsRegistry().histogram("h", buckets=(1, 10))
        h.observe(10)
        assert h.bucket_counts == [0, 1, 0]

    def test_observe_many_accepts_numpy(self):
        h = MetricsRegistry().histogram("h", buckets=(2, 4, 8))
        h.observe_many(np.array([1, 3, 5, 9]))
        assert h.count == 4
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_empty_snapshot(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_contains_iter_len(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "c" not in reg
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2

    def test_value_shortcut(self):
        reg = MetricsRegistry()
        assert reg.value("missing", default=-1.0) == -1.0
        reg.histogram("h").observe(3.0)
        assert reg.value("h") == 3.0  # histogram -> sum

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "help me").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "help": "help me",
                             "value": 2}
        assert snap["g"]["type"] == "gauge" and snap["g"]["value"] == 7
        assert snap["h"]["count"] == 1
        assert set(snap["h"]["buckets"]) == {"1.0", "+Inf"}

    def test_snapshot_then_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        h = reg.histogram("h", buckets=(10,))
        h.observe(3)
        before = reg.snapshot()
        reg.reset()
        after = reg.snapshot()
        assert before["c"]["value"] == 5 and after["c"]["value"] == 0
        assert before["h"]["count"] == 1 and after["h"]["count"] == 0
        assert h.vmin == math.inf  # reset extrema
        # same objects survive reset (get-or-create identity holds)
        assert reg.counter("c").value == 0
