"""Trace analysis: tree building, critical path, diff."""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.analyze import (build_tree, critical_path, diff_traces,
                               format_critical_path, format_diff,
                               format_tree, load_trace)
from repro.obs.export import span_events, write_jsonl


def _ev(name, t0, t1, span_id, parent_id=-1, path=None, attrs=None):
    return {"type": "span", "name": name, "t_start": t0, "t_end": t1,
            "duration": t1 - t0, "span_id": span_id,
            "parent_id": parent_id, "path": path or name,
            "attrs": attrs or {}}


def overlap_trace():
    """The paper's overlap shape: host traverses shard k+1 while the
    workers (and the GRAPE inside them) evaluate shard k.

    step [0, 10]
      traverse        [0, 2]          host
      exec.batch      [1, 7]          worker ...
        grape_force   [2, 5]          ... with GRAPE inside
      traverse        [2, 4]          host, overlapping the batch
    """
    return [
        _ev("step", 0.0, 10.0, 0),
        _ev("traverse", 0.0, 2.0, 1, 0, "step/traverse"),
        _ev("exec.batch", 1.0, 7.0, 2, 0, "step/exec.batch"),
        _ev("grape_force", 2.0, 5.0, 3, 2,
            "step/exec.batch/grape_force"),
        _ev("traverse", 2.0, 4.0, 4, 0, "step/traverse"),
    ]


class TestLoadTrace:
    def _tracer(self):
        ticks = iter([0.0, 1.0, 2.0, 3.0])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("step"):
            with tr.span("eval"):
                pass
        return tr

    def test_jsonl_round_trip(self, tmp_path):
        tr = self._tracer()
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        path = tmp_path / "t.jsonl"
        write_jsonl(path, tr, metrics=reg, meta={"run": "x"})
        doc = load_trace(path)
        assert [s["name"] for s in doc["spans"]] == ["step", "eval"]
        assert doc["meta"]["run"] == "x"
        assert doc["metrics"]["n"]["value"] == 2

    def test_trace_document_from_dict_and_file(self, tmp_path):
        """The ``GET /jobs/{id}/trace`` response works directly and
        saved to a file (what ``jobs --job-trace > f`` produces)."""
        doc = {"schema": "repro.trace/v1", "job": "j-1",
               "trace_id": "ab" * 16,
               "spans": list(span_events(self._tracer()))}
        parsed = load_trace(doc)
        assert [s["name"] for s in parsed["spans"]] == ["step", "eval"]
        assert parsed["meta"]["job"] == "j-1"
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc, indent=2))
        assert load_trace(path)["spans"] == parsed["spans"]


class TestBuildTree:
    def test_nesting_and_order(self):
        roots = build_tree(overlap_trace())
        assert [r["name"] for r in roots] == ["step"]
        kids = roots[0]["children"]
        assert [k["name"] for k in kids] == ["traverse", "exec.batch",
                                             "traverse"]
        assert kids[1]["children"][0]["name"] == "grape_force"

    def test_orphans_promoted(self):
        roots = build_tree([_ev("lost", 0.0, 1.0, 5, parent_id=99)])
        assert [r["name"] for r in roots] == ["lost"]

    def test_format_tree_prunes_and_summarises(self):
        text = format_tree(overlap_trace(), max_depth=1)
        assert "step" in text and "exec.batch" in text
        assert "grape_force" not in text
        assert "child span(s)" in text
        hidden = format_tree(overlap_trace(), min_seconds=3.0)
        assert "span(s) under" in hidden


class TestCriticalPath:
    def test_partition_is_exact(self):
        cp = critical_path(overlap_trace())
        res = cp["resources"]
        assert cp["total_seconds"] == pytest.approx(10.0)
        # grape wins [2,5]; worker gets the rest of the batch [1,2]+[5,7]
        assert res["grape"] == pytest.approx(3.0)
        assert res["worker"] == pytest.approx(3.0)
        assert res["host"] == pytest.approx(4.0)
        assert sum(res.values()) == pytest.approx(cp["total_seconds"])

    def test_chain_follows_longest_child(self):
        chain = critical_path(overlap_trace())["chain"]
        assert [c["name"] for c in chain] == ["step", "exec.batch",
                                              "grape_force"]
        assert chain[1]["seconds"] == pytest.approx(6.0)

    def test_format_sums_to_100(self):
        text = format_critical_path(overlap_trace())
        assert "100.0%" in text
        assert "dominant chain" in text

    def test_empty_trace(self):
        cp = critical_path([])
        assert cp["total_seconds"] == 0.0
        assert cp["chain"] == []


class TestDiff:
    def test_rows_sorted_by_delta(self):
        a = [_ev("eval", 0.0, 1.0, 0), _ev("build", 1.0, 1.1, 1)]
        b = [_ev("eval", 0.0, 3.0, 0), _ev("build", 3.0, 3.1, 1),
             _ev("exec.batch", 0.5, 0.6, 2)]
        rows = diff_traces(a, b)
        assert rows[0]["phase"] == "eval"
        assert rows[0]["delta_seconds"] == pytest.approx(2.0)
        assert rows[0]["ratio"] == pytest.approx(3.0)
        new = next(r for r in rows if r["phase"] == "exec.batch")
        assert new["a_calls"] == 0 and new["ratio"] is None

    def test_format_diff(self):
        a = [_ev("eval", 0.0, 1.0, 0)]
        text = format_diff(a, a, a_label="serial", b_label="pipeline")
        assert "serial" in text and "pipeline" in text
        assert "1.00x" in text
        assert format_diff([], []) == "(no spans in either trace)"
