"""Exporters: JSONL round-trip, Prometheus text, phase table, summary."""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (RUN_SUMMARY_SCHEMA, format_phase_table,
                              format_prometheus, phase_totals, run_summary,
                              span_events, write_json_summary, write_jsonl,
                              write_prometheus)


def make_tracer():
    ticks = iter([0.0, 1.0, 3.0,   # step > build
                  3.0, 6.0, 6.0,   # eval (+record at 6.0)
                  7.0])            # step end
    tr = Tracer(clock=lambda: next(ticks))
    with tr.span("step", step=1):
        with tr.span("build"):
            pass
        with tr.span("eval"):
            tr.record("kernel", 2.0, calls=3)
    return tr


class TestJsonl:
    def test_events_carry_ids_and_paths(self):
        tr = make_tracer()
        events = list(span_events(tr))
        by_name = {e["name"]: e for e in events}
        assert by_name["step"]["parent_id"] == -1
        assert by_name["build"]["parent_id"] == by_name["step"]["span_id"]
        assert by_name["kernel"]["path"] == "step/eval/kernel"
        assert by_name["step"]["duration"] == 7.0

    def test_round_trip(self, tmp_path):
        tr = make_tracer()
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        path = tmp_path / "t.jsonl"
        n = write_jsonl(path, tr, metrics=reg, meta={"run": "test"})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == n == 4 + 2  # 4 spans + meta + metrics
        assert lines[0]["type"] == "meta" and lines[0]["run"] == "test"
        assert lines[-1]["metrics"]["n"]["value"] == 3
        names = [l["name"] for l in lines if l["type"] == "span"]
        assert names == ["step", "build", "eval", "kernel"]


class TestPrometheus:
    def test_families(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("sim.steps_total", "steps").inc(3)
        reg.gauge("sim.time").set(1.5)
        h = reg.histogram("tree.list_length", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        text = format_prometheus(reg)
        assert "# HELP repro_sim_steps_total steps" in text
        assert "# TYPE repro_sim_steps_total counter" in text
        assert "repro_sim_steps_total 3" in text
        assert "repro_sim_time 1.5" in text
        # cumulative buckets
        assert 'repro_tree_list_length_bucket{le="10"} 1' in text
        assert 'repro_tree_list_length_bucket{le="100"} 2' in text
        assert 'repro_tree_list_length_bucket{le="+Inf"} 3' in text
        assert "repro_tree_list_length_count 3" in text
        path = tmp_path / "m.prom"
        write_prometheus(path, reg)
        assert path.read_text() == text

    def test_parse_back_values(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(12)
        for line in format_prometheus(reg).splitlines():
            if not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                assert name == "repro_a_b"
                assert float(value) == 12


class TestPhaseTable:
    def test_totals_partition_wall(self):
        tr = make_tracer()
        totals = phase_totals(tr)
        wall = sum(r.duration for r in tr.roots)
        self_sum = sum(v["self_seconds"] for v in totals.values())
        assert self_sum == pytest.approx(wall)
        assert totals["build"]["calls"] == 1
        assert totals["kernel"]["seconds"] == pytest.approx(2.0)
        # eval inclusive 3s, self 1s (kernel recorded beneath it)
        assert totals["eval"]["seconds"] == pytest.approx(3.0)
        assert totals["eval"]["self_seconds"] == pytest.approx(1.0)

    def test_format_contains_phases_and_total(self):
        text = format_phase_table(make_tracer())
        for name in ("step", "build", "eval", "kernel", "total (wall)",
                     "%wall"):
            assert name in text

    def test_empty_tracer(self):
        text = format_phase_table(Tracer())
        assert "total (wall)" in text


class TestRunSummary:
    def test_schema_and_agreement(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("sim.n_particles").set(100)
        reg.counter("sim.steps_total").inc(4)
        reg.counter("sim.interactions_total").inc(8000)
        reg.histogram("sim.step_seconds").observe(0.5)
        reg.counter("grape.model_seconds").inc(0.25)
        reg.counter("grape.force_calls").inc(12)
        tr = make_tracer()
        s = write_json_summary(tmp_path / "s.json", reg, tracer=tr,
                               extra={"backend": "grape"})
        loaded = json.loads((tmp_path / "s.json").read_text())
        assert loaded == s
        assert s["schema"] == RUN_SUMMARY_SCHEMA
        assert s["n_particles"] == 100
        assert s["steps"] == 4
        assert s["interactions"] == 8000
        assert s["mean_list_length"] == pytest.approx(8000 / (100 * 4))
        assert s["wall_seconds"] == pytest.approx(0.5)
        assert s["grape_model_seconds"] == pytest.approx(0.25)
        assert s["backend"] == "grape"
        assert "build" in s["phases"]
        assert s["metrics"]["sim.steps_total"]["value"] == 4

    def test_tree_fallback_for_interactions(self):
        reg = MetricsRegistry()
        reg.counter("tree.interactions_total").inc(77)
        assert run_summary(reg)["interactions"] == 77

    def test_null_tracer_yields_empty_phases(self, tmp_path):
        """--json-summary without --trace/--profile hands the exporter
        the shared no-op tracer; that must mean "no phases", not a
        crash."""
        from repro.obs.trace import NULL_TRACER
        reg = MetricsRegistry()
        reg.counter("sim.interactions_total").inc(5)
        s = write_json_summary(tmp_path / "s.json", reg,
                               tracer=NULL_TRACER)
        assert s["phases"] == {}
        assert s["interactions"] == 5
