"""ASCII line-plot tests."""

import numpy as np
import pytest

from repro.viz.asciiplot import line_plot


class TestLinePlot:
    def test_basic_render(self):
        x = np.linspace(0, 10, 20)
        out = line_plot({"linear": (x, 2 * x)}, xlabel="x", ylabel="y")
        assert "o" in out
        assert "x: x" in out and "y: y" in out
        assert "o = linear" in out

    def test_log_axes(self):
        r = np.geomspace(0.1, 100, 30)
        out = line_plot({"pl": (r, r**-1.8)}, logx=True, logy=True)
        assert "(log)" in out

    def test_two_series_two_markers(self):
        x = np.arange(10.0)
        out = line_plot({"a": (x, x), "b": (x, 2 * x)})
        assert "o = a" in out and "x = b" in out

    def test_nans_skipped(self):
        x = np.arange(10.0)
        y = x.copy()
        y[3] = np.nan
        out = line_plot({"s": (x, y)})
        assert "o" in out

    def test_nonpositive_dropped_on_log(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([-1.0, 1.0, 2.0])
        out = line_plot({"s": (x, y)}, logy=True)
        assert "o" in out

    def test_empty_series(self):
        assert "no data" in line_plot({})

    def test_all_invalid(self):
        out = line_plot({"s": ([1.0], [-1.0])}, logy=True)
        assert "no finite points" in out

    def test_constant_series_does_not_crash(self):
        out = line_plot({"c": ([1.0, 2.0], [5.0, 5.0])})
        assert "o" in out

    def test_size_validation(self):
        with pytest.raises(ValueError):
            line_plot({"s": ([1.0], [1.0])}, width=4)
