"""Slab-rendering tests."""

import numpy as np
import pytest

from repro.viz.projection import ascii_render, surface_density, write_pgm


class TestSurfaceDensity:
    def test_counts_conserved(self, rng):
        xy = rng.uniform(-5, 5, (1000, 2))
        h = surface_density(xy, width=10.0, bins=16)
        assert h.sum() == 1000

    def test_point_lands_in_right_bin(self):
        xy = np.array([[0.0, 0.0]])
        h = surface_density(xy, width=2.0, bins=2)
        assert h[1, 1] == 1  # (0,0) is in the upper-right half-open bin

    def test_outside_ignored(self):
        xy = np.array([[100.0, 0.0]])
        h = surface_density(xy, width=2.0, bins=4)
        assert h.sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            surface_density(np.zeros((3, 3)), width=1.0, bins=4)
        with pytest.raises(ValueError):
            surface_density(np.zeros((3, 2)), width=1.0, bins=1)


class TestAsciiRender:
    def test_shape_and_charset(self, rng):
        xy = rng.standard_normal((500, 2))
        h = surface_density(xy, width=6.0, bins=24)
        art = ascii_render(h)
        lines = art.splitlines()
        assert len(lines) == 24
        assert all(len(l) == 24 for l in lines)

    def test_dense_region_darker(self):
        h = np.zeros((8, 8))
        h[2, 3] = 100.0
        art = ascii_render(h).splitlines()
        # densest cell maps to the last ramp character
        assert "@" in "".join(art)
        assert sum(c == "@" for c in "".join(art)) == 1

    def test_empty_histogram(self):
        art = ascii_render(np.zeros((4, 4)))
        assert set("".join(art.splitlines())) == {" "}

    def test_downsampling_cap(self, rng):
        h = surface_density(rng.standard_normal((2000, 2)), width=6.0,
                            bins=128)
        art = ascii_render(h, max_rows=32)
        assert len(art.splitlines()) <= 32


class TestWritePGM:
    def test_valid_pgm(self, rng, tmp_path):
        xy = rng.standard_normal((300, 2))
        h = surface_density(xy, width=6.0, bins=32)
        p = write_pgm(tmp_path / "fig4.pgm", h)
        data = p.read_bytes()
        assert data.startswith(b"P5\n32 32\n255\n")
        assert len(data) == len(b"P5\n32 32\n255\n") + 32 * 32

    def test_intensity_range(self, tmp_path):
        h = np.zeros((4, 4))
        h[0, 0] = 10.0
        p = write_pgm(tmp_path / "x.pgm", h)
        body = p.read_bytes().split(b"255\n", 1)[1]
        assert max(body) == 255
        assert min(body) == 0
