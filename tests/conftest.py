"""Shared fixtures: deterministic particle sets of several shapes.

Every stochastic fixture takes its entropy from a fixed seed so the
whole suite is reproducible run-to-run.
"""

import numpy as np
import pytest

from repro.sim.models import plummer_model, uniform_sphere


@pytest.fixture
def rng():
    return np.random.default_rng(20260705)


@pytest.fixture
def plummer_1k(rng):
    """A 1024-particle virialised Plummer sphere (pos, vel, mass)."""
    return plummer_model(1024, rng)


@pytest.fixture
def plummer_pos_mass(plummer_1k):
    pos, _, mass = plummer_1k
    return pos, mass


@pytest.fixture
def uniform_500(rng):
    """A cold uniform sphere of 500 particles."""
    return uniform_sphere(500, rng)


@pytest.fixture
def clustered_2k(rng):
    """A deliberately clumpy distribution: three Plummer clumps plus a
    diffuse background -- exercises deep, uneven trees."""
    parts = []
    for center, n, a in (((0, 0, 0), 900, 0.1),
                         ((1.5, 0.3, -0.2), 600, 0.05),
                         ((-0.8, -1.1, 0.5), 400, 0.2)):
        p, _, m = plummer_model(n, rng, scale_radius=a)
        parts.append((p + np.asarray(center, dtype=float), m))
    bg = rng.uniform(-2.5, 2.5, (100, 3))
    parts.append((bg, np.full(100, 1.0 / 2000)))
    pos = np.concatenate([p for p, _ in parts])
    mass = np.concatenate([m for _, m in parts])
    return pos, mass
