"""Cluster force correctness: K=1 bit-identity, K>1 tolerance, LET
exchange accounting, and the cluster timing model."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, let_exchange, take_rows
from repro.core.treecode import TreeCode
from repro.grape.system import GrapeBackend
from repro.sim.recipes import build_force

THETA, NCRIT, EPS = 0.75, 256, 0.01


@pytest.fixture(scope="module")
def plummerish():
    rng = np.random.default_rng(20260808)
    n = 1500
    pos = rng.standard_normal((n, 3))
    mass = rng.uniform(0.5, 1.5, n) / n
    return pos, mass


def _serial(pos, mass, kernels):
    tc = TreeCode(theta=THETA, n_crit=NCRIT, backend=GrapeBackend(),
                  kernels=kernels)
    acc, pot = tc.accelerations(pos, mass, EPS)
    return tc, acc, pot


@pytest.mark.parametrize("kernels", ["python", "numpy"])
def test_k1_b2_bit_identical(plummerish, kernels):
    """hosts=1, boards=2 reproduces today's path bit for bit, and its
    timing model reproduces the single-host predicted seconds exactly."""
    pos, mass = plummerish
    tc0, acc0, pot0 = _serial(pos, mass, kernels)
    tc1 = TreeCode(theta=THETA, n_crit=NCRIT,
                   cluster=ClusterSpec(hosts=1, boards=2), kernels=kernels)
    acc1, pot1 = tc1.accelerations(pos, mass, EPS)
    np.testing.assert_array_equal(acc1, acc0)
    np.testing.assert_array_equal(pot1, pot0)
    assert tc1.cluster.model_seconds == tc0.backend.model_seconds
    assert tc1.cluster.interactions == tc0.backend.interactions
    s = tc1.cluster.summary()
    assert s["let_exchange_bytes"] == 0.0
    assert s["let_import_cells"] == 0
    assert s["let_import_particles"] == 0
    tc1.close()


@pytest.mark.parametrize("kernels", ["python", "numpy"])
@pytest.mark.parametrize("hosts", [2, 4])
def test_multi_host_matches_serial(plummerish, kernels, hosts):
    pos, mass = plummerish
    _, acc0, pot0 = _serial(pos, mass, kernels)
    tc = TreeCode(theta=THETA, n_crit=NCRIT,
                  cluster=ClusterSpec(hosts=hosts), kernels=kernels)
    acc, pot = tc.accelerations(pos, mass, EPS)
    np.testing.assert_allclose(acc, acc0, rtol=1e-12, atol=0)
    np.testing.assert_allclose(pot, pot0, rtol=1e-12, atol=0)
    s = tc.cluster.summary()
    assert s["let_exchange_bytes"] > 0.0
    assert s["predicted_gflops"] > 0.0
    tc.close()


@pytest.mark.parametrize("decomp", ["orb", "slab"])
def test_decomposition_strategies_agree(plummerish, decomp):
    pos, mass = plummerish
    _, acc0, _ = _serial(pos, mass, "numpy")
    tc = TreeCode(theta=THETA, n_crit=NCRIT,
                  cluster=ClusterSpec(hosts=3, decomp=decomp),
                  kernels="numpy")
    acc, _ = tc.accelerations(pos, mass, EPS)
    np.testing.assert_allclose(acc, acc0, rtol=1e-12, atol=0)
    tc.close()


def test_original_algorithm_under_cluster(plummerish):
    """Per-particle sinks decompose too (the paper's 'original' lists)."""
    pos, mass = plummerish
    tc0 = TreeCode(theta=THETA, n_crit=NCRIT, backend=GrapeBackend(),
                   kernels="numpy")
    acc0, _ = tc0.accelerations(pos, mass, EPS, algorithm="original")
    tc = TreeCode(theta=THETA, n_crit=NCRIT,
                  cluster=ClusterSpec(hosts=2), kernels="numpy")
    acc, _ = tc.accelerations(pos, mass, EPS, algorithm="original")
    np.testing.assert_allclose(acc, acc0, rtol=1e-12, atol=0)
    tc.close()


def test_more_hosts_shrink_predicted_seconds(plummerish):
    pos, mass = plummerish
    pred = {}
    for hosts in (1, 2, 4):
        tc = TreeCode(theta=THETA, n_crit=NCRIT,
                      cluster=ClusterSpec(hosts=hosts), kernels="numpy")
        tc.accelerations(pos, mass, EPS)
        pred[hosts] = tc.cluster.model_seconds
        tc.close()
    assert pred[2] < pred[1]
    assert pred[4] < pred[2]


def test_exchange_grows_with_hosts(plummerish):
    pos, mass = plummerish
    vol = {}
    for hosts in (2, 4):
        tc = TreeCode(theta=THETA, n_crit=NCRIT,
                      cluster=ClusterSpec(hosts=hosts), kernels="numpy")
        tc.accelerations(pos, mass, EPS)
        vol[hosts] = tc.cluster.summary()["let_exchange_bytes"]
        tc.close()
    assert vol[4] > vol[2] > 0


def test_take_rows_full_selection_is_identity(plummerish):
    pos, mass = plummerish
    tc, _, _ = _serial(pos, mass, "numpy")
    lists = tc.last_lists
    sub = take_rows(lists, np.arange(lists.n_sinks, dtype=np.int64))
    np.testing.assert_array_equal(sub.cell_idx, lists.cell_idx)
    np.testing.assert_array_equal(sub.cell_off, lists.cell_off)
    np.testing.assert_array_equal(sub.part_idx, lists.part_idx)
    np.testing.assert_array_equal(sub.part_off, lists.part_off)


def test_take_rows_subset(plummerish):
    pos, mass = plummerish
    tc, _, _ = _serial(pos, mass, "numpy")
    lists = tc.last_lists
    rows = np.array([3, 0, 7], dtype=np.int64)
    sub = take_rows(lists, rows)
    assert sub.n_sinks == 3
    for i, g in enumerate(rows):
        np.testing.assert_array_equal(sub.cells_of(i),
                                      lists.cells_of(int(g)))
        np.testing.assert_array_equal(sub.parts_of(i),
                                      lists.parts_of(int(g)))


def test_let_exchange_single_host_is_zero(plummerish):
    pos, mass = plummerish
    tc, _, _ = _serial(pos, mass, "numpy")
    tree, groups, lists = tc.last_tree, tc.last_groups, tc.last_lists
    owner = np.zeros(lists.n_sinks, dtype=np.int64)
    ex = let_exchange(tree, lists, owner, groups.start, groups.count, 1)
    assert ex.total_import_cells == 0
    assert ex.total_import_particles == 0
    assert ex.total_bytes == 0.0
    assert ex.as_dict()["let_import_bytes"] == 0.0


def test_build_force_cluster_path(plummerish):
    pos, mass = plummerish
    tc, backend = build_force(theta=THETA, ncrit=NCRIT,
                              cluster=ClusterSpec(hosts=2))
    assert backend.is_cluster
    assert "grape" in backend.name
    acc, _ = tc.accelerations(pos, mass, EPS)
    assert backend.model_seconds > 0
    assert backend.summary()["hosts"] == 2
    tc.close()
    # counters survive close
    assert backend.model_seconds > 0


def test_build_force_cluster_rejects_conflicts():
    with pytest.raises(ValueError):
        build_force(theta=THETA, ncrit=NCRIT, backend="host",
                    cluster=ClusterSpec(hosts=2))
    with pytest.raises(ValueError):
        build_force(theta=THETA, ncrit=NCRIT, engine=object(),
                    cluster=ClusterSpec(hosts=2))
    with pytest.raises(ValueError):
        build_force(theta=THETA, ncrit=NCRIT, system=object(),
                    cluster=ClusterSpec(hosts=2))


def test_treecode_cluster_rejects_conflicts():
    with pytest.raises(ValueError):
        TreeCode(cluster=ClusterSpec(), backend=GrapeBackend())
    with pytest.raises(ValueError):
        TreeCode(cluster=ClusterSpec(), engine=object())
    with pytest.raises(ValueError):
        TreeCode(cluster=ClusterSpec(), quadrupole=True)
