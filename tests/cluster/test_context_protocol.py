"""ClusterContext protocol misuse, mirroring tests/grape/test_api_protocol.py:
call-order violations, overlapping board sets, double release, K=0."""

import threading

import numpy as np
import pytest

from repro.cluster import (BoardSetRegistry, ClusterContext, ClusterError,
                           ClusterSpec)


@pytest.fixture
def ctx():
    c = ClusterContext(ClusterSpec(hosts=2, boards=2))
    yield c
    if c.hosts:
        c.close()


class TestSpecValidation:
    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError, match="hosts"):
            ClusterSpec(hosts=0)

    def test_zero_boards_rejected(self):
        with pytest.raises(ValueError, match="boards"):
            ClusterSpec(boards=0)

    def test_negative_hosts_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(hosts=-3)

    def test_unknown_decomp_rejected(self):
        with pytest.raises(ValueError, match="decomposition"):
            ClusterSpec(decomp="hilbert")

    def test_bad_network_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(exchange_bandwidth=0.0)
        with pytest.raises(ValueError):
            ClusterSpec(exchange_latency=-1.0)

    def test_total_boards(self):
        assert ClusterSpec(hosts=3, boards=4).total_boards == 12


class TestCallOrder:
    def test_use_before_open(self, ctx):
        with pytest.raises(ClusterError, match="open"):
            ctx.set_domain(-1.0, 1.0)
        with pytest.raises(ClusterError, match="open"):
            ctx.close()
        with pytest.raises(ClusterError, match="open"):
            ctx.evaluate(None, None, None, None, None, 0.0, None, None)
        with pytest.raises(ClusterError, match="open"):
            ctx.reset_stats()
        with pytest.raises(ClusterError, match="open"):
            ctx.summary()
        with pytest.raises(ClusterError, match="open"):
            ctx.model_seconds

    def test_double_open(self, ctx):
        ctx.open()
        with pytest.raises(ClusterError, match="already open"):
            ctx.open()

    def test_close_reopen_no_residue(self, ctx):
        ctx.open()
        first_sets = ctx.board_sets
        ctx.close()
        assert ctx.hosts == [] and ctx.backends == []
        ctx.open()
        assert ctx.board_sets == first_sets
        assert len(ctx.hosts) == 2

    def test_context_manager_closes(self):
        with ClusterContext(ClusterSpec(hosts=1)).open() as c:
            assert len(c.hosts) == 1
        assert c.hosts == []


class TestLatch:
    def test_double_acquire(self, ctx):
        ctx.open()
        ctx.acquire()
        with pytest.raises(ClusterError, match="already acquired"):
            ctx.acquire()
        ctx.release()

    def test_double_release(self, ctx):
        ctx.open()
        ctx.acquire()
        ctx.release()
        with pytest.raises(ClusterError, match="double-release"):
            ctx.release()

    def test_cross_thread_use_fails(self, ctx):
        ctx.open()
        ctx.acquire()
        errors = []

        def intruder():
            try:
                ctx.set_domain(-1.0, 1.0)
            except ClusterError as e:
                errors.append(e)
            try:
                ctx.release()
            except ClusterError as e:
                errors.append(e)

        t = threading.Thread(target=intruder)
        t.start()
        t.join()
        assert len(errors) == 2
        ctx.release()

    def test_unheld_context_is_usable(self, ctx):
        ctx.open()
        ctx.set_domain(-1.0, 1.0)   # no latch held: plain use works


class TestBoardSets:
    def test_hosts_get_disjoint_sets(self, ctx):
        ctx.open()
        assert ctx.board_sets == ((0, 1), (2, 3))
        assert ctx.registry.available == 0

    def test_overlapping_reservation_fails(self, ctx):
        ctx.open()
        with pytest.raises(ClusterError, match="overlaps"):
            ctx.registry.reserve([1, 2])

    def test_registry_overlap_names_holder(self):
        reg = BoardSetRegistry(4)
        reg.reserve([0, 1], owner="host0")
        with pytest.raises(ClusterError, match="host0"):
            reg.reserve([1, 2], owner="host1")
        # failed reservation left the registry untouched
        assert reg.reserved == (0, 1)
        reg.reserve([2, 3], owner="host1")

    def test_registry_double_release(self):
        reg = BoardSetRegistry(4)
        ids = reg.reserve([0, 1])
        reg.release(ids)
        with pytest.raises(ClusterError, match="double release"):
            reg.release(ids)

    def test_registry_rejects_bad_sets(self):
        reg = BoardSetRegistry(2)
        with pytest.raises(ClusterError, match="empty"):
            reg.reserve([])
        with pytest.raises(ClusterError, match="duplicate"):
            reg.reserve([0, 0])
        with pytest.raises(ClusterError, match="outside"):
            reg.reserve([0, 5])
        with pytest.raises(ValueError):
            BoardSetRegistry(0)

    def test_holder_of_free_board(self):
        reg = BoardSetRegistry(2)
        with pytest.raises(ClusterError, match="not reserved"):
            reg.holder_of(0)


class TestBrokerBoardLeases:
    def test_lease_board_sets_disjoint(self):
        from repro.serve.leases import LeaseBroker
        broker = LeaseBroker(slots=2, boards=3)
        l1 = broker.acquire(timeout=1.0)
        l2 = broker.acquire(timeout=1.0)
        try:
            assert l1.board_set == (0, 1, 2)
            assert l2.board_set == (3, 4, 5)
            assert set(l1.board_set).isdisjoint(l2.board_set)
            assert broker.board_registry.holder_of(0) == l1.id
        finally:
            broker.release(l1)
            broker.release(l2)
            broker.close()

    def test_release_returns_boards(self):
        from repro.serve.leases import LeaseBroker
        broker = LeaseBroker(slots=1, boards=2)
        lease = broker.acquire(timeout=1.0)
        assert broker.board_registry.available == 0
        broker.release(lease)
        assert broker.board_registry.available == 2
        broker.close()

    def test_nonpaper_board_count_reshapes_slots(self):
        from repro.serve.leases import LeaseBroker
        broker = LeaseBroker(slots=1, boards=4)
        lease = broker.acquire(timeout=1.0)
        try:
            assert len(lease.context.system.boards) == 4
        finally:
            broker.release(lease)
            broker.close()


def test_evaluate_after_close_fails():
    c = ClusterContext(ClusterSpec(hosts=1)).open()
    c.close()
    with pytest.raises(ClusterError, match="open"):
        c.evaluate(None, None, None, None, None, 0.0, None, None)


def test_stats_survive_close():
    rng = np.random.default_rng(7)
    pos = rng.standard_normal((300, 3))
    mass = np.full(300, 1.0 / 300)
    from repro.core.treecode import TreeCode
    tc = TreeCode(theta=0.75, n_crit=64, cluster=ClusterSpec(hosts=2),
                  kernels="numpy")
    tc.accelerations(pos, mass, 0.01)
    c = tc.cluster
    tc.close()
    assert c.hosts == []
    assert c.model_seconds > 0.0
    assert c.summary()["hosts"] == 2
