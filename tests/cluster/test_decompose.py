"""Domain decomposition: determinism, coverage, balance."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, orb_partition, partition_sinks, slab_partition
from repro.cluster.decompose import _as_centers_weights


def _sinks(rng, n=500):
    centers = rng.standard_normal((n, 3)) * np.array([3.0, 1.0, 1.0])
    weights = rng.integers(1, 64, n).astype(np.float64)
    return centers, weights


@pytest.mark.parametrize("partition", [orb_partition, slab_partition])
@pytest.mark.parametrize("hosts", [1, 2, 3, 4, 7])
def test_partition_covers_all_hosts(partition, hosts, rng):
    centers, weights = _sinks(rng)
    owner = partition(centers, weights, hosts)
    assert owner.shape == (centers.shape[0],)
    assert owner.dtype == np.int64
    assert set(np.unique(owner)) == set(range(hosts))


@pytest.mark.parametrize("partition", [orb_partition, slab_partition])
def test_partition_deterministic(partition, rng):
    centers, weights = _sinks(rng)
    a = partition(centers, weights, 4)
    b = partition(centers.copy(), weights.copy(), 4)
    np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("partition", [orb_partition, slab_partition])
def test_partition_weight_balance(partition, rng):
    """Every host's weight share is within 2x of perfect balance."""
    centers, weights = _sinks(rng, n=2000)
    hosts = 4
    owner = partition(centers, weights, hosts)
    shares = np.array([weights[owner == h].sum() for h in range(hosts)])
    ideal = weights.sum() / hosts
    assert shares.max() < 2.0 * ideal
    assert shares.min() > 0.25 * ideal


def test_single_host_is_all_zeros(rng):
    centers, weights = _sinks(rng, n=50)
    np.testing.assert_array_equal(orb_partition(centers, weights, 1),
                                  np.zeros(50, dtype=np.int64))
    np.testing.assert_array_equal(slab_partition(centers, weights, 1),
                                  np.zeros(50, dtype=np.int64))


def test_orb_handles_tiny_inputs(rng):
    centers = rng.standard_normal((2, 3))
    weights = np.ones(2)
    owner = orb_partition(centers, weights, 4)
    # two sinks cannot cover four hosts, but all owners stay in range
    assert np.all((owner >= 0) & (owner < 4))


def test_slab_zero_weights_fall_back_to_counts(rng):
    centers = rng.standard_normal((10, 3))
    owner = slab_partition(centers, np.zeros(10), 2)
    assert np.sum(owner == 0) == 5
    assert np.sum(owner == 1) == 5


def test_slab_explicit_axis(rng):
    centers = rng.standard_normal((100, 3))
    weights = np.ones(100)
    owner = slab_partition(centers, weights, 2, axis=2)
    # slabs split along z: host 0's max z below host 1's min z
    assert centers[owner == 0, 2].max() <= centers[owner == 1, 2].min()


def test_validation_errors(rng):
    centers, weights = _sinks(rng, n=10)
    with pytest.raises(ValueError):
        orb_partition(centers[:, :2], weights[:10], 2)
    with pytest.raises(ValueError):
        orb_partition(centers, weights[:5], 2)
    with pytest.raises(ValueError):
        orb_partition(centers, -weights, 2)
    with pytest.raises(ValueError):
        orb_partition(centers, weights, 0)
    with pytest.raises(ValueError):
        slab_partition(centers, weights, 0)
    with pytest.raises(ValueError):
        _as_centers_weights(centers.ravel(), weights)


def test_partition_sinks_dispatch(rng):
    centers, weights = _sinks(rng, n=100)
    np.testing.assert_array_equal(
        partition_sinks(centers, weights, ClusterSpec(hosts=2, decomp="orb")),
        orb_partition(centers, weights, 2))
    np.testing.assert_array_equal(
        partition_sinks(centers, weights,
                        ClusterSpec(hosts=2, decomp="slab")),
        slab_partition(centers, weights, 2))
