"""Worker registry + draining: scheduler lifecycle rows, the drain
primitive (checkpoint + requeue + deregister), and the HTTP surface
(``GET /fleet``, ``POST /fleet/drain``, enriched ``/healthz``)."""

import time

import pytest

from repro.serve import JobSpec, Scheduler, SQLiteJobStore
from tests.serve.conftest import live_server


@pytest.fixture
def store(tmp_path):
    s = SQLiteJobStore(tmp_path / "jobs.db")
    yield s
    s.close()


def worker(store, tmp_path, name, **kw):
    kw.setdefault("slots", 1)
    kw.setdefault("poll_interval", 0.02)
    kw.setdefault("cache", False)
    return Scheduler(workdir=tmp_path / "work", store=store,
                     worker_id=name, **kw)


def run_spec(**kw):
    params = {"ngrid": 6, "steps": 6, "z_final": 12.0}
    params.update(kw.pop("params", {}))
    return JobSpec(kind="run", params=params, checkpoint_every=1,
                   **kw)


def wait_running(sched, job_id, timeout=60.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        if sched.get(job_id).state == "running":
            return
        time.sleep(0.02)
    raise TimeoutError(f"{job_id} never started running")


class TestRegistry:
    def test_start_registers_stop_deregisters(self, store, tmp_path):
        a = worker(store, tmp_path, "A").start()
        rows = store.fleet_workers(now=time.time())
        assert [r["worker"] for r in rows] == ["A"]
        row = rows[0]
        assert row["live"] and row["state"] == "up"
        assert row["slots"] == 1 and row["boards"] == 2
        assert "force_eval" in row["kinds"]
        a.stop(drain=False)
        assert store.fleet_workers(now=time.time()) == []

    def test_housekeeping_keeps_the_row_live(self, store, tmp_path):
        a = worker(store, tmp_path, "A", claim_ttl=0.4,
                   heartbeat_interval=0.05).start()
        try:
            time.sleep(1.2)  # several TTLs: heartbeats must renew
            rows = store.fleet_workers(now=time.time())
            assert rows and rows[0]["live"]
        finally:
            a.stop(drain=False)

    def test_dead_worker_row_goes_stale_not_deleted(self, store,
                                                    tmp_path):
        """A SIGKILLed worker can't deregister; its row flips live=
        False after the TTL so operators still see the corpse."""
        a = worker(store, tmp_path, "A", claim_ttl=1.0)
        store.fleet_register(a._fleet_doc(), now=time.time() - 60.0,
                             ttl=1.0)
        rows = store.fleet_workers(now=time.time())
        assert len(rows) == 1 and not rows[0]["live"]

    def test_fleet_gauges_exported(self, store, tmp_path):
        a = worker(store, tmp_path, "A",
                   heartbeat_interval=0.05).start()
        try:
            time.sleep(0.3)
            snap = a.metrics.snapshot()
            assert snap["fleet.workers_live"]["value"] >= 1
            assert snap["fleet.workers_draining"]["value"] == 0
        finally:
            a.stop(drain=False)


class TestDrain:
    def test_drained_worker_claims_nothing(self, store, tmp_path):
        a = worker(store, tmp_path, "A")
        a.submit(JobSpec(kind="force_eval", params={"n": 64}))
        a.drain()
        with a._cv:
            assert a._claim_next_locked() is None
        assert store.get("j000001")["state"] == "queued"
        a.stop(drain=False)

    def test_drain_requeues_running_job_for_takeover(self, store,
                                                     tmp_path):
        """The headline drain flow: a running job checkpoints out,
        another worker finishes it, digest identical to an
        uninterrupted run."""
        a = worker(store, tmp_path, "A", claim_ttl=10.0).start()
        job = a.submit(run_spec())
        wait_running(a, job.id)
        summary = a.drain(timeout=60.0)
        assert summary["owned"] == [job.id]
        assert summary["requeued"] == [job.id]
        assert store.get(job.id)["state"] == "queued"
        assert a.draining
        assert store.fleet_workers(now=time.time()) == []

        b = worker(store, tmp_path, "B").start()
        try:
            assert b.wait(job.id, timeout=120)
            done = store.get(job.id)
            assert done["state"] == "done"
            assert done["worker"] == "B"
            events = [e["event"] for e in store.events(job.id)]
            assert "paused" in events and "resumed" in events

            ref = b.submit(run_spec())
            assert b.wait(ref.id, timeout=120)
            ref_doc = store.get(ref.id)
            assert ref_doc["state"] == "done"
            assert ref_doc["result"]["digest"] == \
                done["result"]["digest"]
        finally:
            b.stop(drain=False)
            a.stop(drain=False)

    def test_drain_is_idempotent_and_counted(self, store, tmp_path):
        a = worker(store, tmp_path, "A").start()
        try:
            assert a.drain()["draining"]
            assert a.drain()["draining"]
            snap = a.metrics.snapshot()
            assert snap["fleet.drains"]["value"] == 1
        finally:
            a.stop(drain=False)

    def test_restart_after_drain_rejoins(self, store, tmp_path):
        a = worker(store, tmp_path, "A").start()
        a.drain()
        a.stop(drain=False)
        a = worker(store, tmp_path, "A").start()
        try:
            assert not a.draining
            rows = store.fleet_workers(now=time.time())
            assert rows and rows[0]["state"] == "up"
        finally:
            a.stop(drain=False)


class TestFleetHttpSurface:
    def test_fleet_endpoint_and_healthz(self, tmp_path):
        with live_server(workdir=tmp_path / "w",
                         store=tmp_path / "jobs.db") as (server, c):
            h = c.healthz()
            assert h["fleet"]["workers"] == 1
            assert h["fleet"]["live"] == 1
            assert h["draining"] is False
            assert h["store"] == "sqlite"

            doc = c.fleet()
            assert doc["schema"] == "repro.fleet/v1"
            assert doc["worker"] == server.scheduler.worker_id
            assert [w["worker"] for w in doc["workers"]] == \
                [server.scheduler.worker_id]
            assert doc["live"] == 1 and doc["draining_count"] == 0
            assert "cache" in doc

    def test_drain_over_http(self, tmp_path):
        with live_server(workdir=tmp_path / "w",
                         store=tmp_path / "jobs.db") as (server, c):
            summary = c.drain()
            assert summary["draining"] is True
            assert c.healthz()["draining"] is True
            assert c.fleet()["draining"] is True
            # the HTTP surface stays up after a drain
            assert c.jobs() == []

    def test_two_workers_share_one_registry(self, tmp_path):
        db = tmp_path / "jobs.db"
        with live_server(workdir=tmp_path / "a", store=db) as (sa, ca):
            with live_server(workdir=tmp_path / "b",
                             store=db) as (sb, cb):
                doc = ca.fleet()
                assert len(doc["workers"]) == 2
                assert doc["live"] == 2
                cb.drain()
                doc = ca.fleet()
                # B deregistered; A still sees itself
                assert [w["worker"] for w in doc["workers"]] == \
                    [sa.scheduler.worker_id]
