"""RemoteJobStore against a live StoreServer: the whole JobStore
contract over real TCP, plus URL dispatch, typed server errors and
the shared bounded cache."""

import threading
import time

import pytest

from repro.fleet import (DEFAULT_STORE_PORT, RemoteJobStore,
                         StoreUnavailable)
from repro.serve import JobSpec, SQLiteJobStore, StoreError, open_store
from repro.serve.store import spec_hash


def seeded_doc(remote, **kw):
    """Allocate + insert one queued job document *through the wire*;
    returns it."""
    from repro.serve import Job
    jid, seq = remote.allocate()
    job = Job(spec=JobSpec(kind="force_eval",
                           params={"n": 64, "seed": 1}, **kw), id=jid)
    job.seq = seq
    doc = job.to_store_doc()
    remote.insert(doc)
    return doc


class TestOpenStoreDispatch:
    def test_url_opens_a_remote_store(self, store_server):
        st = open_store(store_server.url)
        assert isinstance(st, RemoteJobStore)
        assert st.kind == "remote"
        assert st.url == store_server.url

    def test_default_port_applies(self):
        st = open_store("http://stores.example")
        assert st.port == DEFAULT_STORE_PORT

    def test_https_is_refused(self):
        with pytest.raises(StoreError, match="http"):
            open_store("https://host:1234")

    def test_url_with_path_is_refused(self):
        with pytest.raises(StoreError):
            RemoteJobStore("http://host:1234/rpc/v1")

    def test_path_still_opens_sqlite(self, tmp_path):
        st = open_store(tmp_path / "x.db")
        try:
            assert st.kind == "sqlite"
        finally:
            st.close()


class TestContractOverTcp:
    def test_allocate_insert_get_list(self, remote):
        doc = seeded_doc(remote)
        got = remote.get(doc["id"])
        assert got["id"] == doc["id"]
        assert got["state"] == "queued"
        assert [d["id"] for d in remote.list()] == [doc["id"]]
        assert remote.get("j999999") is None

    def test_claim_cas_over_the_wire(self, remote, store_server):
        """Two clients racing the same claim: exactly one winner --
        the CAS lives in the backing store, not the client."""
        doc = seeded_doc(remote)
        other = RemoteJobStore(store_server.url, retries=0)
        barrier = threading.Barrier(2)
        wins = []

        def contend(st, name):
            barrier.wait()
            wins.append(st.claim(doc["id"], name, now=time.time(),
                                 ttl=30.0))

        threads = [threading.Thread(target=contend, args=a)
                   for a in ((remote, "a"), (other, "b"))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 1

    def test_heartbeat_and_guarded_update(self, remote):
        doc = seeded_doc(remote)
        assert remote.claim(doc["id"], "w1", now=time.time(), ttl=5.0)
        row = remote.heartbeat(doc["id"], "w1", now=time.time(),
                               ttl=5.0)
        assert row == {"cancel_requested": False}
        assert remote.heartbeat(doc["id"], "intruder",
                                now=time.time(), ttl=5.0) is None
        claimed = remote.get(doc["id"])
        claimed["state"] = "running"
        assert remote.update(claimed, worker="w1")
        assert not remote.update(claimed, worker="intruder")

    def test_recover_requeues_expired_claims(self, remote):
        doc = seeded_doc(remote)
        assert remote.claim(doc["id"], "dead", now=time.time() - 60.0,
                            ttl=1.0)
        requeued = remote.recover(now=time.time())
        assert requeued == [doc["id"]]
        fresh = remote.get(doc["id"])
        assert fresh["state"] == "queued"
        assert fresh["attempt"] == 1

    def test_events_round_trip(self, remote):
        doc = seeded_doc(remote)
        remote.append_event(doc["id"], {"event": "submitted",
                                        "t_wall": 1.0})
        remote.append_event(doc["id"], {"event": "leased",
                                        "t_wall": 2.0})
        events = remote.events(doc["id"])
        assert [e["event"] for e in events] == ["submitted", "leased"]

    def test_cancel_and_requeue(self, remote):
        doc = seeded_doc(remote)
        assert remote.request_cancel(doc["id"]) == "cancelled"
        assert not remote.requeue(doc["id"])

    def test_typed_errors_propagate_without_retry(self, remote):
        """A server-side StoreError is an answer: it raises the same
        class client-side on the first trip (no retry storm)."""
        ghost = seeded_doc(remote)
        ghost["id"] = "j424242"
        t0 = time.monotonic()
        with pytest.raises(StoreError, match="no such job"):
            remote.update(ghost)
        # retries=2 with backoff 0.01 would add >= 0.03s; the typed
        # answer must come back in one round trip
        assert time.monotonic() - t0 < 1.0

    def test_verify_runs_server_side(self, remote):
        seeded_doc(remote)
        assert remote.verify() == []

    def test_unreachable_server_is_store_unavailable(self):
        st = RemoteJobStore("http://127.0.0.1:1", timeout=0.2,
                            retries=1, backoff=0.01)
        with pytest.raises(StoreUnavailable):
            st.list()


class TestSharedCache:
    def test_cache_round_trip_and_hit_count(self, remote):
        spec = JobSpec(kind="force_eval", params={"n": 64, "seed": 2})
        key = spec_hash(spec)
        result = {"digest": "d" * 64, "n": 64}
        remote.cache_put(key, result["digest"], result)
        assert remote.cache_get(key) == result
        assert remote.cache_get("nope" * 16) is None
        stats = remote.cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1

    def test_budget_is_enforced_through_the_wire(self, tmp_path,
                                                 store_server_factory):
        """Puts from a remote client respect the *server's* byte
        budget: LRU eviction, counted, never over budget."""
        backing = SQLiteJobStore(tmp_path / "b.db", cache_budget=600)
        with store_server_factory(backing) as server:
            st = RemoteJobStore(server.url)
            for i in range(10):
                st.cache_put(f"k{i:02d}", None,
                             {"i": i, "pad": "x" * 100})
            stats = st.cache_stats()
            assert stats["budget"] == 600
            assert stats["bytes"] <= 600
            assert stats["evictions"] >= 5
            # newest entries survived, oldest were evicted
            assert st.cache_get("k09") is not None
            assert st.cache_get("k00") is None
        backing.close()

    def test_lru_recency_protects_hot_entries(self, tmp_path,
                                              store_server_factory):
        backing = SQLiteJobStore(tmp_path / "b.db", cache_budget=400)
        with store_server_factory(backing) as server:
            st = RemoteJobStore(server.url)
            st.cache_put("hot", None, {"pad": "h" * 80})
            st.cache_put("cold", None, {"pad": "c" * 80})
            assert st.cache_get("hot") is not None  # refresh recency
            for i in range(3):  # forces exactly one eviction
                st.cache_put(f"f{i}", None, {"pad": "f" * 80})
            assert st.cache_get("hot") is not None
            assert st.cache_get("cold") is None
        backing.close()


class TestRegistryOverTcp:
    def test_register_heartbeat_expire_deregister(self, remote):
        now = time.time()
        remote.fleet_register({"worker": "w1", "host": "h",
                               "state": "up"}, now=now, ttl=5.0)
        rows = remote.fleet_workers(now=now)
        assert [r["worker"] for r in rows] == ["w1"]
        assert rows[0]["live"]
        # TTL lapse flips live off without deleting the row
        stale = remote.fleet_workers(now=now + 60.0)
        assert not stale[0]["live"]
        assert remote.fleet_heartbeat("w1", now=now + 60.0, ttl=5.0,
                                      state="draining")
        rows = remote.fleet_workers(now=now + 60.0)
        assert rows[0]["live"] and rows[0]["state"] == "draining"
        assert remote.fleet_deregister("w1")
        assert not remote.fleet_deregister("w1")
        assert remote.fleet_workers(now=now) == []

    def test_fleet_summary_is_derived_client_side(self, remote):
        now = time.time()
        remote.fleet_register({"worker": "a", "state": "up"},
                              now=now, ttl=30.0)
        remote.fleet_register({"worker": "b", "state": "draining"},
                              now=now, ttl=30.0)
        remote.fleet_register({"worker": "dead", "state": "up"},
                              now=now - 100.0, ttl=1.0)
        summary = remote.fleet_summary(now=now)
        assert summary == {"workers": 3, "live": 2, "draining": 1}
