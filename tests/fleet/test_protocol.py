"""The ``repro.fleet-rpc/v1`` envelope: sealing, digest checking,
typed error round-trips -- pure protocol, no sockets."""

import json

import pytest

from repro.fleet import PayloadCorrupt, ProtocolError, RPC_OPS, \
    RPC_SCHEMA
from repro.fleet.protocol import (pack_error, pack_request,
                                  pack_result, unpack_request,
                                  unpack_response)
from repro.serve import JobStore, StoreCorrupt, StoreError


class TestEnvelopes:
    def test_request_round_trip(self):
        raw = pack_request("claim", {"job_id": "j1", "worker": "w",
                                     "now": 1.0, "ttl": 30.0})
        op, args = unpack_request(raw)
        assert op == "claim"
        assert args == {"job_id": "j1", "worker": "w", "now": 1.0,
                        "ttl": 30.0}

    def test_result_round_trip(self):
        raw = pack_result({"jobs": [1, 2], "ok": None})
        assert unpack_response(raw) == {"jobs": [1, 2], "ok": None}

    def test_envelope_carries_schema_and_digest(self):
        doc = json.loads(pack_request("list", {}))
        assert doc["schema"] == RPC_SCHEMA
        assert len(doc["sha256"]) == 64

    def test_rpc_ops_cover_the_store_contract(self):
        """Every RPC op is a real store method, and the remote driver
        proxies every one of them (derived queries intentionally stay
        client-side on the base class)."""
        from repro.fleet import RemoteJobStore
        for op in RPC_OPS:
            assert callable(getattr(JobStore, op, None)), op
            assert op in RemoteJobStore.__dict__, \
                f"RemoteJobStore does not proxy {op!r}"


class TestDamage:
    def test_truncation_is_payload_corrupt(self):
        raw = pack_result([1, 2, 3])
        with pytest.raises(PayloadCorrupt):
            unpack_response(raw[:len(raw) // 2])

    def test_bit_flip_is_payload_corrupt(self):
        raw = bytearray(pack_result({"digest": "abc"}))
        i = raw.index(b"abc"[0])
        raw[i] ^= 0x01
        with pytest.raises(PayloadCorrupt):
            unpack_response(bytes(raw))

    def test_missing_digest_is_protocol_error(self):
        naked = (json.dumps({"schema": RPC_SCHEMA, "ok": True,
                             "result": 1}) + "\n").encode()
        with pytest.raises(ProtocolError):
            unpack_response(naked)

    def test_foreign_schema_is_protocol_error(self):
        from repro.serve.store import _canon, _doc_sha
        doc = {"schema": "someone.elses/v9", "ok": True, "result": 1}
        doc["sha256"] = _doc_sha(_canon(doc))
        with pytest.raises(ProtocolError):
            unpack_response((_canon(doc) + "\n").encode())

    def test_unknown_op_is_protocol_error(self):
        from repro.serve.store import _canon, _doc_sha
        doc = {"schema": RPC_SCHEMA, "op": "drop_tables", "args": {}}
        doc["sha256"] = _doc_sha(_canon(doc))
        with pytest.raises(ProtocolError):
            unpack_request((_canon(doc) + "\n").encode())

    def test_corrupt_is_a_store_corrupt_and_protocol_a_store_error(self):
        """Typed errors slot into the existing store hierarchy, so
        callers catching StoreError/StoreCorrupt keep working."""
        assert issubclass(PayloadCorrupt, StoreCorrupt)
        assert issubclass(ProtocolError, StoreError)


class TestErrorRoundTrip:
    @pytest.mark.parametrize("exc_cls", [StoreError, StoreCorrupt,
                                         ProtocolError])
    def test_server_error_class_survives_the_wire(self, exc_cls):
        raw = pack_error(exc_cls("the message"))
        with pytest.raises(exc_cls, match="the message"):
            unpack_response(raw)

    def test_unknown_error_type_degrades_to_store_error(self):
        raw = pack_error(RuntimeError("weird"))
        with pytest.raises(StoreError, match="weird") as ei:
            unpack_response(raw)
        assert type(ei.value) is StoreError
