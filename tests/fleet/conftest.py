"""Shared fleet-test plumbing: a live store server on an ephemeral
port.

The asyncio :class:`~repro.fleet.netstore.StoreServer` runs on a
private event loop in a daemon thread (the same shape as production
``repro store serve``, minus signals); tests talk to it through
:class:`~repro.fleet.remote.RemoteJobStore` over real TCP, so every
test exercises the full ``repro.fleet-rpc/v1`` wire format.
"""

import asyncio
import threading
from contextlib import contextmanager

import pytest

from repro.fleet import RemoteJobStore, StoreServer
from repro.serve import SQLiteJobStore


@contextmanager
def live_store_server(backing):
    """Start a store server over ``backing``, yield it, tear down."""
    server = StoreServer(backing, port=0)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(server.start(),
                                         loop).result(timeout=10)
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(),
                                         loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


@pytest.fixture
def backing(tmp_path):
    s = SQLiteJobStore(tmp_path / "jobs.db", cache_budget=None)
    yield s
    s.close()


@pytest.fixture
def store_server(backing):
    with live_store_server(backing) as server:
        yield server


@pytest.fixture
def remote(store_server):
    """A RemoteJobStore client wired to the live server (fast retry
    settings so failure tests stay quick)."""
    return RemoteJobStore(store_server.url, timeout=10.0,
                          retries=2, backoff=0.01)


@pytest.fixture
def store_server_factory():
    return live_store_server
