"""Integration: the treecode driving the GRAPE-5 emulator, i.e. the
paper's actual computational pipeline, checked against its section-2
accuracy claims."""

import numpy as np
import pytest

from repro.core import DirectSummation, TreeCode
from repro.grape import G5Numerics, GrapeBackend, Grape5System
from repro.sim.models import plummer_model


def _rms(a, ref):
    e = np.linalg.norm(a - ref, axis=1) / np.linalg.norm(ref, axis=1)
    return float(np.sqrt(np.mean(e**2)))


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(99)
    pos, _, mass = plummer_model(2000, rng)
    acc_ref, pot_ref = DirectSummation().accelerations(pos, mass, 0.01)
    return pos, mass, acc_ref, pot_ref


class TestPaperAccuracyClaims:
    def test_total_error_dominated_by_tree(self, system):
        """Paper section 2: 'The average error of the force in our
        simulation is around 0.1%, which is dominated by the
        approximation made in the tree algorithm and not by the
        accuracy of the hardware.'

        Concretely: tree+GRAPE error ~ tree+float64 error, and both sit
        near 1e-3 at production theta."""
        pos, mass, acc_ref, _ = system
        tc64 = TreeCode(theta=0.75, n_crit=128)
        a64, _ = tc64.accelerations(pos, mass, 0.01)
        err_tree = _rms(a64, acc_ref)

        tcg = TreeCode(theta=0.75, n_crit=128, backend=GrapeBackend())
        ag, _ = tcg.accelerations(pos, mass, 0.01)
        err_grape = _rms(ag, acc_ref)

        assert 2e-4 < err_tree < 3e-3      # ~0.1 % tree error
        assert err_grape < 3.0 * err_tree  # hardware adds little

    def test_practically_same_as_64bit(self, system):
        """Paper: 'The relative accuracy was practically the same when
        we performed the same force calculation using standard 64-bit
        floating point arithmetic' -- emulated by the exact-mode pipe."""
        pos, mass, acc_ref, _ = system
        exact_backend = GrapeBackend(
            system=Grape5System(numerics=G5Numerics().exact()))
        tc = TreeCode(theta=0.75, n_crit=128, backend=exact_backend)
        a_exact, _ = tc.accelerations(pos, mass, 0.01)
        tc64 = TreeCode(theta=0.75, n_crit=128)
        a64, _ = tc64.accelerations(pos, mass, 0.01)
        assert np.allclose(a_exact, a64, rtol=1e-12)

    def test_grape_time_accounted(self, system):
        pos, mass, _, _ = system
        backend = GrapeBackend()
        tc = TreeCode(theta=0.75, n_crit=128, backend=backend)
        backend.reset_stats()
        tc.accelerations(pos, mass, 0.01)
        assert backend.model_seconds > 0
        assert backend.interactions == tc.last_stats.total_interactions

    def test_model_speed_reasonable_fraction_of_peak(self, system):
        """Small groups waste pipelines; the modelled sustained speed
        must be below peak but non-trivial."""
        pos, mass, _, _ = system
        backend = GrapeBackend()
        tc = TreeCode(theta=0.75, n_crit=256, backend=backend)
        backend.reset_stats()
        tc.accelerations(pos, mass, 0.01)
        sustained = backend.system.model_flops
        peak = backend.system.peak_flops
        assert 0.001 * peak < sustained < peak
