"""Periodic-box cosmology validation (extension substrates together).

These tests close the loop over three substrates -- the Ewald periodic
force solver, the comoving-coordinate leapfrog, and the Friedmann
background -- with the two canonical checks of any cosmological
N-body code:

1. an unperturbed lattice stays exactly on the lattice in comoving
   coordinates (the expanding universe is an equilibrium), and
2. a small plane-wave perturbation grows with the linear growth
   factor, ``A(a) / A(a_i) = D(a) / D(a_i)`` (= ``a/a_i`` for the
   paper's EdS background).
"""

import numpy as np
import pytest

from repro.cosmo.cosmology import SCDM
from repro.cosmo.ewald import PeriodicDirectSummation
from repro.cosmo.units import G as G_ASTRO
from repro.sim.integrator import ComovingLeapfrog

BOX = 10.0     # comoving Mpc
NGRID = 6      # 216 particles


def _lattice():
    edge = (np.arange(NGRID) + 0.5) * (BOX / NGRID)
    gx, gy, gz = np.meshgrid(edge, edge, edge, indexing="ij")
    return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)


@pytest.fixture(scope="module")
def periodic_force():
    solver = PeriodicDirectSummation(box=BOX)
    rho = SCDM.mean_matter_density()
    m_eff = np.full(NGRID**3, G_ASTRO * rho * BOX**3 / NGRID**3)
    eps = 0.05 * BOX / NGRID

    def force(x):
        return solver.accelerations(np.mod(x, BOX), m_eff, eps)

    return force


class TestComovingEquilibrium:
    def test_lattice_is_static_in_comoving_coords(self, periodic_force):
        q = _lattice()
        mom = np.zeros_like(q)
        lf = ComovingLeapfrog(force=periodic_force, cosmology=SCDM)
        t = SCDM.age(24.0)
        x = q.copy()
        for _ in range(5):
            dt = 0.2 * t
            x, mom = lf.step(x, mom, t, dt)
            t += dt
        # residual motion only from table-interpolation force noise
        assert np.abs(x - q).max() < 1e-3 * (BOX / NGRID)


class TestLinearGrowth:
    def test_plane_wave_grows_with_d(self, periodic_force):
        """Zel'dovich mode: displacement along x with one wavelength
        per box.  From z = 24 to z = 9, EdS growth is a factor 2.5."""
        z_i, z_f = 24.0, 9.0
        a_i = 1.0 / (1.0 + z_i)
        q = _lattice()
        k = 2.0 * np.pi / BOX
        amp0 = 0.01 * BOX / NGRID     # deeply linear
        disp = amp0 * np.sin(k * q[:, 0])
        x = q.copy()
        x[:, 0] += disp
        # EdS growing mode: comoving velocity ddisp/dt = H(a) * disp,
        # canonical momentum p = a^2 dx/dt
        h_i = float(SCDM.H(a_i))
        mom = np.zeros_like(q)
        mom[:, 0] = a_i**2 * h_i * disp

        lf = ComovingLeapfrog(force=periodic_force, cosmology=SCDM)
        t = SCDM.age(z_i)
        t_end = SCDM.age(z_f)
        n_steps = 40
        dt = (t_end - t) / n_steps
        for _ in range(n_steps):
            x, mom = lf.step(x, mom, t, dt)
            t += dt

        # project the displacement back onto the initial mode
        final = x[:, 0] - q[:, 0]
        basis = np.sin(k * q[:, 0])
        amp1 = final @ basis / (basis @ basis)
        growth = amp1 / amp0
        expect = float(SCDM.growth_factor(z_f)
                       / SCDM.growth_factor(z_i))
        assert growth == pytest.approx(expect, rel=0.05)
        # transverse directions stay clean
        assert np.abs(x[:, 1:] - q[:, 1:]).max() < 0.02 * amp0 * 25 + 1e-4

    def test_decaying_mode_without_velocity(self, periodic_force):
        """Displacement with zero initial velocity mixes growing and
        decaying modes: growth is slower than the pure growing mode
        (3/5 D + 2/5 decaying for EdS)."""
        z_i, z_f = 24.0, 9.0
        q = _lattice()
        k = 2.0 * np.pi / BOX
        amp0 = 0.01 * BOX / NGRID
        x = q.copy()
        x[:, 0] += amp0 * np.sin(k * q[:, 0])
        mom = np.zeros_like(q)

        lf = ComovingLeapfrog(force=periodic_force, cosmology=SCDM)
        t = SCDM.age(z_i)
        dt = (SCDM.age(z_f) - t) / 40
        for _ in range(40):
            x, mom = lf.step(x, mom, t, dt)
            t += dt
        basis = np.sin(k * q[:, 0])
        amp1 = (x[:, 0] - q[:, 0]) @ basis / (basis @ basis)
        pure = float(SCDM.growth_factor(z_f) / SCDM.growth_factor(z_i))
        # EdS: A(t)/A0 = (3/5) D + (2/5) (a/a_i)^(-3/2)
        a_ratio = (1 + z_i) / (1 + z_f)
        mixed = 0.6 * pure + 0.4 * a_ratio**-1.5
        assert amp1 / amp0 == pytest.approx(mixed, rel=0.08)
        assert amp1 / amp0 < pure
