"""End-to-end: a miniature of the paper's whole experiment, from
initial conditions through the GRAPE-backed treecode run to the
price/performance report."""

import numpy as np
import pytest

from repro.core import TreeCode
from repro.cosmo import SCDM, ZeldovichIC, carve_sphere
from repro.grape import GrapeBackend
from repro.perf.opcount import original_interaction_count
from repro.perf.report import HeadlineReport
from repro.sim import Simulation, paper_schedule, slab
from repro.viz import surface_density


@pytest.fixture(scope="module")
def mini_run():
    """A tiny end-to-end paper run: N ~ 900, 8 steps z = 24 -> 4."""
    ic = ZeldovichIC(box=100.0, ngrid=12, seed=17)
    region = carve_sphere(ic, radius=50.0, z_init=24.0)
    backend = GrapeBackend()
    sim = Simulation.from_sphere(
        region, force=TreeCode(theta=0.8, n_crit=64, backend=backend))
    sim.t = SCDM.age(24.0)
    sim.run(paper_schedule(SCDM, 24.0, 4.0, 8))
    return sim, backend


class TestMiniPaperRun:
    def test_run_completes_with_stats(self, mini_run):
        sim, backend = mini_run
        assert len(sim.history) == 8
        assert sim.total_interactions > 0
        assert backend.model_seconds > 0

    def test_positions_remain_finite(self, mini_run):
        sim, _ = mini_run
        assert np.all(np.isfinite(sim.pos))
        assert np.all(np.isfinite(sim.vel))

    def test_headline_report_constructible(self, mini_run):
        """The full section-5 accounting works on a scaled live run."""
        sim, backend = mini_run
        orig_per_step = original_interaction_count(
            sim.pos, sim.mass, theta=0.8)
        report = HeadlineReport(
            n_particles=sim.n_particles,
            n_steps=len(sim.history),
            modified_interactions=float(sim.total_interactions),
            original_interactions=orig_per_step * len(sim.history),
            wall_seconds=max(backend.model_seconds, 1e-9),
        )
        row = report.as_row("mini")
        assert report.counter.overhead_ratio > 1.0
        assert report.raw_gflops > report.effective_gflops
        assert row["usd"] == pytest.approx(40_870, rel=1e-2)

    def test_figure4_pipeline(self, mini_run):
        """Snapshot -> slab -> surface density, the figure-4 chain."""
        sim, _ = mini_run
        extent = float(np.abs(sim.pos).max())
        xy = slab(sim.pos, width=1.8 * extent, thickness=0.1 * extent)
        assert len(xy) > 0
        h = surface_density(xy, width=1.8 * extent, bins=32)
        assert h.sum() == len(xy)


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run():
            ic = ZeldovichIC(box=100.0, ngrid=8, seed=5)
            region = carve_sphere(ic, radius=50.0, z_init=24.0)
            sim = Simulation.from_sphere(
                region, force=TreeCode(theta=0.8, n_crit=32))
            sim.t = SCDM.age(24.0)
            sim.run(paper_schedule(SCDM, 24.0, 9.0, 3))
            return sim.pos

        assert np.array_equal(run(), run())
