"""Cross-checks of every number the paper states, computed from our
models -- the reproduction's 'do the published figures cohere' audit.

Each test quotes the paper line it verifies.
"""

import numpy as np
import pytest

from repro.grape import Grape5System, GrapeTimingModel, OPS_PER_INTERACTION
from repro.host.cost import PAPER_SYSTEM_COST
from repro.perf.model import PerformanceModel
from repro.perf.report import PAPER_HEADLINE


class TestSection2:
    def test_peak_composition(self):
        """'theoretical peak speed ... 109.44 Gflops. Total number of
        pipeline processors is 32. Each processor pipeline operates 38
        operations in a clock cycle' [at 90 MHz]."""
        assert 32 * 90e6 * 38 == pytest.approx(109.44e9)
        assert Grape5System().peak_flops == pytest.approx(109.44e9)

    def test_system_composition(self):
        """'2 processor boards ... 8 processor chips ... 2 pipelines'."""
        s = Grape5System()
        assert len(s.boards) == 2
        assert all(b.n_chips == 8 for b in s.boards)
        assert all(c.n_pipelines == 2
                   for b in s.boards for c in b.chips)


class TestSection4:
    def test_cost_breakdown(self):
        """'1.65 M JYE per board ... 1.4 M JYE ... host ... total
        ... 4.7 M JYE ... about 40,900 dollars' at 115 JYE/$."""
        assert PAPER_SYSTEM_COST.total_jpy == pytest.approx(
            2 * 1.65e6 + 1.4e6)
        assert PAPER_SYSTEM_COST.total_jpy == pytest.approx(4.7e6)
        assert PAPER_SYSTEM_COST.total_usd == pytest.approx(40_900,
                                                            rel=2e-3)


class TestSection5:
    def test_interactions_imply_list_length(self):
        """'total number of the particle-particle interactions is
        2.90e13. This implies that the average length of the
        interaction list is 13,431' (over N = 2,159,038 and 999
        steps)."""
        implied = 2.90e13 / (2_159_038 * 999)
        assert implied == pytest.approx(13_431, rel=2e-3)

    def test_raw_speed(self):
        """'30,141 seconds (8.37 hours) ... average computing speed of
        36.4 Gflops. Here we use the operation count of 38 per
        interaction.'"""
        assert 30_141 / 3600 == pytest.approx(8.37, abs=5e-3)
        raw = OPS_PER_INTERACTION * 2.90e13 / 30_141 / 1e9
        assert raw == pytest.approx(36.4, rel=5e-3)

    def test_effective_speed_and_price(self):
        """'estimated number of the interaction is 4.69e12. The
        effective sustained speed is 5.92 Gflops and the
        price/performance is $7.0/Mflops.'"""
        eff = OPS_PER_INTERACTION * 4.69e12 / 30_141 / 1e9
        assert eff == pytest.approx(5.92, rel=5e-3)
        price = PAPER_SYSTEM_COST.total_usd / (eff * 1e3)
        assert price == pytest.approx(7.0, abs=0.15)

    def test_particle_represents_17e9_solar_masses(self):
        """'A particle represents 1.7e10 solar masses' -- implied by
        SCDM mean density over the 50 Mpc sphere."""
        from repro.cosmo import SCDM
        rho = SCDM.mean_matter_density()
        m = rho * 4.0 / 3.0 * np.pi * 50.0**3 / 2_159_038
        assert m == pytest.approx(1.7e10, rel=0.02)

    def test_headline_object_reproduces_everything(self):
        r = PAPER_HEADLINE
        assert r.mean_list_length == pytest.approx(13_431, rel=2e-3)
        assert r.raw_gflops == pytest.approx(36.4, rel=5e-3)
        assert r.effective_gflops == pytest.approx(5.92, rel=5e-3)
        assert round(r.price_per_mflops) == 7


class TestModelReproducesRun:
    def test_wall_clock_prediction(self):
        """Our host+GRAPE model, evaluated at the paper's operating
        point, must land on the measured wall clock within 10 %."""
        pred = PerformanceModel().run_prediction()
        assert pred["total_seconds"] == pytest.approx(30_141, rel=0.10)

    def test_grape_time_is_large_minority_share(self):
        """The balance the paper engineered: GRAPE does the O(N log N)
        flops in a minority of the wall clock, host ops dominate
        slightly -- both shares must be O(10 s) per step."""
        pm = PerformanceModel()
        th = pm.host_step_time(2_159_038, 2000.0)
        tg = pm.grape_step_time(2_159_038, 2000.0)
        assert 5.0 < tg < 25.0
        assert 5.0 < th < 25.0
