"""The Hernquist–Hut–Makino (1993) experiment, miniaturised.

The paper's ref [13] justified GRAPE-class force errors by showing
numerically that simulations run with ~0.3 % pairwise force error are
statistically indistinguishable from exact-force runs.  We repeat the
core of that experiment: evolve the same virialised system with
(a) float64 treecode forces and (b) GRAPE-precision treecode forces,
and compare the conserved quantities and bulk structure.
"""

import numpy as np
import pytest

from repro.core import TreeCode
from repro.grape import GrapeBackend
from repro.sim.diagnostics import lagrangian_radii, virial_ratio
from repro.sim.models import plummer_model
from repro.sim.simulation import Simulation


def _run(force, seed=2024, n=600, steps=60, dt=0.01):
    rng = np.random.default_rng(seed)
    pos, vel, mass = plummer_model(n, rng)
    sim = Simulation(pos=pos, vel=vel, mass=mass, eps=0.05, G=1.0,
                     force=force)
    _, _, e0 = sim.energies()
    for _ in range(steps):
        sim.step(dt)
    _, _, e1 = sim.energies()
    return sim, abs((e1 - e0) / e0)


@pytest.fixture(scope="module")
def both_runs():
    host, drift_host = _run(TreeCode(theta=0.6, n_crit=64))
    grape, drift_grape = _run(TreeCode(theta=0.6, n_crit=64,
                                       backend=GrapeBackend()))
    return host, drift_host, grape, drift_grape


class TestHardwarePrecisionSufficiency:
    def test_energy_drift_comparable(self, both_runs):
        """GRAPE-precision forces must not degrade energy conservation
        beyond a small factor of the tree-error-driven drift."""
        _, drift_host, _, drift_grape = both_runs
        assert drift_host < 0.01
        assert drift_grape < 0.01
        assert drift_grape < 5.0 * max(drift_host, 1e-4)

    def test_structure_preserved(self, both_runs):
        """Bulk structure (Lagrangian radii) agrees between runs to a
        few percent -- chaos separates trajectories, statistics not."""
        host, _, grape, _ = both_runs
        r_h = lagrangian_radii(host.pos, host.mass)
        r_g = lagrangian_radii(grape.pos, grape.mass)
        assert np.allclose(r_h, r_g, rtol=0.10)

    def test_virial_equilibrium_maintained(self, both_runs):
        host, _, grape, _ = both_runs
        assert virial_ratio(host) == pytest.approx(1.0, abs=0.25)
        assert virial_ratio(grape) == pytest.approx(1.0, abs=0.25)

    def test_momentum_comparable(self, both_runs):
        host, _, grape, _ = both_runs
        scale = float(np.sum(host.mass
                             * np.linalg.norm(host.vel, axis=1)))
        # tree asymmetry dominates momentum drift in both runs: a few
        # percent of the momentum scale, and the same for both
        drift_h = np.linalg.norm(host.momentum()) / scale
        drift_g = np.linalg.norm(grape.momentum()) / scale
        assert drift_h < 0.05
        assert drift_g < 0.05
        assert drift_g < 2.0 * max(drift_h, 1e-4)
