"""End-to-end property tests (hypothesis): invariants that must hold
for arbitrary particle configurations, not just the fixtures."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DirectSummation, TreeCode
from repro.core.direct import direct_accelerations

COMMON = dict(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _random_config(seed, n):
    rng = np.random.default_rng(seed)
    kind = seed % 3
    if kind == 0:
        pos = rng.standard_normal((n, 3))
    elif kind == 1:  # thin disc: anisotropic
        pos = rng.standard_normal((n, 3)) * np.array([1.0, 1.0, 0.05])
    else:            # two separated clumps
        pos = np.concatenate([
            rng.standard_normal((n // 2, 3)) * 0.2 - 2.0,
            rng.standard_normal((n - n // 2, 3)) * 0.2 + 2.0])
    mass = rng.uniform(0.1, 1.0, n)
    return pos, mass


class TestTreeVsDirect:
    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(20, 400))
    def test_tree_converges_to_direct(self, seed, n):
        """theta -> 0 makes the treecode exact for ANY configuration."""
        pos, mass = _random_config(seed, n)
        acc_d, pot_d = direct_accelerations(pos, mass, 0.05)
        tc = TreeCode(theta=0.02, n_crit=max(1, n // 10))
        acc_t, pot_t = tc.accelerations(pos, mass, 0.05)
        scale = np.abs(acc_d).max()
        assert np.allclose(acc_t, acc_d, atol=1e-8 * scale, rtol=1e-6)
        assert np.allclose(pot_t, pot_d, rtol=1e-6)

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(20, 400),
           st.floats(0.3, 1.0))
    def test_tree_error_bounded_at_production_theta(self, seed, n,
                                                    theta):
        pos, mass = _random_config(seed, n)
        acc_d, _ = direct_accelerations(pos, mass, 0.05)
        tc = TreeCode(theta=theta, n_crit=max(1, n // 8))
        acc_t, _ = tc.accelerations(pos, mass, 0.05)
        rel = (np.linalg.norm(acc_t - acc_d, axis=1)
               / np.maximum(np.linalg.norm(acc_d, axis=1), 1e-300))
        # BH with the offset-corrected MAC keeps worst-case per-sink
        # error at the percent level for theta <= 1
        assert np.sqrt(np.mean(rel**2)) < 0.05

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(30, 300))
    def test_interaction_count_bounded_by_n_squared(self, seed, n):
        """The tree never does more work per sink than direct
        summation would at matched sink granularity (n_crit = 1)."""
        pos, mass = _random_config(seed, n)
        tc = TreeCode(theta=0.7, n_crit=1)
        tc.accelerations(pos, mass, 0.05)
        assert tc.last_stats.total_interactions <= n * n

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(30, 300))
    def test_translation_invariance(self, seed, n):
        """Shifting every particle shifts nothing physical."""
        pos, mass = _random_config(seed, n)
        tc = TreeCode(theta=0.6, n_crit=32)
        a0, p0 = tc.accelerations(pos, mass, 0.05)
        a1, p1 = tc.accelerations(pos + 123.456, mass, 0.05)
        scale = np.abs(a0).max()
        # the tree geometry shifts with the particles, so results are
        # identical up to float round-off in the shifted coordinates
        assert np.allclose(a0, a1, atol=1e-7 * scale)
        assert np.allclose(p0, p1, rtol=1e-7)

    @settings(**COMMON)
    @given(st.integers(0, 2**31 - 1), st.integers(30, 200),
           st.floats(1.1, 50.0))
    def test_mass_scaling_linearity(self, seed, n, k):
        """Gravity is linear in source mass: scaling all masses by k
        scales every acceleration and potential by k."""
        pos, mass = _random_config(seed, n)
        tc = TreeCode(theta=0.7, n_crit=32)
        a0, p0 = tc.accelerations(pos, mass, 0.05)
        a1, p1 = tc.accelerations(pos, k * mass, 0.05)
        assert np.allclose(a1, k * a0, rtol=1e-9)
        assert np.allclose(p1, k * p0, rtol=1e-9)
