"""Density-profile and NFW-fit tests."""

import numpy as np
import pytest

from repro.analysis.profile import (NFWProfile, fit_nfw,
                                    radial_density_profile)
from repro.sim.models import plummer_model, uniform_sphere


def _sample_nfw(n, rs, rng, r_max_factor=20.0):
    """Sample radii from an NFW profile by inverse-CDF interpolation."""
    x_grid = np.geomspace(1e-3, r_max_factor, 4096)
    m_grid = np.log1p(x_grid) - x_grid / (1.0 + x_grid)
    m_grid /= m_grid[-1]
    u = rng.uniform(0, 1, n)
    x = np.interp(u, m_grid, x_grid)
    v = rng.standard_normal((n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    return (rs * x)[:, None] * v


class TestRadialProfile:
    def test_uniform_sphere_flat(self, rng):
        pos, _, mass = uniform_sphere(40000, rng, radius=1.0)
        r, rho, cnt = radial_density_profile(pos, mass, np.zeros(3),
                                             r_min=0.2, r_max=0.95,
                                             bins=8)
        expect = 1.0 / (4.0 / 3.0 * np.pi)
        ok = cnt > 100
        assert np.allclose(rho[ok], expect, rtol=0.1)

    def test_plummer_core_and_falloff(self, rng):
        pos, _, mass = plummer_model(40000, rng)
        r, rho, cnt = radial_density_profile(pos, mass, np.zeros(3),
                                             r_min=0.05, r_max=10.0,
                                             bins=16)
        # analytic: rho = (3/4pi) (1+r^2)^(-5/2)
        expect = 3.0 / (4.0 * np.pi) * (1.0 + r**2) ** -2.5
        ok = cnt > 200
        assert np.allclose(rho[ok], expect[ok], rtol=0.2)

    def test_counts_sum(self, rng):
        pos, _, mass = uniform_sphere(1000, rng)
        _, _, cnt = radial_density_profile(pos, mass, np.zeros(3),
                                           r_min=1e-3, r_max=1.1)
        assert cnt.sum() <= 1000
        assert cnt.sum() > 900  # nearly all radii inside the range

    def test_validation(self, rng):
        pos, _, mass = uniform_sphere(100, rng)
        with pytest.raises(ValueError):
            radial_density_profile(pos, mass, bins=1)
        with pytest.raises(ValueError):
            radial_density_profile(pos, mass, r_min=1.0, r_max=0.5)
        with pytest.raises(ValueError):
            radial_density_profile(pos[:, :2], mass)


class TestNFW:
    def test_profile_shape(self):
        nfw = NFWProfile(rho_s=1.0, r_s=2.0)
        # inner slope -1: rho(0.02)/rho(0.04) ~ 2
        assert nfw(0.02) / nfw(0.04) == pytest.approx(2.0, rel=0.05)
        # outer slope -3
        assert nfw(200.0) / nfw(400.0) == pytest.approx(8.0, rel=0.05)

    def test_enclosed_mass_consistent_with_density(self):
        nfw = NFWProfile(rho_s=2.5, r_s=1.3)
        # dM/dr = 4 pi r^2 rho
        r = 2.0
        dr = 1e-5
        dm = (nfw.enclosed_mass(r + dr) - nfw.enclosed_mass(r - dr)) / (2 * dr)
        assert dm == pytest.approx(4 * np.pi * r**2 * float(nfw(r)),
                                   rel=1e-6)

    def test_concentration(self):
        nfw = NFWProfile(rho_s=1.0, r_s=0.1)
        assert nfw.concentration(1.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            nfw.concentration(0.0)

    def test_fit_recovers_sampled_halo(self, rng):
        rs_true = 0.5
        pos = _sample_nfw(60000, rs_true, rng)
        mass = np.full(len(pos), 1.0 / len(pos))
        r, rho, cnt = radial_density_profile(pos, mass, np.zeros(3),
                                             r_min=0.02, r_max=5.0,
                                             bins=20)
        fit = fit_nfw(r, rho, weights=cnt)
        assert fit.r_s == pytest.approx(rs_true, rel=0.15)

    def test_fit_exact_profile(self):
        truth = NFWProfile(rho_s=3.0, r_s=0.7)
        r = np.geomspace(0.05, 10, 30)
        fit = fit_nfw(r, truth(r))
        assert fit.rho_s == pytest.approx(3.0, rel=1e-5)
        assert fit.r_s == pytest.approx(0.7, rel=1e-5)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_nfw(np.array([1.0, 2.0]), np.array([1.0, np.nan]))
