"""Friends-of-friends halo-finder tests."""

import numpy as np
import pytest

from repro.analysis.fof import (FofCatalog, friends_of_friends,
                                linking_length)


class TestLinkingLength:
    def test_scales_with_b(self, rng):
        pos = rng.uniform(-1, 1, (500, 3))
        assert linking_length(pos, 0.4) == pytest.approx(
            2.0 * linking_length(pos, 0.2))

    def test_explicit_volume(self):
        pos = np.random.default_rng(1).uniform(0, 1, (1000, 3))
        l = linking_length(pos, 0.2, volume=1.0)
        assert l == pytest.approx(0.2 * (1.0 / 1000) ** (1 / 3))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            linking_length(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            linking_length(rng.uniform(0, 1, (10, 3)), b=0.0)


class TestFriendsOfFriends:
    def test_two_clumps_found(self, rng):
        a = rng.normal(0.0, 0.05, (200, 3))
        b = rng.normal(5.0, 0.05, (120, 3))
        cat = friends_of_friends(np.concatenate([a, b]), link=0.3,
                                 min_members=20)
        assert cat.n_halos == 2
        assert cat.sizes.tolist() == [200, 120]
        # halo 0 is the bigger clump at the origin
        assert np.linalg.norm(cat.centers[0]) < 0.05
        assert np.allclose(cat.centers[1], 5.0, atol=0.05)

    def test_chain_percolates(self):
        """A chain of particles each within the linking length is one
        group (FoF's defining transitivity)."""
        pos = np.zeros((50, 3))
        pos[:, 0] = np.arange(50) * 0.09
        cat = friends_of_friends(pos, link=0.1, min_members=2)
        assert cat.n_halos == 1
        assert cat.sizes[0] == 50

    def test_chain_breaks_beyond_link(self):
        pos = np.zeros((50, 3))
        pos[:, 0] = np.arange(50) * 0.11
        cat = friends_of_friends(pos, link=0.1, min_members=2)
        assert cat.n_halos == 0
        assert np.all(cat.group == -1)

    def test_min_members_filter(self, rng):
        big = rng.normal(0, 0.05, (100, 3))
        small = rng.normal(4, 0.01, (5, 3))
        cat = friends_of_friends(np.concatenate([big, small]),
                                 link=0.3, min_members=10)
        assert cat.n_halos == 1
        assert np.all(cat.group[100:] == -1)

    def test_group_labels_consistent(self, rng):
        pos = np.concatenate([rng.normal(0, 0.05, (60, 3)),
                              rng.normal(3, 0.05, (40, 3))])
        cat = friends_of_friends(pos, link=0.3, min_members=5)
        assert len(cat.members(0)) == cat.sizes[0]
        assert len(cat.members(1)) == cat.sizes[1]
        assert set(cat.members(0)) == set(range(60))

    def test_masses_weighted(self, rng):
        pos = rng.normal(0, 0.05, (50, 3))
        mass = rng.uniform(1.0, 2.0, 50)
        cat = friends_of_friends(pos, mass, link=0.5, min_members=5)
        assert cat.masses[0] == pytest.approx(mass.sum())
        com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
        assert np.allclose(cat.centers[0], com)

    def test_field_particles_unlabelled(self, rng):
        pos = rng.uniform(-10, 10, (200, 3))  # sparse: no halos
        cat = friends_of_friends(pos, link=0.05, min_members=3)
        assert cat.n_halos == 0

    def test_validation(self, rng):
        pos = rng.uniform(0, 1, (10, 3))
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            friends_of_friends(pos, mass=np.ones(5))
        with pytest.raises(ValueError):
            friends_of_friends(pos, link=-1.0)
        with pytest.raises(ValueError):
            friends_of_friends(pos, link=1.0, min_members=0)

    def test_deterministic(self, rng):
        pos = rng.normal(0, 1.0, (300, 3))
        a = friends_of_friends(pos, link=0.5, min_members=5)
        b = friends_of_friends(pos, link=0.5, min_members=5)
        assert np.array_equal(a.group, b.group)
