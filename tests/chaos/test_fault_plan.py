"""Fault-plan parsing and injector semantics.

The chaos harness is only as trustworthy as its determinism: the same
plan + seed must fire the same faults at the same sites every run, in
every process.
"""

import json

import pytest

from repro.faults import (FAULT_KINDS, FaultInjector, FaultPlan,
                          FaultSpec, TransientBackendError, as_fault_plan,
                          corrupt_file, parse_fault_plan)


class TestParsing:
    def test_dsl_roundtrip(self):
        plan = parse_fault_plan(
            "worker_crash@batch=1;"
            "transient_error@site=grape.compute,call=2,count=3;"
            "latency@prob=0.25,seconds=0.01,seed=7")
        assert len(plan) == 3
        assert plan.seed == 7
        crash, trans, lat = plan.specs
        assert crash.kind == "worker_crash" and crash.batch == 1
        assert trans.site == "grape.compute" and trans.call == 2
        assert trans.count == 3
        assert lat.prob == 0.25 and lat.seconds == 0.01
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()

    def test_json_and_file_sources(self, tmp_path):
        doc = {"seed": 11, "faults": [{"kind": "worker_hang",
                                       "worker": 0, "seconds": 2.0}]}
        from_text = parse_fault_plan(json.dumps(doc))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        from_file = parse_fault_plan(str(path))
        from_path = parse_fault_plan(path)
        for plan in (from_text, from_file, from_path):
            assert plan.seed == 11
            assert plan.specs[0].kind == "worker_hang"
            assert plan.specs[0].worker == 0

    def test_as_fault_plan_normalises(self):
        assert as_fault_plan(None) is None
        plan = FaultPlan([FaultSpec("latency")])
        assert as_fault_plan(plan) is plan
        from_list = as_fault_plan([{"kind": "latency"}])
        assert from_list.specs[0].kind == "latency"
        from_dict = as_fault_plan({"seed": 3,
                                   "faults": [{"kind": "latency"}]})
        assert from_dict.seed == 3

    def test_wildcard_selectors(self):
        spec = parse_fault_plan("worker_crash@batch=any,worker=*"
                                ).specs[0]
        assert spec.batch is None and spec.worker is None
        # attempt defaults to 0 (first execution only) unless widened
        assert spec.attempt == 0
        persistent = parse_fault_plan(
            "transient_error@attempt=any").specs[0]
        assert persistent.attempt is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor_strike")
        with pytest.raises(ValueError):
            FaultSpec("latency", count=0)
        with pytest.raises(ValueError):
            FaultSpec("latency", prob=1.5)
        with pytest.raises(ValueError):
            FaultSpec("latency", seconds=-1.0)
        with pytest.raises(ValueError):
            parse_fault_plan("worker_crash@batch")
        assert "worker_crash" in FAULT_KINDS


class TestInjector:
    def test_batch_selectors_and_count(self):
        plan = FaultPlan([FaultSpec("worker_crash", batch=3, worker=1)])
        right = FaultInjector(plan, worker=1)
        wrong = FaultInjector(plan, worker=0)
        assert wrong.batch_fault(sweep=0, batch=3) is None
        assert right.batch_fault(sweep=0, batch=2) is None
        fired = right.batch_fault(sweep=0, batch=3)
        assert fired is not None and fired.kind == "worker_crash"
        # count=1 consumed: never fires again in this process
        assert right.batch_fault(sweep=0, batch=3) is None

    def test_attempt_gating(self):
        plan = FaultPlan([FaultSpec("transient_error", batch=0,
                                    count=10)])
        inj = FaultInjector(plan)
        assert inj.batch_fault(sweep=0, batch=0, attempt=0) is not None
        # default attempt=0: a retry of the same batch is clean
        assert inj.batch_fault(sweep=0, batch=0, attempt=1) is None

    def test_site_hook_call_threshold(self):
        plan = FaultPlan([FaultSpec("transient_error",
                                    site="grape.compute", call=2)])
        inj = FaultInjector(plan)
        inj.maybe_raise("grape.compute")   # call 0
        inj.maybe_raise("g5.run")          # other site, never fires
        inj.maybe_raise("grape.compute")   # call 1
        with pytest.raises(TransientBackendError):
            inj.maybe_raise("grape.compute")  # call 2 >= threshold
        inj.maybe_raise("grape.compute")   # count consumed

    def test_probabilistic_firing_is_seed_deterministic(self):
        plan = FaultPlan([FaultSpec("latency", prob=0.5, count=10**6)],
                         seed=1234)
        fires = [FaultInjector(plan).batch_fault(sweep=0, batch=b)
                 is not None
                 for b in range(200)]
        again = [FaultInjector(plan).batch_fault(sweep=0, batch=b)
                 is not None
                 for b in range(200)]
        assert fires == again
        assert 20 < sum(fires) < 180  # actually probabilistic
        other_seed = FaultPlan(plan.specs, seed=99)
        differs = [FaultInjector(other_seed).batch_fault(sweep=0,
                                                         batch=b)
                   is not None for b in range(200)]
        assert differs != fires

    def test_checkpoint_fault_step_selector(self):
        plan = FaultPlan([FaultSpec("checkpoint_truncate", step=4)])
        inj = FaultInjector(plan)
        assert inj.checkpoint_fault(step=2) is None
        assert inj.checkpoint_fault(step=4) is not None
        assert inj.checkpoint_fault(step=4) is None  # consumed


class TestCorruptFile:
    def test_truncate_is_deterministic(self, tmp_path):
        p = tmp_path / "blob"
        p.write_bytes(bytes(range(256)) * 8)
        off1 = corrupt_file(p, mode="truncate", seed=5)
        assert p.stat().st_size == off1
        p.write_bytes(bytes(range(256)) * 8)
        off2 = corrupt_file(p, mode="truncate", seed=5)
        assert off1 == off2

    def test_flip_changes_exactly_one_byte(self, tmp_path):
        p = tmp_path / "blob"
        original = bytes(range(256))
        p.write_bytes(original)
        off = corrupt_file(p, mode="flip", offset=10, xor=0xFF)
        mutated = p.read_bytes()
        assert off == 10
        assert mutated[10] == original[10] ^ 0xFF
        assert mutated[:10] == original[:10]
        assert mutated[11:] == original[11:]

    def test_unknown_mode_rejected(self, tmp_path):
        p = tmp_path / "blob"
        p.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(p, mode="zap")
