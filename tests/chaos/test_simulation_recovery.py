"""Run-level self-healing: checkpoint rollback and schedule replay.

``Simulation.run(..., resume_on_fault=True)`` must turn a mid-run
recoverable failure into a rollback to the newest intact checkpoint
generation plus a deterministic replay -- finishing with state
bit-identical to an uninterrupted run, because the leapfrog is
deterministic and the checkpoint stores the full phase space.
"""

import numpy as np
import pytest

from repro.core.direct import DirectSummation
from repro.faults import (FaultInjector, FaultPlan, FaultSpec,
                          TransientBackendError, corrupt_file)
from repro.sim import Simulation
from repro.sim.checkpoint import CheckpointCorrupt, load_latest

pytestmark = pytest.mark.chaos

N = 48
DTS = [0.01] * 12


class FlakyForce:
    """Direct-summation solver that raises a transient error on chosen
    force-call indices (1-based), then recovers."""

    def __init__(self, fail_on=()):
        self.inner = DirectSummation()
        self.fail_on = set(fail_on)
        self.calls = 0
        self.last_stats = None

    def accelerations(self, pos, mass, eps):
        self.calls += 1
        if self.calls in self.fail_on:
            raise TransientBackendError(f"flaky call {self.calls}")
        out = self.inner.accelerations(pos, mass, eps)
        self.last_stats = getattr(self.inner, "last_stats", None)
        return out


def _phase_space(seed=3):
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(N, 3))
    vel = 0.1 * rng.normal(size=(N, 3))
    mass = np.full(N, 1.0 / N)
    return pos, vel, mass


def _sim(force):
    pos, vel, mass = _phase_space()
    return Simulation(pos=pos.copy(), vel=vel.copy(), mass=mass.copy(),
                      eps=0.05, force=force, G=1.0)


@pytest.fixture(scope="module")
def clean_run():
    sim = _sim(FlakyForce())
    sim.run(DTS)
    return sim


class TestRecovery:
    def test_recovered_run_is_bit_identical(self, clean_run, tmp_path):
        sim = _sim(FlakyForce(fail_on={9}))
        out = sim.run(DTS, checkpoint_path=tmp_path / "ck.npz",
                      checkpoint_every=2, resume_on_fault=True)
        assert sim.fault_recoveries == 1
        assert np.array_equal(sim.pos, clean_run.pos)
        assert np.array_equal(sim.vel, clean_run.vel)
        assert sim.t == clean_run.t
        assert len(out) == len(DTS)
        assert [r.step for r in out] == [r.step for r in
                                         clean_run.history]

    def test_multiple_failures_multiple_recoveries(self, clean_run,
                                                   tmp_path):
        sim = _sim(FlakyForce(fail_on={6, 11}))
        sim.run(DTS, checkpoint_path=tmp_path / "ck.npz",
                checkpoint_every=2, resume_on_fault=True,
                max_recoveries=3)
        assert sim.fault_recoveries == 2
        assert np.array_equal(sim.pos, clean_run.pos)

    def test_without_resume_flag_reraises(self, tmp_path):
        sim = _sim(FlakyForce(fail_on={5}))
        with pytest.raises(TransientBackendError):
            sim.run(DTS, checkpoint_path=tmp_path / "ck.npz",
                    checkpoint_every=2)

    def test_without_checkpointing_reraises(self):
        sim = _sim(FlakyForce(fail_on={5}))
        with pytest.raises(TransientBackendError):
            sim.run(DTS, resume_on_fault=True)

    def test_max_recoveries_bounds_the_loop(self, tmp_path):
        # fail every call after the 6th: recovery can never progress
        sim = _sim(FlakyForce(fail_on=set(range(6, 200))))
        with pytest.raises(TransientBackendError):
            sim.run(DTS, checkpoint_path=tmp_path / "ck.npz",
                    checkpoint_every=2, resume_on_fault=True,
                    max_recoveries=2)
        assert sim.fault_recoveries == 2

    def test_failure_before_any_checkpoint_reraises(self, tmp_path):
        sim = _sim(FlakyForce(fail_on={2}))
        with pytest.raises(TransientBackendError):
            sim.run(DTS, checkpoint_path=tmp_path / "missing.npz",
                    checkpoint_every=4, resume_on_fault=True)


class TestInjectedCheckpointCorruption:
    def test_checkpoint_truncate_fault_exercises_fallback(
            self, clean_run, tmp_path):
        """The checkpoint_truncate fault damages one generation; a
        later recovery must skip it via the pointer digests and still
        finish bit-identical."""
        plan = FaultPlan([FaultSpec("checkpoint_truncate", step=8)])
        sim = _sim(FlakyForce(fail_on={10}))
        sim.run(DTS, checkpoint_path=tmp_path / "ck.npz",
                checkpoint_every=2, resume_on_fault=True,
                fault_injector=FaultInjector(plan))
        assert sim.fault_recoveries == 1
        assert np.array_equal(sim.pos, clean_run.pos)
        assert np.array_equal(sim.vel, clean_run.vel)

    def test_manually_corrupted_generation_is_skipped(self, clean_run,
                                                      tmp_path):
        ck = tmp_path / "ck.npz"
        sim = _sim(FlakyForce())
        sim.run(DTS[:8], checkpoint_path=ck, checkpoint_every=2)
        corrupt_file(tmp_path / "ck.s000008.npz", mode="truncate")
        restored = load_latest(ck, force=FlakyForce())
        assert len(restored.history) == 6
        corrupt_file(tmp_path / "ck.s000006.npz", mode="truncate")
        with pytest.raises(CheckpointCorrupt):
            load_latest(ck, force=FlakyForce())
