"""Service-level chaos: a fault-injected crash mid-job must neither
wedge the scheduler nor lose the job's progress.

The crashed job recovers in-slot through ``Simulation.run``'s
checkpoint rollback (the injector lives for the whole job, so a
bounded fault cannot re-fire on replay), while other queued jobs keep
flowing through the same slot pool.  Recovery is verified the strong
way: the recovered job's state digest equals a clean run of the same
spec.
"""

import pytest

from repro.serve import JobSpec, Scheduler

pytestmark = pytest.mark.chaos

#: three-step tiny paper run with a rotated checkpoint per step
RUN = {"ngrid": 6, "steps": 3, "z_final": 12.0}

#: backend call indices: 0 = initial forces, then one call per step
#: (one treecode group at this N); call=3 crashes the final step,
#: after two checkpoint generations exist
CRASH = "transient_error@site=grape.compute,call=3,count=1"


def _run_spec(**over):
    spec = dict(kind="run", params=dict(RUN), checkpoint_every=1)
    spec.update(over)
    return JobSpec(**spec)


class TestSchedulerUnderFaults:
    def test_crash_mid_job_recovers_and_others_proceed(self, tmp_path):
        clean = Scheduler(slots=1, workdir=tmp_path / "clean").start()
        ref = clean.submit(_run_spec())
        assert clean.wait(ref.id, timeout=120) and ref.state == "done"
        clean.stop()
        assert ref.result["fault_recoveries"] == 0

        s = Scheduler(slots=1, workdir=tmp_path / "chaos").start()
        crashed = s.submit(_run_spec(faults=CRASH, max_retries=0))
        bystander = s.submit(JobSpec(kind="force_eval",
                                     params={"n": 128}))
        assert s.wait(crashed.id, timeout=120)
        assert s.wait(bystander.id, timeout=120)

        # the scheduler kept serving the other queued job
        assert bystander.state == "done"
        assert bystander.result["interactions"] > 0

        # the crashed job resumed from its last checkpoint ...
        assert crashed.state == "done"
        assert crashed.result["fault_recoveries"] >= 1
        # ... and replay reproduced the clean trajectory exactly
        assert crashed.result["digest"] == ref.result["digest"]
        assert crashed.result["steps"] == ref.result["steps"]
        s.stop()

    def test_unrecoverable_job_fails_without_wedging_slot(self, tmp_path):
        """With checkpointing off the same fault is terminal for the
        job -- but never for the scheduler."""
        s = Scheduler(slots=1, workdir=tmp_path).start()
        doomed = s.submit(_run_spec(checkpoint_every=0,
                                    faults="transient_error@"
                                           "site=grape.compute,"
                                           "call=0,count=99",
                                    max_retries=0, max_recoveries=0))
        after = s.submit(JobSpec(kind="force_eval", params={"n": 128}))
        assert s.wait(doomed.id, timeout=120)
        assert s.wait(after.id, timeout=120)
        assert doomed.state == "failed"
        assert "TransientBackendError" in doomed.error
        assert after.state == "done"
        s.stop()
