"""Fleet chaos: the network store under injected transport faults,
and a real 3-worker fleet losing a member to SIGKILL mid-job.

Two storylines:

* **Transport faults never corrupt the store.**  A
  :class:`~repro.fleet.remote.RemoteJobStore` driven through a
  :class:`~repro.faults.FaultInjector` at site ``fleet.rpc`` sees
  latency, transient errors and truncated payloads; every call either
  succeeds (absorbed by the bounded retry budget) or raises a *typed*
  store error -- and afterwards the backing store verifies clean.

* **SIGKILL one of three workers mid-job.**  Three ``repro serve``
  processes share one ``repro store serve`` process over TCP; the
  worker owning a checkpointing job is killed -9, a survivor takes the
  job over after the claim TTL, and the final state digest is
  bit-identical to an uninterrupted run.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import FaultInjector, parse_fault_plan
from repro.fleet import PayloadCorrupt, RemoteJobStore, \
    StoreUnavailable
from repro.serve import StoreError
from repro.serve.client import ServeClient
from tests.fleet.conftest import live_store_server

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def backing(tmp_path):
    from repro.serve import SQLiteJobStore
    s = SQLiteJobStore(tmp_path / "jobs.db")
    yield s
    s.close()


@pytest.fixture
def store_server(backing):
    with live_store_server(backing) as server:
        yield server


class TestTransportFaultSweep:
    def _remote(self, server, plan, retries=3):
        return RemoteJobStore(server.url, retries=retries,
                              backoff=0.01,
                              fault_injector=FaultInjector(
                                  parse_fault_plan(plan)))

    def test_transient_errors_within_budget_are_absorbed(
            self, store_server):
        st = self._remote(store_server,
                          "transient_error@site=fleet.rpc,count=3")
        assert st.list() == []  # 3 injected failures, 4 attempts
        assert st.verify() == []

    def test_exhausted_retries_raise_store_unavailable(
            self, store_server):
        st = self._remote(store_server,
                          "transient_error@site=fleet.rpc,count=99",
                          retries=2)
        with pytest.raises(StoreUnavailable):
            st.list()

    def test_truncated_payloads_raise_payload_corrupt(
            self, store_server):
        st = self._remote(store_server,
                          "corrupt_result@site=fleet.rpc,count=99",
                          retries=2)
        with pytest.raises(PayloadCorrupt):
            st.cache_stats()

    def test_latency_injection_delays_but_succeeds(self,
                                                   store_server):
        st = self._remote(store_server,
                          "latency@site=fleet.rpc,seconds=0.05,"
                          "count=1")
        t0 = time.monotonic()
        assert st.list() == []
        assert time.monotonic() - t0 >= 0.05

    def test_fault_sweep_never_corrupts_the_store(self, backing,
                                                  store_server):
        """Writes under every transport fault kind: each call either
        lands exactly once or fails typed; the store verifies clean
        and every successful write is durable and readable."""
        from tests.fleet.test_remote_store import seeded_doc
        plans = ["transient_error@site=fleet.rpc,prob=0.4",
                 "corrupt_result@site=fleet.rpc,prob=0.4",
                 "latency@site=fleet.rpc,seconds=0.002,prob=0.5"]
        written = []
        for round_i, plan in enumerate(plans):
            st = self._remote(store_server, plan, retries=4)
            for i in range(6):
                try:
                    doc = seeded_doc(st)
                except StoreError:
                    continue  # typed failure: acceptable outcome
                written.append(doc["id"])
                try:
                    st.append_event(doc["id"], {"event": "submitted",
                                                "round": round_i})
                except StoreError:
                    pass
        # the store itself must be pristine regardless of the chaos
        assert backing.verify() == []
        clean = RemoteJobStore(store_server.url)
        assert clean.verify() == []
        ids = {d["id"] for d in clean.list()}
        assert set(written) <= ids
        for jid in written:
            assert clean.get(jid)["state"] == "queued"

    def test_retries_are_counted(self, store_server):
        from repro.obs import MetricsRegistry
        m = MetricsRegistry()
        st = RemoteJobStore(store_server.url, retries=3, backoff=0.01,
                            fault_injector=FaultInjector(
                                parse_fault_plan(
                                    "transient_error@site=fleet.rpc,"
                                    "count=2")),
                            metrics=m)
        assert st.list() == []
        assert m.snapshot()["fleet.rpc_retries"]["value"] == 2


# -- the 3-worker SIGKILL drill ---------------------------------------

RUN_SPEC = {
    "kind": "run",
    "params": {"ngrid": 8, "steps": 8, "z_final": 12.0},
    "checkpoint_every": 1,
}


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def popen_repro(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.Popen([sys.executable, "-m", "repro", *args],
                            cwd=ROOT, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def start_store(port, tmp_path):
    return popen_repro(["store", "serve",
                        "--store", str(tmp_path / "jobs.db"),
                        "--port", str(port)])


def start_worker(port, store_port, tmp_path, name):
    return popen_repro(["serve", "--host", "127.0.0.1",
                        "--port", str(port), "--slots", "1",
                        "--no-cache", "--worker-id", name,
                        "--workdir", str(tmp_path / name),
                        "--store",
                        f"http://127.0.0.1:{store_port}",
                        "--claim-ttl", "4"])


def wait_healthy(client, proc, timeout=30.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        if proc.poll() is not None:
            raise AssertionError(
                f"process exited early (rc={proc.returncode})")
        try:
            return client.healthz()
        except OSError:
            time.sleep(0.1)
    raise TimeoutError("server never became healthy")


def wait_for_progress(client, job_id, steps=2, timeout=120.0):
    t_end = time.monotonic() + timeout
    while time.monotonic() < t_end:
        doc = client.job(job_id)
        if doc["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(
                f"job reached {doc['state']} before the kill")
        if (doc["state"] == "running"
                and doc["progress"]["steps_done"] >= steps):
            return doc
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} never made progress")


@pytest.mark.slow
class TestFleetKillTakeover:
    def test_sigkill_one_of_three_workers_is_bit_identical(
            self, tmp_path):
        store_port = free_port()
        ports = {n: free_port() for n in ("w1", "w2", "w3")}
        procs = {}
        try:
            procs["store"] = start_store(store_port, tmp_path)
            clients = {n: ServeClient(port=p, timeout=10.0)
                       for n, p in ports.items()}
            for n, p in ports.items():
                procs[n] = start_worker(p, store_port, tmp_path, n)
            for n in ports:
                wait_healthy(clients[n], procs[n])
            # all three appear in every worker's fleet view
            fleet = clients["w1"].fleet()
            assert {w["worker"] for w in fleet["workers"]} == \
                {"w1", "w2", "w3"}
            assert fleet["live"] == 3

            job = clients["w1"].submit(RUN_SPEC)
            wait_for_progress(clients["w1"], job["id"], steps=2)
            owner = clients["w1"].job(job["id"])["worker"]
            assert owner in ports

            os.kill(procs[owner].pid, signal.SIGKILL)
            procs[owner].wait(timeout=30)
            survivor = next(n for n in ports if n != owner)

            done = clients[survivor].wait(job["id"], timeout=300)
            assert done["state"] == "done", done.get("error")
            assert done["attempt"] >= 1
            assert done["worker"] != owner
            events = [e["event"]
                      for e in clients[survivor].events(job["id"])]
            assert "resumed" in events

            # bit-identity against an uninterrupted reference run
            ref = clients[survivor].wait(
                clients[survivor].submit(RUN_SPEC)["id"], timeout=300)
            assert ref["state"] == "done"
            assert ref["result"]["digest"] == done["result"]["digest"]

            # the dead worker's registry row went stale, not missing
            fleet = clients[survivor].fleet()
            dead_rows = [w for w in fleet["workers"]
                         if w["worker"] == owner]
            assert dead_rows and not dead_rows[0]["live"]

            # and the shared store survived the kill intact
            snap = clients[survivor].store()
            assert snap["findings"] == []
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
