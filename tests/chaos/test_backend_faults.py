"""Transient-error retry budgets in the GRAPE backend layers.

A flaky board drops a transfer; the host re-issues the call.  Both the
:class:`~repro.grape.system.GrapeBackend` adapter (site
``grape.compute``) and the libg5-style :class:`~repro.grape.api.G5Context`
(site ``g5.run``) hold a bounded retry budget and surface the retry
count; the computed forces are unaffected because the retried call is
identical.
"""

import numpy as np
import pytest

from repro.faults import (FaultInjector, FaultPlan, FaultSpec,
                          TransientBackendError)
from repro.grape import GrapeBackend
from repro.grape.api import G5Context
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.chaos


@pytest.fixture
def call_args():
    rng = np.random.default_rng(7)
    xi = rng.normal(size=(16, 3))
    xj = rng.normal(size=(64, 3))
    mj = np.full(64, 1.0 / 64)
    return xi, xj, mj


def _injector(n_failures, site):
    plan = FaultPlan([FaultSpec("transient_error", site=site,
                                count=n_failures)])
    return FaultInjector(plan)


class TestGrapeBackendRetry:
    def test_transient_errors_are_retried(self, call_args):
        xi, xj, mj = call_args
        clean = GrapeBackend().compute(xi, xj, mj, 0.01)
        be = GrapeBackend(fault_injector=_injector(2, "grape.compute"),
                          max_retries=2)
        reg = MetricsRegistry()
        be.bind_metrics(reg)
        acc, pot = be.compute(xi, xj, mj, 0.01)
        assert np.array_equal(acc, clean[0])
        assert np.array_equal(pot, clean[1])
        assert be.transient_retries == 2
        assert reg.value("exec.fault.backend_retries") == 2

    def test_budget_exhaustion_raises(self, call_args):
        xi, xj, mj = call_args
        be = GrapeBackend(fault_injector=_injector(99, "grape.compute"),
                          max_retries=2)
        with pytest.raises(TransientBackendError):
            be.compute(xi, xj, mj, 0.01)
        assert be.transient_retries == 3  # initial try + 2 retries

    def test_stats_not_double_counted_across_retries(self, call_args):
        """The injection site precedes the device call, so a retried
        call charges the timing model exactly once."""
        xi, xj, mj = call_args
        be = GrapeBackend(fault_injector=_injector(1, "grape.compute"),
                          max_retries=2)
        be.compute(xi, xj, mj, 0.01)
        ref = GrapeBackend()
        ref.compute(xi, xj, mj, 0.01)
        assert be.system.n_calls == ref.system.n_calls
        assert be.system.interactions == ref.system.interactions


class TestG5ContextRetry:
    def _staged(self, call_args, **kwargs):
        xi, xj, mj = call_args
        ctx = G5Context(**kwargs).open()
        ctx.set_eps_to_all(0.01)
        ctx.set_xmj(0, xj.shape[0], xj, mj)
        ctx.set_xi(xi.shape[0], xi)
        return ctx, xi

    def test_run_retries_transparently(self, call_args):
        ctx0, xi = self._staged(call_args)
        ctx0.run()
        clean = ctx0.get_force(xi.shape[0])
        ctx, xi = self._staged(call_args,
                               fault_injector=_injector(1, "g5.run"),
                               max_retries=2)
        ctx.run()
        acc, pot = ctx.get_force(xi.shape[0])
        assert np.array_equal(acc, clean[0])
        assert np.array_equal(pot, clean[1])
        assert ctx.transient_retries == 1

    def test_run_budget_exhaustion_raises(self, call_args):
        ctx, _ = self._staged(call_args,
                              fault_injector=_injector(99, "g5.run"),
                              max_retries=1)
        with pytest.raises(TransientBackendError):
            ctx.run()
        assert ctx.transient_retries == 2
