"""Checkpoint crash-safety and corruption handling.

Two properties under test:

* **atomicity** -- a crash at any point during a save leaves either
  the previous complete checkpoint or the new complete one on disk,
  never a torn file;
* **typed corruption** -- a checkpoint damaged at *any* byte offset
  either loads exactly or raises :class:`CheckpointCorrupt` (never a
  wrong-but-plausible state, never an untyped crash), which is what
  makes the last-good-pointer fallback safe to automate.

The offset sweep is property-based (hypothesis, derandomized for
seeded reproducibility).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import corrupt_file
from repro.sim import Simulation, StepRecord
from repro.sim.checkpoint import (CheckpointCorrupt, KEEP_GENERATIONS,
                                  load_checkpoint, load_latest,
                                  save_checkpoint)

pytestmark = pytest.mark.chaos


def _small_sim(n=24, steps=3, seed=9):
    rng = np.random.default_rng(seed)
    sim = Simulation(pos=rng.normal(size=(n, 3)),
                     vel=rng.normal(size=(n, 3)),
                     mass=np.full(n, 1.0 / n), eps=0.05,
                     force=object(), G=1.0, t=0.25)
    sim.history = [StepRecord(step=i + 1, t=0.1 * (i + 1), dt=0.1,
                              interactions=100 + i,
                              mean_list_length=8.5, n_groups=4,
                              wall_seconds=0.01)
                   for i in range(steps)]
    return sim


def _assert_equal(a: Simulation, b: Simulation) -> None:
    assert np.array_equal(a.pos, b.pos)
    assert np.array_equal(a.vel, b.vel)
    assert np.array_equal(a.mass, b.mass)
    assert a.t == b.t and a.eps == b.eps and a.G == b.G
    assert a.history == b.history


class TestAtomicSave:
    def test_failed_write_preserves_previous_checkpoint(self, tmp_path,
                                                        monkeypatch):
        path = tmp_path / "ck.npz"
        sim = _small_sim(steps=2)
        save_checkpoint(path, sim)
        before = path.read_bytes()

        import repro.sim.checkpoint as ckpt

        def explode(fh, **arrays):
            fh.write(b"partial garbage")
            raise OSError("disk on fire")

        monkeypatch.setattr(ckpt.np, "savez_compressed", explode)
        with pytest.raises(OSError):
            save_checkpoint(path, _small_sim(steps=3))
        assert path.read_bytes() == before          # old file intact
        assert not list(tmp_path.glob("*.tmp"))     # tmp cleaned up
        _assert_equal(load_checkpoint(path, force=object()), sim)

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = tmp_path / "ck.npz"
        for steps in (1, 2, 3, 4):
            save_checkpoint(path, _small_sim(steps=steps), rotate=True)
        ptr = json.loads((tmp_path / "ck.npz.last_good").read_text())
        names = [e["path"] for e in ptr["entries"]]
        assert names == ["ck.s000004.npz", "ck.s000003.npz"]
        assert len(names) == KEEP_GENERATIONS
        on_disk = sorted(p.name for p in tmp_path.glob("ck.s*.npz"))
        assert on_disk == sorted(names)  # older generations pruned

    def test_load_latest_prefers_newest(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, _small_sim(steps=1), rotate=True)
        save_checkpoint(path, _small_sim(steps=5), rotate=True)
        sim = load_latest(path, force=object())
        assert len(sim.history) == 5

    def test_load_latest_without_pointer_falls_back_to_path(self,
                                                            tmp_path):
        path = tmp_path / "ck.npz"
        sim = _small_sim()
        save_checkpoint(path, sim)
        (tmp_path / "ck.npz.last_good").unlink()
        _assert_equal(load_latest(path, force=object()), sim)


class TestPointerFallback:
    def test_corrupt_newest_generation_falls_back(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, _small_sim(steps=2), rotate=True)
        save_checkpoint(path, _small_sim(steps=6), rotate=True)
        corrupt_file(tmp_path / "ck.s000006.npz", mode="truncate")
        sim = load_latest(path, force=object())
        assert len(sim.history) == 2

    def test_digest_mismatch_is_detected(self, tmp_path):
        """A single flipped byte that still yields a readable zip is
        caught by the pointer's SHA-256, not trusted."""
        path = tmp_path / "ck.npz"
        save_checkpoint(path, _small_sim(steps=2), rotate=True)
        save_checkpoint(path, _small_sim(steps=6), rotate=True)
        corrupt_file(tmp_path / "ck.s000006.npz", mode="flip",
                     offset=40)
        sim = load_latest(path, force=object())
        assert len(sim.history) == 2

    def test_all_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, _small_sim(steps=2), rotate=True)
        save_checkpoint(path, _small_sim(steps=6), rotate=True)
        for p in tmp_path.glob("ck.s*.npz"):
            corrupt_file(p, mode="truncate", offset=30)
        with pytest.raises(CheckpointCorrupt):
            load_latest(path, force=object())

    def test_missing_file_raises_typed(self, tmp_path):
        with pytest.raises(CheckpointCorrupt):
            load_latest(tmp_path / "never_written.npz")


class TestCorruptionProperties:
    """Damage at a random offset: load either succeeds exactly or
    raises CheckpointCorrupt.  Seeded (derandomize) so CI is stable."""

    @staticmethod
    def _baseline(tmp_path):
        path = tmp_path / "ck.npz"
        sim = _small_sim()
        save_checkpoint(path, sim)
        return path, path.read_bytes(), sim

    @settings(derandomize=True, max_examples=40, deadline=None)
    @given(frac=st.floats(min_value=0.0, max_value=1.0),
           mode=st.sampled_from(["truncate", "flip"]))
    def test_damage_anywhere_is_typed(self, tmp_path_factory, frac,
                                      mode):
        tmp_path = tmp_path_factory.mktemp("chaos")
        path, blob, sim = self._baseline(tmp_path)
        offset = min(int(frac * len(blob)), len(blob) - 1)
        corrupt_file(path, mode=mode, offset=offset)
        try:
            loaded = load_checkpoint(path, force=object())
        except CheckpointCorrupt:
            return  # typed failure: the contract holds
        _assert_equal(loaded, sim)  # or the load is exact

    @settings(derandomize=True, max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_seeded_truncation_reproducible(self, tmp_path_factory,
                                            seed):
        tmp_path = tmp_path_factory.mktemp("chaos")
        path, blob, _ = self._baseline(tmp_path)
        off1 = corrupt_file(path, mode="truncate", seed=seed)
        path.write_bytes(blob)
        off2 = corrupt_file(path, mode="truncate", seed=seed)
        assert off1 == off2
