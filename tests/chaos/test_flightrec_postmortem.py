"""Flight-recorder postmortems: a faulted job leaves a black box.

The acceptance criterion under test: when a fault-injected job crashes
(or recovers), the scheduler dumps the job's flight-recorder ring as
``flightrec.jsonl`` in the job's workdir, and the dump's final events
include the injected fault's site and the recovery decision -- the
postmortem works from the artifact alone, no rerun needed.
"""

import json

import pytest

from repro.serve import JobSpec, Scheduler

pytestmark = pytest.mark.chaos

RUN = {"ngrid": 6, "steps": 3, "z_final": 12.0}

#: crash the final step's force call, after two checkpoint
#: generations exist (same deterministic plan as the scheduler
#: chaos tests)
CRASH = "transient_error@site=grape.compute,call=3,count=1"


def _flightrec(tmp_path, job):
    path = tmp_path / job.id / "flightrec.jsonl"
    assert path.exists(), "faulted job left no flight-recorder dump"
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["type"] == "flightrec_meta"
    return lines[0], lines[1:]


class TestFlightRecorderDumps:
    def test_recovered_job_dump_has_fault_and_decision(self, tmp_path):
        s = Scheduler(slots=1, workdir=tmp_path).start()
        job = s.submit(JobSpec(kind="run", params=dict(RUN),
                               checkpoint_every=1, faults=CRASH,
                               max_retries=0))
        assert s.wait(job.id, timeout=120)
        s.stop()
        assert job.state == "done"
        assert job.result["fault_recoveries"] >= 1

        meta, events = _flightrec(tmp_path, job)
        assert meta["events"] == len(events)
        kinds = [ev["kind"] for ev in events]
        # lifecycle breadcrumbs lead in ...
        assert kinds[0] == "job.submitted"
        assert "job.leased" in kinds

        # ... and the incident is in the final events: the injected
        # fault with its site, then the recovery decision
        injected = [ev for ev in events
                    if ev["kind"] == "fault.injected"]
        assert injected and injected[-1]["site"] == "grape.compute"
        assert injected[-1]["fault"] == "transient_error"
        recoveries = [ev for ev in events if ev["kind"] == "recovery"]
        assert recoveries
        last = recoveries[-1]
        assert last["decision"] == "checkpoint_rollback"
        assert last["error"] == "TransientBackendError"
        # the incident comes after the lifecycle lead-in
        assert kinds.index("fault.injected") > kinds.index("job.leased")

    def test_failed_job_dump_ends_with_failure(self, tmp_path):
        """No checkpoints -> the fault is terminal; the dump must
        still land and end with the failure event."""
        s = Scheduler(slots=1, workdir=tmp_path).start()
        job = s.submit(JobSpec(kind="run", params=dict(RUN),
                               checkpoint_every=0,
                               faults="transient_error@"
                                      "site=grape.compute,"
                                      "call=0,count=99",
                               max_retries=0, max_recoveries=0))
        assert s.wait(job.id, timeout=120)
        s.stop()
        assert job.state == "failed"

        _, events = _flightrec(tmp_path, job)
        assert any(ev["kind"] == "fault.injected"
                   and ev["site"] == "grape.compute"
                   for ev in events)
        final = events[-1]
        assert final["kind"] == "job.failed"
        assert "TransientBackendError" in final["error"]

    def test_clean_job_leaves_no_flightrec(self, tmp_path):
        """The black box is an incident artifact: fault-free jobs must
        not scatter dumps over their workdirs."""
        s = Scheduler(slots=1, workdir=tmp_path).start()
        job = s.submit(JobSpec(kind="force_eval", params={"n": 128}))
        assert s.wait(job.id, timeout=120)
        s.stop()
        assert job.state == "done"
        assert not (tmp_path / job.id / "flightrec.jsonl").exists()
