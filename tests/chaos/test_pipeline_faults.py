"""Chaos tests for the self-healing pipeline engine.

The acceptance criterion of the fault-tolerance work: a pipeline sweep
with injected worker crashes / hangs / transient errors / result
corruption still produces forces *bit-identical* to the serial path,
and every recovery action is visible in the ``exec.fault.*`` counters
and trace events.
"""

import time

import numpy as np
import pytest

from repro.core import TreeCode
from repro.exec import EngineError, PipelineEngine
from repro.obs import MetricsRegistry, Tracer
from repro.sim.models import plummer_model

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(42)
    pos, _, mass = plummer_model(1200, rng)
    return pos, mass


@pytest.fixture(scope="module")
def reference(cloud):
    pos, mass = cloud
    tc = TreeCode(theta=0.75, n_crit=64)
    return tc.accelerations(pos, mass, 0.01)


def _forces(pos, mass, engine, metrics=None, tracer=None):
    tc = TreeCode(theta=0.75, n_crit=64, engine=engine,
                  metrics=metrics, tracer=tracer)
    return tc.accelerations(pos, mass, 0.01)


#: (fault DSL, extra engine kwargs, counters that must be > 0)
SCENARIOS = {
    "crash": ("worker_crash@batch=1", {},
              ("worker_deaths", "respawns", "batch_retries")),
    "hang": ("worker_hang@batch=1,seconds=30",
             {"batch_timeout": 0.5},
             ("timeouts", "respawns", "batch_retries")),
    "transient": ("transient_error@batch=0", {},
                  ("transient_errors", "batch_retries")),
    "corrupt": ("corrupt_result@batch=2", {},
                ("corrupt_batches", "batch_retries")),
}


class TestRecoveryBitIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_injected_fault_recovers_bit_identical(
            self, cloud, reference, scenario, workers):
        pos, mass = cloud
        a0, p0 = reference
        faults, kwargs, counters = SCENARIOS[scenario]
        reg = MetricsRegistry()
        with PipelineEngine(workers=workers, batch_nj=2048,
                            faults=faults, **kwargs) as eng:
            acc, pot = _forces(pos, mass, eng, metrics=reg)
        assert np.array_equal(acc, a0)
        assert np.array_equal(pot, p0)
        for name in counters:
            assert reg.value(f"exec.fault.{name}") >= 1, name

    def test_fault_counts_exact_for_single_shot_faults(self, cloud,
                                                       reference):
        """A count=1 spec fires exactly once; duplicates of the
        re-executed batch never double-count backend statistics."""
        pos, mass = cloud
        reg = MetricsRegistry()
        with PipelineEngine(workers=2, batch_nj=2048,
                            faults="transient_error@batch=1") as eng:
            acc, _ = _forces(pos, mass, eng, metrics=reg)
        assert np.array_equal(acc, reference[0])
        assert reg.value("exec.fault.transient_errors") == 1
        assert reg.value("exec.fault.batch_retries") == 1

    def test_repeated_sweeps_after_crash(self, cloud, reference):
        """The respawned pool keeps serving later sweeps correctly."""
        pos, mass = cloud
        with PipelineEngine(workers=2, batch_nj=2048,
                            faults="worker_crash@batch=1") as eng:
            first = _forces(pos, mass, eng)
            second = _forces(pos, mass, eng)
        assert np.array_equal(first[0], reference[0])
        assert np.array_equal(second[0], reference[0])


class TestDegradationLadder:
    def test_retry_exhaustion_falls_back_to_serial(self, cloud,
                                                   reference):
        """A persistently failing batch (attempt=any) ends up evaluated
        in-process -- still bit-identical."""
        pos, mass = cloud
        reg = MetricsRegistry()
        with PipelineEngine(workers=2, batch_nj=2048, max_retries=1,
                            faults="transient_error@batch=1,"
                                   "attempt=any,count=99") as eng:
            acc, pot = _forces(pos, mass, eng, metrics=reg)
        assert np.array_equal(acc, reference[0])
        assert np.array_equal(pot, reference[1])
        assert reg.value("exec.fault.serial_fallbacks") == 1

    def test_healing_disabled_raises_promptly(self, cloud):
        """Satellite contract: with the ladder off, a dead worker is an
        EngineError within the poll period -- not a hung gather loop."""
        pos, mass = cloud
        with PipelineEngine(workers=2, batch_nj=2048, max_retries=0,
                            degrade=False,
                            faults="worker_crash@batch=1") as eng:
            t0 = time.perf_counter()
            with pytest.raises(EngineError, match="died"):
                _forces(pos, mass, eng)
            assert time.perf_counter() - t0 < 5.0

    def test_retries_exhausted_without_degrade_raises(self, cloud):
        pos, mass = cloud
        with PipelineEngine(workers=2, batch_nj=2048, max_retries=1,
                            degrade=False,
                            faults="transient_error@batch=1,"
                                   "attempt=any,count=99") as eng:
            with pytest.raises(EngineError, match="retries"):
                _forces(pos, mass, eng)


class TestIdleWorkerDeath:
    def test_death_between_sweeps_is_healed(self, cloud, reference):
        pos, mass = cloud
        with PipelineEngine(workers=2, batch_nj=2048) as eng:
            first = _forces(pos, mass, eng)
            wid = next(iter(eng._workers_map))
            eng._workers_map[wid].terminate()
            eng._workers_map[wid].join(timeout=5.0)
            second = _forces(pos, mass, eng)
        assert np.array_equal(first[0], reference[0])
        assert np.array_equal(second[0], reference[0])

    def test_death_between_sweeps_raises_promptly_unhealed(self, cloud):
        pos, mass = cloud
        with PipelineEngine(workers=2, batch_nj=2048, max_retries=0,
                            degrade=False) as eng:
            _forces(pos, mass, eng)
            wid = next(iter(eng._workers_map))
            eng._workers_map[wid].terminate()
            eng._workers_map[wid].join(timeout=5.0)
            t0 = time.perf_counter()
            with pytest.raises(EngineError, match="died"):
                _forces(pos, mass, eng)
            assert time.perf_counter() - t0 < 5.0


class TestObservability:
    def test_fault_events_appear_in_trace_and_stats(self, cloud):
        pos, mass = cloud
        tracer = Tracer()
        with PipelineEngine(workers=2, batch_nj=2048,
                            faults="worker_crash@batch=1") as eng:
            tc = TreeCode(theta=0.75, n_crit=64, engine=eng,
                          tracer=tracer)
            tc.accelerations(pos, mass, 0.01)

        def walk(spans):
            for s in spans:
                yield s
                yield from walk(s.children)

        events = [s for s in walk(tracer.roots) if s.name == "exec.fault"]
        kinds = {s.attrs.get("kind") for s in events}
        assert "worker_deaths" in kinds
        assert "respawns" in kinds

    def test_latency_fault_only_slows(self, cloud, reference):
        """The latency kind is a perturbation, not a failure: no
        recovery machinery runs, results stay identical."""
        pos, mass = cloud
        reg = MetricsRegistry()
        with PipelineEngine(workers=2, batch_nj=2048,
                            faults="latency@batch=0,seconds=0.2") as eng:
            acc, _ = _forces(pos, mass, eng, metrics=reg)
        assert np.array_equal(acc, reference[0])
        assert reg.value("exec.fault.batch_retries") == 0
        assert reg.value("exec.fault.worker_deaths") == 0
