"""Result-document schema: statistics, validation, round-trip."""

import json

import pytest

from repro.bench.schema import (SCHEMA_VERSION, SchemaError,
                                load_document, make_document,
                                validate_document, wall_stats,
                                write_document)


def result_row(id="e1_system", **over):
    row = {
        "id": id, "experiment": id.split("_")[0], "tier": "fast",
        "status": "ok", "error": None,
        "wall_seconds": wall_stats([1.0, 2.0, 3.0, 4.0]),
        "metrics": {"effective_gflops": 5.9, "note": "x",
                    "flag": True, "none": None},
    }
    row.update(over)
    return row


def document(rows=None):
    return make_document({"hostname": "h", "machine": "x86_64",
                          "cpu_count": 4, "python": "3.12.0"},
                         {"tier": "fast", "rounds": None,
                          "warmup": None, "profile": False},
                         rows if rows is not None else [result_row()])


class TestWallStats:
    def test_median_and_iqr(self):
        s = wall_stats([4.0, 1.0, 3.0, 2.0])
        assert s["median"] == pytest.approx(2.5)
        assert s["iqr"] == pytest.approx(1.5)
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)
        assert s["n_rounds"] == 4
        # chronological order preserved for the record
        assert s["rounds"] == [4.0, 1.0, 3.0, 2.0]

    def test_single_round(self):
        s = wall_stats([2.0])
        assert s["median"] == 2.0 and s["iqr"] == 0.0

    def test_empty(self):
        s = wall_stats([])
        assert s["n_rounds"] == 0 and s["median"] == 0.0

    def test_median_is_outlier_robust(self):
        quiet = wall_stats([1.0, 1.0, 1.0, 1.0, 1.0])
        noisy = wall_stats([1.0, 1.0, 1.0, 1.0, 50.0])
        assert noisy["median"] == quiet["median"]
        assert noisy["mean"] > quiet["mean"]


class TestValidation:
    def test_valid_document(self):
        validate_document(document())

    def test_round_trip(self, tmp_path):
        doc = document()
        path = write_document(tmp_path / "out.json", doc)
        assert load_document(path) == doc
        # and it is genuinely JSON on disk
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION

    @pytest.mark.parametrize("mutate, path_fragment", [
        (lambda d: d.update(schema="repro.bench_result/v0"), "$.schema"),
        (lambda d: d.pop("fingerprint"), "$.fingerprint"),
        (lambda d: d.pop("config"), "$.config"),
        (lambda d: d.update(results="nope"), "$.results"),
        (lambda d: d["results"][0].pop("id"), ".id"),
        (lambda d: d["results"][0].update(status="exploded"), ".status"),
        (lambda d: d["results"][0]["wall_seconds"].update(median="x"),
         "median"),
        (lambda d: d["results"][0]["wall_seconds"].update(n_rounds=7),
         "n_rounds"),
        (lambda d: d["results"][0].update(metrics={"a": [1]}),
         "metrics"),
        (lambda d: d["results"].append(result_row()), "duplicate"),
    ])
    def test_invalid_documents_raise_with_path(self, mutate,
                                               path_fragment):
        doc = document()
        mutate(doc)
        with pytest.raises(SchemaError, match=None) as exc:
            validate_document(doc)
        assert path_fragment in str(exc.value)

    def test_extra_keys_allowed(self):
        doc = document()
        doc["results"][0]["total_seconds"] = 1.25
        doc["extensions"] = {"anything": 1}
        validate_document(doc)

    def test_load_rejects_non_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(SchemaError, match="not valid JSON"):
            load_document(p)
