"""Machine fingerprint: required keys, stability, comparability."""

from repro.bench.fingerprint import (MACHINE_KEYS, fingerprints_comparable,
                                     machine_fingerprint)

REQUIRED = {"hostname", "platform", "machine", "python",
            "implementation", "cpu_count", "numpy", "scipy",
            "repro_version", "git_commit", "git_dirty"}


class TestFingerprint:
    def test_required_keys_present(self):
        fp = machine_fingerprint()
        assert REQUIRED <= set(fp)

    def test_stable_across_calls(self):
        # the fingerprint is deliberately time-free: two calls in one
        # process must agree field-by-field
        assert machine_fingerprint() == machine_fingerprint()

    def test_json_scalars_only(self):
        for key, value in machine_fingerprint().items():
            assert value is None or isinstance(value,
                                               (bool, int, str)), key

    def test_machine_keys_subset_of_fingerprint(self):
        assert set(MACHINE_KEYS) <= set(machine_fingerprint())


class TestComparability:
    def test_self_comparable(self):
        fp = machine_fingerprint()
        assert fingerprints_comparable(fp, dict(fp))

    def test_different_host_not_comparable(self):
        fp = machine_fingerprint()
        other = dict(fp, hostname="elsewhere")
        assert not fingerprints_comparable(fp, other)

    def test_library_versions_do_not_break_comparability(self):
        # numpy upgrades change performance, not the machine class;
        # the wall gate stays armed so the regression is visible
        fp = machine_fingerprint()
        other = dict(fp, numpy="0.0.1")
        assert fingerprints_comparable(fp, other)
