"""Runner semantics on synthetic benchmarks (no registry involved)."""

import inspect

import pytest

from repro.bench.registry import BenchmarkSpec
from repro.bench.runner import (BenchTimer, RunnerConfig,
                                current_tracer, run_benchmarks)
from repro.bench.schema import validate_document
from repro.obs import NULL_TRACER, Tracer


def spec_of(func, id="t1", tier="fast"):
    return BenchmarkSpec(
        id=id, func=func, tier=tier,
        params=tuple(inspect.signature(func).parameters))


def run_one(func, tmp_path, **config):
    cfg = RunnerConfig(results_dir=tmp_path, **config)
    doc = run_benchmarks([spec_of(func)], cfg)
    validate_document(doc)
    [row] = doc["results"]
    return doc, row


class TestBenchTimer:
    def test_pedantic_rounds_and_result(self):
        timer = BenchTimer()
        calls = []
        out = timer.pedantic(lambda: calls.append(1) or len(calls),
                             rounds=4)
        assert out == 4 and len(timer.times) == 4

    def test_call_uses_default_rounds(self):
        timer = BenchTimer()
        timer(lambda: None)
        assert len(timer.times) == BenchTimer.DEFAULT_ROUNDS

    def test_runner_override_wins(self):
        timer = BenchTimer(rounds=2, warmup=1)
        calls = []
        timer.pedantic(lambda: calls.append(1), rounds=7,
                       warmup_rounds=0)
        assert len(timer.times) == 2
        assert len(calls) == 3          # 1 warmup + 2 timed

    def test_stats_subscriptable(self):
        timer = BenchTimer()
        timer.pedantic(lambda: None, rounds=3)
        assert timer.stats["median"] >= 0.0
        assert timer.stats["n_rounds"] == 3

    def test_iterations_averaged(self):
        timer = BenchTimer()
        calls = []
        timer.pedantic(lambda: calls.append(1), rounds=2, iterations=3)
        assert len(calls) == 6 and len(timer.times) == 2


class TestRunner:
    def test_ok_run_with_metrics(self, tmp_path):
        def bench(benchmark):
            benchmark.pedantic(lambda: None, rounds=3)
            benchmark.extra_info["effective_gflops"] = 5.9
            benchmark.extra_info["dropped"] = [1, 2, 3]  # non-scalar

        doc, row = run_one(bench, tmp_path)
        assert row["status"] == "ok" and row["error"] is None
        assert row["wall_seconds"]["n_rounds"] == 3
        assert row["metrics"] == {"effective_gflops": 5.9}
        assert doc["fingerprint"]["hostname"]
        assert doc["config"]["tier"] == "full"

    def test_untimed_benchmark_falls_back_to_total(self, tmp_path):
        def bench():
            sum(range(1000))

        _, row = run_one(bench, tmp_path)
        assert row["status"] == "ok"
        assert row["wall_seconds"]["n_rounds"] == 1
        assert row["wall_seconds"]["median"] > 0.0

    def test_assertion_becomes_failed(self, tmp_path):
        def bench(benchmark):
            benchmark.pedantic(lambda: None, rounds=1)
            assert False, "the paper disagrees"

        _, row = run_one(bench, tmp_path)
        assert row["status"] == "failed"
        assert "the paper disagrees" in row["error"]

    def test_exception_becomes_error_and_run_continues(self, tmp_path):
        def boom(benchmark):
            raise RuntimeError("kaput")

        def fine(benchmark):
            benchmark.pedantic(lambda: None, rounds=1)

        cfg = RunnerConfig(results_dir=tmp_path)
        doc = run_benchmarks([spec_of(boom, id="a"),
                              spec_of(fine, id="b")], cfg)
        validate_document(doc)
        by_id = {r["id"]: r for r in doc["results"]}
        assert by_id["a"]["status"] == "error"
        assert "kaput" in by_id["a"]["error"]
        assert by_id["b"]["status"] == "ok"

    def test_unknown_fixture_is_error(self, tmp_path):
        def bench(benchmark, warp_core):
            pass

        _, row = run_one(bench, tmp_path)
        assert row["status"] == "error"
        assert "warp_core" in row["error"]

    def test_rounds_and_warmup_override(self, tmp_path):
        seen = []

        def bench(benchmark):
            benchmark.pedantic(lambda: seen.append(1), rounds=9)

        _, row = run_one(bench, tmp_path, rounds=2, warmup=1)
        assert row["wall_seconds"]["n_rounds"] == 2
        assert len(seen) == 3

    def test_progress_callback(self, tmp_path):
        events = []

        def bench(benchmark):
            benchmark.pedantic(lambda: None, rounds=1)

        cfg = RunnerConfig(results_dir=tmp_path,
                           progress=lambda s, r: events.append(
                               (s.id, r is None)))
        run_benchmarks([spec_of(bench)], cfg)
        assert events == [("t1", True), ("t1", False)]


class TestProfiling:
    def test_tracer_is_noop_outside_profiling(self):
        assert current_tracer() is NULL_TRACER

    def test_profile_artifacts_and_tracer(self, tmp_path):
        seen = {}

        def bench(benchmark):
            tracer = current_tracer()
            seen["tracer"] = tracer
            with tracer.span("hot_phase"):
                benchmark.pedantic(lambda: sum(range(2000)), rounds=2)

        doc, row = run_one(bench, tmp_path, profile=True)
        assert isinstance(seen["tracer"], Tracer)
        assert doc["config"]["profile"] is True
        prof = tmp_path / "profiles" / "t1.prof"
        table = tmp_path / "profiles" / "t1.txt"
        assert prof.is_file() and table.is_file()
        text = table.read_text()
        assert "cumulative" in text          # cProfile top-N
        assert "hot_phase" in text           # obs phase table
        assert row["profile"] == str(prof)

    def test_tracer_reset_after_run(self, tmp_path):
        def bench(benchmark):
            benchmark.pedantic(lambda: None, rounds=1)

        run_one(bench, tmp_path, profile=True)
        assert current_tracer() is NULL_TRACER
