"""The docstring-coverage gate itself, run in-process as a tier-1 test
so the CI job cannot silently drift from what developers run locally."""

import importlib.util
import sys
import textwrap
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
GATED = [str(REPO / "src/repro/bench"), str(REPO / "src/repro/perf")]

_spec = importlib.util.spec_from_file_location(
    "docstring_coverage", REPO / "tools" / "docstring_coverage.py")
_mod = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = _mod
_spec.loader.exec_module(_mod)
collect, inspect_file, main = _mod.collect, _mod.inspect_file, _mod.main


class TestGateOnRepo:
    def test_gated_packages_meet_threshold(self, capsys):
        assert main(GATED + ["--fail-under", "80"]) == 0
        assert "ok: docstring coverage" in capsys.readouterr().out

    def test_collect_finds_all_modules(self):
        reports = collect(GATED)
        names = {r.path.name for r in reports}
        assert {"registry.py", "runner.py", "schema.py",
                "compare.py", "model.py", "opcount.py"} <= names


class TestChecker:
    def write(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source))
        return inspect_file(path)

    def test_counts_module_class_and_function(self, tmp_path):
        rep = self.write(tmp_path, '''
            """Module doc."""
            class Good:
                """Doc."""
                def method(self):
                    """Doc."""
            def bare():
                pass
            ''')
        assert rep.total == 4
        assert rep.documented == 3
        assert rep.missing == ["bare"]

    def test_private_names_skipped(self, tmp_path):
        rep = self.write(tmp_path, '''
            """Module doc."""
            def _helper():
                pass
            class _Internal:
                def visible_but_inside_private(self):
                    pass
            ''')
        assert rep.total == 1 and rep.documented == 1

    def test_init_with_args_required(self, tmp_path):
        rep = self.write(tmp_path, '''
            """Module doc."""
            class A:
                """Doc."""
                def __init__(self, x):
                    pass
            class B:
                """Doc."""
                def __init__(self):
                    pass
            ''')
        assert rep.missing == ["A.__init__"]

    def test_nested_functions_skipped(self, tmp_path):
        rep = self.write(tmp_path, '''
            """Module doc."""
            def outer():
                """Doc."""
                def inner():
                    pass
            ''')
        assert rep.total == 2 and rep.documented == 2

    def test_fail_under_enforced(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def undocumented():\n    pass\n")
        assert main([str(path), "--fail-under", "80"]) == 1
        assert "FAIL" in capsys.readouterr().out
