"""The regression gate on synthetic baselines."""

import copy

import pytest

from repro.bench.compare import Thresholds, compare_documents
from repro.bench.schema import make_document, wall_stats

FP = {"hostname": "h", "machine": "x86_64", "cpu_count": 4,
      "python": "3.12.0", "numpy": "2.0"}
OTHER_FP = dict(FP, hostname="elsewhere", cpu_count=32)


def doc(rows, fp=FP):
    return make_document(dict(fp), {"tier": "fast"}, rows)


def row(id="e5_headline", wall=1.0, status="ok", metrics=None):
    return {"id": id, "experiment": id.split("_")[0], "tier": "fast",
            "status": status, "error": None,
            "wall_seconds": wall_stats([wall, wall, wall]),
            "metrics": metrics if metrics is not None
            else {"interactions_per_second": 1e6,
                  "effective_gflops": 5.9}}


class TestWallGate:
    def test_identical_rerun_passes(self):
        base = doc([row(), row("e1_system", wall=0.1)])
        rep = compare_documents(copy.deepcopy(base), base)
        assert rep.exit_code == 0
        assert not rep.regressions

    def test_2x_slowdown_fails(self):
        base = doc([row(wall=1.0)])
        cur = doc([row(wall=2.0)])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 1
        [f] = rep.regressions
        assert f.kind == "wall" and f.ratio == pytest.approx(2.0)

    def test_threshold_configurable(self):
        base = doc([row(wall=1.0)])
        cur = doc([row(wall=2.0)])
        rep = compare_documents(cur, base,
                                Thresholds(wall_ratio=2.5))
        assert rep.exit_code == 0

    def test_speedup_never_fails(self):
        rep = compare_documents(doc([row(wall=0.2)]),
                                doc([row(wall=1.0)]))
        assert rep.exit_code == 0

    def test_microbenchmark_jitter_below_floor_passes(self):
        # 7us -> 12us is a 1.7x "slowdown" of pure timer noise
        base = doc([row(wall=7e-6)])
        cur = doc([row(wall=1.2e-5)])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 0
        assert "noise floor" in rep.format()

    def test_floor_configurable_to_zero(self):
        base = doc([row(wall=7e-6)])
        cur = doc([row(wall=1.2e-5)])
        rep = compare_documents(cur, base,
                                Thresholds(wall_floor=0.0))
        assert rep.exit_code == 1

    def test_crossing_the_floor_still_gates(self):
        # baseline under the floor, current well above it: gated
        base = doc([row(wall=5e-3)])
        cur = doc([row(wall=0.5)])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 1


class TestMachineAwareness:
    def test_cross_machine_wall_is_advisory(self):
        base = doc([row(wall=1.0)], fp=OTHER_FP)
        cur = doc([row(wall=2.0)])
        rep = compare_documents(cur, base)
        assert not rep.machine_comparable
        assert rep.exit_code == 0
        assert any(f.kind == "wall" for f in rep.warnings)

    def test_strict_machine_enforces_anyway(self):
        base = doc([row(wall=1.0)], fp=OTHER_FP)
        cur = doc([row(wall=2.0)])
        rep = compare_documents(cur, base,
                                Thresholds(strict_machine=True))
        assert rep.exit_code == 1

    def test_gated_metrics_cross_machine(self):
        # scale-free throughput metrics gate even across machines
        base = doc([row(metrics={"effective_gflops": 5.9})],
                   fp=OTHER_FP)
        cur = doc([row(metrics={"effective_gflops": 2.0})])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 1
        [f] = rep.regressions
        assert f.kind == "metric"


class TestMetricGate:
    def test_small_wobble_passes(self):
        base = doc([row(metrics={"interactions_per_second": 1e6})])
        cur = doc([row(metrics={"interactions_per_second": 0.9e6})])
        assert compare_documents(cur, base).exit_code == 0

    def test_big_drop_fails(self):
        base = doc([row(metrics={"interactions_per_second": 1e6})])
        cur = doc([row(metrics={"interactions_per_second": 0.5e6})])
        assert compare_documents(cur, base).exit_code == 1

    def test_ungated_metrics_ignored(self):
        base = doc([row(metrics={"overhead_ratio": 6.0})])
        cur = doc([row(metrics={"overhead_ratio": 1.0})])
        assert compare_documents(cur, base).exit_code == 0

    def test_disappeared_metric_warns(self):
        base = doc([row(metrics={"effective_gflops": 5.9})])
        cur = doc([row(metrics={})])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 0
        assert any(f.kind == "metric" for f in rep.warnings)


class TestStatusAndCoverage:
    def test_ok_to_failed_is_regression(self):
        base = doc([row()])
        cur = doc([row(status="failed")])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 1
        [f] = rep.regressions
        assert f.kind == "status"

    def test_missing_benchmark_warns(self):
        base = doc([row(), row("e1_system")])
        cur = doc([row()])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 0
        assert any(f.kind == "coverage" and f.id == "e1_system"
                   for f in rep.warnings)

    def test_new_benchmark_is_info(self):
        base = doc([row()])
        cur = doc([row(), row("e99_new")])
        rep = compare_documents(cur, base)
        assert rep.exit_code == 0
        assert any(f.id == "e99_new" and f.severity == "info"
                   for f in rep.findings)

    def test_format_mentions_everything(self):
        base = doc([row(wall=1.0)])
        cur = doc([row(wall=5.0)])
        text = compare_documents(cur, base).format()
        assert "FAIL" in text and "e5_headline" in text
        assert "regression(s)" in text


class TestThresholds:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            Thresholds(wall_ratio=0.9)
        with pytest.raises(ValueError):
            Thresholds(metric_ratio=0.0)
        with pytest.raises(ValueError):
            Thresholds(metric_ratio=1.5)
        with pytest.raises(ValueError):
            Thresholds(wall_floor=-1.0)
