"""`repro bench` subcommands, in-process (fast synthetic benchmarks only).

The heavy registered experiments are exercised by the CI bench job; here
we drive the CLI against the cheapest registered ids and against
synthetic result documents, so the tier-1 suite stays quick.
"""

import io
import json

import pytest

from repro.bench import discover
from repro.bench.schema import (load_document, make_document, wall_stats,
                                write_document)
from repro.cli import main

# cheapest registered benchmarks (micro-seconds per round): the cost
# model, which needs no particle data at all
CHEAP = ["e4_cost", "e4_price_sensitivity"]


@pytest.fixture(scope="module", autouse=True)
def discovered():
    return discover()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def synthetic_doc(path, wall=1.0, gflops=5.9):
    fp = {"hostname": "ci", "machine": "x86_64", "cpu_count": 1,
          "python": "3.11.0"}
    rows = [{"id": "e4_cost", "experiment": "e4", "tier": "fast",
             "status": "ok", "error": None,
             "wall_seconds": wall_stats([wall] * 3),
             "metrics": {"effective_gflops": gflops}}]
    return write_document(path, make_document(fp, {"tier": "fast"}, rows))


class TestList:
    def test_lists_all_benchmarks(self):
        code, text = run_cli("bench", "list")
        assert code == 0
        for bench_id in ("e5_headline", "e4_cost", "e13_parallel"):
            assert bench_id in text

    def test_tier_filter(self):
        code, text = run_cli("bench", "list", "--tier", "slow")
        assert code == 0
        assert "e2_total_error" in text
        assert "e4_cost" not in text


class TestRun:
    def test_run_cheap_ids_writes_document(self, tmp_path):
        out_path = tmp_path / "doc.json"
        code, text = run_cli("bench", "run", *CHEAP, "--rounds", "2",
                             "--out", str(out_path))
        assert code == 0
        assert "result document written" in text
        doc = load_document(out_path)
        assert sorted(r["id"] for r in doc["results"]) == sorted(CHEAP)
        assert all(r["status"] == "ok" for r in doc["results"])
        assert all(r["wall_seconds"]["n_rounds"] == 2
                   for r in doc["results"])

    def test_run_unknown_id_fails_cleanly(self, tmp_path):
        code, text = run_cli("bench", "run", "no_such_bench",
                             "--out", str(tmp_path / "x.json"))
        assert code == 2
        assert "no_such_bench" in text

    def test_run_with_inline_compare_gate(self, tmp_path):
        out_path = tmp_path / "doc.json"
        base_path = tmp_path / "base.json"
        # run once to produce a real same-machine baseline...
        code, _ = run_cli("bench", "run", "e4_cost", "--rounds", "2",
                          "--out", str(base_path))
        assert code == 0
        # ...then a rerun compared against it passes the gate
        code, text = run_cli("bench", "run", "e4_cost", "--rounds", "2",
                             "--out", str(out_path),
                             "--compare", str(base_path),
                             "--wall-ratio", "1000")
        assert code == 0
        assert "regression" in text or "ok" in text


class TestCompare:
    def test_identical_documents_exit_zero(self, tmp_path):
        base = synthetic_doc(tmp_path / "base.json")
        cur = synthetic_doc(tmp_path / "cur.json")
        code, text = run_cli("bench", "compare", str(cur), str(base))
        assert code == 0

    def test_slowdown_exits_nonzero(self, tmp_path):
        base = synthetic_doc(tmp_path / "base.json", wall=1.0)
        cur = synthetic_doc(tmp_path / "cur.json", wall=2.0)
        code, text = run_cli("bench", "compare", str(cur), str(base))
        assert code == 1
        assert "FAIL" in text

    def test_metric_drop_exits_nonzero(self, tmp_path):
        base = synthetic_doc(tmp_path / "base.json", gflops=5.9)
        cur = synthetic_doc(tmp_path / "cur.json", gflops=1.0)
        code, text = run_cli("bench", "compare", str(cur), str(base))
        assert code == 1

    def test_thresholds_flags_respected(self, tmp_path):
        base = synthetic_doc(tmp_path / "base.json", wall=1.0)
        cur = synthetic_doc(tmp_path / "cur.json", wall=2.0)
        code, _ = run_cli("bench", "compare", str(cur), str(base),
                          "--wall-ratio", "2.5")
        assert code == 0


class TestReport:
    def test_report_renders_table(self, tmp_path):
        path = synthetic_doc(tmp_path / "doc.json")
        code, text = run_cli("bench", "report", str(path))
        assert code == 0
        assert "e4_cost" in text
        assert "effective_gflops" in text

    def test_report_rejects_invalid_document(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        code, text = run_cli("bench", "report", str(bad))
        assert code == 2
        assert "$.schema" in text
