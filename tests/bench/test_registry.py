"""Registry discovery and selection semantics."""

import pytest

from repro.bench import discover, get_spec, select_specs
from repro.bench.registry import (TIERS, all_specs, register,
                                  suite_dir)

EXPERIMENTS = {f"e{i}" for i in range(1, 14)}


@pytest.fixture(scope="module", autouse=True)
def discovered():
    return discover()


class TestDiscovery:
    def test_suite_dir_exists(self):
        assert (suite_dir() / "conftest.py").is_file()

    def test_all_13_experiments_found(self):
        found = {s.experiment for s in all_specs()}
        assert EXPERIMENTS <= found, EXPERIMENTS - found

    def test_ids_unique_and_tiers_valid(self):
        specs = all_specs()
        ids = [s.id for s in specs]
        assert len(ids) == len(set(ids))
        assert all(s.tier in TIERS for s in specs)

    def test_discovery_idempotent(self):
        before = {s.id for s in all_specs()}
        discover()
        assert {s.id for s in all_specs()} == before

    def test_headline_is_fast_tier(self):
        # the CI gate depends on e5 running on every push
        assert get_spec("e5_headline").tier == "fast"

    def test_specs_carry_signature_params(self):
        spec = get_spec("e5_headline")
        assert "benchmark" in spec.params
        assert "cosmo_snapshot" in spec.params


class TestSelection:
    def test_tier_filter(self):
        fast = select_specs(tier="fast")
        assert fast and all(s.tier == "fast" for s in fast)
        assert len(select_specs(tier=None)) >= len(fast)
        assert select_specs(tier="full") == select_specs(tier=None)

    def test_explicit_ids(self):
        assert [s.id for s in select_specs(["e5_headline"])] \
            == ["e5_headline"]

    def test_family_selection(self):
        ids = {s.id for s in select_specs(["e5"])}
        assert ids == {"e5_headline", "e5_ratio_vs_ng"}

    def test_unknown_id_raises_with_known_list(self):
        with pytest.raises(KeyError, match="e5_headline"):
            select_specs(["no_such_bench"])

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError):
            select_specs(tier="warp")


class TestRegister:
    def test_conflicting_id_rejected(self):
        def imposter(benchmark):
            pass
        with pytest.raises(ValueError, match="already registered"):
            register("e5_headline")(imposter)

    def test_reregistration_of_same_function_ok(self):
        spec = get_spec("e5_headline")
        register("e5_headline", tier=spec.tier, section=spec.section,
                 summary=spec.summary)(spec.func)
        assert get_spec("e5_headline") == spec

    def test_bad_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            register("x", tier="glacial")
