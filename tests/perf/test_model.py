"""Performance-model tests: the section-3 optimum and section-5 totals."""

import numpy as np
import pytest

from repro.perf.model import (FittedListLength, PAPER_LIST_LENGTH, PAPER_N,
                              PAPER_NG, PAPER_STEPS, PerformanceModel)


class TestFittedListLength:
    def test_fit_recovers_exact_form(self):
        truth = FittedListLength(c0=100.0, c1=1.5, c2=40.0)
        ng = np.array([50.0, 100, 300, 700, 1500, 3000])
        fit = FittedListLength.fit(ng, truth(ng))
        assert fit.c0 == pytest.approx(100.0, rel=1e-6)
        assert fit.c1 == pytest.approx(1.5, rel=1e-6)
        assert fit.c2 == pytest.approx(40.0, rel=1e-6)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            FittedListLength.fit([1.0, 2.0], [3.0, 4.0])

    def test_monotone_increasing(self):
        f = FittedListLength(c0=100.0, c1=1.0, c2=40.0)
        ng = np.geomspace(10, 10000, 50)
        assert np.all(np.diff(f(ng)) > 0)

    def test_anchoring_hits_target(self):
        f = FittedListLength(c0=100.0, c1=1.2, c2=40.0)
        anchored = f.anchored(PAPER_NG, PAPER_LIST_LENGTH)
        assert float(anchored(PAPER_NG)) == pytest.approx(PAPER_LIST_LENGTH)
        # the direct part is untouched
        assert anchored.c1 == f.c1

    def test_anchoring_rejects_degenerate(self):
        f = FittedListLength(c0=0.0, c1=1.0, c2=0.0)
        with pytest.raises(ValueError):
            f.anchored(100.0, 1000.0)


class TestPerformanceModel:
    @pytest.fixture
    def pm(self):
        return PerformanceModel()

    def test_default_anchored_to_paper(self, pm):
        assert float(pm.list_length(PAPER_NG)) == pytest.approx(
            PAPER_LIST_LENGTH, rel=1e-9)

    def test_host_time_decreases_with_ng(self, pm):
        """The modified algorithm's whole point: bigger groups, less
        host work (paper: 'reduces the calculation cost of the host
        computer by roughly a factor of n_g')."""
        assert (pm.host_step_time(PAPER_N, 4000)
                < pm.host_step_time(PAPER_N, 500))

    def test_grape_work_increases_with_ng(self, pm):
        """...while 'the amount of work on GRAPE-5 increases' --
        in interactions; time per step grows once lists lengthen."""
        l_small = float(pm.list_length(200)) * PAPER_N
        l_big = float(pm.list_length(5000)) * PAPER_N
        assert l_big > l_small

    def test_optimal_ng_in_paper_band(self, pm):
        """'For the present configuration, the optimal n_g is around
        2000': the modelled optimum must land in the same broad basin
        (a factor ~2), and n_g = 2000 must be within 10 % of optimal."""
        ng_opt, t_opt = pm.optimal_ng(PAPER_N)
        assert 700 <= ng_opt <= 4000
        assert pm.step_time(PAPER_N, PAPER_NG) < 1.10 * t_opt

    def test_optimum_total_time(self, pm):
        ng_opt, t_opt = pm.optimal_ng(PAPER_N)
        # the minimum is a true minimum of the scanned curve
        for ng in (ng_opt / 4, ng_opt * 4):
            assert pm.step_time(PAPER_N, ng) > t_opt

    def test_run_prediction_matches_paper_wall_clock(self, pm):
        """At the paper's operating point (N, 999 steps, n_g = 2000)
        the modelled run must land near the measured 30,141 s /
        8.37 h / 36.4 Gflops raw."""
        pred = pm.run_prediction()
        assert pred["total_seconds"] == pytest.approx(30_141.0, rel=0.10)
        assert pred["total_hours"] == pytest.approx(8.37, rel=0.10)
        assert pred["raw_gflops"] == pytest.approx(36.4, rel=0.10)
        assert pred["total_interactions"] == pytest.approx(2.90e13,
                                                           rel=0.02)

    def test_optimum_moves_with_host_speed(self):
        """A faster host shifts the optimum to smaller groups -- the
        paper: 'the optimal n_g strongly depends on the ratio of the
        speed of the host computer and GRAPE'."""
        from repro.host.machine import HostMachine
        slow = PerformanceModel(host=HostMachine(t_tree_build=9e-6,
                                                 t_walk_term=1.5e-6))
        fast = PerformanceModel(host=HostMachine(t_tree_build=3e-7,
                                                 t_walk_term=5e-8))
        ng_slow, _ = slow.optimal_ng(PAPER_N)
        ng_fast, _ = fast.optimal_ng(PAPER_N)
        assert ng_fast < ng_slow
