"""Measurement-helper tests."""

import numpy as np
import pytest

from repro.core import DirectSummation, TreeCode
from repro.perf.measure import (fit_list_length, force_error,
                                group_size_sweep)


class TestGroupSweep:
    def test_sweep_monotone_lists(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        pts = group_size_sweep(pos, mass, 0.01, (16, 64, 256))
        sizes = [p.mean_group_size for p in pts]
        lists = [p.mean_list_length for p in pts]
        assert sizes == sorted(sizes)
        assert lists == sorted(lists)
        assert all(p.total_interactions > 0 for p in pts)

    def test_host_terms_fall(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        pts = group_size_sweep(pos, mass, 0.01, (16, 256))
        assert pts[1].host_terms < pts[0].host_terms

    def test_fit_from_sweep(self, clustered_2k):
        pos, mass = clustered_2k
        pts = group_size_sweep(pos, mass, 0.01, (8, 32, 128, 512))
        fit = fit_list_length(pts)
        # the fit interpolates the measurements reasonably
        for p in pts:
            assert float(fit(p.mean_group_size)) == pytest.approx(
                p.mean_list_length, rel=0.35)


class TestForceError:
    def test_reference_reuse(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        from repro.core.direct import direct_accelerations
        ref = direct_accelerations(pos, mass, 0.01)
        tc = TreeCode(theta=0.75, n_crit=64)
        e1 = force_error(pos, mass, 0.01, tc, reference=ref)
        e2 = force_error(pos, mass, 0.01, tc)
        assert e1["rms"] == pytest.approx(e2["rms"], rel=1e-12)

    def test_statistics_ordered(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        e = force_error(pos, mass, 0.01, TreeCode(theta=0.75, n_crit=64))
        assert e["median"] <= e["rms"] * 3
        assert e["median"] <= e["p99"] <= e["max"]
        assert 0 < e["rms"] < 0.01

    def test_direct_against_itself_zero(self, plummer_pos_mass):
        pos, mass = plummer_pos_mass
        e = force_error(pos, mass, 0.01, DirectSummation())
        assert e["max"] == 0.0
        assert e["n_zero_reference"] == 0

    def test_zero_norm_reference_excluded(self):
        # sink at the midpoint of a symmetric pair: the reference
        # acceleration there is exactly zero, so the relative error is
        # undefined -- it must be excluded, not become NaN/inf
        pos = np.array([[-1.0, 0.0, 0.0],
                        [1.0, 0.0, 0.0],
                        [0.0, 0.0, 0.0]])
        mass = np.array([1.0, 1.0, 0.0])
        e = force_error(pos, mass, 0.0, DirectSummation())
        assert e["n_zero_reference"] == 1
        for key in ("rms", "median", "p99", "max"):
            assert np.isfinite(e[key])

    def test_all_zero_reference(self):
        # a single isolated particle feels no force at all
        pos = np.zeros((1, 3))
        mass = np.ones(1)
        e = force_error(pos, mass, 0.01, DirectSummation())
        assert e["n_zero_reference"] == 1
        assert e["rms"] == 0.0 and e["max"] == 0.0
