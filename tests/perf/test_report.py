"""Headline-report tests: the paper's numbers are mutually consistent."""

import pytest

from repro.perf.report import HeadlineReport, PAPER_HEADLINE, format_table


class TestPaperHeadline:
    def test_list_length(self):
        """'the average length of the interaction list is 13,431'."""
        assert PAPER_HEADLINE.mean_list_length == pytest.approx(13_431,
                                                                rel=2e-3)

    def test_raw_gflops(self):
        """'average computing speed of 36.4 Gflops'."""
        assert PAPER_HEADLINE.raw_gflops == pytest.approx(36.4, rel=5e-3)

    def test_effective_gflops(self):
        """'The effective sustained speed is 5.92 Gflops'."""
        assert PAPER_HEADLINE.effective_gflops == pytest.approx(5.92,
                                                                rel=2e-3)

    def test_price_per_mflops(self):
        """'the price/performance is $7.0/Mflops' (6.91 before rounding)."""
        assert PAPER_HEADLINE.price_per_mflops == pytest.approx(6.91,
                                                                abs=0.05)
        assert round(PAPER_HEADLINE.price_per_mflops) == 7

    def test_hours(self):
        """'took 30,141 seconds (8.37 hours)'."""
        assert PAPER_HEADLINE.wall_seconds / 3600 == pytest.approx(8.37,
                                                                   abs=0.01)

    def test_overhead_ratio(self):
        assert PAPER_HEADLINE.counter.overhead_ratio == pytest.approx(
            6.18, abs=0.02)

    def test_as_row_complete(self):
        row = PAPER_HEADLINE.as_row("paper")
        for k in ("run", "N", "steps", "interactions", "list_len",
                  "raw_Gflops", "eff_Gflops", "usd_per_Mflops"):
            assert k in row
        assert row["run"] == "paper"


class TestHeadlineReport:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeadlineReport(1, 1, 1.0, 1.0, wall_seconds=0.0)
        with pytest.raises(ValueError):
            HeadlineReport(0, 1, 1.0, 1.0, wall_seconds=1.0)

    def test_scaling(self):
        """Half the wall time doubles both speeds; price halves."""
        fast = HeadlineReport(1000, 10, 1e10, 1e9, wall_seconds=100.0)
        slow = HeadlineReport(1000, 10, 1e10, 1e9, wall_seconds=200.0)
        assert fast.raw_gflops == pytest.approx(2 * slow.raw_gflops)
        assert fast.price_per_mflops == pytest.approx(
            0.5 * slow.price_per_mflops)


class TestFormatTable:
    def test_empty(self):
        assert "empty" in format_table([])

    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "b" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        # columns aligned: all lines same width
        assert len({len(l) for l in lines}) == 1

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out.splitlines()[-1].strip().startswith("3")
