"""Operation-counting tests, anchored on the paper's section 5."""

import numpy as np
import pytest

from repro.core import TreeCode
from repro.perf.opcount import (OPS_PER_INTERACTION, OperationCounter, flops,
                                gflops, original_interaction_count)


class TestConventions:
    def test_38_ops(self):
        assert OPS_PER_INTERACTION == 38

    def test_flops(self):
        assert flops(10) == 380

    def test_gflops(self):
        assert gflops(1e9, 38.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            gflops(1.0, 0.0)

    def test_paper_raw_speed(self):
        """2.90e13 interactions in 30,141 s -> 36.4 Gflops (paper)."""
        assert gflops(2.90e13, 30_141.0) == pytest.approx(36.4, rel=5e-3)

    def test_paper_effective_speed(self):
        """4.69e12 interactions in 30,141 s -> 5.92 Gflops (paper)."""
        assert gflops(4.69e12, 30_141.0) == pytest.approx(5.92, rel=5e-3)


class TestOperationCounter:
    def test_paper_ratio(self):
        """Modified/original = 2.90e13/4.69e12 ~ 6.18."""
        c = OperationCounter(2.90e13, 4.69e12)
        assert c.overhead_ratio == pytest.approx(6.18, abs=0.02)

    def test_speeds(self):
        c = OperationCounter(2.90e13, 4.69e12)
        assert c.raw_gflops(30_141.0) == pytest.approx(36.4, rel=5e-3)
        assert c.effective_gflops(30_141.0) == pytest.approx(5.92, rel=5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperationCounter(-1.0, 1.0)

    def test_zero_original_infinite_ratio(self):
        assert OperationCounter(10.0, 0.0).overhead_ratio == np.inf


class TestOriginalCount:
    def test_matches_treecode_original(self, plummer_pos_mass):
        """The counting shortcut equals a full original-algorithm run."""
        pos, mass = plummer_pos_mass
        est = original_interaction_count(pos, mass, theta=0.75)
        tc = TreeCode(theta=0.75)
        tc.accelerations(pos, mass, 0.01, algorithm="original")
        assert est == tc.last_stats.total_interactions

    def test_sampling_close_to_full(self, clustered_2k):
        pos, mass = clustered_2k
        full = original_interaction_count(pos, mass, theta=0.75)
        sampled = original_interaction_count(
            pos, mass, theta=0.75, sample=500,
            rng=np.random.default_rng(7))
        assert sampled == pytest.approx(full, rel=0.15)

    def test_modified_exceeds_original(self, plummer_pos_mass):
        """The defining trade-off of Barnes' modification."""
        pos, mass = plummer_pos_mass
        orig = original_interaction_count(pos, mass, theta=0.75)
        tc = TreeCode(theta=0.75, n_crit=128)
        tc.accelerations(pos, mass, 0.01)
        assert tc.last_stats.total_interactions > orig
