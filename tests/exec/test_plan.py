"""Unit tests of the batch planner and source assembly."""

import numpy as np
import pytest

from repro.core.traversal import InteractionLists, concatenate_lists
from repro.exec.plan import assemble_sources, plan_batches


class TestPlanBatches:
    def test_empty(self):
        assert plan_batches(np.array([], dtype=np.int64), 100) == []

    def test_single_batch_when_under_cap(self):
        assert plan_batches(np.array([10, 20, 30]), 100) == [(0, 3)]

    def test_splits_at_cap(self):
        batches = plan_batches(np.array([60, 60, 60]), 100)
        assert batches == [(0, 1), (1, 2), (2, 3)]

    def test_packs_consecutively_and_covers_all(self):
        rng = np.random.default_rng(7)
        lengths = rng.integers(1, 50, size=200)
        batches = plan_batches(lengths, 128)
        # contiguous, gap-free cover of [0, 200)
        assert batches[0][0] == 0 and batches[-1][1] == 200
        for (a0, b0), (a1, _) in zip(batches, batches[1:]):
            assert b0 == a1
        # every batch except possibly singletons respects the cap
        for a, b in batches:
            if b - a > 1:
                assert int(lengths[a:b].sum()) <= 128

    def test_oversize_list_gets_own_batch(self):
        batches = plan_batches(np.array([5, 500, 5]), 100)
        assert (1, 2) in batches

    def test_no_cap(self):
        assert plan_batches(np.array([10, 20]), None) == [(0, 2)]


class TestAssembleSources:
    def test_order_is_cells_then_particles(self):
        pos = np.arange(12, dtype=np.float64).reshape(4, 3)
        pmass = np.array([1.0, 2.0, 3.0, 4.0])
        com = 100.0 + np.arange(6, dtype=np.float64).reshape(2, 3)
        cmass = np.array([10.0, 20.0])
        lists = InteractionLists(
            n_sinks=1,
            cell_idx=np.array([1, 0], dtype=np.int64),
            cell_off=np.array([0, 2], dtype=np.int64),
            part_idx=np.array([3], dtype=np.int64),
            part_off=np.array([0, 1], dtype=np.int64))
        xj, mj = assemble_sources(pos, pmass, com, cmass, lists, 0)
        assert np.array_equal(xj, np.vstack([com[1], com[0], pos[3]]))
        assert np.array_equal(mj, np.array([20.0, 10.0, 4.0]))


class TestConcatenateLists:
    def test_round_trip_matches_full_build(self):
        rng = np.random.default_rng(3)

        def _rand_lists(n_sinks, base):
            cl = rng.integers(1, 5, size=n_sinks)
            pl = rng.integers(0, 4, size=n_sinks)
            return InteractionLists(
                n_sinks=n_sinks,
                cell_idx=base + np.arange(cl.sum(), dtype=np.int64),
                cell_off=np.concatenate(
                    [[0], np.cumsum(cl)]).astype(np.int64),
                part_idx=base + np.arange(pl.sum(), dtype=np.int64),
                part_off=np.concatenate(
                    [[0], np.cumsum(pl)]).astype(np.int64))

        a = _rand_lists(3, 0)
        b = _rand_lists(5, 1000)
        merged = concatenate_lists([a, b])
        assert merged.n_sinks == 8
        for g in range(3):
            assert np.array_equal(merged.cells_of(g), a.cells_of(g))
            assert np.array_equal(merged.parts_of(g), a.parts_of(g))
        for g in range(5):
            assert np.array_equal(merged.cells_of(3 + g), b.cells_of(g))
            assert np.array_equal(merged.parts_of(3 + g), b.parts_of(g))

    def test_single_part_identity(self):
        lists = InteractionLists(
            n_sinks=1,
            cell_idx=np.array([0], dtype=np.int64),
            cell_off=np.array([0, 1], dtype=np.int64),
            part_idx=np.array([], dtype=np.int64),
            part_off=np.array([0, 0], dtype=np.int64))
        merged = concatenate_lists([lists])
        assert np.array_equal(merged.cell_idx, lists.cell_idx)

    def test_empty_gives_empty_lists(self):
        merged = concatenate_lists([])
        assert merged.n_sinks == 0
        assert merged.cell_off.shape == (1,)
