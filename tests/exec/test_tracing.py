"""Cross-process trace stitching: worker spans join the host trace.

The acceptance criterion under test: a pipeline-engine evaluation
traced on the host produces ONE coherent trace -- every batch
evaluated in a worker process appears as an ``exec.batch`` span
parented under the submitting host-side ``eval`` span, carrying the
worker's own ``exec.queue_wait`` / ``exec.eval`` children on the
host's ``perf_counter`` timeline -- and the critical-path analysis
partitions the traced wall clock into host/worker/GRAPE buckets that
sum to the total (within 5%; the partition is exact by construction,
so we assert much tighter).
"""

import numpy as np
import pytest

from repro.core import TreeCode
from repro.exec import PipelineEngine
from repro.obs import Tracer
from repro.obs.analyze import critical_path
from repro.obs.export import span_events
from repro.sim.models import plummer_model


@pytest.fixture(scope="module")
def traced_run():
    rng = np.random.default_rng(7)
    pos, _, mass = plummer_model(1500, rng)
    tr = Tracer()
    engine = PipelineEngine(workers=2)
    tc = TreeCode(theta=0.75, n_crit=64, engine=engine, tracer=tr)
    try:
        tc.accelerations(pos, mass, 0.01)
    finally:
        tc.close()
    return tr, list(span_events(tr))


class TestStitchedTrace:
    def test_one_trace_with_worker_spans(self, traced_run):
        tr, events = traced_run
        names = {e["name"] for e in events}
        assert "exec.batch" in names
        assert "exec.queue_wait" in names
        assert "exec.eval" in names
        # a single trace identity owns all of it
        assert len(tr.trace_id) == 32

    def test_batches_parent_under_eval(self, traced_run):
        _, events = traced_run
        by_id = {e["span_id"]: e for e in events}
        batches = [e for e in events if e["name"] == "exec.batch"]
        assert batches
        for b in batches:
            parent = by_id[b["parent_id"]]
            assert parent["name"] == "eval"
            assert b["path"].endswith("eval/exec.batch")
            # stitched batch spans keep their submit-side identity
            assert "batch" in b["attrs"] and "worker" in b["attrs"]

    def test_worker_children_inside_batch_interval(self, traced_run):
        _, events = traced_run
        by_id = {e["span_id"]: e for e in events}
        kids = [e for e in events
                if e["name"] in ("exec.queue_wait", "exec.eval")]
        assert kids
        for k in kids:
            batch = by_id[k["parent_id"]]
            assert batch["name"] == "exec.batch"
            # same monotonic timeline: child intervals nest (small
            # slack for the enqueue-side t_origin backdating)
            assert k["t_start"] >= batch["t_start"] - 1e-6
            assert k["t_end"] <= batch["t_end"] + 1e-6

    def test_batch_intervals_inside_eval(self, traced_run):
        _, events = traced_run
        evals = {e["span_id"]: e for e in events
                 if e["name"] == "eval"}
        for b in (e for e in events if e["name"] == "exec.batch"):
            ev = evals[b["parent_id"]]
            assert b["t_end"] <= ev["t_end"] + 1e-6

    def test_every_batch_is_stitched(self, traced_run):
        """No worker measurement is lost: one exec.batch per batch
        the engine evaluated, queue-wait + eval under each."""
        _, events = traced_run
        batches = [e for e in events if e["name"] == "exec.batch"]
        waits = [e for e in events if e["name"] == "exec.queue_wait"]
        assert len(waits) == len(batches)
        seen = {e["attrs"]["batch"] for e in batches}
        assert seen == set(range(len(batches)))


class TestCriticalPathAttribution:
    def test_resources_sum_to_total(self, traced_run):
        _, events = traced_run
        cp = critical_path(events)
        total = cp["total_seconds"]
        assert total > 0
        parts = sum(cp["resources"].values())
        # acceptance bound is 5%; the timeline partition is exact
        assert parts == pytest.approx(total, rel=1e-9)
        assert cp["resources"]["worker"] > 0

    def test_untraced_run_records_nothing(self):
        """Tracing off (NULL_TRACER) must ship no contexts and stitch
        no spans -- the overhead-free default."""
        rng = np.random.default_rng(8)
        pos, _, mass = plummer_model(800, rng)
        tr = Tracer()
        engine = PipelineEngine(workers=2)
        tc = TreeCode(theta=0.75, n_crit=64, engine=engine)  # no tracer
        try:
            tc.accelerations(pos, mass, 0.01)
        finally:
            tc.close()
        assert list(span_events(tr)) == []
