"""Engine equivalence: pipeline results must match the serial path.

The contract under test is the PR's acceptance criterion: with the
deterministic :class:`~repro.core.kernels.Float64Backend` the pipeline
engine is *bit-identical* to the serial path for any worker count
(every sink's arithmetic is independent and written to a disjoint
output slice); with the GRAPE emulator the identical call stream keeps
it bit-identical too, and in any case inside the paper's 0.3% relative
force-error envelope.
"""

import numpy as np
import pytest

from repro.core import TreeCode
from repro.core.kernels import Float64Backend, ForceBackend
from repro.exec import (ENGINE_NAMES, EngineError, PipelineEngine,
                        SerialEngine, make_engine)
from repro.grape import GrapeBackend
from repro.obs import MetricsRegistry
from repro.sim.models import plummer_model


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(42)
    pos, _, mass = plummer_model(1500, rng)
    return pos, mass


def _forces(pos, mass, *, backend=None, engine=None, n_crit=64,
            metrics=None):
    tc = TreeCode(theta=0.75, n_crit=n_crit, backend=backend,
                  engine=engine, metrics=metrics)
    try:
        acc, pot = tc.accelerations(pos, mass, 0.01)
        return acc, pot, tc.last_stats
    finally:
        tc.close()


class TestFloat64Equivalence:
    def test_serial_engine_matches_inline(self, cloud):
        pos, mass = cloud
        a0, p0, s0 = _forces(pos, mass)
        a1, p1, s1 = _forces(pos, mass, engine=SerialEngine())
        assert np.array_equal(a0, a1) and np.array_equal(p0, p1)
        assert s0.total_interactions == s1.total_interactions

    @pytest.mark.parametrize("workers", [1, 4])
    def test_pipeline_bit_identical(self, cloud, workers):
        pos, mass = cloud
        a0, p0, s0 = _forces(pos, mass)
        a1, p1, s1 = _forces(pos, mass,
                             engine=PipelineEngine(workers=workers))
        assert np.array_equal(a0, a1)
        assert np.array_equal(p0, p1)
        assert s0.total_interactions == s1.total_interactions
        assert s0.n_groups == s1.n_groups

    def test_pipeline_bit_identical_10k(self):
        """The acceptance-criterion scale: >= 10k particles."""
        rng = np.random.default_rng(1999)
        pos, _, mass = plummer_model(10_000, rng)
        a0, p0, s0 = _forces(pos, mass, n_crit=256)
        a1, p1, s1 = _forces(pos, mass, n_crit=256,
                             engine=PipelineEngine(workers=2))
        assert np.array_equal(a0, a1)
        assert np.array_equal(p0, p1)
        assert s0.total_interactions == s1.total_interactions

    def test_interaction_stats_aggregate_exactly(self, cloud):
        pos, mass = cloud
        be0 = Float64Backend()
        be1 = Float64Backend()
        _forces(pos, mass, backend=be0)
        _forces(pos, mass, backend=be1,
                engine=PipelineEngine(workers=2))
        assert be1.interactions == be0.interactions
        assert be1.interactions > 0


class TestGrapeEquivalence:
    def test_pipeline_matches_serial_grape(self, cloud):
        pos, mass = cloud
        a0, p0, _ = _forces(pos, mass, backend=GrapeBackend())
        a1, p1, _ = _forces(pos, mass, backend=GrapeBackend(),
                            engine=PipelineEngine(workers=2))
        # identical call stream through the deterministic emulator
        assert np.array_equal(a0, a1) and np.array_equal(p0, p1)
        # and, a fortiori, inside the paper's error envelope vs float64
        ref = _forces(pos, mass)[0]
        rel = (np.linalg.norm(a1 - ref, axis=1)
               / np.linalg.norm(ref, axis=1))
        assert np.median(rel) < 0.003

    def test_grape_counters_aggregate_exactly(self, cloud):
        pos, mass = cloud
        be0 = GrapeBackend()
        be1 = GrapeBackend()
        _forces(pos, mass, backend=be0)
        _forces(pos, mass, backend=be1,
                engine=PipelineEngine(workers=2))
        assert be1.system.n_calls == be0.system.n_calls
        assert be1.system.interactions == be0.system.interactions
        assert be1.model_seconds == pytest.approx(be0.model_seconds)


class TestEngineLifecycle:
    def test_reuse_across_sweeps(self, cloud):
        pos, mass = cloud
        rng = np.random.default_rng(5)
        pos2, _, mass2 = plummer_model(800, rng)
        with PipelineEngine(workers=2) as eng:
            # one engine, two TreeCodes: the pool outlives each solver
            # (closing a TreeCode would close its engine, so don't)
            tc1 = TreeCode(theta=0.75, n_crit=64, engine=eng)
            a1, _ = tc1.accelerations(pos, mass, 0.01)
            tc2 = TreeCode(theta=0.75, n_crit=64, engine=eng)
            a2, _ = tc2.accelerations(pos2, mass2, 0.01)
        r1, _, _ = _forces(pos, mass)
        r2, _, _ = _forces(pos2, mass2)
        assert np.array_equal(a1, r1) and np.array_equal(a2, r2)

    def test_closed_engine_rejects_work(self, cloud):
        pos, mass = cloud
        eng = PipelineEngine(workers=1)
        eng.close()
        with pytest.raises(EngineError):
            _forces(pos, mass, engine=eng)

    def test_close_is_idempotent(self):
        eng = PipelineEngine(workers=1)
        eng.close()
        eng.close()

    def test_non_parallel_safe_backend_rejected(self, cloud):
        pos, mass = cloud

        class HostOnly(ForceBackend):
            name = "host-only"

            def compute(self, xi, xj, mj, eps):
                return Float64Backend().compute(xi, xj, mj, eps)

        with PipelineEngine(workers=1) as eng:
            with pytest.raises(EngineError):
                _forces(pos, mass, backend=HostOnly(), engine=eng)

    def test_make_engine(self):
        assert make_engine("serial") is None
        eng = make_engine("pipeline", workers=1)
        assert isinstance(eng, PipelineEngine)
        eng.close()
        with pytest.raises(EngineError):
            make_engine("warp-drive")
        assert set(ENGINE_NAMES) == {"serial", "pipeline"}

    def test_workers_validated(self):
        with pytest.raises(EngineError):
            PipelineEngine(workers=0)


class TestObservability:
    def test_exec_metrics_recorded(self, cloud):
        pos, mass = cloud
        reg = MetricsRegistry()
        with PipelineEngine(workers=2) as eng:
            _forces(pos, mass, engine=eng, metrics=reg)
        assert reg.value("exec.sweeps") == 1
        assert reg.value("exec.batches") >= 1
        assert reg.value("exec.workers") == 2
        assert reg.value("exec.worker_busy_seconds") > 0

    def test_simulation_context_manager(self, cloud):
        from repro.sim import Simulation
        pos, mass = cloud
        vel = np.zeros_like(pos)
        with Simulation(pos=pos, vel=vel, mass=mass, eps=0.01,
                        engine=PipelineEngine(workers=1)) as sim:
            rec = sim.step(1e-4)
            assert rec.interactions > 0
