"""Example-script smoke tests.

Full example runs take minutes; these tests verify the scripts stay
importable (no bit-rot against the library API) and that their entry
points exist.  The cheapest example's core path is exercised for real.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples"
                   ).glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamplesImportable:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "cosmological_sphere",
                "optimal_group_size", "grape_accuracy",
                "galaxy_collision", "periodic_box"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        mod = _load(path)
        assert callable(getattr(mod, "main", None) or
                        getattr(mod, "linear_growth_demo", None))


class TestTinyEndToEnd:
    def test_quickstart_pipeline_small(self, rng):
        """The quickstart's computation at toy size."""
        import numpy as np
        from repro.core import DirectSummation, TreeCode
        from repro.grape import GrapeBackend
        from repro.sim.models import plummer_model

        pos, _, mass = plummer_model(400, rng)
        acc_ref, _ = DirectSummation().accelerations(pos, mass, 0.01)
        backend = GrapeBackend()
        tc = TreeCode(theta=0.75, n_crit=64, backend=backend)
        acc, _ = tc.accelerations(pos, mass, 0.01)
        err = (np.linalg.norm(acc - acc_ref, axis=1)
               / np.linalg.norm(acc_ref, axis=1))
        assert np.sqrt(np.mean(err**2)) < 0.02
        assert backend.model_seconds > 0
