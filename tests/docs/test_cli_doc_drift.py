"""Docs-vs-CLI drift gate.

Every ``--flag`` token mentioned in the user-facing docs and the README
must exist on the live ``repro`` argparse surface.  This catches the
usual decay mode of CLI documentation: a flag is renamed or removed in
:mod:`repro.cli` while a worked example in ``docs/`` keeps advertising
the old spelling.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]

#: documentation that advertises repro CLI invocations
DOC_FILES = sorted(p for p in (REPO / "docs").glob("*.md")) + [REPO / "README.md"]

#: flags that belong to *other* tools shown in shell snippets
#: (pytest/pytest-benchmark, pip, coverage tooling), not to repro
_EXTERNAL = {
    "--benchmark-only",   # pytest-benchmark
    "--fail-under",       # tools/docstring_coverage.py
    "--cov",              # pytest-cov
    "--tb",               # pytest
}

_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")


def _parser_flags(parser: argparse.ArgumentParser, seen: set) -> set:
    """Collect every ``--long-option`` reachable from ``parser``."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for sub in set(action.choices.values()):
                _parser_flags(sub, seen)
        else:
            seen.update(s for s in action.option_strings
                        if s.startswith("--"))
    return seen


@pytest.fixture(scope="module")
def live_flags():
    return _parser_flags(build_parser(), set())


def test_docs_exist():
    assert DOC_FILES, "no documentation files found"
    assert (REPO / "docs" / "cluster.md") in DOC_FILES


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_documented_flags_exist(doc, live_flags):
    """Every flag a doc mentions is accepted by the live CLI."""
    mentioned = set(_FLAG_RE.findall(doc.read_text()))
    phantom = mentioned - live_flags - _EXTERNAL
    assert not phantom, (
        f"{doc.name} documents flags the CLI does not accept: "
        f"{sorted(phantom)} -- update the doc or restore the flag")


def test_cluster_flags_are_documented(live_flags):
    """The PR-9 cluster surface is both live and documented."""
    assert {"--hosts", "--boards"} <= live_flags
    text = (REPO / "docs" / "cluster.md").read_text()
    assert "--hosts" in text and "--boards" in text


def test_fleet_surface_is_documented(live_flags):
    """The PR-10 fleet surface is both live and documented."""
    assert "--cache-budget" in live_flags
    text = (REPO / "docs" / "fleet.md").read_text()
    assert "--cache-budget" in text
    for verb in ("store serve", "store verify", "fleet status",
                 "fleet workers", "fleet drain"):
        assert verb in text, f"fleet.md does not mention 'repro {verb}'"
    # the store URL form workers consume must be shown somewhere
    assert "http://" in text and "repro.fleet-rpc/v1" in text


def test_allowlist_is_not_stale(live_flags):
    """_EXTERNAL must never shadow a real repro flag."""
    assert not (_EXTERNAL & live_flags)
