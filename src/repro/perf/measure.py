"""Live measurement helpers behind the benchmark harness.

These wrap the repeated measurement patterns of the evaluation --
group-size sweeps, force-error measurement against the direct
reference, original-vs-modified comparisons -- so that benchmarks,
examples and user scripts share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.direct import direct_accelerations
from ..core.kernels import ForceBackend
from ..core.treecode import TreeCode
from .model import FittedListLength

__all__ = ["GroupSweepPoint", "group_size_sweep", "fit_list_length",
           "force_error"]


@dataclass(frozen=True)
class GroupSweepPoint:
    """One n_crit setting's measured statistics."""

    n_crit: int
    mean_group_size: float
    mean_list_length: float
    host_terms: int
    total_interactions: int


def group_size_sweep(pos: np.ndarray, mass: np.ndarray, eps: float,
                     n_crits: Sequence[int], *, theta: float = 0.75
                     ) -> Tuple[GroupSweepPoint, ...]:
    """Measure list statistics across group sizes on one snapshot."""
    out = []
    for ncrit in n_crits:
        tc = TreeCode(theta=theta, n_crit=int(ncrit))
        tc.accelerations(pos, mass, eps)
        s = tc.last_stats
        out.append(GroupSweepPoint(
            n_crit=int(ncrit),
            mean_group_size=s.mean_group_size,
            mean_list_length=s.interactions_per_particle,
            host_terms=s.cell_terms + s.part_terms,
            total_interactions=s.total_interactions))
    return tuple(out)


def fit_list_length(points: Sequence[GroupSweepPoint]
                    ) -> FittedListLength:
    """Fit the Makino-1991 list-length law to a sweep."""
    ng = [p.mean_group_size for p in points]
    ll = [p.mean_list_length for p in points]
    return FittedListLength.fit(ng, ll)


def force_error(pos: np.ndarray, mass: np.ndarray, eps: float,
                solver, *, reference: Optional[Tuple] = None,
                ) -> dict:
    """RMS/median/99th-percentile relative force error of ``solver``
    against direct summation.

    ``solver`` is anything with ``accelerations(pos, mass, eps)``;
    ``reference`` optionally supplies a precomputed ``(acc, pot)`` to
    amortise the O(N^2) baseline across several measurements.

    Particles whose reference acceleration has exactly zero norm (a
    sink at a field null, e.g. the center of a symmetric pair) have no
    defined relative error; they are excluded from the statistics and
    counted in ``n_zero_reference`` instead of leaking NaN/inf into
    the RMS.
    """
    if reference is None:
        reference = direct_accelerations(pos, mass, eps)
    acc_ref, pot_ref = reference
    acc, pot = solver.accelerations(pos, mass, eps)
    ref_norm = np.linalg.norm(acc_ref, axis=1)
    ok = ref_norm > 0.0
    n_zero = int(np.size(ok) - np.count_nonzero(ok))
    if not np.any(ok):
        rel = np.zeros(0, dtype=np.float64)
    else:
        rel = (np.linalg.norm(acc[ok] - acc_ref[ok], axis=1)
               / ref_norm[ok])
    with np.errstate(divide="ignore", invalid="ignore"):
        prel = np.abs((pot - pot_ref) / pot_ref)
    if rel.size == 0:
        stats = {"rms": 0.0, "median": 0.0, "p99": 0.0, "max": 0.0}
    else:
        stats = {
            "rms": float(np.sqrt(np.mean(rel**2))),
            "median": float(np.median(rel)),
            "p99": float(np.percentile(rel, 99)),
            "max": float(rel.max()),
        }
    finite = np.isfinite(prel)
    stats["pot_rms"] = (float(np.sqrt(np.mean(prel[finite] ** 2)))
                        if np.any(finite) else 0.0)
    stats["n_zero_reference"] = n_zero
    return stats
