"""The section-5 performance report.

:class:`HeadlineReport` assembles, from measured or modelled inputs,
exactly the sequence of numbers the paper walks through in section 5:

    N, steps, total interactions, average list length, wall-clock
    seconds, raw Gflops (38-op count), original-algorithm interactions,
    effective Gflops, system price, $/Mflops.

:data:`PAPER_HEADLINE` is the paper's own row, used by the benchmark
harness for side-by-side tables and by the tests as a consistency
oracle (the paper's published numbers must be mutually consistent under
our formulas -- and they are, to rounding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..host.cost import PAPER_SYSTEM_COST, SystemCost
from .opcount import OPS_PER_INTERACTION, OperationCounter

__all__ = ["HeadlineReport", "PAPER_HEADLINE", "PAPER_OVERHEAD_RATIO",
           "format_table"]

#: The paper's modified/original interaction ratio at its operating
#: point (2.90e13 / 4.69e12) -- the default correction applied when a
#: run measured only the modified count.
PAPER_OVERHEAD_RATIO = 2.90e13 / 4.69e12


@dataclass(frozen=True)
class HeadlineReport:
    """Price/performance accounting for one run (measured or modelled)."""

    n_particles: int
    n_steps: int
    modified_interactions: float
    original_interactions: float
    wall_seconds: float
    cost: SystemCost = PAPER_SYSTEM_COST

    def __post_init__(self):
        if self.wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if self.n_particles <= 0 or self.n_steps <= 0:
            raise ValueError("particle and step counts must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def from_metrics(cls, registry, *,
                     original_interactions: Optional[float] = None,
                     wall_seconds: Optional[float] = None,
                     cost: SystemCost = PAPER_SYSTEM_COST
                     ) -> "HeadlineReport":
        """Assemble the section-5 accounting from a run's
        :class:`repro.obs.metrics.MetricsRegistry`.

        Reads the counters the instrumented stack maintains
        (``sim.n_particles``, ``sim.steps_total``,
        ``sim.interactions_total`` with ``tree.interactions_total`` as
        fallback, ``sim.step_seconds`` for the wall clock).  When the
        original-algorithm count was not re-measured,
        :data:`PAPER_OVERHEAD_RATIO` corrects the modified count, as
        the paper does at its operating point.
        """
        n = int(registry.value("sim.n_particles"))
        steps = int(registry.value("sim.steps_total"))
        modified = float(registry.value("sim.interactions_total")
                         or registry.value("tree.interactions_total"))
        if wall_seconds is None:
            wall_seconds = float(registry.value("sim.step_seconds"))
        if original_interactions is None:
            original_interactions = modified / PAPER_OVERHEAD_RATIO
        return cls(n_particles=n, n_steps=steps,
                   modified_interactions=modified,
                   original_interactions=float(original_interactions),
                   wall_seconds=float(wall_seconds), cost=cost)

    # ------------------------------------------------------------------
    @property
    def counter(self) -> OperationCounter:
        """The run's interaction tallies as an OperationCounter."""
        return OperationCounter(self.modified_interactions,
                                self.original_interactions)

    @property
    def mean_list_length(self) -> float:
        """Average interaction-list length per particle per step."""
        return (self.modified_interactions
                / (self.n_particles * self.n_steps))

    @property
    def raw_gflops(self) -> float:
        """Sustained Gflops over all interactions actually executed."""
        return self.counter.raw_gflops(self.wall_seconds) / 1e0

    @property
    def effective_gflops(self) -> float:
        """Sustained Gflops over the useful (original) interactions."""
        return self.counter.effective_gflops(self.wall_seconds)

    @property
    def price_per_mflops(self) -> float:
        """Dollars per effective Mflops -- the Gordon Bell metric."""
        return self.cost.price_per_mflops(self.effective_gflops * 1e9)

    # ------------------------------------------------------------------
    def as_row(self, label: str = "measured") -> Dict[str, object]:
        """One table row of the headline numbers (for format_table)."""
        return {
            "run": label,
            "N": self.n_particles,
            "steps": self.n_steps,
            "interactions": f"{self.modified_interactions:.3g}",
            "list_len": round(self.mean_list_length, 0),
            "wall_s": round(self.wall_seconds, 0),
            "hours": round(self.wall_seconds / 3600.0, 2),
            "raw_Gflops": round(self.raw_gflops, 2),
            "orig_interactions": f"{self.original_interactions:.3g}",
            "ratio": round(self.counter.overhead_ratio, 2),
            "eff_Gflops": round(self.effective_gflops, 2),
            "usd": round(self.cost.total_usd, 0),
            "usd_per_Mflops": round(self.price_per_mflops, 2),
        }


#: The paper's own section-5 numbers, assembled through our formulas.
PAPER_HEADLINE = HeadlineReport(
    n_particles=2_159_038,
    n_steps=999,
    modified_interactions=2.90e13,
    original_interactions=4.69e12,
    wall_seconds=30_141.0,
)


def format_table(rows: List[Dict[str, object]], *, sep: str = "  ") -> str:
    """Plain-text aligned table from a list of dict rows.

    Shared by every benchmark target: keys of the first row become the
    header; all values are str()-ed.
    """
    if not rows:
        return "(empty table)"
    keys = list(rows[0].keys())
    cells = [[str(k) for k in keys]]
    for r in rows:
        cells.append([str(r.get(k, "")) for k in keys])
    widths = [max(len(row[i]) for row in cells) for i in range(len(keys))]
    lines = []
    for j, row in enumerate(cells):
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append(sep.join("-" * w for w in widths))
    return "\n".join(lines)
