"""Analytic host + GRAPE performance model (paper section 3).

The modified tree algorithm trades host work for pipeline work through
the group size ``n_g``:

* host cost per step ~ tree build O(N) + traversal O((N/n_g) L(n_g))
  -- the grouping divides the per-sink walk count by n_g;
* GRAPE cost per step ~ (N/n_g) force calls of (n_g sinks x L(n_g)
  sources) each.

``L(n_g)``, the mean interaction-list length, grows with n_g (a bigger
sink needs more opened cells and contains more direct neighbours), so
the total has a minimum -- "there is, therefore, an optimal n_g at
which the total computing time is minimum.  The optimal n_g strongly
depends on the ratio of the speed of the host computer and GRAPE.  For
the present configuration, the optimal n_g is around 2000."

:class:`FittedListLength` captures L(n_g) from live measurements on a
scaled snapshot (the form ``c0 + c1 n_g + c2 n_g^{2/3}`` follows Makino
1991: a direct part growing ~linearly and a cell part growing with the
group's surface), optionally *anchored* so that the paper-scale value
matches the measured headline figure (L(2000) = 13,431 at N = 2.1 M).
:class:`PerformanceModel` combines it with the host and GRAPE machine
models to predict step times, the optimal n_g, and full-run wall
clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..grape.timing import GrapeTimingModel, OPS_PER_INTERACTION
from ..host.machine import ALPHASERVER_DS10, HostMachine

__all__ = ["FittedListLength", "PerformanceModel", "PAPER_N",
           "PAPER_STEPS", "PAPER_LIST_LENGTH", "PAPER_NG"]

#: Paper headline-run constants (section 5).
PAPER_N = 2_159_038
PAPER_STEPS = 999
PAPER_LIST_LENGTH = 13_431.0
PAPER_NG = 2000.0


@dataclass(frozen=True)
class FittedListLength:
    """Mean interaction-list length as a function of group size.

    ``L(n_g) = c0 + c1 * n_g + c2 * n_g^{2/3}``
    """

    c0: float
    c1: float
    c2: float

    def __call__(self, ng) -> np.ndarray:
        ng = np.asarray(ng, dtype=np.float64)
        return self.c0 + self.c1 * ng + self.c2 * ng ** (2.0 / 3.0)

    @classmethod
    def fit(cls, ng: Sequence[float], lengths: Sequence[float]
            ) -> "FittedListLength":
        """Non-negative least squares fit to measured (n_g, L) pairs.

        Physical constraints: every coefficient is non-negative, and
        ``c1 >= 1`` -- each group member always interacts with its own
        group, so the list is at least n_g long.  Duplicate n_g samples
        (grouping saturates once n_crit exceeds the top-level cell
        populations of a small snapshot) are collapsed.
        """
        from scipy.optimize import nnls
        ng = np.asarray(ng, dtype=np.float64)
        lengths = np.asarray(lengths, dtype=np.float64)
        if ng.shape != lengths.shape or ng.ndim != 1 or len(ng) < 3:
            raise ValueError("need >= 3 matching (ng, L) samples")
        ng, keep = np.unique(ng, return_index=True)
        lengths = lengths[keep]
        if len(ng) < 3:
            raise ValueError("need >= 3 distinct n_g samples")
        a = np.stack([np.ones_like(ng), ng, ng ** (2.0 / 3.0)], axis=1)
        # fit the excess over the guaranteed n_g direct part
        coef, _ = nnls(a, np.maximum(lengths - ng, 0.0))
        return cls(c0=float(coef[0]), c1=1.0 + float(coef[1]),
                   c2=float(coef[2]))

    def anchored(self, ng_ref: float, l_ref: float) -> "FittedListLength":
        """Rescale the fit so ``L(ng_ref) = l_ref``.

        Preferred mode: scale only the *cell* part (c0, c2), which
        carries the log N growth -- the direct part (the ``c1 n_g``
        term: a group's own and neighbouring particles) is
        size-intensive and does not grow with N.  When the small-N fit
        has a direct part too steep for that (``c1 * ng_ref`` already
        exceeds the target, as happens for strongly concentrated
        snapshots), fall back to scaling the whole curve while pinning
        the direct slope at its physical floor of 1.
        """
        if l_ref <= 0 or ng_ref <= 0:
            raise ValueError("cannot anchor: degenerate target")
        cell_part = self.c0 + self.c2 * ng_ref ** (2.0 / 3.0)
        target = l_ref - self.c1 * ng_ref
        if cell_part > 0 and target > 0:
            s = target / cell_part
            return replace(self, c0=self.c0 * s, c2=self.c2 * s)
        # fallback: keep the shape above the L >= n_g floor, scale it
        excess = float(self(np.float64(ng_ref))) - ng_ref
        target = l_ref - ng_ref
        if excess <= 0 or target <= 0:
            raise ValueError("cannot anchor: degenerate fit or target")
        s = target / excess
        return FittedListLength(c0=self.c0 * s,
                                c1=1.0 + (self.c1 - 1.0) * s,
                                c2=self.c2 * s)


@dataclass
class PerformanceModel:
    """Predict step and run times of the treecode-on-GRAPE pipeline."""

    host: HostMachine = field(default_factory=lambda: ALPHASERVER_DS10)
    grape: GrapeTimingModel = field(default_factory=GrapeTimingModel)
    list_length: Callable[[float], float] = field(
        default_factory=lambda: FittedListLength(
            # Default: anchored to the paper's headline measurement
            # (L(2000) = 13,431) with a small-N-fit shape; see
            # benchmarks/bench_e3_optimal_ng.py for the live refit.
            c0=250.0, c1=1.20, c2=68.0).anchored(PAPER_NG,
                                                 PAPER_LIST_LENGTH))

    # ------------------------------------------------------------------
    def grape_step_time(self, n: int, ng: float) -> float:
        """Modelled GRAPE seconds per simulation step."""
        n_groups = max(1.0, n / ng)
        l = float(self.list_length(ng))
        return n_groups * self.grape.force_call_time(int(round(ng)),
                                                     int(round(l)))

    def host_step_time(self, n: int, ng: float) -> float:
        """Modelled host seconds per simulation step."""
        n_groups = max(1.0, n / ng)
        l = float(self.list_length(ng))
        return self.host.step_time(n, int(round(n_groups)), l)

    def step_time(self, n: int, ng: float) -> float:
        """Total modelled seconds per step (GRAPE plus host)."""
        return self.grape_step_time(n, ng) + self.host_step_time(n, ng)

    # ------------------------------------------------------------------
    def optimal_ng(self, n: int, *, ng_min: float = 50.0,
                   ng_max: float = 50_000.0, points: int = 400
                   ) -> Tuple[float, float]:
        """(n_g, seconds/step) minimising the modelled step time.

        Golden-section would do, but the curve is cheap: scan a log
        grid and refine around the minimum (robust to the mild
        non-smoothness of the ceil() in the pipeline model).
        """
        grid = np.geomspace(ng_min, ng_max, points)
        times = np.array([self.step_time(n, g) for g in grid])
        k = int(np.argmin(times))
        lo = grid[max(0, k - 1)]
        hi = grid[min(points - 1, k + 1)]
        fine = np.linspace(lo, hi, 200)
        ft = np.array([self.step_time(n, g) for g in fine])
        j = int(np.argmin(ft))
        return float(fine[j]), float(ft[j])

    # ------------------------------------------------------------------
    def run_prediction(self, n: int = PAPER_N, steps: int = PAPER_STEPS,
                       ng: float = PAPER_NG) -> Dict[str, float]:
        """Full-run wall-clock prediction at a given operating point.

        Returns the section-5 style numbers: total seconds, total
        (modified) interactions, raw Gflops.
        """
        l = float(self.list_length(ng))
        per_step = self.step_time(n, ng)
        total_s = steps * per_step
        inter = steps * n * l
        return {
            "N": float(n),
            "steps": float(steps),
            "ng": float(ng),
            "list_length": l,
            "host_s_per_step": self.host_step_time(n, ng),
            "grape_s_per_step": self.grape_step_time(n, ng),
            "total_seconds": total_s,
            "total_hours": total_s / 3600.0,
            "total_interactions": inter,
            "raw_gflops": OPS_PER_INTERACTION * inter / total_s / 1e9,
        }
