"""Operation counting, the paper's way.

Two conventions meet in section 5 of the paper and both are modelled
here:

* **Raw count** -- 38 flop-equivalents per pairwise interaction (the
  Warren--Salmon treecode convention, shared with the SC'97/'98 Gordon
  Bell entries).  The headline run evaluated 2.90e13 interactions in
  30,141 s: 36.4 Gflops raw.
* **Effective (corrected) count** -- the modified algorithm deliberately
  evaluates *more* interactions than the original treecode would (the
  price of sharing lists across a group).  To avoid crediting that
  extra work, the paper re-measures the interaction count the
  *original* per-particle algorithm would need on the same snapshots
  with the same accuracy parameter (4.69e12) and reports the speed
  based on that: 5.92 Gflops effective.

:func:`original_interaction_count` performs the same re-measurement on
our snapshots (per-particle sinks, counting mode -- the lists are never
materialised), and :class:`OperationCounter` packages both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.mac import MAC, BarnesHutMAC
from ..core.multipole import compute_moments
from ..core.octree import build_octree
from ..core.traversal import count_interactions
from ..grape.timing import OPS_PER_INTERACTION

__all__ = ["OPS_PER_INTERACTION", "flops", "gflops",
           "original_interaction_count", "OperationCounter"]


def flops(interactions: float) -> float:
    """Flop-equivalents of an interaction count (38-op convention)."""
    return OPS_PER_INTERACTION * interactions


def gflops(interactions: float, seconds: float) -> float:
    """Sustained Gflops of ``interactions`` done in ``seconds``."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return flops(interactions) / seconds / 1e9


def original_interaction_count(pos: np.ndarray, mass: np.ndarray, *,
                               mac: Optional[MAC] = None,
                               theta: float = 0.75,
                               leaf_size: int = 8,
                               sample: Optional[int] = None,
                               rng: Optional[np.random.Generator] = None
                               ) -> float:
    """Interactions the *original* (per-particle) algorithm would do.

    Counting-only traversal with every particle as its own sink.  With
    ``sample`` set, a random subset of sinks is walked and the total is
    scaled up -- the estimation shortcut the paper's own measurement
    implies (it processed five snapshots out of a thousand).
    """
    tree = build_octree(pos, mass, leaf_size=leaf_size)
    compute_moments(tree)
    if mac is None:
        mac = BarnesHutMAC(theta=theta)
    n = tree.n_particles
    if sample is not None and sample < n:
        if rng is None:
            rng = np.random.default_rng(0)
        pick = rng.choice(n, size=sample, replace=False)
        centers = tree.pos_sorted[pick]
        scale = n / sample
    else:
        centers = tree.pos_sorted
        scale = 1.0
    radii = np.zeros(centers.shape[0], dtype=np.float64)
    cells, parts = count_interactions(tree, centers, radii, mac)
    return float((cells.sum() + parts.sum()) * scale)


@dataclass(frozen=True)
class OperationCounter:
    """Raw vs corrected operation accounting for one run.

    Parameters mirror the paper's section 5: ``modified_interactions``
    is what the machine actually evaluated; ``original_interactions``
    what the original algorithm would have needed.
    """

    modified_interactions: float
    original_interactions: float

    def __post_init__(self):
        if self.modified_interactions < 0 or self.original_interactions < 0:
            raise ValueError("interaction counts must be non-negative")

    @property
    def overhead_ratio(self) -> float:
        """Modified / original count -- the work inflation the grouped
        algorithm accepts to offload the host (6.2x in the paper)."""
        if self.original_interactions == 0:
            return np.inf
        return self.modified_interactions / self.original_interactions

    def raw_gflops(self, seconds: float) -> float:
        """Gflops counting every interaction the hardware executed."""
        return gflops(self.modified_interactions, seconds)

    def effective_gflops(self, seconds: float) -> float:
        """Gflops counting only the original (useful) interactions --
        the paper's headline convention."""
        return gflops(self.original_interactions, seconds)
