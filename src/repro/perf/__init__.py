"""Performance accounting: the machinery of the paper's section 5.

Operation counting under the 38-op convention, the original-algorithm
correction, the analytic host+GRAPE step-time model with its optimal
group size, and the headline price/performance report.
"""

from .measure import (GroupSweepPoint, fit_list_length, force_error,
                      group_size_sweep)
from .model import (FittedListLength, PAPER_LIST_LENGTH, PAPER_N, PAPER_NG,
                    PAPER_STEPS, PerformanceModel)
from .opcount import (OPS_PER_INTERACTION, OperationCounter, flops, gflops,
                      original_interaction_count)
from .report import HeadlineReport, PAPER_HEADLINE, format_table

__all__ = [
    "GroupSweepPoint", "fit_list_length", "force_error",
    "group_size_sweep", "FittedListLength", "PAPER_LIST_LENGTH", "PAPER_N", "PAPER_NG",
    "PAPER_STEPS", "PerformanceModel", "OPS_PER_INTERACTION",
    "OperationCounter", "flops", "gflops", "original_interaction_count",
    "HeadlineReport", "PAPER_HEADLINE", "format_table",
]
