"""System cost accounting (paper section 4).

The Gordon Bell **price/performance** category divides the total system
cost by the *effective* sustained speed.  The paper's ledger:

=========================  ==============
item                       price
=========================  ==============
GRAPE-5 board (x2)         1.65 M JPY each
host (AlphaServer DS10,
512 MB, C++ compiler)      1.4 M JPY
total                      4.7 M JPY
exchange rate              115 JPY/USD
total (USD)                ~$40,900
=========================  ==============

$40,900 / 5.92 Gflops = **$6.9/Mflops**, reported as $7.0/Mflops.
Experiment E4 regenerates this table; E5 combines it with the measured
effective speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["CostItem", "SystemCost", "PAPER_SYSTEM_COST"]


@dataclass(frozen=True)
class CostItem:
    """One line of the price ledger."""

    name: str
    unit_price_jpy: float
    quantity: int = 1

    @property
    def total_jpy(self) -> float:
        return self.unit_price_jpy * self.quantity


@dataclass(frozen=True)
class SystemCost:
    """A priced system configuration.

    Parameters
    ----------
    items:
        Ledger lines.
    jpy_per_usd:
        Exchange rate (the paper uses 115 JPY/USD, "the present
        exchange rate" of 1999).
    """

    items: Tuple[CostItem, ...]
    jpy_per_usd: float = 115.0

    def __post_init__(self):
        if self.jpy_per_usd <= 0:
            raise ValueError("exchange rate must be positive")

    @property
    def total_jpy(self) -> float:
        return sum(i.total_jpy for i in self.items)

    @property
    def total_usd(self) -> float:
        return self.total_jpy / self.jpy_per_usd

    def price_per_mflops(self, effective_flops: float) -> float:
        """Dollars per sustained Mflops -- the headline metric."""
        if effective_flops <= 0:
            raise ValueError("effective speed must be positive")
        return self.total_usd / (effective_flops / 1.0e6)

    def ledger(self) -> List[Dict[str, object]]:
        """Rows for the E4 cost table."""
        rows: List[Dict[str, object]] = []
        for i in self.items:
            rows.append({
                "item": i.name,
                "quantity": i.quantity,
                "unit_MJPY": i.unit_price_jpy / 1e6,
                "total_MJPY": i.total_jpy / 1e6,
            })
        rows.append({
            "item": "TOTAL",
            "quantity": "",
            "unit_MJPY": "",
            "total_MJPY": self.total_jpy / 1e6,
        })
        return rows


#: The paper's priced configuration (section 4).
PAPER_SYSTEM_COST = SystemCost(items=(
    CostItem("GRAPE-5 processor board", 1.65e6, 2),
    CostItem("COMPAQ AlphaServer DS10 (512 MB, C++ compiler)", 1.4e6, 1),
))
