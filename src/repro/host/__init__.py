"""Host-computer model and system cost accounting.

The paper's host -- a COMPAQ AlphaServer DS10 -- performs tree
construction, traversal and integration while GRAPE-5 computes forces;
:class:`~repro.host.machine.HostMachine` models its per-operation costs
and :class:`~repro.host.cost.SystemCost` reproduces the section-4 price
ledger ($40,900 total, the denominator of $7.0/Mflops).
"""

from .cost import CostItem, PAPER_SYSTEM_COST, SystemCost
from .machine import ALPHASERVER_DS10, HostMachine

__all__ = ["CostItem", "PAPER_SYSTEM_COST", "SystemCost",
           "ALPHASERVER_DS10", "HostMachine"]
