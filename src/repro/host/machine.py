"""Host computer model (COMPAQ AlphaServer DS10).

Everything GRAPE-5 does not do runs on the host: tree construction,
grouping, tree traversal (interaction-list construction), time
integration, and the software side of the force calls.  The *balance*
between host and GRAPE time is the whole story of the paper's section 3
-- the optimal group size ``n_g`` sits where the shrinking host cost
meets the growing pipeline cost.

:class:`HostMachine` captures the host as a small set of per-operation
wall-clock costs.  The defaults are calibrated so that the paper's
headline run (N = 2,159,038, n_g ~ 2000, average list 13,431, 999
steps) lands at the reported ~30,141 s total together with the GRAPE
timing model -- see EXPERIMENTS.md for the calibration arithmetic.  The
absolute values are an Alpha-21264/466 MHz-era few-microseconds-per-
particle figure; experiment E3 shows the optimum's *location* depends
only on the ratio of these costs to the GRAPE constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostMachine", "ALPHASERVER_DS10"]


@dataclass(frozen=True)
class HostMachine:
    """Per-operation wall-clock costs of the host.

    Attributes
    ----------
    name, cpu, clock_hz, memory_bytes:
        Descriptive identity (reported in E1/E4 tables).
    t_tree_build:
        Seconds per particle to build the octree and its moments.
    t_walk_term:
        Seconds per interaction-list term produced during traversal
        (the dominant host cost of the *original* algorithm; the
        modified algorithm divides the per-particle count by ~n_g).
    t_integrate:
        Seconds per particle per step for the leapfrog update and
        bookkeeping.
    t_force_host_word:
        Seconds of host software time per transferred i/j/f word during
        a GRAPE call (list marshalling, partial-force reduction).
    """

    name: str = "COMPAQ AlphaServer DS10"
    cpu: str = "Alpha 21264"
    clock_hz: float = 466.0e6
    memory_bytes: int = 512 * 1024 * 1024
    t_tree_build: float = 3.0e-6
    t_walk_term: float = 5.0e-7
    t_integrate: float = 5.0e-7
    t_force_host_word: float = 2.0e-8

    def tree_build_time(self, n: int) -> float:
        """Host seconds to build the tree over ``n`` particles."""
        return self.t_tree_build * n

    def traverse_time(self, total_terms: int) -> float:
        """Host seconds to construct lists totalling ``total_terms``."""
        return self.t_walk_term * total_terms

    def integrate_time(self, n: int) -> float:
        """Host seconds for one integration step of ``n`` particles."""
        return self.t_integrate * n

    def marshal_time(self, n_i: int, n_j: int) -> float:
        """Host software overhead of one GRAPE force call."""
        # 4 words per j (x, y, z, m), 3 per i, 4 per result (a, p)
        return self.t_force_host_word * (4 * n_j + 7 * n_i)

    def step_time(self, n: int, n_groups: int, mean_list: float) -> float:
        """Total host seconds of one simulation step.

        ``mean_list`` is the average interaction-list length; traversal
        and marshalling both scale with ``n_groups * mean_list``.
        """
        terms = n_groups * mean_list
        marshal = self.t_force_host_word * (4 * terms + 7 * n)
        return (self.tree_build_time(n) + self.traverse_time(terms)
                + self.integrate_time(n) + marshal)


#: The paper's host, with calibrated cost constants.
ALPHASERVER_DS10 = HostMachine()
