"""The paper's primary algorithmic contribution substrate: a Barnes--Hut
treecode with Barnes' (1990) modified (grouped) traversal, structured so
the force kernel can be offloaded to the GRAPE-5 emulator.

Public API
----------
:class:`~repro.core.treecode.TreeCode`
    One-call force evaluation (tree build + traversal + kernel).
:class:`~repro.core.direct.DirectSummation`
    O(N^2) exact baseline with the same interface.
:class:`~repro.core.mac.BarnesHutMAC`, :class:`~repro.core.mac.AbsoluteErrorMAC`
    Acceptance criteria.
:class:`~repro.core.kernels.Float64Backend`
    Host-precision force kernel backend.

Lower-level pieces (octree, grouping, traversal) are importable from
their submodules for tests, ablations and custom drivers.
"""

from .direct import DirectSummation, direct_accelerations
from .groups import GroupSet, make_groups
from .kernels import Float64Backend, ForceBackend, pairwise_accpot
from .mac import AbsoluteErrorMAC, BarnesHutMAC, MAC
from .multipole import compute_moments
from .octree import Octree, build_octree
from .traversal import (InteractionLists, build_interaction_lists,
                        count_interactions)
from .treecode import TreeCode, TreeStats

__all__ = [
    "TreeCode", "TreeStats", "DirectSummation", "direct_accelerations",
    "GroupSet", "make_groups", "Float64Backend", "ForceBackend",
    "pairwise_accpot", "MAC", "BarnesHutMAC", "AbsoluteErrorMAC",
    "compute_moments", "Octree", "build_octree", "InteractionLists",
    "build_interaction_lists", "count_interactions",
]
