"""Vectorized Morton (Z-order) keys for 3-D particle coordinates.

The linear octree in :mod:`repro.core.octree` is built by sorting particles
along a space-filling Z-order curve.  A Morton key interleaves the bits of
the three integer grid coordinates of a particle so that the key's leading
``3 * L`` bits identify the octree cell containing the particle at level
``L``.  All routines here operate on whole NumPy arrays; there are no
per-particle Python loops (see the hpc-parallel guides: vectorise the hot
path).

The default key depth is :data:`MAX_LEVEL` = 21 bits per dimension, which
packs into 63 bits of a ``uint64`` and supports octrees up to 21 levels
deep -- far deeper than any realistic particle distribution requires.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_LEVEL",
    "spread_bits",
    "compact_bits",
    "encode_grid",
    "decode_grid",
    "morton_keys",
    "keys_to_positions",
    "cell_prefix",
    "octant_at_level",
    "bounding_cube",
]

#: Bits per spatial dimension in a Morton key (3 * 21 = 63 <= 64).
MAX_LEVEL = 21

# Magic constants for the classic bit-spreading trick.  ``spread_bits``
# maps bit i of the input to bit 3*i of the output; the masks below clear
# the garbage produced by each shift-or step.
_SPREAD_MASKS = (
    np.uint64(0x1FFFFF),              # keep low 21 bits
    np.uint64(0x1F00000000FFFF),
    np.uint64(0x1F0000FF0000FF),
    np.uint64(0x100F00F00F00F00F),
    np.uint64(0x10C30C30C30C30C3),
    np.uint64(0x1249249249249249),
)
_SPREAD_SHIFTS = (np.uint64(32), np.uint64(16), np.uint64(8),
                  np.uint64(4), np.uint64(2))


def spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element so bit ``i`` moves to ``3*i``.

    Parameters
    ----------
    v:
        Array of unsigned integers; only the low 21 bits are used.

    Returns
    -------
    numpy.ndarray of uint64 with every input bit separated by two zeros.
    """
    x = np.asarray(v, dtype=np.uint64) & _SPREAD_MASKS[0]
    for shift, mask in zip(_SPREAD_SHIFTS, _SPREAD_MASKS[1:]):
        x = (x | (x << shift)) & mask
    return x


def compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spread_bits`: gather bits ``0, 3, 6, ...``."""
    x = np.asarray(v, dtype=np.uint64) & _SPREAD_MASKS[-1]
    for shift, mask in zip(reversed(_SPREAD_SHIFTS), reversed(_SPREAD_MASKS[:-1])):
        x = (x | (x >> shift)) & mask
    return x


def encode_grid(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave three integer grid coordinates into Morton keys.

    Coordinates must lie in ``[0, 2**MAX_LEVEL)``.  Bit layout (most
    significant first) is ``x y z x y z ...`` so that the top three bits
    select the level-1 octant with x as the highest bit.
    """
    return (
        (spread_bits(ix) << np.uint64(2))
        | (spread_bits(iy) << np.uint64(1))
        | spread_bits(iz)
    )


def decode_grid(keys: np.ndarray):
    """Recover the three integer grid coordinates from Morton keys."""
    k = np.asarray(keys, dtype=np.uint64)
    ix = compact_bits(k >> np.uint64(2))
    iy = compact_bits(k >> np.uint64(1))
    iz = compact_bits(k)
    return ix, iy, iz


def bounding_cube(pos: np.ndarray, pad: float = 1e-4):
    """Smallest axis-aligned cube enclosing ``pos``, slightly padded.

    Returns ``(corner, size)`` where ``corner`` is the lower corner of the
    cube and ``size`` its edge length.  The padding guarantees that every
    particle maps strictly inside ``[0, 1)`` in cube coordinates, so grid
    indices never reach ``2**MAX_LEVEL``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"pos must have shape (N, 3), got {pos.shape}")
    if pos.shape[0] == 0:
        raise ValueError("cannot bound an empty particle set")
    if not np.all(np.isfinite(pos)):
        raise ValueError("positions contain NaN or inf")
    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    size = float((hi - lo).max())
    if size == 0.0:
        size = 1.0  # all particles coincide; any cube works
    size *= 1.0 + pad
    center = 0.5 * (lo + hi)
    corner = center - 0.5 * size
    return corner, size


def morton_keys(pos: np.ndarray, corner: np.ndarray, size: float) -> np.ndarray:
    """Morton keys of particles inside the cube ``(corner, size)``.

    Positions exactly on the upper faces are clamped into the last grid
    cell, so callers may pass a tight bounding cube.
    """
    pos = np.asarray(pos, dtype=np.float64)
    ngrid = np.uint64(1) << np.uint64(MAX_LEVEL)
    scaled = (pos - corner) * (float(ngrid) / size)
    grid = np.clip(scaled.astype(np.int64), 0, int(ngrid) - 1).astype(np.uint64)
    return encode_grid(grid[:, 0], grid[:, 1], grid[:, 2])


def keys_to_positions(keys: np.ndarray, corner: np.ndarray, size: float) -> np.ndarray:
    """Centers of the finest-level grid cells addressed by ``keys``."""
    ix, iy, iz = decode_grid(keys)
    cell = size / float(np.uint64(1) << np.uint64(MAX_LEVEL))
    grid = np.stack([ix, iy, iz], axis=-1).astype(np.float64)
    return np.asarray(corner, dtype=np.float64) + (grid + 0.5) * cell


def cell_prefix(keys: np.ndarray, level: int) -> np.ndarray:
    """Key prefix identifying each particle's octree cell at ``level``.

    Level 0 is the root (prefix 0 for everything); level ``MAX_LEVEL`` is
    the full key.
    """
    if not 0 <= level <= MAX_LEVEL:
        raise ValueError(f"level must be in [0, {MAX_LEVEL}], got {level}")
    shift = np.uint64(3 * (MAX_LEVEL - level))
    return np.asarray(keys, dtype=np.uint64) >> shift


def octant_at_level(keys: np.ndarray, level: int) -> np.ndarray:
    """Octant digit (0..7) selecting the child at depth ``level``.

    ``level`` = 1 returns the child-of-root octant.
    """
    if not 1 <= level <= MAX_LEVEL:
        raise ValueError(f"level must be in [1, {MAX_LEVEL}], got {level}")
    shift = np.uint64(3 * (MAX_LEVEL - level))
    return ((np.asarray(keys, dtype=np.uint64) >> shift) & np.uint64(7)).astype(np.int8)
