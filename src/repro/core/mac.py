"""Multipole acceptance criteria (MACs).

A MAC decides, during tree traversal, whether the monopole of a cell may
stand in for the individual forces of its particles.  All criteria here
are *vectorised over sink/cell pairs*: :meth:`MAC.accept` receives whole
arrays describing the candidate pairs and returns a boolean mask.

Sinks are described by a center and a radius.  In the **original**
Barnes–Hut algorithm the sink is a single particle (radius 0); in
**Barnes' (1990) modified algorithm** -- the variant the paper runs on
GRAPE-5 -- the sink is a whole particle group, and the criterion must
hold for the worst-placed particle in the group, i.e. at distance
``d_min = |com_cell - center_group| - r_group``.

The classic opening-angle criterion with the center-of-mass offset term
(``delta``) is what Barnes' vectorised treecode and Makino's GRAPE
implementation use; the offset term removes the "detonating galaxy"
pathology of the plain ``l/d < theta`` test when a cell's center of mass
sits far from its geometric center.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .octree import Octree

__all__ = ["MAC", "BarnesHutMAC", "AbsoluteErrorMAC"]


class MAC:
    """Interface for acceptance criteria."""

    def accept(self, tree: Octree, cells: np.ndarray,
               sink_center: np.ndarray, sink_radius: np.ndarray) -> np.ndarray:
        """Return a boolean mask: True where the cell's monopole may be used.

        Parameters
        ----------
        tree:
            Octree with multipole moments computed.
        cells:
            ``(P,)`` candidate cell ids.
        sink_center:
            ``(P, 3)`` center of the sink (particle position or group
            bounding-sphere center) for each pair.
        sink_radius:
            ``(P,)`` sink bounding radius (0 for single particles).
        """
        raise NotImplementedError


def _pair_dmin(tree: Octree, cells: np.ndarray, sink_center: np.ndarray,
               sink_radius: np.ndarray, box: Optional[float] = None
               ) -> np.ndarray:
    """Lower bound on the distance from any sink point to the cell com.

    With ``box`` set, distances are minimum-image (periodic traversal:
    each sink interacts with the *nearest* image of every cell; all
    other images enter through the Ewald correction).
    """
    d = tree.com[cells] - sink_center
    if box is not None:
        d = d - box * np.round(d / box)
    dist = np.sqrt(np.einsum("ij,ij->i", d, d))
    return np.maximum(dist - sink_radius, 0.0)


@dataclass(frozen=True)
class BarnesHutMAC(MAC):
    """Opening-angle criterion ``l / theta + delta < d_min``.

    ``l`` is the cell edge length, ``delta`` the distance between the
    cell's geometric center and its center of mass, and ``d_min`` the
    worst-case sink distance defined above.  ``theta`` is the accuracy
    parameter; smaller values open more cells and reduce the force error.
    The paper's cosmological run corresponds to theta in the 0.5-1.0
    range typical for such simulations (the exact value is not quoted;
    the EXPERIMENTS harness reports sensitivity over this range).
    """

    theta: float = 0.75
    #: minimum-image period for periodic-box traversal (None = isolated)
    box: Optional[float] = None

    def __post_init__(self):
        if not 0.0 < self.theta:
            raise ValueError(f"theta must be positive, got {self.theta}")

    def accept(self, tree, cells, sink_center, sink_radius):
        dmin = _pair_dmin(tree, cells, sink_center, sink_radius,
                          self.box)
        edge = 2.0 * tree.half[cells]
        delta = tree.com[cells] - tree.center[cells]
        delta = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        return (edge / self.theta + delta) < dmin


@dataclass(frozen=True)
class AbsoluteErrorMAC(MAC):
    """Accept when the estimated monopole force error is below ``eps_abs``.

    Extension (Kawai & Makino 1999, the paper's ref. [17]): instead of a
    geometric opening angle, bound the *absolute* acceleration error of
    the monopole approximation by its leading tidal term,

        dF  <~  3 * M_cell * rmax^2 / d_min^4 ,

    and accept when that bound is below the tolerance.  Compared with the
    opening-angle MAC this concentrates work where it buys accuracy and
    produces a flatter error distribution; it is benchmarked as an
    ablation (not used on the paper's headline run).
    """

    eps_abs: float

    def __post_init__(self):
        if self.eps_abs <= 0.0:
            raise ValueError(f"eps_abs must be positive, got {self.eps_abs}")

    def accept(self, tree, cells, sink_center, sink_radius):
        dmin = _pair_dmin(tree, cells, sink_center, sink_radius)
        rmax = tree.rmax[cells]
        mass = tree.mass[cells]
        # guard d=0 (sink inside cell): never accept
        safe = np.where(dmin > 0.0, dmin, 1.0)
        err = 3.0 * mass * rmax**2 / safe**4
        return (dmin > 0.0) & (dmin > rmax) & (err < self.eps_abs)
