"""Linear octree construction from Morton-sorted particles.

The tree is stored as a structure of arrays (one attribute per property,
indexed by cell id) rather than as linked node objects: this is the layout
the vectorised traversal in :mod:`repro.core.traversal` needs, and it is
the Python analogue of the compact tree the paper's host code (Makino's
C++ treecode) builds on the AlphaServer.

Construction is level-synchronous: particles are sorted once by Morton
key, after which every octree cell is a contiguous slice of the sorted
particle arrays.  Each level is refined with a handful of whole-array
NumPy operations; the only Python loop is over tree levels (at most
:data:`repro.core.morton.MAX_LEVEL` = 21 iterations).

Cell ids are assigned in construction order, which is top-down by level:
``parent[c] < c`` for every non-root cell.  A bottom-up pass (e.g. the
multipole computation) is therefore a reverse iteration over cell ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..obs.trace import as_tracer
from . import morton

__all__ = ["Octree", "build_octree", "ragged_arange"]


def ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each ``(s, c)`` pair.

    This is the standard vectorised "ragged range" trick: it gathers the
    particle indices of many contiguous cell slices in one shot without a
    Python loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # offsets[i] = position in the output where segment i begins
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    # At each segment boundary jump from the end of the previous segment
    # to the start of the next one; elsewhere step by +1.
    nonempty = counts > 0
    first = np.flatnonzero(nonempty)
    if len(first) > 1:
        seg_starts = offsets[first[1:]]
        prev_end = starts[first[:-1]] + counts[first[:-1]] - 1
        out[seg_starts] = starts[first[1:]] - prev_end
    out[0] = starts[first[0]]
    return np.cumsum(out)


@dataclass
class Octree:
    """A linear octree over a fixed particle set.

    Particle attributes (``pos_sorted``, ``mass_sorted``) are stored in
    Morton order; ``order`` maps sorted index -> original particle index.
    Every cell covers the contiguous slice
    ``pos_sorted[start[c] : start[c] + count[c]]``.

    Multipole arrays (``mass``, ``com``, ``rmax``, optionally ``quad``)
    are filled by :func:`repro.core.multipole.compute_moments`.
    """

    # geometry of the root cube
    corner: np.ndarray
    size: float

    # particles, Morton sorted
    order: np.ndarray          # (N,)  original index of sorted particle
    keys: np.ndarray           # (N,)  sorted Morton keys
    pos_sorted: np.ndarray     # (N,3)
    mass_sorted: np.ndarray    # (N,)

    # per-cell arrays (index = cell id; root = 0)
    level: np.ndarray          # (C,) int8
    prefix: np.ndarray         # (C,) uint64, key prefix at `level`
    start: np.ndarray          # (C,) int64 slice start into sorted arrays
    count: np.ndarray          # (C,) int64 number of particles in cell
    parent: np.ndarray         # (C,) int32, -1 for root
    child: np.ndarray          # (C,8) int32, -1 where absent
    is_leaf: np.ndarray        # (C,) bool
    center: np.ndarray         # (C,3) geometric center of the cell cube
    half: np.ndarray           # (C,) half edge length

    leaf_size: int

    # multipole moments (filled by repro.core.multipole)
    mass: Optional[np.ndarray] = field(default=None)   # (C,)
    com: Optional[np.ndarray] = field(default=None)    # (C,3)
    rmax: Optional[np.ndarray] = field(default=None)   # (C,) com->corner bound
    quad: Optional[np.ndarray] = field(default=None)   # (C,6) packed symmetric

    @property
    def n_particles(self) -> int:
        return int(self.order.shape[0])

    @property
    def n_cells(self) -> int:
        return int(self.level.shape[0])

    @property
    def depth(self) -> int:
        """Deepest level present in the tree (root = 0)."""
        return int(self.level.max())

    def cell_particles(self, c: int) -> np.ndarray:
        """Original indices of the particles inside cell ``c``."""
        s, n = int(self.start[c]), int(self.count[c])
        return self.order[s:s + n]

    def leaves(self) -> np.ndarray:
        """Ids of all leaf cells."""
        return np.flatnonzero(self.is_leaf)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on failure.

        Used by the test-suite; cheap enough to call on any tree built in
        tests (all checks are vectorised).
        """
        C = self.n_cells
        assert self.parent[0] == -1 and self.level[0] == 0
        assert self.start[0] == 0 and self.count[0] == self.n_particles
        nonroot = np.arange(1, C)
        if C > 1:
            p = self.parent[nonroot]
            assert np.all(p >= 0) and np.all(p < nonroot), "parents precede children"
            assert np.all(self.level[nonroot] == self.level[p] + 1)
            # each child slice inside parent slice
            assert np.all(self.start[nonroot] >= self.start[p])
            assert np.all(self.start[nonroot] + self.count[nonroot]
                          <= self.start[p] + self.count[p])
        # children of a split cell partition it exactly
        internal = np.flatnonzero(~self.is_leaf)
        for c in internal:  # test-only helper; fine as a loop
            kids = self.child[c][self.child[c] >= 0]
            assert len(kids) >= 1
            assert self.count[kids].sum() == self.count[c]
            ks = np.sort(self.start[kids])
            assert ks[0] == self.start[c]
            widths = self.count[kids][np.argsort(self.start[kids])]
            assert np.all(ks[1:] == ks[:-1] + widths[:-1])
        # particles geometrically inside their cells (within grid rounding)
        tol = 1e-9 * self.size
        for c in np.flatnonzero(self.is_leaf):
            s, n = int(self.start[c]), int(self.count[c])
            d = np.abs(self.pos_sorted[s:s + n] - self.center[c])
            assert np.all(d <= self.half[c] + tol)


def _cell_geometry(prefix: np.ndarray, level: int, corner: np.ndarray,
                   size: float):
    """Geometric center and half-size of cells from their key prefix."""
    rem = morton.MAX_LEVEL - level
    full = np.asarray(prefix, dtype=np.uint64) << np.uint64(3 * rem)
    ix, iy, iz = morton.decode_grid(full)
    # decode gives finest-grid coordinates of the lower corner
    i = np.stack([ix, iy, iz], axis=-1).astype(np.float64) / float(1 << rem)
    cell = size / float(1 << level)
    center = np.asarray(corner, dtype=np.float64) + (i + 0.5) * cell
    return center, 0.5 * cell


def build_octree(pos: np.ndarray, mass: np.ndarray, *,
                 leaf_size: int = 8,
                 corner: Optional[np.ndarray] = None,
                 size: Optional[float] = None,
                 tracer: Optional[object] = None) -> Octree:
    """Build a linear octree over ``pos`` with at most ``leaf_size``
    particles per leaf (except for cells of coincident particles that
    cannot be separated at the finest grid level).

    Parameters
    ----------
    pos:
        ``(N, 3)`` particle positions.
    mass:
        ``(N,)`` particle masses.
    leaf_size:
        Split cells holding more particles than this.
    corner, size:
        Optional root cube; computed from the particle bounds when omitted.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; construction then
        opens ``morton_sort`` and ``tree_refine`` sub-spans.
    """
    tr = as_tracer(tracer)
    pos = np.ascontiguousarray(pos, dtype=np.float64)
    mass = np.ascontiguousarray(mass, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"pos must have shape (N, 3), got {pos.shape}")
    if mass.shape != (pos.shape[0],):
        raise ValueError("mass must have shape (N,) matching pos")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    n = pos.shape[0]
    if n == 0:
        raise ValueError("cannot build a tree over zero particles")

    if corner is None or size is None:
        corner, size = morton.bounding_cube(pos)
    corner = np.asarray(corner, dtype=np.float64)
    size = float(size)

    with tr.span("morton_sort", n_particles=n):
        keys = morton.morton_keys(pos, corner, size)
        order = np.argsort(keys, kind="stable").astype(np.int64)
        keys = keys[order]
        pos_s = pos[order]
        mass_s = mass[order]

    refine_span = tr.span("tree_refine")
    refine_span.__enter__()

    # growable per-cell lists; chunks are concatenated at the end
    levels = [np.zeros(1, dtype=np.int8)]
    prefixes = [np.zeros(1, dtype=np.uint64)]
    starts = [np.zeros(1, dtype=np.int64)]
    counts = [np.full(1, n, dtype=np.int64)]
    parents = [np.full(1, -1, dtype=np.int32)]

    n_cells = 1
    active_ids = np.zeros(1, dtype=np.int64)
    active_start = np.zeros(1, dtype=np.int64)
    active_count = np.full(1, n, dtype=np.int64)

    child_links = []  # (parent_id, octant, child_id) triplets per level

    for level in range(1, morton.MAX_LEVEL + 1):
        split = active_count > leaf_size
        if not np.any(split):
            break
        sid = active_ids[split]
        sstart = active_start[split]
        scount = active_count[split]

        idx = ragged_arange(sstart, scount)
        pref = morton.cell_prefix(keys[idx], level)
        seg = np.repeat(np.arange(len(sid)), scount)

        boundary = np.empty(len(idx), dtype=bool)
        boundary[0] = True
        boundary[1:] = (pref[1:] != pref[:-1]) | (seg[1:] != seg[:-1])
        bpos = np.flatnonzero(boundary)

        c_start = idx[bpos]
        c_count = np.diff(np.append(bpos, len(idx)))
        c_prefix = pref[bpos]
        c_parent = sid[seg[bpos]].astype(np.int32)
        c_octant = (c_prefix & np.uint64(7)).astype(np.int64)

        # Degenerate guard: a cell whose particles all share one key would
        # produce a single identical child forever.  Keep such single-child
        # chains (they terminate at MAX_LEVEL), but cells that have already
        # reached a unique key need no further refinement: drop children
        # identical to their parents in both slice and count when the key
        # range is a single value *and* we are at the last level.
        k = len(c_start)
        c_ids = np.arange(n_cells, n_cells + k, dtype=np.int64)
        n_cells += k

        levels.append(np.full(k, level, dtype=np.int8))
        prefixes.append(c_prefix)
        starts.append(c_start)
        counts.append(c_count)
        parents.append(c_parent)
        child_links.append((c_parent, c_octant, c_ids))

        active_ids = c_ids
        active_start = c_start
        active_count = c_count

    level_arr = np.concatenate(levels)
    prefix_arr = np.concatenate(prefixes)
    start_arr = np.concatenate(starts)
    count_arr = np.concatenate(counts)
    parent_arr = np.concatenate(parents)

    child_arr = np.full((n_cells, 8), -1, dtype=np.int32)
    for c_parent, c_octant, c_ids in child_links:
        child_arr[c_parent, c_octant] = c_ids
    is_leaf = np.all(child_arr < 0, axis=1)

    # geometry, computed level by level (levels share their half-size)
    center_arr = np.empty((n_cells, 3), dtype=np.float64)
    half_arr = np.empty(n_cells, dtype=np.float64)
    for lv in range(int(level_arr.max()) + 1):
        at = np.flatnonzero(level_arr == lv)
        if len(at) == 0:
            continue
        ctr, hlf = _cell_geometry(prefix_arr[at], lv, corner, size)
        center_arr[at] = ctr
        half_arr[at] = hlf

    refine_span.set(n_cells=n_cells,
                    depth=int(level_arr.max())).__exit__(None, None, None)
    return Octree(
        corner=corner, size=size,
        order=order, keys=keys, pos_sorted=pos_s, mass_sorted=mass_s,
        level=level_arr, prefix=prefix_arr, start=start_arr,
        count=count_arr, parent=parent_arr, child=child_arr,
        is_leaf=is_leaf, center=center_arr, half=half_arr,
        leaf_size=leaf_size,
    )
