"""Multipole moments of octree cells.

The treecode the paper runs (Barnes–Hut with Barnes' 1990 modification,
as implemented for GRAPE in Makino 1991) uses **monopole-only** cell
approximations: the force from a well-separated cell is the force from a
point mass at the cell's center of mass.  This matches the GRAPE-5
hardware, whose pipelines evaluate exactly the softened point-mass
kernel -- a cell expansion beyond the monopole could not be offloaded.

Quadrupole moments are provided as an optional extension (they are used
by the pure-host reference path and by accuracy ablations, not by the
GRAPE pipeline).

Because every cell is a contiguous slice of the Morton-sorted particle
arrays, all moments are computed with prefix sums: for any per-particle
quantity ``w``, the cell sum is ``W[start+count] - W[start]`` where ``W``
is the exclusive cumulative sum.  This is O(N + C) with no Python loop.
"""

from __future__ import annotations

import numpy as np

from .octree import Octree

__all__ = ["compute_moments", "cell_sums"]

#: Packing order of the symmetric 3x3 quadrupole tensor.
QUAD_INDEX = ((0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2))


def cell_sums(tree: Octree, values: np.ndarray) -> np.ndarray:
    """Sum an arbitrary per-particle quantity over every cell.

    ``values`` has shape ``(N,)`` or ``(N, k)`` *in Morton-sorted order*;
    the result has shape ``(C,)`` or ``(C, k)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != tree.n_particles:
        raise ValueError("values must have one row per particle")
    csum = np.zeros((tree.n_particles + 1,) + values.shape[1:], dtype=np.float64)
    np.cumsum(values, axis=0, out=csum[1:])
    s = tree.start
    e = tree.start + tree.count
    return csum[e] - csum[s]


def compute_moments(tree: Octree, *, quadrupole: bool = False) -> Octree:
    """Fill ``tree.mass``, ``tree.com``, ``tree.rmax`` (and optionally
    ``tree.quad``) in place and return the tree.

    ``rmax`` is an upper bound on the distance from the center of mass to
    any particle in the cell (the distance to the farthest cube corner);
    the traversal uses it for the group acceptance criterion.

    Quadrupole moments are packed per :data:`QUAD_INDEX` as the traceless
    tensor ``Q_ij = sum m (3 dx_i dx_j - |dx|^2 delta_ij)`` about the cell
    center of mass.
    """
    m = tree.mass_sorted
    x = tree.pos_sorted

    cmass = cell_sums(tree, m)
    if np.any(cmass <= 0.0):
        # Zero-mass cells would make the center of mass undefined; fall
        # back to the geometric center for those (they exert no force).
        safe = np.where(cmass > 0.0, cmass, 1.0)
    else:
        safe = cmass
    mom1 = cell_sums(tree, m[:, None] * x)
    com = mom1 / safe[:, None]
    com = np.where((cmass > 0.0)[:, None], com, tree.center)

    # farthest cube corner from the center of mass
    d = np.abs(com - tree.center) + tree.half[:, None]
    rmax = np.sqrt(np.sum(d * d, axis=1))

    tree.mass = cmass
    tree.com = com
    tree.rmax = rmax

    if quadrupole:
        # Raw second moments about the origin, shifted to the com:
        #   S_ij = sum m x_i x_j ;  about com: S_ij - M c_i c_j
        prods = np.empty((tree.n_particles, 6), dtype=np.float64)
        for a, (i, j) in enumerate(QUAD_INDEX):
            prods[:, a] = m * x[:, i] * x[:, j]
        raw = cell_sums(tree, prods)
        shifted = np.empty_like(raw)
        for a, (i, j) in enumerate(QUAD_INDEX):
            shifted[:, a] = raw[:, a] - cmass * com[:, i] * com[:, j]
        tr = shifted[:, 0] + shifted[:, 1] + shifted[:, 2]
        quad = np.empty_like(shifted)
        for a, (i, j) in enumerate(QUAD_INDEX):
            quad[:, a] = 3.0 * shifted[:, a] - (tr if i == j else 0.0)
        tree.quad = quad

    return tree
