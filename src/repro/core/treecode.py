"""High-level treecode API.

:class:`TreeCode` packages the whole force pipeline the paper's host
code runs each step -- tree construction, multipole computation, Barnes
grouping, interaction-list traversal, and kernel evaluation -- behind a
single ``accelerations(pos, mass, eps)`` call.  The kernel evaluation is
delegated to a :class:`~repro.core.kernels.ForceBackend`, so the same
object drives either the host float64 path or the GRAPE-5 emulator.

Both algorithm variants are exposed:

* ``algorithm="modified"`` (default) -- Barnes' (1990) grouped lists,
  the variant run on GRAPE-5.  Work on the host shrinks by ~n_g while
  the pipelined interaction count grows (longer shared lists); the
  trade is the subject of experiment E3.
* ``algorithm="original"`` -- one list per particle, used by the paper
  only to *correct* the operation count (section 5) and by us for
  accuracy/count ablations (E2, E7).

After every call, :attr:`TreeCode.last_stats` holds the interaction
statistics the paper reports: total interaction count, average list
length, group population, and phase wall-clock times.
"""

from __future__ import annotations

import logging
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs.trace import as_tracer
from .groups import GroupSet, make_groups
from .kernels import (Float64Backend, ForceBackend, KernelSet,
                      resolve_kernels, self_potential_correction)
from .mac import MAC, BarnesHutMAC
from .multipole import compute_moments
from .quadkernel import quadrupole_accpot
from .octree import Octree, build_octree
from .traversal import InteractionLists, build_interaction_lists

__all__ = ["TreeCode", "TreeStats"]

logger = logging.getLogger(__name__)

#: subclasses already warned about the batched-kernels downgrade
_batch_shim_warned: set = set()


@dataclass
class TreeStats:
    """Per-call statistics of one force evaluation.

    ``total_interactions`` counts every (sink particle, source term)
    pair, i.e. for the modified algorithm each group's list length times
    its population -- the quantity whose total over a run the paper
    reports as 2.90e13.  ``interactions_per_particle`` is the paper's
    "average length of the interaction list" (13,431 for the headline
    run).
    """

    algorithm: str
    n_particles: int
    n_cells: int
    depth: int
    n_groups: int
    mean_group_size: float
    cell_terms: int
    part_terms: int
    total_interactions: int
    interactions_per_particle: float
    mean_list_length: float
    max_list_length: int
    times: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for report tables."""
        row = {
            "algorithm": self.algorithm,
            "N": self.n_particles,
            "cells": self.n_cells,
            "depth": self.depth,
            "groups": self.n_groups,
            "n_g": round(self.mean_group_size, 1),
            "interactions": self.total_interactions,
            "list_len": round(self.interactions_per_particle, 1),
        }
        row.update({f"t_{k}": round(v, 4) for k, v in self.times.items()})
        return row


class TreeCode:
    """Barnes--Hut treecode with Barnes' modified (grouped) traversal.

    Parameters
    ----------
    theta:
        Opening-angle accuracy parameter of the default
        :class:`~repro.core.mac.BarnesHutMAC`.
    n_crit:
        Maximum particles per group; sets the paper's ``n_g`` knob.
    leaf_size:
        Maximum particles per tree leaf.
    backend:
        Force backend; host float64 when omitted.
    mac:
        Custom acceptance criterion (overrides ``theta``).
    quadrupole:
        Evaluate cell terms with monopole + traceless quadrupole on
        the host (extension; the GRAPE pipeline is monopole-only, so
        with this enabled only the *direct* particle terms go through
        the backend -- exactly what a hybrid host/GRAPE quadrupole
        scheme would do).
    engine:
        A :class:`repro.exec.ForceEngine` driving the eval sweep.
        ``None`` (the default) keeps the built-in sequential loop --
        bit-identical to the historical behaviour.  A
        :class:`~repro.exec.PipelineEngine` dispatches the per-group
        force requests to worker processes and overlaps traversal of
        later sink shards with evaluation of earlier ones (the paper's
        host/GRAPE overlap).  Ignored (with the sequential loop used
        instead) in quadrupole mode and in subclasses that override
        ``_eval_sink`` -- their host-side per-sink work cannot ship to
        workers.  The engine's lifecycle belongs to the caller; see
        :meth:`close`.
    tracer:
        A :class:`repro.obs.trace.Tracer`; every force evaluation then
        opens ``tree_build`` / ``group`` / ``traverse`` / ``eval``
        spans (with ``grape_force``/``host_kernel`` and ``host_direct``
        attribution children under ``eval``).  ``None`` installs the
        shared no-op tracer -- the instrumented path then costs a few
        dict lookups per *phase*, not per interaction.
    metrics:
        A :class:`repro.obs.metrics.MetricsRegistry`; per-call
        counters (``tree.force_evals``, ``tree.interactions_total``)
        and histograms (``tree.list_length``, ``tree.group_size``) are
        recorded when present.
    kernels:
        Kernel-set name or :class:`~repro.core.kernels.KernelSet`
        (``"python"`` default, ``"numpy"`` for batched CSR evaluation).
        Both sets share the same tree kernels, so the tree and the
        interaction lists are bit-identical; they differ only in how
        lists are evaluated.  Subclasses that override ``_eval_sink``
        without declaring ``_batched_eval_native = True`` are
        transparently downgraded to ``"python"`` with a one-time
        :class:`DeprecationWarning` -- the historical per-sink hook
        cannot see batched sweeps.
    cluster:
        A :class:`~repro.cluster.ClusterSpec` (opened into a fresh
        :class:`~repro.cluster.ClusterContext`) or an already-built
        context: the eval sweep is then decomposed across K emulated
        hosts x B boards, each evaluating its own sinks' rows of the
        shared global lists.  Mutually exclusive with ``backend``,
        ``engine`` and ``quadrupole`` (the cluster owns its GRAPE
        backends and its own parallel structure).  ``hosts=1,
        boards=2`` is bit-identical to the plain GRAPE path.
    """

    #: subclasses that override ``_eval_sink`` but are batch-aware
    #: (route their backend work through ``compute_batched``) set this
    #: to keep ``kernels="numpy"`` instead of the deprecation shim
    _batched_eval_native = False

    def __init__(self, *, theta: float = 0.75, n_crit: int = 2000,
                 leaf_size: int = 8,
                 backend: Optional[ForceBackend] = None,
                 mac: Optional[MAC] = None,
                 quadrupole: bool = False,
                 engine: Optional[object] = None,
                 tracer: Optional[object] = None,
                 metrics: Optional[object] = None,
                 kernels: Optional[object] = None,
                 cluster: Optional[object] = None) -> None:
        if n_crit < 1:
            raise ValueError("n_crit must be >= 1")
        self.theta = float(theta)
        self.n_crit = int(n_crit)
        self.leaf_size = int(leaf_size)
        self.cluster = None
        if cluster is not None:
            from ..cluster import ClusterBackend, ClusterContext, ClusterSpec
            if backend is not None:
                raise ValueError("cluster= and backend= are mutually "
                                 "exclusive; the cluster owns its backends")
            if engine is not None:
                raise ValueError("cluster= and engine= are mutually "
                                 "exclusive; the cluster is its own "
                                 "parallel structure")
            if quadrupole:
                raise ValueError("cluster mode is monopole-only (the "
                                 "GRAPE pipelines are)")
            if type(self)._eval_sink is not TreeCode._eval_sink:
                raise ValueError(
                    f"{type(self).__name__} overrides _eval_sink; the "
                    "cluster path evaluates whole row sets and cannot "
                    "honour a per-sink hook")
            self._owns_cluster = isinstance(cluster, ClusterSpec)
            if self._owns_cluster:
                cluster = ClusterContext(cluster, metrics=metrics)
            if not cluster.hosts:
                cluster.open()
            self.cluster = cluster
            backend = ClusterBackend(cluster)
        self.backend = backend if backend is not None else Float64Backend()
        self.mac = mac if mac is not None else BarnesHutMAC(theta=theta)
        self.quadrupole = bool(quadrupole)
        self.kernels = resolve_kernels(kernels)
        if (self.kernels.batched
                and type(self)._eval_sink is not TreeCode._eval_sink
                and not type(self)._batched_eval_native):
            if type(self) not in _batch_shim_warned:
                _batch_shim_warned.add(type(self))
                warnings.warn(
                    f"{type(self).__name__} overrides _eval_sink without "
                    "declaring _batched_eval_native; falling back to "
                    "kernels='python'.  Route backend work through "
                    "compute_batched and set _batched_eval_native = True "
                    "to use batched kernel sets.",
                    DeprecationWarning, stacklevel=2)
            self.kernels = resolve_kernels("python")
        self.engine = engine
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self.last_stats: Optional[TreeStats] = None
        self.last_tree: Optional[Octree] = None
        self.last_groups: Optional[GroupSet] = None
        self.last_lists: Optional[InteractionLists] = None
        self._kernel_seconds = 0.0
        self._last_domain: Optional[Tuple[float, float]] = None

    def close(self) -> None:
        """Release the configured engine's worker pool, if any, and any
        cluster context this treecode opened itself (one passed in
        already-built belongs to the caller)."""
        if self.engine is not None:
            self.engine.close()
        if (self.cluster is not None
                and getattr(self, "_owns_cluster", False)
                and self.cluster.hosts):
            self.cluster.close()

    # ------------------------------------------------------------------
    def build(self, pos: np.ndarray, mass: np.ndarray) -> Octree:
        """Build the octree and its monopole moments.

        Also re-announces the root cube to the backend (the GRAPE's
        fixed-point coordinate window must track the particle extent).
        """
        tree = self.kernels.build_tree(pos, mass, leaf_size=self.leaf_size,
                                       tracer=self.tracer)
        with self.tracer.span("moments", quadrupole=self.quadrupole):
            compute_moments(tree, quadrupole=self.quadrupole)
        lo = float(np.min(tree.corner))
        hi = float(np.max(tree.corner + tree.size))
        self._last_domain = (lo, hi)
        self.backend.set_domain(lo, hi)
        return tree

    # ------------------------------------------------------------------
    def accelerations(self, pos: np.ndarray, mass: np.ndarray,
                      eps: float = 0.0, *, algorithm: str = "modified",
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Accelerations and potentials on every particle.

        Returns ``(acc, pot)`` in the *original* particle order.
        """
        if algorithm not in ("modified", "original"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        tr = self.tracer
        t0 = time.perf_counter()
        with tr.span("tree_build", n_particles=int(pos.shape[0])):
            tree = self.build(pos, mass)
        t_build = time.perf_counter() - t0

        if algorithm == "modified":
            t0 = time.perf_counter()
            with tr.span("group", n_crit=self.n_crit):
                groups = make_groups(tree, self.n_crit)
            t_group = time.perf_counter() - t0
            sink_center, sink_radius = groups.center, groups.radius
        else:
            t_group = 0.0
            groups = None
            sink_center = tree.pos_sorted
            sink_radius = np.zeros(tree.n_particles, dtype=np.float64)

        if algorithm == "modified":
            sink_weights = groups.count
        else:
            sink_weights = np.ones(tree.n_particles, dtype=np.int64)
        n_sinks = (groups.n_groups if groups is not None
                   else tree.n_particles)
        kernel_phase = ("grape_force" if "grape" in self.backend.name
                        else "host_kernel")

        use_engine = (self.engine is not None and not self.quadrupole
                      and type(self)._eval_sink is TreeCode._eval_sink)
        if use_engine:
            # Engine path: traversal and evaluation are interleaved (the
            # engine builds lists shard-by-shard and evaluates earlier
            # shards meanwhile), so traverse time is accumulated inside
            # and attributed afterwards.
            spec = self._sweep_spec(tree, groups, sink_center, sink_radius,
                                    eps)
            t0 = time.perf_counter()
            with tr.span("eval", algorithm=algorithm,
                         engine=self.engine.name):
                res = self.engine.evaluate(self.backend, spec, tracer=tr,
                                           metrics=self.metrics)
                acc_s, pot_s = res.acc, res.pot
                pot_s += self_potential_correction(tree.mass_sorted, eps)
                t_kernel = res.kernel_seconds
                tr.record(kernel_phase, t_kernel, calls=int(n_sinks),
                          backend=self.backend.name)
            lists = res.lists
            t_traverse = res.traverse_seconds
            t_eval = max(0.0, time.perf_counter() - t0 - t_traverse)
            tr.record("traverse", t_traverse,
                      n_sinks=int(sink_center.shape[0]))
            tr.record("host_direct", max(0.0, t_eval - t_kernel))
        else:
            t0 = time.perf_counter()
            with tr.span("traverse", n_sinks=int(sink_center.shape[0])):
                lists = self.kernels.traverse(tree, sink_center,
                                              sink_radius, self.mac)
            t_traverse = time.perf_counter() - t0

            t0 = time.perf_counter()
            self._kernel_seconds = 0.0
            batched = (self.kernels.batched
                       and type(self)._eval_sink is TreeCode._eval_sink)
            with tr.span("eval", algorithm=algorithm,
                         kernels=self.kernels.name):
                acc_s = np.empty((tree.n_particles, 3), dtype=np.float64)
                pot_s = np.empty(tree.n_particles, dtype=np.float64)
                if algorithm == "modified":
                    sink_start, sink_count = groups.start, groups.count
                else:
                    sink_start = np.arange(tree.n_particles, dtype=np.int64)
                    sink_count = np.ones(tree.n_particles, dtype=np.int64)
                if self.cluster is not None:
                    k0 = time.perf_counter()
                    self.cluster.evaluate(tree, lists, sink_center,
                                          sink_start, sink_count, eps,
                                          acc_s, pot_s, batched=batched)
                    self._kernel_seconds += time.perf_counter() - k0
                elif batched:
                    self._eval_batched(tree, lists, sink_start, sink_count,
                                       eps, acc_s, pot_s)
                elif algorithm == "modified":
                    for g in range(groups.n_groups):
                        s, n = int(groups.start[g]), int(groups.count[g])
                        xi = tree.pos_sorted[s:s + n]
                        a, p = self._eval_sink(tree, lists, g, xi, eps)
                        acc_s[s:s + n] = a
                        pot_s[s:s + n] = p
                else:
                    for i in range(tree.n_particles):
                        a, p = self._eval_sink(tree, lists, i,
                                               tree.pos_sorted[i:i + 1],
                                               eps)
                        acc_s[i] = a[0]
                        pot_s[i] = p[0]
                # remove the Plummer self term picked up from the direct
                # list
                pot_s += self_potential_correction(tree.mass_sorted, eps)
                t_eval = time.perf_counter() - t0
                t_kernel = self._kernel_seconds
                # attribute the eval sweep: backend kernel wall time vs
                # the host-side remainder (list assembly, scatter,
                # bookkeeping)
                tr.record(kernel_phase, t_kernel, calls=int(n_sinks),
                          backend=self.backend.name)
                tr.record("host_direct", max(0.0, t_eval - t_kernel))

        acc = np.empty_like(acc_s)
        pot = np.empty_like(pot_s)
        acc[tree.order] = acc_s
        pot[tree.order] = pot_s

        lengths = lists.list_lengths
        total = int(np.sum(lengths * sink_weights))
        if self.metrics is not None:
            m = self.metrics
            m.counter("tree.force_evals",
                      "force evaluations (tree builds)").inc()
            m.counter("tree.interactions_total",
                      "particle-particle interactions "
                      "(the paper's 2.90e13 analogue)").inc(total)
            m.counter("tree.cell_terms_total",
                      "cell (monopole) terms").inc(int(lists.cell_off[-1]))
            m.counter("tree.part_terms_total",
                      "direct particle terms").inc(int(lists.part_off[-1]))
            m.histogram("tree.list_length",
                        "interaction-list length per sink"
                        ).observe_many(lengths.tolist())
            if groups is not None:
                m.histogram("tree.group_size",
                            "particles per Barnes group (n_g)"
                            ).observe_many(groups.count.tolist())
            m.gauge("tree.depth", "octree depth").set(tree.depth)
            m.gauge("tree.n_cells", "octree cells").set(tree.n_cells)
            for phase, secs in (("build", t_build), ("group", t_group),
                                ("traverse", t_traverse), ("eval", t_eval),
                                ("kernel", t_kernel)):
                m.counter(f"tree.seconds.{phase}",
                          f"host wall seconds in {phase}").inc(secs)
        logger.debug("force eval: N=%d algo=%s interactions=%d "
                     "build=%.4fs traverse=%.4fs eval=%.4fs",
                     tree.n_particles, algorithm, total, t_build,
                     t_traverse, t_eval)
        self.last_tree = tree
        self.last_groups = groups
        self.last_lists = lists
        self.last_stats = TreeStats(
            algorithm=algorithm,
            n_particles=tree.n_particles,
            n_cells=tree.n_cells,
            depth=tree.depth,
            n_groups=(groups.n_groups if groups is not None
                      else tree.n_particles),
            mean_group_size=(groups.mean_size if groups is not None else 1.0),
            cell_terms=int(lists.cell_off[-1]),
            part_terms=int(lists.part_off[-1]),
            total_interactions=total,
            interactions_per_particle=total / tree.n_particles,
            mean_list_length=float(lengths.mean()),
            max_list_length=int(lengths.max()) if len(lengths) else 0,
            times={"build": t_build, "group": t_group,
                   "traverse": t_traverse, "eval": t_eval,
                   "kernel": t_kernel,
                   "host_direct": max(0.0, t_eval - t_kernel)},
        )
        return acc, pot

    # ------------------------------------------------------------------
    def _sweep_spec(self, tree: Octree, groups: Optional[GroupSet],
                    sink_center: np.ndarray, sink_radius: np.ndarray,
                    eps: float):
        """Package this evaluation as a :class:`repro.exec.SweepSpec`.

        The ``build_lists`` closure traverses an arbitrary contiguous
        sink range, letting the engine stream traversal against
        evaluation.
        """
        from ..exec.plan import SweepSpec
        if groups is not None:
            sink_start, sink_count = groups.start, groups.count
        else:
            sink_start = np.arange(tree.n_particles, dtype=np.int64)
            sink_count = np.ones(tree.n_particles, dtype=np.int64)

        def build_lists(a: int, b: int) -> InteractionLists:
            return self.kernels.traverse(tree, sink_center[a:b],
                                         sink_radius[a:b], self.mac)

        return SweepSpec(pos=tree.pos_sorted, pmass=tree.mass_sorted,
                         com=tree.com, cmass=tree.mass,
                         sink_start=sink_start, sink_count=sink_count,
                         eps=float(eps), domain=self._last_domain,
                         build_lists=build_lists,
                         kernels=self.kernels.name)

    # ------------------------------------------------------------------
    def _eval_batched(self, tree: Octree, lists: InteractionLists,
                      sink_start: np.ndarray, sink_count: np.ndarray,
                      eps: float, acc_s: np.ndarray, pot_s: np.ndarray
                      ) -> None:
        """Evaluate every sink's list in one batched backend sweep.

        Monopole mode ships the whole CSR block (cells + direct
        particles) through :meth:`ForceBackend.eval_lists`.  Quadrupole
        mode batches the direct-particle terms the same way and adds
        the host-side monopole+quadrupole cell terms per sink group --
        the same hybrid split as the per-sink path, evaluated on whole
        i-particle batches.
        """
        if not self.quadrupole:
            k0 = time.perf_counter()
            self.backend.eval_lists(tree.pos_sorted, tree.mass_sorted,
                                    tree.com, tree.mass, lists,
                                    sink_start, sink_count, eps,
                                    acc_s, pot_s)
            self._kernel_seconds += time.perf_counter() - k0
            return
        parts_only = InteractionLists(
            n_sinks=lists.n_sinks,
            cell_idx=np.empty(0, dtype=np.int64),
            cell_off=np.zeros(lists.n_sinks + 1, dtype=np.int64),
            part_idx=lists.part_idx, part_off=lists.part_off)
        k0 = time.perf_counter()
        self.backend.eval_lists(tree.pos_sorted, tree.mass_sorted,
                                tree.com, tree.mass, parts_only,
                                sink_start, sink_count, eps, acc_s, pot_s)
        self._kernel_seconds += time.perf_counter() - k0
        for g in range(int(sink_start.shape[0])):
            s, n = int(sink_start[g]), int(sink_count[g])
            cells = lists.cells_of(g)
            a_c, p_c = quadrupole_accpot(tree.pos_sorted[s:s + n],
                                         tree.com[cells],
                                         tree.mass[cells],
                                         tree.quad[cells], eps)
            acc_s[s:s + n] += a_c
            pot_s[s:s + n] += p_c

    # ------------------------------------------------------------------
    def _eval_sink(self, tree: Octree, lists: InteractionLists, sink: int,
                   xi: np.ndarray, eps: float
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate one sink\'s list through the configured path.

        Monopole mode ships cells and particles together to the
        backend (one point-mass list, as on the hardware).  Quadrupole
        mode evaluates cell terms on the host with the
        monopole+quadrupole kernel and only the direct particles on
        the backend.  Both go through the backend's submit/gather
        protocol (one blocking round-trip per sink -- the sequential
        shim).
        """
        if not self.quadrupole:
            xj, mj = self._sources(tree, lists, sink)
            k0 = time.perf_counter()
            self.backend.submit(sink, xi, xj, mj, eps)
            ((_, a, p),) = self.backend.gather()
            self._kernel_seconds += time.perf_counter() - k0
            return a, p
        cells = lists.cells_of(sink)
        parts = lists.parts_of(sink)
        a_c, p_c = quadrupole_accpot(xi, tree.com[cells],
                                     tree.mass[cells], tree.quad[cells],
                                     eps)
        k0 = time.perf_counter()
        self.backend.submit(sink, xi, tree.pos_sorted[parts],
                            tree.mass_sorted[parts], eps)
        ((_, a_p, p_p),) = self.backend.gather()
        self._kernel_seconds += time.perf_counter() - k0
        return a_p + a_c, p_p + p_c

    @staticmethod
    def _sources(tree: Octree, lists: InteractionLists, sink: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble the (positions, masses) source list of one sink.

        Cell monopoles and direct particles are concatenated into one
        point-mass list -- precisely the array the host ships to the
        GRAPE-5 particle data memory (``g5_set_xmj``).
        """
        cells = lists.cells_of(sink)
        parts = lists.parts_of(sink)
        xj = np.concatenate([tree.com[cells], tree.pos_sorted[parts]])
        mj = np.concatenate([tree.mass[cells], tree.mass_sorted[parts]])
        return xj, mj
