"""Vectorised tree traversal: interaction-list construction.

This module implements both tree walks the paper discusses:

* the **original** Barnes–Hut walk, one interaction list per particle
  (used only to *estimate* the corrected operation count, exactly as the
  paper does in section 5), and
* **Barnes' modified walk**, one interaction list per particle *group*
  (the algorithm actually run on GRAPE-5; section 3).

Both are the same traversal with different sinks: a sink is a center and
a bounding radius (zero for single particles).  Instead of recursing per
sink, the walk keeps a *frontier of (sink, cell) pairs* and processes
the whole frontier with array operations each round:

1. evaluate the MAC for every pair at once;
2. accepted pairs emit a cell interaction;
3. rejected pairs at leaf cells emit the leaf's particles as direct
   interactions;
4. rejected pairs at internal cells are replaced by (sink, child) pairs.

Rounds proceed until the frontier is empty; the number of rounds is
bounded by the tree depth, so the Python-level loop count is ~20
regardless of N -- the per-pair work is all NumPy.  The frontier is
chunked to bound peak memory.

The result is returned in CSR (offsets + concatenated indices) form,
which is also how the lists are shipped to the GRAPE: a list of cell
monopoles and a list of direct source particles per sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .mac import MAC
from .octree import Octree, ragged_arange

__all__ = ["InteractionLists", "build_interaction_lists",
           "concatenate_lists", "count_interactions"]

#: Frontier chunk bound: pairs processed per vector round.
DEFAULT_CHUNK = 1 << 21


@dataclass
class InteractionLists:
    """CSR interaction lists for a set of sinks.

    For sink ``i``:

    * approximated cells: ``cell_idx[cell_off[i]:cell_off[i+1]]``
      (octree cell ids whose monopole stands in for their particles);
    * direct sources: ``part_idx[part_off[i]:part_off[i+1]]``
      (indices into the tree's *Morton-sorted* particle arrays).

    The paper's "interaction list length" for a sink is the sum of both
    counts: on GRAPE the cell monopoles and the direct particles are sent
    to the very same pipeline (a monopole is just another point mass).
    """

    n_sinks: int
    cell_idx: np.ndarray
    cell_off: np.ndarray
    part_idx: np.ndarray
    part_off: np.ndarray

    def cells_of(self, i: int) -> np.ndarray:
        return self.cell_idx[self.cell_off[i]:self.cell_off[i + 1]]

    def parts_of(self, i: int) -> np.ndarray:
        return self.part_idx[self.part_off[i]:self.part_off[i + 1]]

    @property
    def cell_counts(self) -> np.ndarray:
        return np.diff(self.cell_off)

    @property
    def part_counts(self) -> np.ndarray:
        return np.diff(self.part_off)

    @property
    def list_lengths(self) -> np.ndarray:
        """Per-sink total list length (cells + direct particles)."""
        return self.cell_counts + self.part_counts

    @property
    def total_terms(self) -> int:
        """Total number of source terms over all sinks."""
        return int(self.cell_off[-1] + self.part_off[-1])


def _csr_from_pairs(i: np.ndarray, v: np.ndarray, n_sinks: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Sort (sink, value) pairs into CSR (offsets, values)."""
    order = np.argsort(i, kind="stable")
    counts = np.bincount(i, minlength=n_sinks)
    off = np.zeros(n_sinks + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    return off, v[order]


def _traverse(tree: Octree, sink_center: np.ndarray, sink_radius: np.ndarray,
              mac: MAC, chunk: int, collect: bool):
    """Shared frontier walk.

    Returns ``(acc_pairs, leaf_pairs)`` when ``collect`` is True, else
    per-sink count arrays ``(cell_counts, part_counts)``.
    """
    if tree.mass is None or tree.com is None or tree.rmax is None:
        raise ValueError("tree has no multipole moments; call compute_moments")
    sink_center = np.asarray(sink_center, dtype=np.float64)
    sink_radius = np.asarray(sink_radius, dtype=np.float64)
    if sink_center.ndim != 2 or sink_center.shape[1] != 3:
        raise ValueError("sink_center must have shape (S, 3)")
    if sink_radius.shape != (sink_center.shape[0],):
        raise ValueError("sink_radius must have shape (S,)")
    n_sinks = sink_center.shape[0]

    acc_i: List[np.ndarray] = []
    acc_c: List[np.ndarray] = []
    leaf_i: List[np.ndarray] = []
    leaf_c: List[np.ndarray] = []
    cell_counts = np.zeros(n_sinks, dtype=np.int64)
    part_counts = np.zeros(n_sinks, dtype=np.int64)

    # worklist of (sink ids, cell ids) frontier chunks
    start_i = np.arange(n_sinks, dtype=np.int64)
    start_c = np.zeros(n_sinks, dtype=np.int64)
    work = [(start_i[k:k + chunk], start_c[k:k + chunk])
            for k in range(0, n_sinks, chunk)]

    while work:
        I, C = work.pop()
        if len(I) == 0:
            continue
        # Root special case rides through the same tests: the root never
        # satisfies the MAC for sinks inside it (d_min = 0).
        ok = mac.accept(tree, C, sink_center[I], sink_radius[I])
        # Massless cells exert no force: accept them silently (emitting
        # them would only pad lists with zero terms).
        zero = tree.mass[C] <= 0.0
        keep = ok & ~zero
        if collect:
            if np.any(keep):
                acc_i.append(I[keep])
                acc_c.append(C[keep])
        else:
            np.add.at(cell_counts, I[keep], 1)

        rest = ~(ok | zero)
        if not np.any(rest):
            continue
        rI, rC = I[rest], C[rest]
        leaf = tree.is_leaf[rC]
        if np.any(leaf):
            if collect:
                leaf_i.append(rI[leaf])
                leaf_c.append(rC[leaf])
            else:
                np.add.at(part_counts, rI[leaf], tree.count[rC[leaf]])
        oI, oC = rI[~leaf], rC[~leaf]
        if len(oI) == 0:
            continue
        kids = tree.child[oC]                    # (k, 8)
        mask = kids >= 0
        new_i = np.repeat(oI, 8)[mask.ravel()]
        new_c = kids.ravel()[mask.ravel()].astype(np.int64)
        for k in range(0, len(new_i), chunk):
            work.append((new_i[k:k + chunk], new_c[k:k + chunk]))

    if collect:
        cat = lambda lst, dt: (np.concatenate(lst) if lst
                               else np.empty(0, dtype=dt))
        return ((cat(acc_i, np.int64), cat(acc_c, np.int64)),
                (cat(leaf_i, np.int64), cat(leaf_c, np.int64)))
    return cell_counts, part_counts


def build_interaction_lists(tree: Octree, sink_center: np.ndarray,
                            sink_radius: np.ndarray, mac: MAC, *,
                            chunk: int = DEFAULT_CHUNK) -> InteractionLists:
    """Build full CSR interaction lists for the given sinks.

    For the modified algorithm pass group centers/radii
    (:class:`repro.core.groups.GroupSet` fields); for the original
    algorithm pass particle positions and zero radii.

    Note: a sink's own particles appear in its direct list (the walk
    opens every cell containing the sink down to its leaves).  This is
    deliberate and matches the hardware: GRAPE-5 computes the force from
    *every* j-particle including i itself, which contributes exactly zero
    under Plummer softening.  Host-side potential evaluation subtracts
    the self term (see :mod:`repro.core.kernels`).
    """
    (ai, ac), (li, lc) = _traverse(tree, sink_center, sink_radius, mac,
                                   chunk, collect=True)
    n_sinks = np.asarray(sink_center).shape[0]
    cell_off, cell_idx = _csr_from_pairs(ai, ac, n_sinks)

    # expand leaf pairs into (sink, sorted-particle) pairs
    pcount = tree.count[lc]
    pi = np.repeat(li, pcount)
    pv = ragged_arange(tree.start[lc], pcount)
    part_off, part_idx = _csr_from_pairs(pi, pv, n_sinks)

    return InteractionLists(n_sinks=n_sinks, cell_idx=cell_idx,
                            cell_off=cell_off, part_idx=part_idx,
                            part_off=part_off)


def concatenate_lists(parts: List[InteractionLists]) -> InteractionLists:
    """Stitch shard-wise lists (consecutive sink ranges) back into one.

    The execution engines traverse sinks in contiguous shards so force
    evaluation of shard *k* can overlap traversal of shard *k+1*; this
    reassembles the per-shard CSR blocks into the single
    :class:`InteractionLists` the statistics layer expects.  Sink order
    is the concatenation order; per-sink contents are untouched.
    """
    if not parts:
        return InteractionLists(n_sinks=0,
                                cell_idx=np.empty(0, dtype=np.int64),
                                cell_off=np.zeros(1, dtype=np.int64),
                                part_idx=np.empty(0, dtype=np.int64),
                                part_off=np.zeros(1, dtype=np.int64))
    if len(parts) == 1:
        return parts[0]

    def _cat_csr(offs: List[np.ndarray], vals: List[np.ndarray]):
        out_off = [offs[0]]
        base = int(offs[0][-1])
        for o in offs[1:]:
            out_off.append(o[1:] + base)
            base += int(o[-1])
        return np.concatenate(out_off), np.concatenate(vals)

    cell_off, cell_idx = _cat_csr([p.cell_off for p in parts],
                                  [p.cell_idx for p in parts])
    part_off, part_idx = _cat_csr([p.part_off for p in parts],
                                  [p.part_idx for p in parts])
    return InteractionLists(n_sinks=sum(p.n_sinks for p in parts),
                            cell_idx=cell_idx, cell_off=cell_off,
                            part_idx=part_idx, part_off=part_off)


def count_interactions(tree: Octree, sink_center: np.ndarray,
                       sink_radius: np.ndarray, mac: MAC, *,
                       chunk: int = DEFAULT_CHUNK
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sink (cell, direct-particle) interaction counts, without
    materialising the lists.

    This is how the paper's section-5 correction is measured cheaply: the
    *original* algorithm's operation count only needs list lengths, not
    the lists themselves.
    """
    return _traverse(tree, sink_center, sink_radius, mac, chunk,
                     collect=False)
