"""Barnes' (1990) particle grouping.

The modified tree algorithm shares one interaction list among all
particles of a *group*.  Groups are tree cells holding at most
``n_crit`` particles, chosen maximal (their parent holds more than
``n_crit``).  The paper tunes the average group population ``n_g`` via
``n_crit``; for the GRAPE-5 / AlphaServer DS10 pairing the optimum is
around ``n_g ~ 2000`` (paper section 3, reproduced by experiment E3).

Because cell populations only shrink going down the tree, the predicate
``count <= n_crit`` is monotone along any root-to-leaf path, so the
groups are exactly the cells where the predicate first becomes true.
That makes the selection a single vectorised mask -- no recursion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .octree import Octree

__all__ = ["GroupSet", "make_groups"]


@dataclass
class GroupSet:
    """The sinks of a modified-tree traversal.

    Groups are stored in ascending ``start`` order, so together they tile
    the Morton-sorted particle range ``[0, N)`` exactly once.

    Attributes
    ----------
    cell:
        ``(G,)`` octree cell id of each group.
    center:
        ``(G, 3)`` bounding-sphere center (the cell's geometric center).
    radius:
        ``(G,)`` bounding-sphere radius, tight over the member particles.
    start, count:
        Slices into the tree's Morton-sorted particle arrays.
    n_crit:
        The threshold the groups were built with.
    """

    cell: np.ndarray
    center: np.ndarray
    radius: np.ndarray
    start: np.ndarray
    count: np.ndarray
    n_crit: int

    @property
    def n_groups(self) -> int:
        return int(self.cell.shape[0])

    @property
    def mean_size(self) -> float:
        """Average particles per group (the paper's ``n_g``)."""
        return float(self.count.mean())

    def members(self, g: int, tree: Octree) -> np.ndarray:
        """Original particle indices of group ``g``."""
        s, n = int(self.start[g]), int(self.count[g])
        return tree.order[s:s + n]


def make_groups(tree: Octree, n_crit: int) -> GroupSet:
    """Partition the tree's particles into Barnes groups.

    Every particle belongs to exactly one group.  A leaf that exceeds
    ``n_crit`` (possible only for particles coincident at the finest grid
    level) becomes a group of its own: it cannot be subdivided further.
    """
    if n_crit < 1:
        raise ValueError(f"n_crit must be >= 1, got {n_crit}")

    small = (tree.count <= n_crit) | tree.is_leaf
    parent = tree.parent
    first = small.copy()
    nonroot = parent >= 0
    first[nonroot] &= ~small[parent[nonroot]]
    # root qualifies iff it is itself small (then it is the only group)
    gcells = np.flatnonzero(first)
    # order groups by their particle slice so they tile [0, N) in order
    gcells = gcells[np.argsort(tree.start[gcells], kind="stable")]

    centers = tree.center[gcells]
    starts = tree.start[gcells]
    counts = tree.count[gcells]

    # Tight bounding radius per group, in one vectorised pass: label every
    # sorted particle with its group id (groups tile the sorted order, so
    # a cumulative count of group starts is the label), then scatter-max.
    marks = np.zeros(tree.n_particles, dtype=np.int64)
    marks[starts] = 1
    gid = np.cumsum(marks) - 1
    d = tree.pos_sorted - centers[gid]
    dist = np.sqrt(np.einsum("ij,ij->i", d, d))
    radius = np.zeros(len(gcells), dtype=np.float64)
    np.maximum.at(radius, gid, dist)

    return GroupSet(cell=gcells.astype(np.int64), center=centers,
                    radius=radius, start=starts, count=counts,
                    n_crit=int(n_crit))
