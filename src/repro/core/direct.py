"""O(N^2) direct summation -- the exact reference the treecode is
measured against.

The paper's accuracy statements (section 2: "average error of the force
in our simulation is around 0.1%, ... dominated by the approximation
made in the tree algorithm") are all relative to direct summation, and
the paper's scaling motivation (section 1) is the O(N^2) cost of this
very computation.  Experiments E2, E7 and E8 use this module.

The sink loop is tiled so memory stays bounded while every tile is a
single broadcast kernel call; any :class:`~repro.core.kernels.ForceBackend`
can supply the kernel, so direct summation can also be run *through the
GRAPE-5 emulator* (which is how the real machine is used for small-N
work, with the whole particle set as every sink's source list).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .kernels import (DEFAULT_TILE, Float64Backend, ForceBackend,
                      self_potential_correction)

__all__ = ["direct_accelerations", "DirectSummation"]


def direct_accelerations(pos: np.ndarray, mass: np.ndarray, eps: float = 0.0,
                         *, backend: Optional[ForceBackend] = None,
                         tile: int = DEFAULT_TILE
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Exact (up to backend arithmetic) accelerations and potentials.

    The self-interaction is excluded: it contributes no acceleration
    under Plummer softening and its potential term is subtracted.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("pos must have shape (N, 3)")
    if mass.shape != (pos.shape[0],):
        raise ValueError("mass must have shape (N,)")
    if backend is None:
        backend = Float64Backend(tile=tile)

    n = pos.shape[0]
    acc = np.empty((n, 3), dtype=np.float64)
    pot = np.empty(n, dtype=np.float64)
    step = max(1, int(tile) // max(n, 1))
    for i0 in range(0, n, step):
        i1 = min(i0 + step, n)
        a, p = backend.compute(pos[i0:i1], pos, mass, eps)
        acc[i0:i1] = a
        pot[i0:i1] = p
    pot += self_potential_correction(mass, eps)
    return acc, pot


class DirectSummation:
    """Class-style wrapper matching :class:`repro.core.treecode.TreeCode`.

    Lets the simulation driver and the benchmark harness switch between
    the tree and the O(N^2) baseline through one interface.
    """

    def __init__(self, *, backend: Optional[ForceBackend] = None,
                 tile: int = DEFAULT_TILE) -> None:
        self.backend = backend if backend is not None else Float64Backend(tile=tile)
        self.tile = tile
        self.last_stats = None

    def accelerations(self, pos: np.ndarray, mass: np.ndarray,
                      eps: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Accelerations and potentials by direct summation."""
        n = np.asarray(pos).shape[0]
        acc, pot = direct_accelerations(pos, mass, eps,
                                        backend=self.backend, tile=self.tile)
        # Interactions include the self pair, as on the real hardware.
        self.last_stats = {"n_particles": n, "interactions": n * n,
                           "algorithm": "direct"}
        return acc, pot
