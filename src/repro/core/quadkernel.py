"""Quadrupole cell-interaction kernel (host-only extension).

The GRAPE-5 pipeline evaluates softened *point-mass* interactions only,
so the paper's treecode is monopole-only -- a cell is its center of
mass.  A host-side treecode can do better: adding the traceless
quadrupole term roughly squares the cell-approximation accuracy at
fixed opening angle (Hernquist 1987), at the price of keeping the cell
term evaluation on the host.

With ``Q_ij = sum_k m_k (3 d_i d_j - |d|^2 delta_ij)`` about the cell
center of mass (the packing of :mod:`repro.core.multipole`), and
``d = x_sink - com``, ``r = |d|`` (Plummer-softened):

    phi  = -M/r - (d^T Q d) / (2 r^5)
    a    = -M d / r^3 + Q d / r^5 - (5/2) (d^T Q d) d / r^7

This module powers the E9 ablation benchmark: monopole vs quadrupole
error at equal theta, i.e. what accuracy the GRAPE offload gives up --
and why it does not matter at the paper's operating point (the
monopole tree error already sits below the required level).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .multipole import QUAD_INDEX

__all__ = ["quadrupole_accpot"]

#: Tile bound on (n_i x n_cell_chunk) temporaries.
_TILE = 1 << 21


def _unpack(quad: np.ndarray) -> np.ndarray:
    """Packed (C, 6) symmetric tensors -> (C, 3, 3)."""
    out = np.empty(quad.shape[:-1] + (3, 3), dtype=np.float64)
    for a, (i, j) in enumerate(QUAD_INDEX):
        out[..., i, j] = quad[..., a]
        out[..., j, i] = quad[..., a]
    return out


def quadrupole_accpot(xi: np.ndarray, com: np.ndarray, mass: np.ndarray,
                      quad: np.ndarray, eps: float = 0.0, *,
                      tile: int = _TILE) -> Tuple[np.ndarray, np.ndarray]:
    """Monopole + quadrupole field of cells at the sink positions.

    Parameters
    ----------
    xi:
        ``(n_i, 3)`` sink positions.
    com, mass, quad:
        ``(C, 3)``, ``(C,)``, ``(C, 6)`` cell moments (packed per
        :data:`repro.core.multipole.QUAD_INDEX`).
    eps:
        Plummer softening applied to the monopole part and to the
        ``1/r^5`` / ``1/r^7`` radial factors (cells accepted by any
        sane MAC are far enough that softening is a no-op; it guards
        degenerate geometry).

    Returns ``(acc, pot)``.
    """
    xi = np.asarray(xi, dtype=np.float64)
    com = np.asarray(com, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    quad = np.asarray(quad, dtype=np.float64)
    if xi.ndim != 2 or xi.shape[1] != 3:
        raise ValueError("xi must have shape (n_i, 3)")
    c = com.shape[0]
    if com.shape != (c, 3) or mass.shape != (c,) or quad.shape != (c, 6):
        raise ValueError("com, mass, quad shapes inconsistent")

    n_i = xi.shape[0]
    acc = np.zeros((n_i, 3), dtype=np.float64)
    pot = np.zeros(n_i, dtype=np.float64)
    if n_i == 0 or c == 0:
        return acc, pot

    q33 = _unpack(quad)
    eps2 = float(eps) ** 2
    tiny = np.finfo(np.float64).tiny
    step = max(1, int(tile) // max(n_i, 1))
    for j0 in range(0, c, step):
        j1 = min(j0 + step, c)
        d = xi[:, None, :] - com[None, j0:j1, :]          # (n_i, k, 3)
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        rinv2 = 1.0 / np.maximum(r2, tiny)
        rinv = np.sqrt(rinv2)
        if eps2 == 0.0:
            zero = r2 == 0.0
            rinv = np.where(zero, 0.0, rinv)
            rinv2 = np.where(zero, 0.0, rinv2)
        rinv3 = rinv * rinv2
        rinv5 = rinv3 * rinv2
        rinv7 = rinv5 * rinv2

        m = mass[None, j0:j1]
        qd = np.einsum("jab,ijb->ija", q33[j0:j1], d)      # Q d
        dqd = np.einsum("ija,ija->ij", d, qd)              # d^T Q d

        pot -= (m * rinv + 0.5 * dqd * rinv5).sum(axis=1)
        acc -= np.einsum("ij,ijk->ik", m * rinv3, d)
        acc += np.einsum("ij,ijk->ik", rinv5, qd)
        acc -= np.einsum("ij,ijk->ik", 2.5 * dqd * rinv7, d)
    return acc, pot
