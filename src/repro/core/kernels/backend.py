"""Pairwise gravity kernels and the force-backend interface.

The innermost operation of the whole system is the softened point-mass
interaction

    a_i += m_j * (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^{3/2}
    phi_i -= m_j / (|x_j - x_i|^2 + eps^2)^{1/2}

(Plummer softening; G = 1 in code units).  This is exactly the datapath
the G5 pipeline implements in hardware -- 38 floating-point-equivalent
operations per interaction under the counting convention of the paper
and of Warren & Salmon (see :mod:`repro.perf.opcount`).

Two *backends* evaluate this kernel:

* :class:`Float64Backend` -- IEEE double precision on the host, used for
  reference forces and for the paper's "practically the same accuracy
  with 64-bit arithmetic" check (section 2);
* :class:`repro.grape.system.GrapeBackend` -- the GRAPE-5 emulator,
  which applies the hardware's reduced-precision number formats and
  charges the call to the cycle-level timing model.

Backends receive the full (sinks x sources) problem and are free to tile
it; :func:`pairwise_accpot` provides the shared tiled float64 kernel.
Tiles are sized to keep the (n_i, n_j_chunk) temporaries inside the CPU
cache region where NumPy broadcasting is efficient (guide: "beware of
cache effects"; do not materialise the full N x M matrix).

Backends additionally expose a **batch list protocol**
(:meth:`ForceBackend.eval_lists` / :meth:`ForceBackend.compute_batched`)
driven by the ``numpy`` kernel set (see :mod:`repro.core.kernels`): one
call evaluates *every* sink of a CSR interaction-list sweep, with no
per-sink Python round-trips.  The base implementations fall back to the
per-sink submit/gather loop, so every backend is batch-complete; the
bundled backends override them with vectorised CSR walks
(:mod:`repro.core.kernels.batch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "BackendCaps",
    "ForceBackend",
    "Float64Backend",
    "pairwise_accpot",
    "self_potential_correction",
]

#: Upper bound on elements of one broadcast tile (n_i * n_j_chunk).
DEFAULT_TILE = 1 << 22


def pairwise_accpot(xi: np.ndarray, xj: np.ndarray, mj: np.ndarray,
                    eps: float, *, tile: int = DEFAULT_TILE
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Accelerations and potentials on ``xi`` from sources ``(xj, mj)``.

    Fully vectorised and tiled over sources.  Returns ``(acc, pot)`` with
    shapes ``(n_i, 3)`` and ``(n_i,)``.  A source coincident with a sink
    (r = 0) contributes zero acceleration and ``-m/eps`` potential, which
    the caller removes via :func:`self_potential_correction` when sinks
    are included in their own source list.
    """
    xi = np.asarray(xi, dtype=np.float64)
    xj = np.asarray(xj, dtype=np.float64)
    mj = np.asarray(mj, dtype=np.float64)
    if xi.ndim != 2 or xi.shape[1] != 3:
        raise ValueError("xi must have shape (n_i, 3)")
    if xj.ndim != 2 or xj.shape[1] != 3:
        raise ValueError("xj must have shape (n_j, 3)")
    if mj.shape != (xj.shape[0],):
        raise ValueError("mj must have shape (n_j,)")
    if eps < 0.0:
        raise ValueError("softening eps must be non-negative")

    n_i = xi.shape[0]
    n_j = xj.shape[0]
    acc = np.zeros((n_i, 3), dtype=np.float64)
    pot = np.zeros(n_i, dtype=np.float64)
    if n_i == 0 or n_j == 0:
        return acc, pot

    step = max(1, int(tile) // max(n_i, 1))
    eps2 = float(eps) * float(eps)
    for j0 in range(0, n_j, step):
        j1 = min(j0 + step, n_j)
        d = xj[None, j0:j1, :] - xi[:, None, :]         # (n_i, c, 3)
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        rinv = 1.0 / np.sqrt(np.maximum(r2, np.finfo(np.float64).tiny))
        if eps2 == 0.0:
            # unsoftened: zero-distance pairs contribute nothing
            rinv[r2 == 0.0] = 0.0
        mrinv = mj[None, j0:j1] * rinv
        pot -= mrinv.sum(axis=1)
        mrinv3 = mrinv * rinv * rinv
        acc += np.einsum("ij,ijk->ik", mrinv3, d)
    return acc, pot


def self_potential_correction(m: np.ndarray, eps: float) -> np.ndarray:
    """Potential contributed by a particle onto itself under Plummer
    softening; add this to remove the self term from ``pot``."""
    if eps <= 0.0:
        return np.zeros_like(np.asarray(m, dtype=np.float64))
    return np.asarray(m, dtype=np.float64) / float(eps)


@dataclass(frozen=True)
class BackendCaps:
    """Capability descriptor of a :class:`ForceBackend`.

    The execution engines (:mod:`repro.exec`) plan their batches from
    this: ``max_nj`` is the j-memory capacity of one force call (the
    GRAPE's particle data memory; ``None`` means unbounded, as for a
    host-RAM backend), and ``parallel_safe`` declares that independent
    worker processes may each construct their own instance (via
    :meth:`ForceBackend.worker_factory`) and evaluate requests
    concurrently with results identical to a single instance.
    """

    #: j-particles one force call can hold (None = unbounded)
    max_nj: Optional[int] = None
    #: worker processes may run private instances concurrently
    parallel_safe: bool = False


class ForceBackend:
    """Something that evaluates the softened point-mass kernel.

    Implementations must be *stateless with respect to results* (the same
    inputs give the same outputs) but may accumulate performance
    statistics across calls.

    The primary interface is the **batched submit/gather protocol**,
    mirroring how the paper's host code drives the hardware: stage a
    force *request* (``submit``), let the device work, read results back
    asynchronously (``gather``).  The base class implements the protocol
    as a *sequential shim* over :meth:`compute` -- each ``submit``
    evaluates eagerly and ``gather`` drains the buffered results -- so
    every existing backend is protocol-complete for free, while truly
    asynchronous backends can overlap.  Direct ``compute()`` calls
    remain supported as the one-shot convenience form (see
    ``docs/parallel_engine.md`` for the deprecation path of hot-loop
    ``compute`` callers).
    """

    #: human-readable backend name for reports
    name: str = "abstract"

    def compute(self, xi: np.ndarray, xj: np.ndarray, mj: np.ndarray,
                eps: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(acc, pot)`` on sinks ``xi`` from sources ``xj, mj``."""
        raise NotImplementedError

    # -- batched submit/gather protocol --------------------------------
    def capabilities(self) -> BackendCaps:
        """Static capability descriptor used for batch planning."""
        return BackendCaps()

    def submit(self, key: Any, xi: np.ndarray, xj: np.ndarray,
               mj: np.ndarray, eps: float) -> Any:
        """Stage one force request; returns ``key`` as its ticket.

        The base implementation is the sequential shim: it evaluates
        through :meth:`compute` immediately and buffers the result for
        the next :meth:`gather`.
        """
        pending: List[Tuple[Any, np.ndarray, np.ndarray]] = \
            self.__dict__.setdefault("_pending_results", [])
        acc, pot = self.compute(xi, xj, mj, eps)
        pending.append((key, acc, pot))
        return key

    def gather(self) -> List[Tuple[Any, np.ndarray, np.ndarray]]:
        """Drain completed requests as ``[(key, acc, pot), ...]``.

        Results are returned in completion order (submission order for
        the sequential shim).  After the call the pending buffer is
        empty; requests submitted later need a later ``gather``.
        """
        pending = self.__dict__.get("_pending_results")
        if not pending:
            return []
        self.__dict__["_pending_results"] = []
        return pending

    # -- batch list protocol (the ``numpy`` kernel set) ----------------
    def eval_lists(self, pos: np.ndarray, pmass: np.ndarray,
                   com: np.ndarray, cmass: np.ndarray, lists,
                   sink_start: np.ndarray, sink_count: np.ndarray,
                   eps: float, out_acc: np.ndarray, out_pot: np.ndarray
                   ) -> None:
        """Evaluate one whole CSR list sweep into ``out_acc``/``out_pot``.

        ``lists`` is a :class:`~repro.core.traversal.InteractionLists`
        whose sink ``g`` corresponds to rows
        ``sink_start[g]:sink_start[g]+sink_count[g]`` of ``pos`` (and of
        the output arrays).  Sources are cell monopoles then direct
        particles, in the same concatenation order as the per-sink path.

        The base implementation is the reference loop -- one
        submit/gather round-trip per sink, so any backend works; the
        bundled backends override it with a vectorised CSR walk (the C
        fast path of :mod:`repro.core.kernels.cnative` when a compiler
        is available).  Output rows are *assigned*, never accumulated,
        so re-evaluating a sink range is idempotent (the pipeline
        engine's retry ladder depends on this).
        """
        for g in range(int(sink_start.shape[0])):
            s, n = int(sink_start[g]), int(sink_count[g])
            cells = lists.cells_of(g)
            parts = lists.parts_of(g)
            xj = np.concatenate([com[cells], pos[parts]])
            mj = np.concatenate([cmass[cells], pmass[parts]])
            self.submit(g, pos[s:s + n], xj, mj, eps)
            for _, a, p in self.gather():
                out_acc[s:s + n] = a
                out_pot[s:s + n] = p

    def compute_batched(self, xi: np.ndarray, xj: np.ndarray,
                        mj: np.ndarray, eps: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """One-shot dense force call through the batch fast path.

        Same contract as :meth:`compute`; backends with a native kernel
        override this to bypass their per-pair reference arithmetic
        (used by drivers whose source lists are rebuilt per sink, e.g.
        the periodic treecode's minimum-image near field).
        """
        return self.compute(xi, xj, mj, eps)

    # -- worker-process support ----------------------------------------
    def worker_factory(self) -> Optional[Tuple[Callable[..., "ForceBackend"],
                                               tuple, dict]]:
        """``(callable, args, kwargs)`` building an equivalent private
        instance inside a worker process, or ``None`` when the backend
        cannot be replicated (then it is not ``parallel_safe``).

        The spec must be small and picklable -- configuration only,
        never live state (the GRAPE backend, for instance, ships its
        numerics and timing constants, not its 6 MB j-memory arrays).
        """
        return None

    def snapshot_stats(self) -> Dict[str, float]:
        """Cumulative performance counters as a plain dict (workers
        difference two snapshots to report a delta)."""
        return {"interactions": float(self.interactions)}

    def absorb_stats(self, delta: Dict[str, float]) -> None:
        """Fold a worker's stats delta into this (parent) instance, so
        run totals are identical whichever engine evaluated the calls."""

    def reset_stats(self) -> None:
        """Clear accumulated performance counters (optional)."""

    def set_domain(self, lo: float, hi: float) -> None:
        """Announce the coordinate window of upcoming calls.

        No-op for full-precision backends.  The GRAPE backend forwards
        this to ``g5_set_range``: its fixed-point coordinate format
        saturates outside the window, so drivers (the treecode, the
        simulation loop) re-announce the domain whenever the particle
        extent changes -- exactly as the paper's host code must.
        """

    @property
    def interactions(self) -> int:
        """Pairwise interactions evaluated since the last reset."""
        return 0


@dataclass
class Float64Backend(ForceBackend):
    """Reference backend: IEEE double precision on the host."""

    tile: int = DEFAULT_TILE
    _interactions: int = field(default=0, repr=False)

    name = "float64"

    def compute(self, xi, xj, mj, eps):
        self._interactions += int(np.asarray(xi).shape[0]) * int(np.asarray(xj).shape[0])
        return pairwise_accpot(xi, xj, mj, eps, tile=self.tile)

    def eval_lists(self, pos, pmass, com, cmass, lists, sink_start,
                   sink_count, eps, out_acc, out_pot):
        from .batch import f64_eval_lists
        done, inter = f64_eval_lists(pos, pmass, com, cmass, lists,
                                     sink_start, sink_count, eps,
                                     out_acc, out_pot)
        if not done:
            super().eval_lists(pos, pmass, com, cmass, lists, sink_start,
                               sink_count, eps, out_acc, out_pot)
            return
        self._interactions += inter

    def compute_batched(self, xi, xj, mj, eps):
        from .batch import f64_pairwise
        res = f64_pairwise(xi, xj, mj, eps)
        if res is None:
            return self.compute(xi, xj, mj, eps)
        self._interactions += int(np.asarray(xi).shape[0]) \
            * int(np.asarray(xj).shape[0])
        return res

    def capabilities(self) -> BackendCaps:
        return BackendCaps(max_nj=None, parallel_safe=True)

    def worker_factory(self):
        return (Float64Backend, (), {"tile": self.tile})

    def absorb_stats(self, delta):
        self._interactions += int(delta.get("interactions", 0))

    def reset_stats(self):
        self._interactions = 0

    @property
    def interactions(self) -> int:
        return self._interactions
