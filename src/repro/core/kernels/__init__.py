"""Kernel selection: the ``kernels=`` surface shared by the whole stack.

A :class:`KernelSet` bundles the host-side tree kernels (Morton keys,
octree construction, MAC traversal) with an *evaluation strategy* for
the interaction lists:

* ``python`` -- the reference set.  Tree construction and traversal are
  the vectorised routines in :mod:`repro.core.{morton,octree,traversal}`
  and force evaluation walks sink groups one at a time through
  ``backend.submit``/``gather`` (one Python iteration per group).
* ``numpy`` -- identical tree kernels (the tree and the interaction
  lists are **bit-identical** by construction -- both sets call the very
  same functions), but list evaluation is *batched*: whole CSR blocks of
  sink groups go through :meth:`ForceBackend.eval_lists` in one call,
  which bottoms out in the compiled list walk of
  :mod:`repro.core.kernels.cnative` when available and in a NumPy
  reference loop when not.

Every layer that builds forces -- :class:`~repro.core.treecode.TreeCode`,
:class:`~repro.cosmo.periodic_tree.PeriodicTreeCode`,
:class:`~repro.sim.simulation.Simulation`,
:func:`repro.sim.recipes.build_force`, the serve ``JobSpec``, and the
CLI ``--kernels`` flag -- accepts the same ``kernels=`` value: a set
name or a :class:`KernelSet`.  Unknown names raise :class:`ValueError`
listing the registered sets, which the CLI maps to exit 2 and the
service to HTTP 400.

Third-party sets register with :func:`register_kernels`; see
``docs/kernels.md`` for the contract a new backend has to satisfy.

This module also re-exports the force-backend layer
(:class:`ForceBackend`, :class:`Float64Backend`,
:func:`pairwise_accpot`, ...) so historical ``repro.core.kernels``
imports keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from ..morton import bounding_cube, morton_keys
from ..octree import build_octree
from ..traversal import build_interaction_lists
from .backend import (DEFAULT_TILE, BackendCaps, Float64Backend,
                      ForceBackend, pairwise_accpot,
                      self_potential_correction)

__all__ = [
    "KernelSet", "register_kernels", "resolve_kernels", "kernel_names",
    # force-backend layer (historical flat-module surface)
    "ForceBackend", "Float64Backend", "BackendCaps", "pairwise_accpot",
    "self_potential_correction", "DEFAULT_TILE",
]


@dataclass(frozen=True)
class KernelSet:
    """A named bundle of host kernels plus an evaluation strategy.

    ``morton_keys`` / ``bounding_cube`` / ``build_tree`` / ``traverse``
    are the host-computation kernels (the paper's tree-construction and
    tree-traversal terms of the time model); ``batched`` selects how the
    resulting interaction lists are evaluated -- per sink group through
    ``submit``/``gather`` (False) or in whole CSR batches through
    :meth:`ForceBackend.eval_lists` (True).
    """

    name: str
    batched: bool
    description: str = ""
    morton_keys: Callable = field(default=morton_keys, repr=False)
    bounding_cube: Callable = field(default=bounding_cube, repr=False)
    build_tree: Callable = field(default=build_octree, repr=False)
    traverse: Callable = field(default=build_interaction_lists, repr=False)


_REGISTRY: Dict[str, KernelSet] = {}


def register_kernels(kernels: KernelSet) -> KernelSet:
    """Register (or replace) a kernel set under ``kernels.name``."""
    if not isinstance(kernels, KernelSet):
        raise TypeError("register_kernels expects a KernelSet")
    if not kernels.name:
        raise ValueError("kernel set needs a non-empty name")
    _REGISTRY[kernels.name] = kernels
    return kernels


def kernel_names() -> tuple:
    """The registered set names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_kernels(kernels: Union[str, KernelSet, None]) -> KernelSet:
    """Resolve a ``kernels=`` value to a :class:`KernelSet`.

    ``None`` means the default (``python``); a :class:`KernelSet` passes
    through; a string is looked up in the registry.  Unknown names raise
    :class:`ValueError` naming the valid choices -- every entry point
    funnels bad values through here so the CLI (exit 2) and the service
    (HTTP 400) reject them uniformly.
    """
    if kernels is None:
        return _REGISTRY["python"]
    if isinstance(kernels, KernelSet):
        return kernels
    if isinstance(kernels, str):
        try:
            return _REGISTRY[kernels]
        except KeyError:
            raise ValueError(
                f"unknown kernels {kernels!r} (choose from "
                f"{', '.join(kernel_names())})") from None
    raise ValueError(f"kernels must be a name or KernelSet, "
                     f"got {type(kernels).__name__}")


register_kernels(KernelSet(
    name="python",
    batched=False,
    description="reference per-group evaluation loop",
))

register_kernels(KernelSet(
    name="numpy",
    batched=True,
    description="batched CSR list-walk evaluation (compiled fast path "
                "with NumPy fallback); tree kernels identical to "
                "'python'",
))
