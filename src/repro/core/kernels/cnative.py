"""Compiled CSR list-walk kernels (the ``numpy`` kernel set's fast path).

The batch evaluators in :mod:`repro.core.kernels.batch` bottom out in
four tiny C routines -- a CSR list walk and a dense pairwise call, each
in two arithmetic flavours:

* ``f64``: plain IEEE double precision (the :class:`Float64Backend`
  datapath);
* ``g5``: the GRAPE-5 reduced-precision datapath -- fixed-point
  coordinate quantisation plus short-mantissa rounding after every
  pipeline stage, *bit-identical per pair* to
  :class:`repro.grape.pipeline.G5Pipeline` (only the accumulation order
  over a sink's sources differs, which the documented force tolerance
  covers; see ``docs/kernels.md``).

The mantissa rounding is the branch-free integer form of
:func:`repro.grape.numerics.round_mantissa`: add the round bit plus a
ties-to-even correction to the IEEE fraction field, clear the dropped
bits, and pass subnormals/infinities through untouched.  ``shift =
53 - fraction_bits`` reproduces the frexp-mantissa convention exactly.

Compilation happens **at first use** with the system C compiler
(``$CC``, else ``gcc``, else ``cc``) into a per-user cache directory
keyed by the source hash; a container with no compiler, a read-only
filesystem, or ``REPRO_KERNELS_NO_CNATIVE=1`` in the environment simply
leaves :func:`available` false and every caller falls back to the
NumPy path.  No third-party build dependency is involved.

``-ffp-contract=off`` keeps the arithmetic FMA-free (matching NumPy's
separate multiply/add), so results are reproducible across compilers on
the same ISA; ``-march=native`` is attempted first and dropped if the
compiler rejects it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional

__all__ = ["available", "load", "SOURCE"]

SOURCE = r"""
#include <math.h>

typedef long long i64;
typedef unsigned long long u64;

/* round-to-nearest-even mantissa rounding; s = 53 - fraction_bits */
static inline double rd_mant(double x, int s) {
    union {double d; u64 u;} v; v.d = x;
    u64 u = v.u;
    u64 expo = (u >> 52) & 0x7FFULL;
    u64 half = 1ULL << (s - 1);
    u64 r = u + (((u >> s) & 1ULL) + (half - 1ULL));
    r &= ~((1ULL << s) - 1ULL);
    v.u = (expo == 0ULL || expo == 0x7FFULL) ? u : r;
    return v.d;
}

/* fixed-point coordinate roundtrip (g5_set_range grid, saturating) */
static inline double quant(double x, double xmin, double res, double qmax) {
    double q = rint((x - xmin) / res);
    q = q < 0.0 ? 0.0 : (q > qmax ? qmax : q);
    return xmin + q * res;
}

/* ----------------------------------------------------------------- */
/* IEEE-double CSR list walk: for each sink group g, assign forces on
   rows sink_start[g]..+sink_count[g] from its cell monopoles then its
   direct particles.  Outputs are assigned (idempotent re-runs).      */
int repro_f64_csr(const double *pos, const double *pmass,
                  const double *com, const double *cmass,
                  const i64 *cell_idx, const i64 *cell_off,
                  const i64 *part_idx, const i64 *part_off,
                  const i64 *sink_start, const i64 *sink_count,
                  i64 n_groups, double eps2,
                  double *sx, double *sy, double *sz, double *sm,
                  double *out_acc, double *out_pot)
{
    for (i64 g = 0; g < n_groups; g++) {
        i64 c0 = cell_off[g], c1 = cell_off[g + 1];
        i64 p0 = part_off[g], p1 = part_off[g + 1];
        i64 nj = (c1 - c0) + (p1 - p0);
        i64 k = 0;
        for (i64 c = c0; c < c1; c++, k++) {
            i64 j = cell_idx[c];
            sx[k] = com[3*j]; sy[k] = com[3*j+1]; sz[k] = com[3*j+2];
            sm[k] = cmass[j];
        }
        for (i64 p = p0; p < p1; p++, k++) {
            i64 j = part_idx[p];
            sx[k] = pos[3*j]; sy[k] = pos[3*j+1]; sz[k] = pos[3*j+2];
            sm[k] = pmass[j];
        }
        i64 s0 = sink_start[g], n_i = sink_count[g];
        for (i64 i = 0; i < n_i; i++) {
            i64 row = s0 + i;
            double xi = pos[3*row], yi = pos[3*row+1], zi = pos[3*row+2];
            double ax = 0.0, ay = 0.0, az = 0.0, pp = 0.0;
            if (eps2 > 0.0) {
                for (i64 j = 0; j < nj; j++) {
                    double dx = sx[j] - xi, dy = sy[j] - yi,
                           dz = sz[j] - zi;
                    double r2 = ((dx*dx + dy*dy) + dz*dz) + eps2;
                    double rinv = 1.0 / sqrt(r2);
                    double mr = sm[j] * rinv;
                    double mr3 = mr * rinv * rinv;
                    pp -= mr;
                    ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
                }
            } else {
                for (i64 j = 0; j < nj; j++) {
                    double dx = sx[j] - xi, dy = sy[j] - yi,
                           dz = sz[j] - zi;
                    double r2 = (dx*dx + dy*dy) + dz*dz;
                    double rs = r2 > 0.0 ? r2 : 1.0;
                    double rinv = r2 > 0.0 ? 1.0 / sqrt(rs) : 0.0;
                    double mr = sm[j] * rinv;
                    double mr3 = mr * rinv * rinv;
                    pp -= mr;
                    ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
                }
            }
            out_acc[3*row] = ax; out_acc[3*row+1] = ay;
            out_acc[3*row+2] = az;
            out_pot[row] = pp;
        }
    }
    return 0;
}

/* ----------------------------------------------------------------- */
/* G5-datapath CSR list walk: same structure, with the reduced
   precision applied per stage exactly as G5Pipeline.compute does.    */
int repro_g5_csr(const double *pos, const double *pmass,
                 const double *com, const double *cmass,
                 const i64 *cell_idx, const i64 *cell_off,
                 const i64 *part_idx, const i64 *part_off,
                 const i64 *sink_start, const i64 *sink_count,
                 i64 n_groups, double eps2q, int fb,
                 int use_quant, double xmin, double res, double qmax,
                 double *sx, double *sy, double *sz, double *sm,
                 double *out_acc, double *out_pot)
{
    const int s = 53 - fb;
    for (i64 g = 0; g < n_groups; g++) {
        i64 c0 = cell_off[g], c1 = cell_off[g + 1];
        i64 p0 = part_off[g], p1 = part_off[g + 1];
        i64 nj = (c1 - c0) + (p1 - p0);
        i64 k = 0;
        if (use_quant) {
            for (i64 c = c0; c < c1; c++, k++) {
                i64 j = cell_idx[c];
                sx[k] = quant(com[3*j],   xmin, res, qmax);
                sy[k] = quant(com[3*j+1], xmin, res, qmax);
                sz[k] = quant(com[3*j+2], xmin, res, qmax);
                sm[k] = rd_mant(cmass[j], s);
            }
            for (i64 p = p0; p < p1; p++, k++) {
                i64 j = part_idx[p];
                sx[k] = quant(pos[3*j],   xmin, res, qmax);
                sy[k] = quant(pos[3*j+1], xmin, res, qmax);
                sz[k] = quant(pos[3*j+2], xmin, res, qmax);
                sm[k] = rd_mant(pmass[j], s);
            }
        } else {
            for (i64 c = c0; c < c1; c++, k++) {
                i64 j = cell_idx[c];
                sx[k] = com[3*j]; sy[k] = com[3*j+1]; sz[k] = com[3*j+2];
                sm[k] = rd_mant(cmass[j], s);
            }
            for (i64 p = p0; p < p1; p++, k++) {
                i64 j = part_idx[p];
                sx[k] = pos[3*j]; sy[k] = pos[3*j+1]; sz[k] = pos[3*j+2];
                sm[k] = rd_mant(pmass[j], s);
            }
        }
        i64 s0 = sink_start[g], n_i = sink_count[g];
        for (i64 i = 0; i < n_i; i++) {
            i64 row = s0 + i;
            double xi = pos[3*row], yi = pos[3*row+1], zi = pos[3*row+2];
            if (use_quant) {
                xi = quant(xi, xmin, res, qmax);
                yi = quant(yi, xmin, res, qmax);
                zi = quant(zi, xmin, res, qmax);
            }
            double ax = 0.0, ay = 0.0, az = 0.0, pp = 0.0;
            if (eps2q > 0.0) {
                for (i64 j = 0; j < nj; j++) {
                    double dx = sx[j] - xi, dy = sy[j] - yi,
                           dz = sz[j] - zi;
                    double dx2 = rd_mant(dx*dx, s);
                    double dy2 = rd_mant(dy*dy, s);
                    double dz2 = rd_mant(dz*dz, s);
                    double r2 = rd_mant(((dx2 + dy2) + dz2) + eps2q, s);
                    double rinv = rd_mant(1.0 / sqrt(r2), s);
                    double rinv3 = rd_mant(rinv * rinv * rinv, s);
                    double mr = rd_mant(sm[j] * rinv, s);
                    double mr3 = rd_mant(sm[j] * rinv3, s);
                    pp -= mr;
                    ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
                }
            } else {
                for (i64 j = 0; j < nj; j++) {
                    double dx = sx[j] - xi, dy = sy[j] - yi,
                           dz = sz[j] - zi;
                    double dx2 = rd_mant(dx*dx, s);
                    double dy2 = rd_mant(dy*dy, s);
                    double dz2 = rd_mant(dz*dz, s);
                    double r2 = rd_mant((dx2 + dy2) + dz2, s);
                    double rs = r2 > 0.0 ? r2 : 1.0;
                    double rinv = r2 > 0.0 ? 1.0 / sqrt(rs) : 0.0;
                    rinv = rd_mant(rinv, s);
                    double rinv3 = rd_mant(rinv * rinv * rinv, s);
                    double mr = rd_mant(sm[j] * rinv, s);
                    double mr3 = rd_mant(sm[j] * rinv3, s);
                    pp -= mr;
                    ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
                }
            }
            out_acc[3*row] = ax; out_acc[3*row+1] = ay;
            out_acc[3*row+2] = az;
            out_pot[row] = pp;
        }
    }
    return 0;
}

/* ----------------------------------------------------------------- */
/* Dense one-shot calls (the periodic near field rebuilds its source
   list per group, so there is no CSR to walk).                       */
int repro_f64_pairwise(const double *xi, i64 n_i,
                       const double *xj, const double *mj, i64 n_j,
                       double eps2, double *out_acc, double *out_pot)
{
    for (i64 i = 0; i < n_i; i++) {
        double x = xi[3*i], y = xi[3*i+1], z = xi[3*i+2];
        double ax = 0.0, ay = 0.0, az = 0.0, pp = 0.0;
        if (eps2 > 0.0) {
            for (i64 j = 0; j < n_j; j++) {
                double dx = xj[3*j] - x, dy = xj[3*j+1] - y,
                       dz = xj[3*j+2] - z;
                double r2 = ((dx*dx + dy*dy) + dz*dz) + eps2;
                double rinv = 1.0 / sqrt(r2);
                double mr = mj[j] * rinv;
                double mr3 = mr * rinv * rinv;
                pp -= mr;
                ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
            }
        } else {
            for (i64 j = 0; j < n_j; j++) {
                double dx = xj[3*j] - x, dy = xj[3*j+1] - y,
                       dz = xj[3*j+2] - z;
                double r2 = (dx*dx + dy*dy) + dz*dz;
                double rs = r2 > 0.0 ? r2 : 1.0;
                double rinv = r2 > 0.0 ? 1.0 / sqrt(rs) : 0.0;
                double mr = mj[j] * rinv;
                double mr3 = mr * rinv * rinv;
                pp -= mr;
                ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
            }
        }
        out_acc[3*i] = ax; out_acc[3*i+1] = ay; out_acc[3*i+2] = az;
        out_pot[i] = pp;
    }
    return 0;
}

int repro_g5_pairwise(const double *xi, i64 n_i,
                      const double *xj, const double *mj, i64 n_j,
                      double eps2q, int fb,
                      int use_quant, double xmin, double res, double qmax,
                      double *sx, double *sy, double *sz, double *sm,
                      double *out_acc, double *out_pot)
{
    const int s = 53 - fb;
    for (i64 j = 0; j < n_j; j++) {
        if (use_quant) {
            sx[j] = quant(xj[3*j],   xmin, res, qmax);
            sy[j] = quant(xj[3*j+1], xmin, res, qmax);
            sz[j] = quant(xj[3*j+2], xmin, res, qmax);
        } else {
            sx[j] = xj[3*j]; sy[j] = xj[3*j+1]; sz[j] = xj[3*j+2];
        }
        sm[j] = rd_mant(mj[j], s);
    }
    for (i64 i = 0; i < n_i; i++) {
        double x = xi[3*i], y = xi[3*i+1], z = xi[3*i+2];
        if (use_quant) {
            x = quant(x, xmin, res, qmax);
            y = quant(y, xmin, res, qmax);
            z = quant(z, xmin, res, qmax);
        }
        double ax = 0.0, ay = 0.0, az = 0.0, pp = 0.0;
        if (eps2q > 0.0) {
            for (i64 j = 0; j < n_j; j++) {
                double dx = sx[j] - x, dy = sy[j] - y, dz = sz[j] - z;
                double dx2 = rd_mant(dx*dx, s);
                double dy2 = rd_mant(dy*dy, s);
                double dz2 = rd_mant(dz*dz, s);
                double r2 = rd_mant(((dx2 + dy2) + dz2) + eps2q, s);
                double rinv = rd_mant(1.0 / sqrt(r2), s);
                double rinv3 = rd_mant(rinv * rinv * rinv, s);
                double mr = rd_mant(sm[j] * rinv, s);
                double mr3 = rd_mant(sm[j] * rinv3, s);
                pp -= mr;
                ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
            }
        } else {
            for (i64 j = 0; j < n_j; j++) {
                double dx = sx[j] - x, dy = sy[j] - y, dz = sz[j] - z;
                double dx2 = rd_mant(dx*dx, s);
                double dy2 = rd_mant(dy*dy, s);
                double dz2 = rd_mant(dz*dz, s);
                double r2 = rd_mant((dx2 + dy2) + dz2, s);
                double rs = r2 > 0.0 ? r2 : 1.0;
                double rinv = r2 > 0.0 ? 1.0 / sqrt(rs) : 0.0;
                rinv = rd_mant(rinv, s);
                double rinv3 = rd_mant(rinv * rinv * rinv, s);
                double mr = rd_mant(sm[j] * rinv, s);
                double mr3 = rd_mant(sm[j] * rinv3, s);
                pp -= mr;
                ax += mr3 * dx; ay += mr3 * dy; az += mr3 * dz;
            }
        }
        out_acc[3*i] = ax; out_acc[3*i+1] = ay; out_acc[3*i+2] = az;
        out_pot[i] = pp;
    }
    return 0;
}
"""

#: base flags; ``-ffp-contract=off`` forbids FMA contraction so the C
#: arithmetic matches NumPy's separate multiply/add per stage
_BASE_FLAGS = ["-O3", "-fno-math-errno", "-ffp-contract=off",
               "-shared", "-fPIC"]

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_tried = False

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_i64_p = ctypes.POINTER(ctypes.c_longlong)

_SIGNATURES = {
    "repro_f64_csr": [_c_double_p] * 4 + [_c_i64_p] * 6
    + [ctypes.c_longlong, ctypes.c_double] + [_c_double_p] * 6,
    "repro_g5_csr": [_c_double_p] * 4 + [_c_i64_p] * 6
    + [ctypes.c_longlong, ctypes.c_double, ctypes.c_int, ctypes.c_int,
       ctypes.c_double, ctypes.c_double, ctypes.c_double]
    + [_c_double_p] * 6,
    "repro_f64_pairwise": [_c_double_p, ctypes.c_longlong, _c_double_p,
                           _c_double_p, ctypes.c_longlong,
                           ctypes.c_double, _c_double_p, _c_double_p],
    "repro_g5_pairwise": [_c_double_p, ctypes.c_longlong, _c_double_p,
                          _c_double_p, ctypes.c_longlong, ctypes.c_double,
                          ctypes.c_int, ctypes.c_int, ctypes.c_double,
                          ctypes.c_double, ctypes.c_double]
    + [_c_double_p] * 6,
}


def _cache_dir() -> Optional[str]:
    """A writable directory to keep the compiled library in."""
    candidates = []
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        candidates.append(os.path.join(xdg, "repro-kernels"))
    home = os.path.expanduser("~")
    if home and home != "~":
        candidates.append(os.path.join(home, ".cache", "repro-kernels"))
    for path in candidates:
        try:
            os.makedirs(path, exist_ok=True)
            return path
        except OSError:
            continue
    try:
        return tempfile.mkdtemp(prefix="repro-kernels-")
    except OSError:
        return None


def _compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc:
        return cc
    for cand in ("gcc", "cc"):
        for d in os.environ.get("PATH", "").split(os.pathsep):
            if d and os.access(os.path.join(d, cand), os.X_OK):
                return cand
    return None


def _compile_and_load() -> Optional[ctypes.CDLL]:
    cache = _cache_dir()
    cc = _compiler()
    if cache is None or cc is None:
        return None
    tag = hashlib.sha256(
        (SOURCE + " ".join(_BASE_FLAGS)).encode()).hexdigest()[:16]
    so_path = os.path.join(cache, f"repro_kernels_{tag}.so")
    if not os.path.exists(so_path):
        c_path = os.path.join(cache, f"repro_kernels_{tag}.c")
        try:
            with open(c_path, "w") as f:
                f.write(SOURCE)
        except OSError:
            return None
        tmp = so_path + f".tmp{os.getpid()}"
        for extra in (["-march=native"], []):
            cmd = [cc] + _BASE_FLAGS + extra + ["-o", tmp, c_path, "-lm"]
            try:
                proc = subprocess.run(cmd, capture_output=True, timeout=120)
            except (OSError, subprocess.TimeoutExpired):
                return None
            if proc.returncode == 0:
                break
        else:
            return None
        try:
            os.replace(tmp, so_path)  # atomic: concurrent builds race safely
        except OSError:
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    for name, argtypes in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = ctypes.c_int
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The compiled library, building it on first call; ``None`` when
    compilation is unavailable, failed, or disabled via
    ``REPRO_KERNELS_NO_CNATIVE``."""
    global _lib, _tried
    if _tried:
        return _lib
    with _lock:
        if not _tried:
            if os.environ.get("REPRO_KERNELS_NO_CNATIVE"):
                _lib = None
            else:
                _lib = _compile_and_load()
            _tried = True
    return _lib


def available() -> bool:
    """Whether the compiled fast path can be used."""
    return load() is not None
