"""Batch drivers: NumPy arrays in, compiled CSR list walk out.

These functions marshal :class:`~repro.core.traversal.InteractionLists`
CSR blocks and dense source sets into the compiled kernels of
:mod:`repro.core.kernels.cnative`.  Every driver is *total*: when the
native library is unavailable (no compiler, kill-switch set, unsupported
numerics) it reports failure -- ``(False, 0)`` / ``False`` / ``None`` --
and the caller falls back to the per-sink reference loop.  Callers never
need to know whether the fast path exists.

Two properties the execution layer depends on:

* **Assignment semantics** -- output rows are written with ``=``, never
  ``+=``, so re-running a sink range (the pipeline engine's retry
  ladder, the corrupt-result checksum path) is idempotent.
* **Non-rebased CSR views** -- the ``lists`` argument may carry offset
  slices that do not start at zero, with index arrays spanning the whole
  shard; the kernels index ``idx[off[g]:off[g+1]]`` directly, so workers
  can evaluate a half-open batch ``[g0, g1)`` without copying lists.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Tuple

import numpy as np

from . import cnative

__all__ = ["f64_eval_lists", "g5_eval_lists", "f64_pairwise",
           "g5_pairwise", "native_available"]


def native_available() -> bool:
    """Whether the compiled fast path is usable in this process."""
    return cnative.available()


def _dp(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _ip(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong))


def _f64c(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


def _i64c(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _writable(a: np.ndarray) -> bool:
    return a.dtype == np.float64 and a.flags.c_contiguous \
        and a.flags.writeable


def _csr_args(lists, sink_start, sink_count):
    """Marshal the CSR block; returns None when outputs can't be used
    in place (the reference loop handles those)."""
    cell_idx = _i64c(lists.cell_idx)
    cell_off = _i64c(lists.cell_off)
    part_idx = _i64c(lists.part_idx)
    part_off = _i64c(lists.part_off)
    start = _i64c(sink_start)
    count = _i64c(sink_count)
    n_groups = int(start.shape[0])
    lengths = np.diff(cell_off) + np.diff(part_off)
    max_len = int(lengths.max()) if n_groups else 0
    scratch = np.empty((4, max(max_len, 1)), dtype=np.float64)
    inter = int(np.sum(count * lengths)) if n_groups else 0
    return (cell_idx, cell_off, part_idx, part_off, start, count,
            n_groups, scratch, inter)


def f64_eval_lists(pos, pmass, com, cmass, lists, sink_start, sink_count,
                   eps, out_acc, out_pot) -> Tuple[bool, int]:
    """IEEE-double CSR list walk.  Returns ``(done, interactions)``."""
    lib = cnative.load()
    if lib is None or not (_writable(out_acc) and _writable(out_pot)):
        return False, 0
    (cell_idx, cell_off, part_idx, part_off, start, count,
     n_groups, scratch, inter) = _csr_args(lists, sink_start, sink_count)
    if n_groups == 0:
        return True, 0
    pos = _f64c(pos)
    lib.repro_f64_csr(
        _dp(pos), _dp(_f64c(pmass)), _dp(_f64c(com)), _dp(_f64c(cmass)),
        _ip(cell_idx), _ip(cell_off), _ip(part_idx), _ip(part_off),
        _ip(start), _ip(count), n_groups, float(eps) ** 2,
        _dp(scratch[0]), _dp(scratch[1]), _dp(scratch[2]), _dp(scratch[3]),
        _dp(out_acc), _dp(out_pot))
    return True, inter


def _g5_params(eps, numerics, fixed):
    """The reduced-precision constants, or None when the datapath falls
    outside what the compiled kernel models (then use the Python
    pipeline, which is authoritative)."""
    fb = int(numerics.force_fraction_bits)
    if not 1 <= fb <= 52:
        return None
    from repro.grape.numerics import round_mantissa
    eps2q = float(round_mantissa(np.float64(eps) ** 2, fb))
    if fixed is not None:
        use_quant = 1
        xmin = float(fixed.xmin)
        res = float(fixed.resolution)
        qmax = float((1 << int(fixed.bits)) - 1)
    else:
        use_quant, xmin, res, qmax = 0, 0.0, 1.0, 0.0
    return eps2q, fb, use_quant, xmin, res, qmax


def g5_eval_lists(pos, pmass, com, cmass, lists, sink_start, sink_count,
                  eps, out_acc, out_pot, *, numerics, fixed) -> bool:
    """GRAPE-5 datapath CSR list walk, bit-identical per pair to
    :class:`repro.grape.pipeline.G5Pipeline`.  Returns ``done``."""
    lib = cnative.load()
    if lib is None or not (_writable(out_acc) and _writable(out_pot)):
        return False
    params = _g5_params(eps, numerics, fixed)
    if params is None:
        return False
    eps2q, fb, use_quant, xmin, res, qmax = params
    (cell_idx, cell_off, part_idx, part_off, start, count,
     n_groups, scratch, _) = _csr_args(lists, sink_start, sink_count)
    if n_groups == 0:
        return True
    pos = _f64c(pos)
    lib.repro_g5_csr(
        _dp(pos), _dp(_f64c(pmass)), _dp(_f64c(com)), _dp(_f64c(cmass)),
        _ip(cell_idx), _ip(cell_off), _ip(part_idx), _ip(part_off),
        _ip(start), _ip(count), n_groups, eps2q, fb,
        use_quant, xmin, res, qmax,
        _dp(scratch[0]), _dp(scratch[1]), _dp(scratch[2]), _dp(scratch[3]),
        _dp(out_acc), _dp(out_pot))
    return True


def f64_pairwise(xi, xj, mj, eps
                 ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Dense one-shot IEEE-double call; ``None`` → use the NumPy path."""
    lib = cnative.load()
    if lib is None:
        return None
    xi = _f64c(xi)
    xj = _f64c(xj)
    mj = _f64c(mj)
    n_i, n_j = int(xi.shape[0]), int(xj.shape[0])
    acc = np.empty((n_i, 3), dtype=np.float64)
    pot = np.empty(n_i, dtype=np.float64)
    if n_i == 0:
        return acc, pot
    if n_j == 0:
        acc[:] = 0.0
        pot[:] = 0.0
        return acc, pot
    lib.repro_f64_pairwise(_dp(xi), n_i, _dp(xj), _dp(mj), n_j,
                           float(eps) ** 2, _dp(acc), _dp(pot))
    return acc, pot


def g5_pairwise(xi, xj, mj, eps, *, numerics, fixed
                ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Dense one-shot GRAPE-datapath call; ``None`` → use G5Pipeline."""
    lib = cnative.load()
    if lib is None:
        return None
    params = _g5_params(eps, numerics, fixed)
    if params is None:
        return None
    eps2q, fb, use_quant, xmin, res, qmax = params
    xi = _f64c(xi)
    xj = _f64c(xj)
    mj = _f64c(mj)
    n_i, n_j = int(xi.shape[0]), int(xj.shape[0])
    acc = np.empty((n_i, 3), dtype=np.float64)
    pot = np.empty(n_i, dtype=np.float64)
    if n_i == 0:
        return acc, pot
    if n_j == 0:
        acc[:] = 0.0
        pot[:] = 0.0
        return acc, pot
    scratch = np.empty((4, n_j), dtype=np.float64)
    lib.repro_g5_pairwise(
        _dp(xi), n_i, _dp(xj), _dp(mj), n_j, eps2q, fb,
        use_quant, xmin, res, qmax,
        _dp(scratch[0]), _dp(scratch[1]), _dp(scratch[2]), _dp(scratch[3]),
        _dp(acc), _dp(pot))
    return acc, pot
