"""The declarative benchmark registry.

Every experiment in ``benchmarks/bench_*.py`` declares itself with
the :func:`register` decorator::

    from repro.bench import register

    @register("e5_headline", tier="fast", section="5",
              summary="the section-5 headline accounting")
    def test_e5_headline(benchmark, cosmo_snapshot, results_dir):
        ...

The decorator is transparent: it returns the function unchanged, so
the benchmark files remain ordinary pytest suites (``pytest
benchmarks/`` still collects and runs them with the real
pytest-benchmark fixture).  The registry records, per benchmark:

* a unique ``id`` and the ``experiment`` family it belongs to
  (``e1`` .. ``e13``, derived from the id);
* a ``tier`` -- ``"fast"`` runs in CI on every push, ``"slow"``
  only in full local evaluations;
* the function and the names of the workload fixtures it consumes
  (taken from its signature; resolved by the runner against
  :mod:`repro.bench.workloads`).

:func:`discover` imports the suite directory (default:
``<repo>/benchmarks``) so the decorators populate the registry.
"""

from __future__ import annotations

import importlib
import importlib.util
import inspect
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["TIERS", "BenchmarkSpec", "register", "discover",
           "all_specs", "get_spec", "select_specs", "suite_dir",
           "clear_registry"]

#: Valid benchmark tiers, cheapest first.
TIERS = ("fast", "slow")

_EXPERIMENT_RE = re.compile(r"^(e\d+)")

#: The global id -> spec mapping populated by :func:`register`.
_REGISTRY: Dict[str, "BenchmarkSpec"] = {}


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark: identity, tier and entry point."""

    id: str
    func: Callable
    tier: str
    section: str = ""
    summary: str = ""
    #: Fixture parameter names the runner must supply (signature order).
    params: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def experiment(self) -> str:
        """The experiment family (``e1`` .. ``e13``) this id belongs to."""
        m = _EXPERIMENT_RE.match(self.id)
        return m.group(1) if m else self.id

    @property
    def module(self) -> str:
        """Module name the benchmark function was defined in."""
        return self.func.__module__

    def describe(self) -> Dict[str, str]:
        """One row of ``repro bench list`` output."""
        return {"id": self.id, "tier": self.tier,
                "experiment": self.experiment,
                "section": self.section or "-",
                "summary": self.summary}


def register(id: str, *, tier: str = "slow", section: str = "",
             summary: str = "") -> Callable[[Callable], Callable]:
    """Class-of-1999 decorator: declare a benchmark to the registry.

    Returns the function unchanged so pytest collection is unaffected.
    Registration is idempotent for the same (id, qualified name) --
    re-importing a benchmark module (pytest and the runner may both
    import it) must not raise -- but a second *different* function
    claiming an existing id is a programming error.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")

    def deco(func: Callable) -> Callable:
        prev = _REGISTRY.get(id)
        if prev is not None and prev.func.__qualname__ != func.__qualname__:
            raise ValueError(
                f"benchmark id {id!r} already registered by "
                f"{prev.func.__qualname__}")
        params = tuple(inspect.signature(func).parameters)
        _REGISTRY[id] = BenchmarkSpec(id=id, func=func, tier=tier,
                                      section=section, summary=summary,
                                      params=params)
        return func

    return deco


def clear_registry() -> None:
    """Empty the registry (test isolation helper)."""
    _REGISTRY.clear()


def suite_dir() -> Path:
    """The default benchmark-suite directory: ``<repo>/benchmarks``."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def discover(directory: Optional[Path] = None,
             pattern: str = "bench_*.py") -> List[str]:
    """Import every benchmark module so its decorators register.

    The suite directory is prepended to ``sys.path`` for the duration
    (the modules import their shared ``conftest`` helpers by name).
    Returns the sorted list of registered benchmark ids.
    """
    directory = Path(directory) if directory else suite_dir()
    if not directory.is_dir():
        raise FileNotFoundError(f"benchmark suite not found: {directory}")
    path_entry = str(directory)
    added = path_entry not in sys.path
    if added:
        sys.path.insert(0, path_entry)
    try:
        for mod_path in sorted(directory.glob(pattern)):
            name = mod_path.stem
            module = sys.modules.get(name)
            if module is not None and getattr(
                    module, "__file__", None) not in (None,
                                                      str(mod_path)):
                raise ImportError(
                    f"module name collision for {name!r}: "
                    f"{module.__file__} vs {mod_path}")
            if module is None:
                importlib.import_module(name)
    finally:
        if added:
            sys.path.remove(path_entry)
    return sorted(_REGISTRY)


def all_specs() -> List[BenchmarkSpec]:
    """Every registered spec, ordered by experiment number then id."""
    def key(s: BenchmarkSpec):
        m = _EXPERIMENT_RE.match(s.id)
        return (int(m.group(1)[1:]) if m else 99, s.id)
    return sorted(_REGISTRY.values(), key=key)


def get_spec(id: str) -> BenchmarkSpec:
    """Look one benchmark up by id (KeyError lists what exists)."""
    try:
        return _REGISTRY[id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(registry empty)"
        raise KeyError(f"unknown benchmark {id!r}; known: {known}") from None


def select_specs(ids: Sequence[str] = (), tier: Optional[str] = None
                 ) -> List[BenchmarkSpec]:
    """Resolve a CLI selection: explicit ids win; else filter by tier.

    ``tier=None`` (or ``"full"``) selects everything.  Explicit ids may
    also name an experiment family (``e5`` selects ``e5_headline`` and
    ``e5_ratio_vs_ng``).
    """
    if ids:
        out: List[BenchmarkSpec] = []
        for ident in ids:
            if ident in _REGISTRY:
                out.append(_REGISTRY[ident])
                continue
            family = [s for s in all_specs() if s.experiment == ident]
            if not family:
                raise KeyError(get_spec(ident))  # raises with known ids
            out.extend(family)
        return out
    specs = all_specs()
    if tier in (None, "full"):
        return specs
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected "
                         f"{TIERS + ('full',)}")
    return [s for s in specs if s.tier == tier]
