"""repro.bench -- the unified benchmark harness.

The paper's headline claim is a *measured* one (2.90e13 interactions
in 30,141 s, 36.4 Gflops raw, $7.0/Mflops), so this repository treats
measurements as reproducible artifacts rather than console printouts.
``repro.bench`` provides:

``repro.bench.registry``
    A declarative registry.  Each experiment in ``benchmarks/`` is
    declared with :func:`register` (``@register("e5_headline",
    tier="fast", ...)``) and discovered by importing the
    ``bench_e*.py`` suite; the decorated functions stay ordinary
    pytest tests, so ``pytest benchmarks/`` keeps working unchanged.
``repro.bench.runner``
    One runner for every experiment: warmup/repeat control, robust
    statistics (median + IQR over rounds), per-benchmark status, and
    opt-in profiling (cProfile dump + top-N hot-path table +
    ``repro.obs`` phase timers).
``repro.bench.fingerprint``
    The machine/commit fingerprint embedded in every result document.
``repro.bench.schema``
    The versioned JSON result schema (``repro.bench_result/v1``),
    emitted as ``BENCH_PR4.json`` by default.
``repro.bench.compare``
    The regression gate: diff a run against a stored baseline and
    fail past configurable thresholds.

CLI::

    python -m repro bench list
    python -m repro bench run --tier fast --out BENCH_PR4.json
    python -m repro bench run e5_headline --compare baseline
    python -m repro bench compare BENCH_PR4.json benchmarks/baselines/fast.json
    python -m repro bench report BENCH_PR4.json

See ``docs/benchmarking.md`` for the full protocol, schema reference
and baseline update policy.
"""

from .compare import ComparisonReport, Thresholds, compare_documents
from .fingerprint import fingerprints_comparable, machine_fingerprint
from .registry import (BenchmarkSpec, all_specs, discover, get_spec,
                       register, select_specs)
from .runner import BenchTimer, RunnerConfig, current_tracer, run_benchmarks
from .schema import (SCHEMA_VERSION, SchemaError, load_document,
                     validate_document, write_document)

__all__ = [
    "BenchmarkSpec", "register", "discover", "all_specs", "get_spec",
    "select_specs",
    "BenchTimer", "RunnerConfig", "run_benchmarks", "current_tracer",
    "machine_fingerprint", "fingerprints_comparable",
    "SCHEMA_VERSION", "SchemaError", "validate_document",
    "load_document", "write_document",
    "Thresholds", "ComparisonReport", "compare_documents",
]
