"""The versioned benchmark result schema (``repro.bench_result/v1``).

One run of the harness emits one JSON document (``BENCH_PR4.json`` by
default)::

    {
      "schema": "repro.bench_result/v1",
      "fingerprint": { ... machine_fingerprint() ... },
      "config": {"tier": "fast", "rounds": null, "warmup": 0,
                 "profile": false},
      "results": [
        {
          "id": "e5_headline",
          "experiment": "e5",
          "tier": "fast",
          "status": "ok",            # ok | failed | error | skipped
          "error": null,             # traceback summary when not ok
          "wall_seconds": {
            "rounds": [..],          # per-round seconds, chronological
            "median": .., "iqr": .., "mean": ..,
            "min": .., "max": .., "n_rounds": ..
          },
          "metrics": {"effective_gflops": 5.90, ...}  # benchmark-defined
        }, ...
      ]
    }

The document is self-describing (``schema`` key) and validated
structurally by :func:`validate_document` -- a dependency-free check
that every consumer (the compare gate, the report formatter, CI) runs
before trusting a file.  Schema evolution policy: additive fields are
allowed within ``v1``; renames or semantic changes bump the version.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["SCHEMA_VERSION", "STATUSES", "SchemaError", "wall_stats",
           "make_document", "validate_document", "load_document",
           "write_document"]

#: The current document version tag.
SCHEMA_VERSION = "repro.bench_result/v1"

#: Valid per-benchmark statuses.
STATUSES = ("ok", "failed", "error", "skipped")


class SchemaError(ValueError):
    """A document does not conform to ``repro.bench_result/v1``."""


def wall_stats(rounds: Sequence[float]) -> Dict[str, Any]:
    """Robust statistics over per-round wall times.

    Median and IQR are the headline numbers (outlier-resistant on
    shared machines); mean/min/max ride along for context.  An empty
    round list (a benchmark that errored before timing) yields zeros.
    """
    xs = sorted(float(x) for x in rounds)
    if not xs:
        return {"rounds": [], "n_rounds": 0, "median": 0.0, "iqr": 0.0,
                "mean": 0.0, "min": 0.0, "max": 0.0}

    def quantile(q: float) -> float:
        # linear interpolation between closest ranks
        pos = q * (len(xs) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)

    return {
        "rounds": [float(x) for x in rounds],
        "n_rounds": len(xs),
        "median": quantile(0.5),
        "iqr": quantile(0.75) - quantile(0.25),
        "mean": sum(xs) / len(xs),
        "min": xs[0],
        "max": xs[-1],
    }


def make_document(fingerprint: Dict[str, Any], config: Dict[str, Any],
                  results: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble (and validate) a complete result document."""
    doc = {"schema": SCHEMA_VERSION, "fingerprint": fingerprint,
           "config": config, "results": results}
    validate_document(doc)
    return doc


def _require(cond: bool, path: str, message: str) -> None:
    if not cond:
        raise SchemaError(f"{path}: {message}")


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float))
             and not isinstance(value, bool), path, "expected a number")


def validate_document(doc: Any) -> Dict[str, Any]:
    """Structurally validate a ``repro.bench_result/v1`` document.

    Returns the document on success; raises :class:`SchemaError` with
    the offending JSON path on the first violation.  Unknown *extra*
    keys are permitted everywhere (additive evolution within v1).
    """
    _require(isinstance(doc, dict), "$", "expected an object")
    _require(doc.get("schema") == SCHEMA_VERSION, "$.schema",
             f"expected {SCHEMA_VERSION!r}, got {doc.get('schema')!r}")
    _require(isinstance(doc.get("fingerprint"), dict), "$.fingerprint",
             "expected an object")
    _require(isinstance(doc.get("config"), dict), "$.config",
             "expected an object")
    results = doc.get("results")
    _require(isinstance(results, list), "$.results", "expected an array")
    seen = set()
    for i, r in enumerate(results):
        p = f"$.results[{i}]"
        _require(isinstance(r, dict), p, "expected an object")
        _require(isinstance(r.get("id"), str) and r["id"], f"{p}.id",
                 "expected a non-empty string")
        _require(r["id"] not in seen, f"{p}.id",
                 f"duplicate benchmark id {r['id']!r}")
        seen.add(r["id"])
        _require(isinstance(r.get("experiment"), str),
                 f"{p}.experiment", "expected a string")
        _require(isinstance(r.get("tier"), str), f"{p}.tier",
                 "expected a string")
        _require(r.get("status") in STATUSES, f"{p}.status",
                 f"expected one of {STATUSES}, got {r.get('status')!r}")
        _require(r.get("error") is None or isinstance(r["error"], str),
                 f"{p}.error", "expected null or a string")
        w = r.get("wall_seconds")
        _require(isinstance(w, dict), f"{p}.wall_seconds",
                 "expected an object")
        _require(isinstance(w.get("rounds"), list),
                 f"{p}.wall_seconds.rounds", "expected an array")
        for j, x in enumerate(w["rounds"]):
            _check_number(x, f"{p}.wall_seconds.rounds[{j}]")
        for key in ("median", "iqr", "mean", "min", "max"):
            _check_number(w.get(key), f"{p}.wall_seconds.{key}")
        _require(isinstance(w.get("n_rounds"), int),
                 f"{p}.wall_seconds.n_rounds", "expected an integer")
        _require(w["n_rounds"] == len(w["rounds"]),
                 f"{p}.wall_seconds.n_rounds",
                 "does not match len(rounds)")
        metrics = r.get("metrics")
        _require(isinstance(metrics, dict), f"{p}.metrics",
                 "expected an object")
        for k, v in metrics.items():
            _require(isinstance(k, str), f"{p}.metrics", "string keys")
            _require(v is None or isinstance(v, (bool, int, float, str)),
                     f"{p}.metrics[{k!r}]",
                     "expected a JSON scalar")
    return doc


def load_document(path) -> Dict[str, Any]:
    """Read + validate a result document from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return validate_document(doc)
    except SchemaError as exc:
        raise SchemaError(f"{path}: {exc}") from None


def write_document(path, doc: Dict[str, Any]) -> Path:
    """Validate + write a result document (stable key order, trailing
    newline) and return the path."""
    validate_document(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path
