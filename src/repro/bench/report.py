"""Human-readable rendering of a benchmark result document.

``repro bench report BENCH_PR4.json`` (and the tail of ``repro bench
run``) print one table row per benchmark -- status, robust wall-time
statistics, and the headline metrics the benchmark recorded -- plus
the fingerprint line identifying where the numbers were taken.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..perf.report import format_table

__all__ = ["format_document", "fingerprint_line"]

#: Metrics surfaced in the summary table when a benchmark recorded
#: them (the e5 headline quantities).
_HEADLINE_METRICS = ("interactions_per_second", "effective_gflops",
                     "usd_per_mflops")


def fingerprint_line(doc: Dict[str, Any]) -> str:
    """One-line machine/commit identity of a result document."""
    fp = doc.get("fingerprint", {})
    commit = (fp.get("git_commit") or "?")[:12]
    dirty = "+dirty" if fp.get("git_dirty") else ""
    return (f"{fp.get('hostname', '?')} | {fp.get('machine', '?')} "
            f"x{fp.get('cpu_count', '?')} | "
            f"python {fp.get('python', '?')} / "
            f"numpy {fp.get('numpy', '?')} | "
            f"repro {fp.get('repro_version', '?')} "
            f"@ {commit}{dirty}")


def format_document(doc: Dict[str, Any]) -> str:
    """Render a validated result document as an aligned table."""
    rows: List[Dict[str, Any]] = []
    for r in doc["results"]:
        w = r["wall_seconds"]
        row: Dict[str, Any] = {
            "id": r["id"],
            "tier": r["tier"],
            "status": r["status"],
            "rounds": w["n_rounds"],
            "median [s]": f"{w['median']:.4g}",
            "iqr [s]": f"{w['iqr']:.2g}",
        }
        extras = []
        for name in _HEADLINE_METRICS:
            value = r["metrics"].get(name)
            if isinstance(value, (int, float)):
                extras.append(f"{name}={value:.4g}")
        row["metrics"] = " ".join(extras) if extras else "-"
        rows.append(row)
    header = (f"schema {doc['schema']} | tier "
              f"{doc['config'].get('tier', '?')}\n"
              f"{fingerprint_line(doc)}\n")
    counts: Dict[str, int] = {}
    for r in doc["results"]:
        counts[r["status"]] = counts.get(r["status"], 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    return (header + format_table(rows)
            + f"\n{len(doc['results'])} benchmark(s): {summary or 'none'}")
