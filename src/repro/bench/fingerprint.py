"""The machine/commit fingerprint embedded in every result document.

A benchmark number without its machine is not a measurement.  The
fingerprint records where a run happened (host, platform, CPU count,
interpreter and library versions) and what code ran (package version,
git commit, dirty flag).  It is deliberately time-free: two calls on
the same checkout of the same machine return the same dictionary, so
documents can be compared field-by-field ("fingerprint stability").

:func:`fingerprints_comparable` is the compare gate's notion of "same
machine": wall-clock thresholds are only *enforced* between
comparable fingerprints; across machines they downgrade to warnings
(the scale-free model metrics still gate hard).
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
from pathlib import Path
from typing import Dict, Optional

__all__ = ["machine_fingerprint", "fingerprints_comparable",
           "MACHINE_KEYS"]

#: Fingerprint fields that must agree for two runs to be considered
#: wall-clock comparable.
MACHINE_KEYS = ("hostname", "machine", "cpu_count", "python")


def _git(*argv: str) -> Optional[str]:
    """One git query against the repo this package lives in (None when
    git or the repository is unavailable -- e.g. an installed wheel)."""
    repo = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(["git", "-C", str(repo), *argv],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def machine_fingerprint() -> Dict[str, object]:
    """The machine + code identity of the current process.

    Every field is deterministic for a fixed checkout on a fixed
    machine; nothing here depends on wall-clock time.
    """
    import numpy

    try:
        import scipy
        scipy_version: Optional[str] = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep
        scipy_version = None
    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover
        repro_version = None

    status = _git("status", "--porcelain")
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "repro_version": repro_version,
        "git_commit": _git("rev-parse", "HEAD"),
        "git_dirty": bool(status) if status is not None else None,
    }


def fingerprints_comparable(a: Dict[str, object], b: Dict[str, object]
                            ) -> bool:
    """True when two fingerprints describe the same machine class.

    Used by the compare gate to decide whether wall-clock thresholds
    are enforceable (:data:`MACHINE_KEYS` must all agree).
    """
    return all(a.get(k) == b.get(k) for k in MACHINE_KEYS)
