"""Shared, cached benchmark workloads.

The benchmark suite reproduces the paper's tables on *scaled*
workloads (pure-Python traversal cannot run 2.9e13 interactions);
these providers build each workload once per process and hand the same
object to every benchmark that asks -- exactly the session-fixture
semantics the pytest suite has always had.  ``benchmarks/conftest.py``
and the standalone runner both resolve fixtures here, so the two entry
points share one implementation (and one cache).

A provider is any zero-argument callable registered in
:data:`PROVIDERS`; the runner resolves a benchmark's signature
parameters against this mapping by name.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict

__all__ = ["PROVIDERS", "workload", "cosmo_snapshot", "plummer_snapshot",
           "evolved_sphere_z0", "periodic_workload"]


@lru_cache(maxsize=None)
def cosmo_snapshot():
    """A clustered cosmological sphere: N ~ 11.5k, evolved z 24 -> 3.

    Scaled stand-in for the paper's mid-run states; used by the
    accuracy (E2), group-size (E3), headline (E5) and algorithm-
    comparison (E7) benchmarks.  Returns ``(pos, mass, eps)``.
    """
    from repro.core import TreeCode
    from repro.cosmo import SCDM, ZeldovichIC, carve_sphere
    from repro.sim import Simulation, paper_schedule

    ic = ZeldovichIC(box=100.0, ngrid=28, seed=1999)
    region = carve_sphere(ic, radius=50.0, z_init=24.0)
    sim = Simulation.from_sphere(
        region, force=TreeCode(theta=0.75, n_crit=256))
    sim.t = SCDM.age(24.0)
    sim.run(paper_schedule(SCDM, 24.0, 3.0, 12, spacing="loga"))
    return sim.pos.copy(), sim.mass.copy(), sim.eps


@lru_cache(maxsize=None)
def plummer_snapshot():
    """An isolated Plummer sphere, N = 4096 (E2 accuracy workload)."""
    import numpy as np

    from repro.sim.models import plummer_model

    rng = np.random.default_rng(4096)
    pos, _, mass = plummer_model(4096, rng)
    return pos, mass, 0.01


@lru_cache(maxsize=None)
def evolved_sphere_z0():
    """The figure-4 run: N ~ 7200 sphere evolved z = 24 -> 0 on the
    emulated GRAPE.  Shared by E6 (the slab/correlation figures) and
    E11 (the halo catalogue).  Returns ``(sim, backend)``.
    """
    from repro.core import TreeCode
    from repro.cosmo import SCDM, ZeldovichIC, carve_sphere
    from repro.grape import GrapeBackend
    from repro.sim import Simulation, paper_schedule

    ic = ZeldovichIC(box=100.0, ngrid=24, seed=1999)
    region = carve_sphere(ic, radius=50.0, z_init=24.0)
    backend = GrapeBackend()
    sim = Simulation.from_sphere(
        region, force=TreeCode(theta=0.75, n_crit=256, backend=backend))
    sim.t = SCDM.age(24.0)
    # log-a spacing: with only 60 steps (vs the paper's 999) the
    # uniform-in-t plan under-resolves the early expansion (the first
    # step would be ~2x the initial age) -- see repro.sim.timestep
    sim.run(paper_schedule(SCDM, 24.0, 0.0, 60, spacing="loga"))
    return sim, backend


@lru_cache(maxsize=None)
def periodic_workload():
    """A clustered periodic box plus its Ewald-exact reference forces
    (E12).  Returns ``(pos, mass, eps, table, ref)`` in box units.
    """
    import numpy as np

    from repro.cosmo import ZeldovichIC
    from repro.cosmo.ewald import (EwaldCorrectionTable,
                                   PeriodicDirectSummation)

    box, n_side = 1.0, 12  # 1728 particles
    # clustered positions: Zel'dovich realisation wrapped into the box
    # (pre-shell-crossing epoch, plus softening: an unsoftened
    # shell-crossed workload is singular for every pairwise solver)
    ic = ZeldovichIC(box=100.0, ngrid=n_side, seed=12)
    x, _ = ic.comoving(4.0)
    pos = np.mod(x / 100.0, 1.0) * box
    n = pos.shape[0]
    mass = np.full(n, 1.0 / n)
    eps = 0.25 * box / n_side
    table = EwaldCorrectionTable(box)
    ref, _ = PeriodicDirectSummation(
        box=box, table=table).accelerations(pos, mass, eps)
    return pos, mass, eps, table, ref


#: Name -> provider mapping the runner resolves signatures against.
PROVIDERS: Dict[str, Callable] = {
    "cosmo_snapshot": cosmo_snapshot,
    "plummer_snapshot": plummer_snapshot,
    "evolved_sphere_z0": evolved_sphere_z0,
    "periodic_workload": periodic_workload,
}


def workload(name: str):
    """Build (or fetch the cached) workload ``name``."""
    try:
        provider = PROVIDERS[name]
    except KeyError:
        known = ", ".join(sorted(PROVIDERS))
        raise KeyError(f"unknown workload {name!r}; known: {known}"
                       ) from None
    return provider()
