"""The benchmark runner: one timing protocol for every experiment.

The runner executes registered :class:`~repro.bench.registry.BenchmarkSpec`
functions outside pytest.  It supplies, by signature-parameter name:

``benchmark``
    A :class:`BenchTimer` -- API-compatible with the pytest-benchmark
    fixture (``benchmark(fn)``, ``benchmark.pedantic(...)``,
    ``benchmark.extra_info``) so the suite runs identically under
    pytest and under ``repro bench run``.  The runner controls warmup
    and repeat counts centrally; per-round wall times feed the robust
    statistics (median + IQR) of the result document.
``results_dir``
    ``benchmarks/results/`` -- the same table/figure artifact
    directory the pytest path uses.
anything else
    A cached workload from :mod:`repro.bench.workloads`.

Profiling is opt-in per run: each benchmark executes under cProfile,
a ``.prof`` dump lands next to the results, a top-N cumulative-time
table is attached to the result, and a fresh :class:`repro.obs.Tracer`
is exposed through :func:`current_tracer` so instrumented benchmarks
contribute a per-phase wall-time table.
"""

from __future__ import annotations

import contextvars
import cProfile
import io
import pstats
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence)

from .fingerprint import machine_fingerprint
from .registry import BenchmarkSpec, suite_dir
from .schema import make_document, wall_stats
from .workloads import PROVIDERS, workload

__all__ = ["BenchTimer", "RunnerConfig", "run_benchmarks",
           "current_tracer", "current_kernels", "current_cluster"]

#: Tracer handed to benchmarks while profiling (NULL_TRACER otherwise).
_TRACER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_bench_tracer", default=None)

#: Kernel-set name selected by ``repro bench run --kernels``.
_KERNELS: contextvars.ContextVar = contextvars.ContextVar(
    "repro_bench_kernels", default=None)

#: (hosts, boards) selected by ``repro bench run --hosts/--boards``.
_CLUSTER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_bench_cluster", default=None)


def current_tracer():
    """The tracer of the benchmark being run (a no-op tracer unless the
    runner was invoked with profiling enabled).

    Benchmark bodies pass this to ``TreeCode(tracer=...)`` etc.; under
    plain pytest it returns the shared no-op tracer, so instrumented
    benchmarks cost nothing there.
    """
    tracer = _TRACER.get()
    if tracer is None:
        from repro.obs import NULL_TRACER
        return NULL_TRACER
    return tracer


def current_kernels() -> str:
    """The kernel-set name of the benchmark run in progress.

    ``repro bench run --kernels numpy`` routes the selection here;
    benchmark bodies pass it to ``TreeCode(kernels=...)``.  Under plain
    pytest (or with no ``--kernels`` flag) it returns ``"python"``, the
    reference set, so results stay comparable to earlier releases
    unless a mode is requested explicitly.
    """
    return _KERNELS.get() or "python"


def current_cluster():
    """The ``(hosts, boards)`` cluster shape of the run in progress.

    ``repro bench run --hosts K --boards B`` routes the selection
    here; cluster-aware benchmark bodies turn it into a
    :class:`repro.cluster.ClusterSpec`.  Returns ``None`` under plain
    pytest or when neither flag was given -- the single-host path.
    """
    return _CLUSTER.get()


class BenchTimer:
    """pytest-benchmark-compatible timing proxy under runner control.

    The measured callable is invoked ``warmup`` times untimed, then
    ``rounds`` times timed (each round averaging ``iterations`` calls).
    ``rounds``/``warmup`` given by the benchmark (via
    :meth:`pedantic`) act as defaults; a runner override wins.  The
    last return value of the measured callable is handed back, and
    per-round seconds accumulate in :attr:`times`.
    """

    #: Rounds used for plain ``benchmark(fn)`` calls with no override.
    DEFAULT_ROUNDS = 5

    def __init__(self, rounds: Optional[int] = None,
                 warmup: Optional[int] = None) -> None:
        """Runner-level overrides win over per-benchmark settings."""
        self.rounds_override = rounds
        self.warmup_override = warmup
        self.times: List[float] = []
        self.extra_info: Dict[str, Any] = {}

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return self.pedantic(fn, args=args, kwargs=kwargs,
                             rounds=self.DEFAULT_ROUNDS)

    @property
    def stats(self) -> Dict[str, Any]:
        """Robust statistics over the rounds timed so far (subscript
        access -- ``benchmark.stats["mean"]`` -- like pytest-benchmark)."""
        return wall_stats(self.times)

    def pedantic(self, fn: Callable, args: Sequence[Any] = (),
                 kwargs: Optional[Dict[str, Any]] = None, *,
                 rounds: int = 1, iterations: int = 1,
                 warmup_rounds: int = 0) -> Any:
        """Run ``fn`` under explicit warmup/repeat control and return
        its last result (the pytest-benchmark ``pedantic`` contract).
        """
        kwargs = kwargs or {}
        rounds = self.rounds_override or rounds
        warmup = (self.warmup_override
                  if self.warmup_override is not None else warmup_rounds)
        result = None
        for _ in range(max(0, warmup)):
            result = fn(*args, **kwargs)
        for _ in range(max(1, rounds)):
            t0 = time.perf_counter()
            for _ in range(max(1, iterations)):
                result = fn(*args, **kwargs)
            self.times.append(
                (time.perf_counter() - t0) / max(1, iterations))
        return result


@dataclass
class RunnerConfig:
    """Knobs of one ``repro bench run`` invocation."""

    #: Tier filter recorded in the document ("fast", "slow", "full").
    tier: Optional[str] = None
    #: Override every benchmark's round count (None: per-benchmark).
    rounds: Optional[int] = None
    #: Extra untimed warmup invocations before timing (None: as coded).
    warmup: Optional[int] = None
    #: Enable cProfile + obs phase timers per benchmark.
    profile: bool = False
    #: Kernel-set selection exposed via :func:`current_kernels`
    #: (None: the "python" reference set).
    kernels: Optional[str] = None
    #: Emulated cluster hosts exposed via :func:`current_cluster`
    #: (None: single host).
    hosts: Optional[int] = None
    #: Boards per emulated host for :func:`current_cluster`.
    boards: Optional[int] = None
    #: Rows of the cProfile top-N hot-path table.
    profile_top: int = 15
    #: Artifact directory (tables, .prof dumps); default
    #: ``benchmarks/results``.
    results_dir: Optional[Path] = None
    #: Progress callback ``(spec, result_row_or_None)``; called before
    #: (row=None) and after each benchmark.
    progress: Optional[Callable] = None

    def as_json(self) -> Dict[str, Any]:
        """The ``config`` section of the result document."""
        out = {"tier": self.tier or "full", "rounds": self.rounds,
               "warmup": self.warmup, "profile": self.profile,
               "kernels": self.kernels or "python"}
        if self.hosts is not None or self.boards is not None:
            out["hosts"] = self.hosts if self.hosts is not None else 1
            out["boards"] = self.boards if self.boards is not None else 2
        return out


def _resolve_params(spec: BenchmarkSpec, timer: BenchTimer,
                    results_dir: Path) -> List[Any]:
    """Build the argument list for a benchmark from its signature."""
    args: List[Any] = []
    for name in spec.params:
        if name == "benchmark":
            args.append(timer)
        elif name == "results_dir":
            args.append(results_dir)
        elif name in PROVIDERS:
            args.append(workload(name))
        else:
            raise KeyError(
                f"benchmark {spec.id!r} requests unknown fixture "
                f"{name!r}; known: benchmark, results_dir, "
                f"{', '.join(sorted(PROVIDERS))}")
    return args


def _profile_tables(profiler: cProfile.Profile, tracer,
                    top: int) -> str:
    """Render the opt-in profiling output: cProfile top-N (by
    cumulative time) plus the obs per-phase wall-time table when the
    benchmark routed spans through :func:`current_tracer`."""
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    text = buf.getvalue()
    spans = list(tracer.iter_spans()) if tracer is not None else []
    if spans:
        from repro.obs.export import format_phase_table
        text += "\nper-phase wall time (repro.obs):\n"
        text += format_phase_table(tracer) + "\n"
    return text


def _run_one(spec: BenchmarkSpec, config: RunnerConfig,
             results_dir: Path) -> Dict[str, Any]:
    """Execute one benchmark; never raises (failures land in the row)."""
    timer = BenchTimer(rounds=config.rounds, warmup=config.warmup)
    status, error = "ok", None
    tracer = None
    profiler = None
    token = None
    ktoken = _KERNELS.set(config.kernels)
    cluster = None
    if config.hosts is not None or config.boards is not None:
        cluster = (config.hosts if config.hosts is not None else 1,
                   config.boards if config.boards is not None else 2)
    ctoken = _CLUSTER.set(cluster)
    if config.profile:
        from repro.obs import Tracer
        tracer = Tracer()
        token = _TRACER.set(tracer)
        profiler = cProfile.Profile()
    t0 = time.perf_counter()
    try:
        args = _resolve_params(spec, timer, results_dir)
        if profiler is not None:
            profiler.enable()
        try:
            spec.func(*args)
        finally:
            if profiler is not None:
                profiler.disable()
    except AssertionError:
        status, error = "failed", traceback.format_exc(limit=3)
    except Exception:
        status, error = "error", traceback.format_exc(limit=3)
    finally:
        if token is not None:
            _TRACER.reset(token)
        _KERNELS.reset(ktoken)
        _CLUSTER.reset(ctoken)
    total = time.perf_counter() - t0

    # a benchmark that never called the timer is still a measurement:
    # fall back to its single end-to-end wall time
    rounds = timer.times or ([total] if status == "ok" else [])
    metrics = {k: v for k, v in timer.extra_info.items()
               if v is None or isinstance(v, (bool, int, float, str))}
    row: Dict[str, Any] = {
        "id": spec.id,
        "experiment": spec.experiment,
        "tier": spec.tier,
        "status": status,
        "error": error,
        "wall_seconds": wall_stats(rounds),
        "metrics": metrics,
    }
    row["total_seconds"] = total
    if profiler is not None and status in ("ok", "failed"):
        prof_dir = results_dir / "profiles"
        prof_dir.mkdir(parents=True, exist_ok=True)
        prof_path = prof_dir / f"{spec.id}.prof"
        profiler.dump_stats(prof_path)
        table = _profile_tables(profiler, tracer, config.profile_top)
        (prof_dir / f"{spec.id}.txt").write_text(table,
                                                 encoding="utf-8")
        row["profile"] = str(prof_path)
    return row


def run_benchmarks(specs: Iterable[BenchmarkSpec],
                   config: Optional[RunnerConfig] = None
                   ) -> Dict[str, Any]:
    """Run a selection of benchmarks and assemble the result document.

    Benchmarks execute in registry order; one benchmark's failure is
    recorded in its row (status ``failed``/``error``) and does not
    stop the rest.  The returned document validates against
    ``repro.bench_result/v1``.
    """
    config = config or RunnerConfig()
    results_dir = Path(config.results_dir or suite_dir() / "results")
    results_dir.mkdir(parents=True, exist_ok=True)
    rows: List[Dict[str, Any]] = []
    for spec in specs:
        if config.progress is not None:
            config.progress(spec, None)
        row = _run_one(spec, config, results_dir)
        rows.append(row)
        if config.progress is not None:
            config.progress(spec, row)
    return make_document(machine_fingerprint(), config.as_json(), rows)
