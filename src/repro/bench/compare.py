"""The regression gate: diff a run against a stored baseline.

Per benchmark id present in both documents, two families of checks:

* **wall clock** (lower is better): the current median wall time must
  not exceed ``baseline_median * Thresholds.wall_ratio``.  Rows where
  both medians sit under ``Thresholds.wall_floor`` are exempt -- at
  microsecond scale the ratio measures timer jitter, not the code.
  Wall-clock numbers only transfer between runs of the same machine
  class, so
  when the two fingerprints are not comparable
  (:func:`repro.bench.fingerprint.fingerprints_comparable`) a wall
  violation is downgraded to a warning unless ``strict_machine`` is
  set -- the baseline update policy in ``docs/benchmarking.md``
  explains when to regenerate baselines instead;
* **gated metrics** (higher is better): any numeric metric whose name
  ends in ``_per_second`` or ``_gflops`` must not drop below
  ``baseline * Thresholds.metric_ratio``.  These are scale-free (the
  e5 model rows are machine-independent by construction), so they
  gate hard on every machine.

A benchmark that is ``ok`` in the baseline but ``failed``/``error``
now is always a regression.  Ids only in the baseline produce
warnings (coverage shrank); new ids are reported informationally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .fingerprint import fingerprints_comparable

__all__ = ["Thresholds", "Finding", "ComparisonReport",
           "compare_documents", "GATED_METRIC_SUFFIXES"]

#: Metric-name suffixes treated as higher-is-better throughputs.
GATED_METRIC_SUFFIXES = ("_per_second", "_gflops")


@dataclass(frozen=True)
class Thresholds:
    """Regression thresholds (ratios against the baseline)."""

    #: Fail when current median wall > baseline median * this.
    wall_ratio: float = 1.5
    #: Fail when a gated metric < baseline value * this.
    metric_ratio: float = 0.7
    #: Skip the wall gate when both medians sit under this many
    #: seconds: ratios of microsecond-scale rows measure timer jitter,
    #: not code (the metric gates still apply there).
    wall_floor: float = 0.01
    #: Enforce wall thresholds even across different machines.
    strict_machine: bool = False

    def __post_init__(self):
        if self.wall_ratio <= 1.0:
            raise ValueError("wall_ratio must exceed 1.0")
        if not 0.0 < self.metric_ratio <= 1.0:
            raise ValueError("metric_ratio must be in (0, 1]")
        if self.wall_floor < 0.0:
            raise ValueError("wall_floor must be >= 0")


@dataclass(frozen=True)
class Finding:
    """One comparison outcome for one benchmark (or one metric)."""

    id: str
    kind: str        # wall | metric | status | coverage
    severity: str    # regression | warning | info | ok
    message: str
    current: Optional[float] = None
    baseline: Optional[float] = None
    ratio: Optional[float] = None


@dataclass
class ComparisonReport:
    """Everything ``repro bench compare`` decides and prints."""

    findings: List[Finding] = field(default_factory=list)
    machine_comparable: bool = True

    @property
    def regressions(self) -> List[Finding]:
        """Findings that make the gate fail."""
        return [f for f in self.findings if f.severity == "regression"]

    @property
    def warnings(self) -> List[Finding]:
        """Non-fatal findings worth reading."""
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        """0 when the gate passes, 1 on any regression."""
        return 1 if self.regressions else 0

    def format(self) -> str:
        """Human-readable gate report, worst findings first."""
        order = {"regression": 0, "warning": 1, "info": 2, "ok": 3}
        lines = []
        if not self.machine_comparable:
            lines.append("note: baseline recorded on a different "
                         "machine -- wall-clock thresholds are "
                         "advisory (see docs/benchmarking.md)")
        for f in sorted(self.findings,
                        key=lambda f: (order[f.severity], f.id)):
            tag = {"regression": "FAIL", "warning": "warn",
                   "info": "info", "ok": "ok  "}[f.severity]
            lines.append(f"[{tag}] {f.id}: {f.message}")
        n_reg = len(self.regressions)
        lines.append(f"{n_reg} regression(s), "
                     f"{len(self.warnings)} warning(s), "
                     f"{len(self.findings)} finding(s) total")
        return "\n".join(lines)


def _rows_by_id(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {r["id"]: r for r in doc["results"]}


def _gated_metrics(row: Dict[str, Any]) -> Dict[str, float]:
    out = {}
    for name, value in row.get("metrics", {}).items():
        if (isinstance(value, (int, float))
                and not isinstance(value, bool)
                and name.endswith(GATED_METRIC_SUFFIXES)):
            out[name] = float(value)
    return out


def compare_documents(current: Dict[str, Any], baseline: Dict[str, Any],
                      thresholds: Optional[Thresholds] = None
                      ) -> ComparisonReport:
    """Compare two validated result documents; never raises on content
    differences -- every divergence becomes a :class:`Finding`."""
    th = thresholds or Thresholds()
    report = ComparisonReport()
    report.machine_comparable = fingerprints_comparable(
        current.get("fingerprint", {}), baseline.get("fingerprint", {}))
    wall_enforced = report.machine_comparable or th.strict_machine

    cur, base = _rows_by_id(current), _rows_by_id(baseline)
    for id_ in sorted(base):
        if id_ not in cur:
            report.findings.append(Finding(
                id=id_, kind="coverage", severity="warning",
                message="present in baseline but missing from this run"))
            continue
        c, b = cur[id_], base[id_]

        if b["status"] == "ok" and c["status"] != "ok":
            report.findings.append(Finding(
                id=id_, kind="status", severity="regression",
                message=f"status {b['status']} -> {c['status']}"))
            continue
        if c["status"] != "ok":
            report.findings.append(Finding(
                id=id_, kind="status", severity="info",
                message=f"status {c['status']} in both runs; skipped"))
            continue

        c_med = c["wall_seconds"]["median"]
        b_med = b["wall_seconds"]["median"]
        below_floor = (c_med < th.wall_floor and b_med < th.wall_floor)
        if below_floor:
            report.findings.append(Finding(
                id=id_, kind="wall", severity="ok",
                message=(f"median wall {c_med:.4g}s (below "
                         f"{th.wall_floor:.3g}s noise floor; "
                         f"ratio not gated)"),
                current=c_med, baseline=b_med))
        elif b_med > 0 and c_med > th.wall_ratio * b_med:
            ratio = c_med / b_med
            report.findings.append(Finding(
                id=id_, kind="wall",
                severity="regression" if wall_enforced else "warning",
                message=(f"median wall {c_med:.4g}s vs baseline "
                         f"{b_med:.4g}s ({ratio:.2f}x > "
                         f"{th.wall_ratio:.2f}x threshold)"),
                current=c_med, baseline=b_med, ratio=ratio))
        else:
            ratio = (c_med / b_med) if b_med > 0 else None
            report.findings.append(Finding(
                id=id_, kind="wall", severity="ok",
                message=(f"median wall {c_med:.4g}s "
                         f"({'%.2fx' % ratio if ratio else 'n/a'} "
                         f"of baseline)"),
                current=c_med, baseline=b_med, ratio=ratio))

        b_metrics = _gated_metrics(b)
        c_metrics = _gated_metrics(c)
        for name, b_val in sorted(b_metrics.items()):
            if name not in c_metrics:
                report.findings.append(Finding(
                    id=id_, kind="metric", severity="warning",
                    message=f"gated metric {name} disappeared"))
                continue
            c_val = c_metrics[name]
            if b_val > 0 and c_val < th.metric_ratio * b_val:
                report.findings.append(Finding(
                    id=id_, kind="metric", severity="regression",
                    message=(f"{name} {c_val:.4g} vs baseline "
                             f"{b_val:.4g} (dropped below "
                             f"{th.metric_ratio:.2f}x)"),
                    current=c_val, baseline=b_val,
                    ratio=c_val / b_val if b_val else None))

    for id_ in sorted(set(cur) - set(base)):
        report.findings.append(Finding(
            id=id_, kind="coverage", severity="info",
            message="new benchmark (not in baseline)"))
    return report
