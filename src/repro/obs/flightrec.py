"""Black-box flight recorder: a bounded ring of recent events.

Chaos postmortems used to mean "rerun it with ``--trace`` and hope
the fault is deterministic enough to re-fire".  The flight recorder
removes the rerun: every job (and every pipeline engine under fault
pressure) keeps a bounded in-memory ring of its most recent
span/metric/fault events, and whenever the fault layer triggers a
recovery -- or the job dies -- the ring is dumped *atomically* as
``flightrec.jsonl`` next to the job's checkpoints.  The last
``capacity`` events before the incident are exactly what a postmortem
needs: which fault fired where, what the recovery ladder decided, and
what the job was doing at the time.

The recorder is deliberately dumb and cheap: a :class:`~collections.
deque` of plain dicts behind a lock, wall-clock stamped, no schema
beyond ``{"t_wall": ..., "kind": ..., **attrs}``.  ``dump`` writes to
a temporary file and :func:`os.replace`-renames it into place, so a
reader never sees a torn file even if the recorder is dumped from a
dying process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of recent events with atomic JSONL dumps.

    Parameters
    ----------
    capacity:
        Events retained; older ones fall off the front (black-box
        semantics -- the *last* moments matter).
    path:
        Default dump destination for :meth:`flush`; may be (re)assigned
        after construction (the scheduler points each job's recorder
        at its workdir).
    clock:
        Injectable wall clock for deterministic tests.
    """

    def __init__(self, capacity: int = 512, *,
                 path: Optional[Union[str, Path]] = None,
                 clock=time.time) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.path = Path(path) if path is not None else None
        self.clock = clock
        self._events: deque = deque(maxlen=self.capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed off the ring since construction."""
        with self._lock:
            return self._dropped

    # -- recording -----------------------------------------------------
    def record(self, kind: str, /, **attrs: Any) -> Dict[str, Any]:
        """Append one event (``kind`` plus arbitrary JSON-able attrs).

        ``kind`` is positional-only so attrs may themselves carry a
        ``kind`` key (e.g. a job spec's workload kind) -- the event's
        own ``kind`` always wins."""
        ev = {"t_wall": self.clock(), **attrs, "kind": str(kind)}
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(ev)
        return ev

    def extend(self, events) -> None:
        """Absorb pre-built event dicts (worker buffers, span events)."""
        with self._lock:
            for ev in events:
                if len(self._events) == self.capacity:
                    self._dropped += 1
                self._events.append(dict(ev))

    # -- inspection ----------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (copies)."""
        with self._lock:
            return [dict(ev) for ev in self._events]

    def count(self, prefix: str) -> int:
        """How many retained events have ``kind`` starting with
        ``prefix`` (e.g. ``"fault"`` matches ``fault.batch``)."""
        with self._lock:
            return sum(1 for ev in self._events
                       if str(ev.get("kind", "")).startswith(prefix))

    # -- dumping -------------------------------------------------------
    def dump(self, path: Union[str, Path]) -> int:
        """Write the ring to ``path`` as JSONL, atomically.

        A header line records the capacity and drop count, then one
        line per event, oldest first.  The write lands in a sibling
        temporary file and is renamed into place, so concurrent
        readers only ever see a complete dump.  Returns the number of
        event lines written.
        """
        path = Path(path)
        events = self.snapshot()
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "flightrec_meta",
                                 "capacity": self.capacity,
                                 "dropped": self._dropped,
                                 "events": len(events)}) + "\n")
            for ev in events:
                fh.write(json.dumps(ev, default=repr) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return len(events)

    def flush(self) -> Optional[int]:
        """Dump to the configured :attr:`path` (no-op without one)."""
        if self.path is None:
            return None
        return self.dump(self.path)
