"""repro.obs -- observability for the treecode/GRAPE stack.

A low-overhead, dependency-free layer that turns the paper's section-5
accounting (phase wall times, interaction counts, list-length
statistics, host-vs-GRAPE attribution) into first-class run artefacts:

``repro.obs.trace``
    Nested wall-time spans with attributes; a shared no-op tracer so
    instrumented hot paths cost nothing when tracing is off.
``repro.obs.metrics``
    Counters, gauges and histograms in a registry with snapshot/reset.
``repro.obs.export``
    JSON-lines events, Prometheus text exposition, the per-phase
    profile table, and the ``repro.run_summary/v1`` JSON schema.

Quick use::

    from repro.obs import Tracer, MetricsRegistry
    from repro.obs.export import format_phase_table

    tracer, metrics = Tracer(), MetricsRegistry()
    tc = TreeCode(theta=0.75, tracer=tracer, metrics=metrics)
    tc.accelerations(pos, mass, eps)
    print(format_phase_table(tracer))

or from the CLI: ``python -m repro run --profile --trace out.jsonl
--metrics out.prom --json-summary out.json``.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_BUCKETS)
from .trace import (NULL_TRACER, NullSpan, NullTracer, Span, Tracer,
                    as_tracer)

__all__ = [
    "Span", "Tracer", "NullSpan", "NullTracer", "NULL_TRACER",
    "as_tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
]
