"""repro.obs -- observability for the treecode/GRAPE stack.

A low-overhead, dependency-free layer that turns the paper's section-5
accounting (phase wall times, interaction counts, list-length
statistics, host-vs-GRAPE attribution) into first-class run artefacts:

``repro.obs.trace``
    Nested wall-time spans with attributes; a shared no-op tracer so
    instrumented hot paths cost nothing when tracing is off.
``repro.obs.context``
    Trace/span identity and the cross-process :class:`SpanContext`
    (pipeline workers and served jobs stitch into one trace).
``repro.obs.metrics``
    Counters, gauges and histograms in a registry with snapshot/reset.
``repro.obs.flightrec``
    The black-box flight recorder: a bounded ring of recent events
    dumped atomically on fault recovery or job death.
``repro.obs.export``
    JSON-lines events, Prometheus text exposition, the per-phase
    profile table, and the ``repro.run_summary/v1`` JSON schema.
``repro.obs.analyze``
    Trace analysis behind ``repro obs``: span-tree rendering, the
    critical path with host/worker/GRAPE attribution, trace diffs.

Quick use::

    from repro.obs import Tracer, MetricsRegistry
    from repro.obs.export import format_phase_table

    tracer, metrics = Tracer(), MetricsRegistry()
    tc = TreeCode(theta=0.75, tracer=tracer, metrics=metrics)
    tc.accelerations(pos, mass, eps)
    print(format_phase_table(tracer))

or from the CLI: ``python -m repro run --profile --trace out.jsonl
--metrics out.prom --json-summary out.json``.
"""

from .context import SpanContext, new_span_id, new_trace_id
from .flightrec import FlightRecorder
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      DEFAULT_BUCKETS)
from .trace import (NULL_TRACER, NullSpan, NullTracer, Span, Tracer,
                    as_tracer)

__all__ = [
    "Span", "Tracer", "NullSpan", "NullTracer", "NULL_TRACER",
    "as_tracer",
    "SpanContext", "new_span_id", "new_trace_id",
    "FlightRecorder",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
]
