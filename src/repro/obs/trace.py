"""Span-based tracing for the treecode/GRAPE stack.

The paper's section-5 accounting is a phase decomposition of wall-clock
time: tree construction, traversal, host direct forces, GRAPE force
time.  :class:`Tracer` makes that decomposition a first-class object --
instrumented code opens nested *spans* (``with tracer.span("tree_build")``)
and every span records its wall time plus arbitrary key/value
attributes.  The resulting span trees feed the exporters in
:mod:`repro.obs.export` (JSONL events, the per-phase profile table).

Instrumentation must cost nothing when unused, so hot paths hold a
tracer unconditionally and the disabled case is the shared
:data:`NULL_TRACER` -- a :class:`NullTracer` whose ``span()`` returns a
single reusable no-op context manager (no allocation, no clock reads).
Library code should accept an optional tracer and normalise it with
:func:`as_tracer`.

The module is dependency-free (stdlib only) and makes no assumptions
about who reads the spans.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from .context import SpanContext, new_span_id, new_trace_id

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer", "NULL_TRACER",
           "as_tracer"]


class Span:
    """One timed phase: a name, a wall-clock interval, attributes and
    child spans.

    Spans are context managers; entering starts the clock and pushes the
    span on its tracer's stack so spans opened inside nest under it.
    """

    __slots__ = ("name", "attrs", "children", "t_start", "t_end",
                 "span_id", "_tracer")

    def __init__(self, name: str, tracer: Optional["Tracer"] = None,
                 attrs: Optional[Dict[str, Any]] = None,
                 span_id: str = "") -> None:
        self.name = str(name)
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.t_start: float = 0.0
        self.t_end: float = 0.0
        #: persistent 64-bit hex identity, assigned by the owning
        #: tracer (empty on spans never attached to a real tracer)
        self.span_id = span_id
        self._tracer = tracer

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.t_start = (self._tracer.clock if self._tracer is not None
                        else time.perf_counter)()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t_end = (self._tracer.clock if self._tracer is not None
                      else time.perf_counter)()
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- data ----------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall seconds between enter and exit (0 while still open)."""
        if self.t_end <= self.t_start:
            return 0.0
        return self.t_end - self.t_start

    @property
    def self_seconds(self) -> float:
        """Duration minus the time covered by child spans."""
        return max(0.0, self.duration
                   - sum(c.duration for c in self.children))

    def set(self, **attrs: Any) -> "Span":
        """Attach key/value attributes; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Pre-order iteration over this span and all descendants."""
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (used by the JSONL exporter).  The hex
        ``sid`` rides along when assigned (the flat exporter keeps its
        own compact integer ``span_id``/``parent_id`` scheme)."""
        d = {
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "n_children": len(self.children),
        }
        if self.span_id:
            d["sid"] = self.span_id
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration:.6f}s, "
                f"{len(self.children)} children)")


class Tracer:
    """Collects span trees from instrumented code.

    Finished top-level spans accumulate in :attr:`roots`; nested spans
    hang off their parents.  ``clock`` is injectable for deterministic
    tests (defaults to :func:`time.perf_counter`).

    Every tracer owns a ``trace_id`` (fresh unless given) and assigns
    each span a persistent hex ``span_id`` when it joins the tree, so
    spans recorded in other processes can be stitched under a known
    parent (see :mod:`repro.obs.context`).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 *, trace_id: Optional[str] = None) -> None:
        self.clock = clock
        self.trace_id = trace_id or new_trace_id()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span management -----------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one phase, nested under the
        currently open span (if any)."""
        return Span(name, tracer=self, attrs=attrs)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None at top level."""
        return self._stack[-1] if self._stack else None

    def record(self, name: str, seconds: float, **attrs: Any) -> Span:
        """Attach an already-measured phase as a completed child span.

        Used for *attribution* timings accumulated across many small
        calls (e.g. total backend kernel seconds inside one evaluation
        sweep) where opening a span per call would dominate the cost.
        The synthetic span ends "now" and is backdated by ``seconds``.
        """
        now = self.clock()
        sp = Span(name, tracer=None, attrs=attrs,
                  span_id=new_span_id())
        sp.t_start = now - max(0.0, float(seconds))
        sp.t_end = now
        self._attach(sp)
        return sp

    def attach(self, span: Span) -> Span:
        """Adopt an externally built, already-finished span (tree).

        The stitching entry point for cross-process tracing: a span
        assembled from worker-recorded timings is attached under the
        currently open span (or as a root at top level), exactly like
        :meth:`record` but with caller-controlled interval and
        children.  Ids are assigned to any span in the subtree that
        lacks one.
        """
        for sp in span.walk():
            if not sp.span_id:
                sp.span_id = new_span_id()
        self._attach(span)
        return span

    def context(self) -> SpanContext:
        """The propagation context of the innermost open span.

        Carries this tracer's ``trace_id``, the current span's id (a
        fresh root id when no span is open) and the current clock
        reading -- everything a worker needs to parent its spans here.
        """
        cur = self.current
        if cur is not None and not cur.span_id:
            cur.span_id = new_span_id()
        return SpanContext(self.trace_id,
                           cur.span_id if cur is not None
                           else new_span_id(),
                           self.clock())

    # -- internals -----------------------------------------------------
    def _push(self, span: Span) -> None:
        if not span.span_id:
            span.span_id = new_span_id()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate mis-nesting rather than corrupting the tree
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self._attach(span)

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- inspection ----------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, pre-order over all root trees."""
        for r in self.roots:
            yield from r.walk()

    def reset(self) -> None:
        """Drop all collected spans (open spans are abandoned)."""
        self.roots.clear()
        self._stack.clear()


class NullSpan:
    """The do-nothing span: a reusable context manager with the same
    surface as :class:`Span`."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, Any] = {}
    children: List["Span"] = []
    t_start = 0.0
    t_end = 0.0
    duration = 0.0
    self_seconds = 0.0
    span_id = ""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def walk(self):
        return iter(())

    def to_dict(self) -> Dict[str, Any]:
        return {}


_NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracer: every call is a no-op returning shared
    singletons, so instrumented hot paths cost one attribute lookup and
    one call."""

    enabled = False
    roots: List[Span] = []
    trace_id = ""

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def record(self, name: str, seconds: float, **attrs: Any) -> NullSpan:
        return _NULL_SPAN

    def attach(self, span: Any) -> NullSpan:
        return _NULL_SPAN

    def context(self) -> None:
        return None

    def iter_spans(self):
        return iter(())

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[object]) -> object:
    """Normalise an optional tracer argument: ``None`` -> the shared
    no-op tracer."""
    return NULL_TRACER if tracer is None else tracer
