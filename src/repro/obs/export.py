"""Exporters: JSONL events, Prometheus text, the per-phase profile table
and the machine-readable run summary.

Three consumers, three formats:

* **JSON lines** (:func:`write_jsonl`) -- one event per span (flat, with
  ``span_id``/``parent_id``/``path``) plus one trailing ``metrics``
  event; the raw material for external trace viewers and ad-hoc
  analysis.
* **Prometheus text exposition** (:func:`format_prometheus`) -- every
  registry metric as ``repro_*`` families, histograms with cumulative
  ``le`` buckets; scrape-ready.
* **Human-readable phase table** (:func:`format_phase_table`) -- wall
  time aggregated by span name, the reproduction of the paper's
  section-5 breakdown (tree construction / traversal / host direct
  forces / GRAPE force time).  Self-time accounting makes the rows sum
  exactly to the traced wall clock: each span's *self* seconds is its
  duration minus its children's, so nothing is double-counted and the
  untraced remainder of a parent phase shows up against the parent.

:func:`run_summary` assembles the stable JSON schema
(``repro.run_summary/v1``) the benchmark-trajectory tooling consumes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from .metrics import Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = ["span_events", "write_jsonl", "format_prometheus",
           "write_prometheus", "phase_totals", "format_phase_table",
           "run_summary", "write_json_summary", "RUN_SUMMARY_SCHEMA"]

RUN_SUMMARY_SCHEMA = "repro.run_summary/v1"


def _roots(source: Union[Tracer, Iterable[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return list(source.roots)
    roots = getattr(source, "roots", None)
    if roots is not None:
        return list(roots)
    try:
        return list(source)
    except TypeError:  # NULL_TRACER and friends: no spans recorded
        return []


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------

def span_events(source: Union[Tracer, Iterable[Span]]
                ) -> Iterable[Dict[str, Any]]:
    """Flatten span trees into JSON-able event dicts.

    Events carry ``span_id`` (pre-order index), ``parent_id`` (-1 for
    roots) and the slash-joined ``path`` of names from the root.
    """
    next_id = 0
    stack: List[tuple] = []
    for root in _roots(source):
        stack.append((root, -1, ""))
        while stack:
            span, parent_id, prefix = stack.pop()
            sid = next_id
            next_id += 1
            path = f"{prefix}/{span.name}" if prefix else span.name
            ev = span.to_dict()
            ev.update(type="span", span_id=sid, parent_id=parent_id,
                      path=path)
            yield ev
            for child in reversed(span.children):
                stack.append((child, sid, path))


def write_jsonl(path, source: Union[Tracer, Iterable[Span]], *,
                metrics: Optional[MetricsRegistry] = None,
                meta: Optional[Dict[str, Any]] = None) -> int:
    """Write span events (plus optional meta and metrics-snapshot
    events) to ``path``; returns the number of lines written.

    When ``source`` is a tracer carrying a ``trace_id``, the id is
    stamped into the meta event so the trace stays identifiable after
    the file leaves the process that produced it."""
    n = 0
    meta = dict(meta) if meta else {}
    trace_id = getattr(source, "trace_id", "")
    if trace_id and "trace_id" not in meta:
        meta["trace_id"] = trace_id
    with open(path, "w", encoding="utf-8") as fh:
        if meta:
            fh.write(json.dumps({"type": "meta", **meta}) + "\n")
            n += 1
        for ev in span_events(source):
            fh.write(json.dumps(ev) + "\n")
            n += 1
        if metrics is not None:
            fh.write(json.dumps({"type": "metrics",
                                 "metrics": metrics.snapshot()}) + "\n")
            n += 1
    return n


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str, prefix: str) -> str:
    out = prefix + name.replace(".", "_").replace("-", "_")
    return out


def _prom_value(v: float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return repr(v)
    return str(int(v))


def _escape_help(text: str) -> str:
    """HELP-line escaping per the text format: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Label-value escaping: backslash, double quote, newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def format_prometheus(registry: MetricsRegistry, *,
                      prefix: str = "repro_") -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    HELP text and label values are escaped per the format grammar
    (``\\`` / newline, plus ``\"`` inside label values), so metric
    help strings may contain arbitrary prose.
    """
    lines: List[str] = []
    snap = registry.snapshot()
    for name in sorted(snap):
        metric = registry.get(name)
        pname = _prom_name(name, prefix)
        entry = snap[name]
        if entry.get("help"):
            lines.append(
                f"# HELP {pname} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {pname} {entry['type']}")
        if isinstance(metric, Histogram):
            cum = 0
            for bound, cnt in zip(metric.bounds, metric.bucket_counts):
                cum += cnt
                le = _escape_label(f"{bound:g}")
                lines.append(f'{pname}_bucket{{le="{le}"}} {cum}')
            cum += metric.bucket_counts[-1]
            lines.append(f'{pname}_bucket{{le="+Inf"}} {cum}')
            lines.append(f"{pname}_sum {_prom_value(metric.total)}")
            lines.append(f"{pname}_count {metric.count}")
        else:
            lines.append(f"{pname} {_prom_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path, registry: MetricsRegistry, *,
                     prefix: str = "repro_") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(format_prometheus(registry, prefix=prefix))


# ---------------------------------------------------------------------------
# Phase table
# ---------------------------------------------------------------------------

def phase_totals(source: Union[Tracer, Iterable[Span]]
                 ) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: calls, inclusive seconds, self seconds.

    Self seconds (duration minus children) partition the traced wall
    clock exactly; inclusive seconds answer "how long did phase X take
    end to end".
    """
    out: Dict[str, Dict[str, float]] = {}
    for root in _roots(source):
        for span in root.walk():
            row = out.setdefault(span.name, {"calls": 0, "seconds": 0.0,
                                             "self_seconds": 0.0})
            row["calls"] += 1
            row["seconds"] += span.duration
            row["self_seconds"] += span.self_seconds
    return out


def format_phase_table(source: Union[Tracer, Iterable[Span]], *,
                       wall_seconds: Optional[float] = None) -> str:
    """The section-5-style per-phase breakdown as an aligned table.

    ``wall_seconds`` defaults to the summed duration of the root spans;
    the ``%wall`` column is each phase's *self* time against it, so the
    column sums to 100% (up to rounding) with no double counting.
    """
    totals = phase_totals(source)
    roots = _roots(source)
    if wall_seconds is None:
        wall_seconds = sum(r.duration for r in roots)
    order = sorted(totals.items(), key=lambda kv: -kv[1]["self_seconds"])
    rows = []
    for name, t in order:
        pct = (100.0 * t["self_seconds"] / wall_seconds
               if wall_seconds > 0 else 0.0)
        rows.append({
            "phase": name,
            "calls": int(t["calls"]),
            "seconds": f"{t['seconds']:.4f}",
            "self_s": f"{t['self_seconds']:.4f}",
            "%wall": f"{pct:.1f}",
        })
    rows.append({"phase": "total (wall)", "calls": "",
                 "seconds": f"{wall_seconds:.4f}",
                 "self_s": f"{wall_seconds:.4f}", "%wall": "100.0"})
    return _format_table(rows)


def _format_table(rows: List[Dict[str, Any]], sep: str = "  ") -> str:
    """Minimal aligned-table formatter (kept local so ``repro.obs``
    stays importable on its own)."""
    if not rows:
        return "(empty table)"
    keys = list(rows[0].keys())
    cells = [[str(k) for k in keys]]
    for r in rows:
        cells.append([str(r.get(k, "")) for k in keys])
    widths = [max(len(row[i]) for row in cells) for i in range(len(keys))]
    lines = []
    for j, row in enumerate(cells):
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append(sep.join("-" * w for w in widths))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Run summary
# ---------------------------------------------------------------------------

def run_summary(registry: MetricsRegistry, *,
                tracer: Optional[Tracer] = None,
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Stable machine-readable summary of one run.

    The top-level keys are the section-5 headline quantities; the full
    metric snapshot and (when a tracer is supplied) per-phase wall
    times ride along under ``metrics`` / ``phases``.
    """
    steps = int(registry.value("sim.steps_total"))
    interactions = int(registry.value("sim.interactions_total")
                       or registry.value("tree.interactions_total"))
    n_particles = int(registry.value("sim.n_particles"))
    wall = float(registry.value("sim.step_seconds"))  # histogram sum
    summary: Dict[str, Any] = {
        "schema": RUN_SUMMARY_SCHEMA,
        "n_particles": n_particles,
        "steps": steps,
        "interactions": interactions,
        "mean_list_length": (interactions / (n_particles * steps)
                             if n_particles and steps else 0.0),
        "wall_seconds": wall,
        "grape_model_seconds": float(
            registry.value("grape.model_seconds")),
        "grape_force_calls": int(registry.value("grape.force_calls")),
        "metrics": registry.snapshot(),
    }
    if tracer is not None:
        summary["phases"] = phase_totals(tracer)
    if extra:
        summary.update(extra)
    return summary


def write_json_summary(path, registry: MetricsRegistry, *,
                       tracer: Optional[Tracer] = None,
                       extra: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Write :func:`run_summary` to ``path``; returns the summary."""
    summary = run_summary(registry, tracer=tracer, extra=extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return summary
