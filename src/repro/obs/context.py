"""Trace/span identity and cross-process span context.

Distributed tracing needs two things the in-process :class:`Tracer`
did not have: globally unique identities (so spans recorded in
different processes can be stitched into one tree) and a *propagated
context* (so a worker knows which trace, and which parent span, its
measurements belong to).

Identities are random hex strings from :func:`os.urandom` -- no
coordination, no clock, collision probability negligible at the span
counts this stack produces (64-bit span ids, 128-bit trace ids, the
OpenTelemetry convention).

:class:`SpanContext` is the wire form: a small immutable tuple that is
cheap to pickle into a :class:`~repro.exec.engine.PipelineEngine` task
message or serialise into a job document.  ``t_origin`` carries the
propagating side's ``time.perf_counter()`` reading; on Linux
``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared across
forked processes, so the receiver can compute queue-wait times and
place its spans on the sender's timeline without clock negotiation.
"""

from __future__ import annotations

import os
from typing import NamedTuple, Optional

__all__ = ["new_trace_id", "new_span_id", "SpanContext"]


def new_trace_id() -> str:
    """A fresh 128-bit trace identity (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span identity (16 hex chars)."""
    return os.urandom(8).hex()


class SpanContext(NamedTuple):
    """Propagated span identity: what a remote measurement belongs to.

    ``trace_id``
        The trace every stitched span joins.
    ``span_id``
        The *parent* span id remote spans hang under (for a pipeline
        batch: the ``exec.batch`` span pre-allocated at submit time).
    ``t_origin``
        The sender's ``perf_counter()`` at propagation time (batch
        enqueue, job admission); receivers on the same host may
        subtract their own readings from it.
    """

    trace_id: str
    span_id: str
    t_origin: float = 0.0

    @classmethod
    def create(cls, trace_id: Optional[str] = None,
               t_origin: float = 0.0) -> "SpanContext":
        """A context with a fresh span id (and trace id if omitted)."""
        return cls(trace_id or new_trace_id(), new_span_id(), t_origin)
