"""Run metrics: counters, gauges and histograms with snapshot/reset.

The quantities the paper reports per run -- total particle-particle
interactions, average interaction-list length, group populations,
force-call sizes, modelled GRAPE seconds -- are all either monotone
accumulations (counters), last-value observations (gauges) or
distributions (histograms).  :class:`MetricsRegistry` holds a named set
of them with get-or-create semantics, so instrumentation sites can stay
one-liners::

    registry.counter("tree.interactions_total").inc(total)
    registry.histogram("tree.list_length").observe_many(lengths)

``snapshot()`` returns a plain-dict view (stable input for the JSON
summary and the Prometheus formatter in :mod:`repro.obs.export`) and
``reset()`` zeroes everything in place, mirroring the per-run
``reset_stats`` convention of the GRAPE emulator.

Stdlib-only; histograms accept numpy arrays in ``observe_many`` but do
not require numpy.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Default histogram bounds: powers of two covering ~0.24 ms .. ~1e6.
#: The top decades fit the list lengths / group sizes / call shapes the
#: stack produces; the sub-unit tail (2^-12 .. 2^-2) keeps *duration*
#: histograms -- queue wait, lease acquisition, submit-to-done -- from
#: collapsing into one bucket on fast machines, where those waits are
#: routinely well under a millisecond.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    float(2.0 ** k) for k in range(-12, 21, 2))


class Counter:
    """Monotonically increasing accumulator (int or float)."""

    kind = "counter"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """Last-observed value."""

    kind = "gauge"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the buckets; a final
    implicit +inf bucket catches the overflow (Prometheus ``le``
    semantics, cumulative on export only).
    """

    kind = "histogram"

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count",
                 "total", "vmin", "vmax")

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(float(b) for b in
                              (buckets if buckets is not None
                               else DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def _bucket_index(self, v: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if v <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        v = float(value)
        self.bucket_counts[self._bucket_index(v)] += 1
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.total,
            "min": (self.vmin if self.count else None),
            "max": (self.vmax if self.count else None),
            "mean": self.mean,
            "buckets": {("+Inf" if i == len(self.bounds)
                         else repr(self.bounds[i])): n
                        for i, n in enumerate(self.bucket_counts)},
        }


class MetricsRegistry:
    """A named family of metrics with get-or-create access.

    Metric names use dotted paths (``grape.force_calls``); the
    Prometheus formatter maps dots to underscores.  Re-requesting an
    existing name returns the same object; requesting it as a different
    kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- get-or-create -------------------------------------------------
    def _get(self, cls, name: str, *args, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name, *args, **kwargs)
            self._metrics[name] = m
            return m
        if not isinstance(m, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{m.kind}, requested {cls.kind}")
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(Histogram, name, help, buckets)

    # -- inspection ----------------------------------------------------
    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar shortcut: counter/gauge value, histogram sum."""
        m = self._metrics.get(name)
        if m is None:
            return default
        if isinstance(m, Histogram):
            return m.total
        return m.value

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict view of every metric, keyed by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def reset(self) -> None:
        for m in self._metrics.values():
            m.reset()
