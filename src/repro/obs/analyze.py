"""Trace analysis behind the ``repro obs`` CLI verbs.

Works on the flat span events of :func:`repro.obs.export.span_events`
-- either in memory or loaded back from a ``--trace`` JSONL file / a
``GET /jobs/{id}/trace`` document -- and answers the three questions a
section-5-style performance postmortem asks:

``tree``
    What happened, nested: the span forest rendered with durations
    and attributes (:func:`format_tree`).
``critical-path``
    Where the wall time went, by *resource*: GRAPE/kernel seconds vs
    worker-process seconds vs host seconds (:func:`critical_path`).
    Attribution is a timeline partition, not a span-duration sum:
    every instant of the traced interval is charged to exactly one
    resource -- the *deepest* resource-mapped span covering it (ties
    broken ``grape`` > ``worker``), everything else to ``host`` -- so
    the three buckets sum to the total wall clock *exactly* even when
    spans overlap (the host traverses shard k+1 while workers evaluate
    shard k -- the paper's overlap, which double-counts under naive
    summation).  Deepest-wins also keeps *backdated attribution
    records* honest: the treecode's ``grape_force`` record under a
    pipeline ``eval`` span is a synthetic interval that may blanket
    the stitched ``exec.batch`` spans beside it; the worker spans are
    real measurements nested deeper, so they keep their time.  The dominant chain (each level's longest child) rides
    along -- the path an optimisation has to shorten.
``diff``
    What changed between two traces: per-phase inclusive/self seconds
    side by side with deltas (:func:`diff_traces`).

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["load_trace", "build_tree", "format_tree", "critical_path",
           "format_critical_path", "diff_traces", "format_diff",
           "SPAN_RESOURCE"]

#: span name -> resource bucket for critical-path attribution.  Names
#: absent here are ``host`` work (tree build, traversal, integration,
#: scheduling) -- the conservative default, since host time is the
#: remainder bucket.
SPAN_RESOURCE: Dict[str, str] = {
    # device/kernel seconds: the paper's "GRAPE force time" column
    "grape_force": "grape",
    "host_kernel": "grape",
    # worker-process seconds of the pipeline engine
    "exec.batch": "worker",
    "exec.eval": "worker",
    "exec.worker": "worker",
    "exec.shm_attach": "worker",
}


# ---------------------------------------------------------------------------
# loading / tree building
# ---------------------------------------------------------------------------

def load_trace(source: Union[str, Path, Dict[str, Any]]
               ) -> Dict[str, Any]:
    """Load a trace into ``{"meta", "spans", "metrics"}``.

    ``source`` is a ``--trace`` JSONL path (one event per line, as
    written by :func:`repro.obs.export.write_jsonl`), a path to a
    saved ``repro.trace/v1`` document (the ``/jobs/{id}/trace``
    response, which carries its spans under ``"spans"``), or such a
    document already parsed.
    """
    if isinstance(source, dict):
        return {"meta": {k: v for k, v in source.items()
                         if k != "spans"},
                "spans": list(source.get("spans", [])),
                "metrics": source.get("metrics", {})}
    text = Path(source).read_text(encoding="utf-8")
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "spans" in doc:
        return load_trace(doc)
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        ev = json.loads(line)
        t = ev.get("type")
        if t == "span":
            spans.append(ev)
        elif t == "meta":
            meta = ev
        elif t == "metrics":
            metrics = ev.get("metrics", {})
    return {"meta": meta, "spans": spans, "metrics": metrics}


def build_tree(spans: Iterable[Dict[str, Any]]
               ) -> List[Dict[str, Any]]:
    """Reassemble flat span events into root nodes with ``children``.

    Events carry pre-order ``span_id``/``parent_id`` (see
    :func:`~repro.obs.export.span_events`); orphans whose parent is
    missing are promoted to roots rather than dropped.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for ev in spans:
        node = dict(ev)
        node["children"] = []
        nodes[int(ev["span_id"])] = node
    for node in nodes.values():
        pid = int(node.get("parent_id", -1))
        if pid >= 0 and pid in nodes:
            nodes[pid]["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda c: c["t_start"])
    roots.sort(key=lambda r: r["t_start"])
    return roots


def _fmt_attrs(attrs: Dict[str, Any], limit: int = 3) -> str:
    if not attrs:
        return ""
    items = list(attrs.items())[:limit]
    body = ", ".join(f"{k}={v}" for k, v in items)
    if len(attrs) > limit:
        body += ", ..."
    return f"  [{body}]"


def format_tree(spans: Iterable[Dict[str, Any]], *,
                max_depth: Optional[int] = None,
                min_seconds: float = 0.0) -> str:
    """Render the span forest as an indented tree.

    ``max_depth`` prunes deep nesting; ``min_seconds`` hides noise
    spans (pruned subtrees are summarised with a count so nothing
    silently disappears).
    """
    lines: List[str] = []

    def _walk(node: Dict[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        dur = float(node.get("duration", 0.0))
        kept = [c for c in node["children"]
                if float(c.get("duration", 0.0)) >= min_seconds]
        hidden = len(node["children"]) - len(kept)
        lines.append(f"{'  ' * depth}{node['name']}  "
                     f"{dur * 1e3:9.3f} ms"
                     f"{_fmt_attrs(node.get('attrs', {}))}")
        if (max_depth is not None and depth == max_depth
                and node["children"]):
            lines.append(f"{'  ' * (depth + 1)}"
                         f"... {len(node['children'])} child span(s)")
            return
        for c in kept:
            _walk(c, depth + 1)
        if hidden:
            lines.append(f"{'  ' * (depth + 1)}"
                         f"... {hidden} span(s) under "
                         f"{min_seconds * 1e3:g} ms")

    for root in build_tree(spans):
        _walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


# ---------------------------------------------------------------------------
# critical path / resource attribution
# ---------------------------------------------------------------------------

def _merge(intervals: List[Tuple[float, float]]
           ) -> List[Tuple[float, float]]:
    """Union of intervals as a sorted, disjoint list."""
    out: List[Tuple[float, float]] = []
    for s, e in sorted(i for i in intervals if i[1] > i[0]):
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out


def _length(intervals: List[Tuple[float, float]]) -> float:
    return sum(e - s for s, e in intervals)


def critical_path(spans: Iterable[Dict[str, Any]]
                  ) -> Dict[str, Any]:
    """Resource attribution + dominant chain of one trace.

    Returns ``{"total_seconds", "resources": {host, worker, grape},
    "chain": [...]}``.  The resource seconds are a partition of the
    traced interval (union of root spans): every instant is charged to
    the *deepest* resource-mapped span covering it (ties broken
    ``grape`` > ``worker``), the uncovered remainder to ``host``, so
    ``host + worker + grape == total_seconds`` exactly.  ``chain`` is
    the dominant path: from the longest root, each level's longest
    child, with per-level duration and share of the parent.
    """
    spans = list(spans)
    roots = build_tree(spans)
    base = _merge([(r["t_start"], r["t_end"]) for r in roots])
    total = _length(base)
    prio = {"worker": 0, "grape": 1}
    marked: List[Tuple[float, float, int, int, str]] = []
    for ev in spans:
        res = SPAN_RESOURCE.get(ev["name"])
        if res in prio:
            depth = str(ev.get("path", ev["name"])).count("/")
            marked.append((ev["t_start"], ev["t_end"], depth,
                           prio[res], res))
    # atomic segments between all boundary points; each is covered by
    # a fixed span set, so one midpoint probe decides its whole length
    points = sorted({p for s, e in base for p in (s, e)} |
                    {p for t0, t1, *_ in marked for p in (t0, t1)})
    totals = {"grape": 0.0, "worker": 0.0}
    for a, b in zip(points, points[1:]):
        if b <= a:
            continue
        mid = 0.5 * (a + b)
        if not any(s <= mid < e for s, e in base):
            continue
        best = None
        for t0, t1, depth, pr, res in marked:
            if t0 <= mid < t1 and (best is None
                                   or (depth, pr) > best[0]):
                best = ((depth, pr), res)
        if best is not None:
            totals[best[1]] += b - a
    grape_s = totals["grape"]
    worker_s = totals["worker"]
    host_s = max(0.0, total - grape_s - worker_s)

    chain: List[Dict[str, Any]] = []
    node = max(roots, key=lambda r: float(r.get("duration", 0.0)),
               default=None)
    while node is not None:
        dur = float(node.get("duration", 0.0))
        chain.append({"name": node["name"], "seconds": dur,
                      "path": node.get("path", node["name"])})
        node = max(node["children"],
                   key=lambda c: float(c.get("duration", 0.0)),
                   default=None)

    return {
        "total_seconds": total,
        "resources": {"host": host_s, "worker": worker_s,
                      "grape": grape_s},
        "chain": chain,
    }


def format_critical_path(spans: Iterable[Dict[str, Any]]) -> str:
    """Human-readable :func:`critical_path` report."""
    cp = critical_path(spans)
    total = cp["total_seconds"]
    lines = [f"traced wall time: {total:.4f} s",
             "", "resource attribution (timeline partition):"]
    for res in ("grape", "worker", "host"):
        sec = cp["resources"][res]
        pct = 100.0 * sec / total if total > 0 else 0.0
        lines.append(f"  {res:>6}  {sec:10.4f} s  {pct:5.1f}%")
    lines.append(f"  {'total':>6}  {total:10.4f} s  100.0%")
    if cp["chain"]:
        lines += ["", "dominant chain:"]
        parent = None
        for link in cp["chain"]:
            share = (100.0 * link["seconds"] / parent
                     if parent else 100.0)
            lines.append(f"  {link['path']:<40} "
                         f"{link['seconds'] * 1e3:10.3f} ms "
                         f"({share:5.1f}% of parent)")
            parent = link["seconds"] or None
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------

def _totals(spans: Iterable[Dict[str, Any]]
            ) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for ev in spans:
        row = out.setdefault(ev["name"],
                             {"calls": 0, "seconds": 0.0})
        row["calls"] += 1
        row["seconds"] += float(ev.get("duration", 0.0))
    return out


def diff_traces(a_spans: Iterable[Dict[str, Any]],
                b_spans: Iterable[Dict[str, Any]]
                ) -> List[Dict[str, Any]]:
    """Per-phase comparison of two traces, sorted by |delta| descending.

    Rows carry inclusive seconds and call counts from both sides plus
    the absolute and relative change (``None`` ratio for phases absent
    on one side).
    """
    ta, tb = _totals(a_spans), _totals(b_spans)
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(ta) | set(tb)):
        a = ta.get(name, {"calls": 0, "seconds": 0.0})
        b = tb.get(name, {"calls": 0, "seconds": 0.0})
        delta = b["seconds"] - a["seconds"]
        ratio = (b["seconds"] / a["seconds"]
                 if a["seconds"] > 0 else None)
        rows.append({"phase": name,
                     "a_calls": int(a["calls"]),
                     "b_calls": int(b["calls"]),
                     "a_seconds": a["seconds"],
                     "b_seconds": b["seconds"],
                     "delta_seconds": delta, "ratio": ratio})
    rows.sort(key=lambda r: -abs(r["delta_seconds"]))
    return rows


def format_diff(a_spans: Iterable[Dict[str, Any]],
                b_spans: Iterable[Dict[str, Any]], *,
                a_label: str = "A", b_label: str = "B") -> str:
    """Aligned-table rendering of :func:`diff_traces`."""
    rows = diff_traces(a_spans, b_spans)
    if not rows:
        return "(no spans in either trace)"
    head = (f"{'phase':<20} {a_label + ' s':>10} {b_label + ' s':>10} "
            f"{'delta s':>10} {'ratio':>7} {'calls':>11}")
    lines = [head, "-" * len(head)]
    for r in rows:
        ratio = f"{r['ratio']:.2f}x" if r["ratio"] is not None else "-"
        lines.append(
            f"{r['phase']:<20} {r['a_seconds']:>10.4f} "
            f"{r['b_seconds']:>10.4f} {r['delta_seconds']:>+10.4f} "
            f"{ratio:>7} {r['a_calls']:>5}/{r['b_calls']:<5}")
    return "\n".join(lines)
