"""Minimal ASCII line plots (log-log and linear) for terminal output.

The benchmark harness and examples report curves -- xi(r), L(n_g),
step-time vs n_g -- and the environment has no plotting stack, so this
renders them as character rasters with labelled axes.  Deliberately
tiny: one marker per series, NaNs skipped, log or linear per axis.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["line_plot"]

_MARKERS = "ox+*#@"


def _transform(v: np.ndarray, log: bool) -> np.ndarray:
    if log:
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.log10(v)
        out[~np.isfinite(out)] = np.nan
        return out
    return v.astype(np.float64)


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-2:
        return f"{v:.1e}"
    return f"{v:g}"


def line_plot(series: Dict[str, Sequence], *, width: int = 64,
              height: int = 20, logx: bool = False, logy: bool = False,
              xlabel: str = "", ylabel: str = "") -> str:
    """Render named ``{label: (x, y)}`` series as an ASCII plot.

    Each series gets the next marker character; the legend maps them
    back.  Values outside a log axis's domain (<= 0) are dropped.
    """
    if not series:
        return "(no data)"
    if width < 16 or height < 6:
        raise ValueError("plot must be at least 16 x 6")

    pts = {}
    for name, (x, y) in series.items():
        x = _transform(np.asarray(x, dtype=np.float64), logx)
        y = _transform(np.asarray(y, dtype=np.float64), logy)
        ok = np.isfinite(x) & np.isfinite(y)
        pts[name] = (x[ok], y[ok])

    nonempty = [p for p in pts.values() if len(p[0])]
    if not nonempty:
        return "(no finite points)"
    xs = np.concatenate([p[0] for p in nonempty])
    ys = np.concatenate([p[1] for p in nonempty])
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, (x, y)) in enumerate(pts.items()):
        mark = _MARKERS[k % len(_MARKERS)]
        cx = ((x - x0) / (x1 - x0) * (width - 1)).round().astype(int)
        cy = ((y - y0) / (y1 - y0) * (height - 1)).round().astype(int)
        for i, j in zip(cx, cy):
            grid[height - 1 - j][i] = mark

    def back(v, log):
        return 10.0**v if log else v

    lines = []
    lines.append(f"  {_fmt(back(y1, logy)):>10} +"
                 + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"  {_fmt(back(y0, logy)):>10} +" + "".join(grid[-1]))
    lines.append(" " * 14 + "-" * width)
    lines.append(" " * 14 + f"{_fmt(back(x0, logx))}"
                 + " " * max(1, width - 24)
                 + f"{_fmt(back(x1, logx))}")
    axes = []
    if xlabel or logx:
        axes.append(f"x: {xlabel}{' (log)' if logx else ''}".strip())
    if ylabel or logy:
        axes.append(f"y: {ylabel}{' (log)' if logy else ''}".strip())
    legend = "   ".join(f"{_MARKERS[k % len(_MARKERS)]} = {name}"
                        for k, name in enumerate(pts))
    lines.append(" " * 14 + "; ".join(axes))
    lines.append(" " * 14 + legend)
    return "\n".join(lines)
