"""Text/PGM rendering of simulation snapshots (the figure-4 view)."""

from .asciiplot import line_plot
from .projection import ascii_render, surface_density, write_pgm

__all__ = ["line_plot", "ascii_render", "surface_density", "write_pgm"]
