"""Text and PGM rendering of particle slabs (figure 4).

The paper's figure 4 is a scatter plot of the particles in a thin slab
of the final snapshot.  Without a plotting stack we render the same
content two ways:

* a binary **PGM image** (:func:`write_pgm`) -- log-scaled surface
  density on a pixel grid; any image viewer opens it;
* **ASCII art** (:func:`ascii_render`) -- the same histogram quantised
  to a character ramp, so the structure (filaments, knots, voids) is
  visible directly in a terminal or a benchmark log.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

import numpy as np

__all__ = ["surface_density", "ascii_render", "write_pgm"]

#: Character ramp from empty to dense.
_RAMP = " .:-=+*#%@"


def surface_density(xy: np.ndarray, *, width: float, bins: int
                    ) -> np.ndarray:
    """2-D particle histogram over ``[-width/2, width/2]^2``.

    Returns a ``(bins, bins)`` float array of counts; axis 0 is the
    vertical image axis (first in-plane coordinate, top-down).
    """
    xy = np.asarray(xy, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError("xy must have shape (M, 2)")
    if bins < 2:
        raise ValueError("bins must be >= 2")
    edges = np.linspace(-0.5 * width, 0.5 * width, bins + 1)
    h, _, _ = np.histogram2d(xy[:, 0], xy[:, 1], bins=(edges, edges))
    return h


def _log_scale(h: np.ndarray) -> np.ndarray:
    """Log-compress counts into [0, 1] (astronomy-standard stretch)."""
    img = np.log1p(h)
    top = img.max()
    return img / top if top > 0 else img


def ascii_render(h: np.ndarray, *, max_rows: int = 48) -> str:
    """Character rendering of a surface-density histogram."""
    img = _log_scale(np.asarray(h, dtype=np.float64))
    rows = img.shape[0]
    if rows > max_rows:
        f = int(np.ceil(rows / max_rows))
        pad = (-rows) % f
        padded = np.pad(img, ((0, pad), (0, pad)))
        img = padded.reshape(padded.shape[0] // f, f,
                             padded.shape[1] // f, f).mean(axis=(1, 3))
        img = img / img.max() if img.max() > 0 else img
    idx = np.minimum((img * len(_RAMP)).astype(int), len(_RAMP) - 1)
    # transpose so x runs along terminal columns, and flip y upward
    lines = ["".join(_RAMP[i] for i in row) for row in idx.T[::-1]]
    return "\n".join(lines)


def write_pgm(path: Union[str, Path], h: np.ndarray) -> Path:
    """Write a histogram as a binary 8-bit PGM image (log stretch)."""
    path = Path(path)
    img = (_log_scale(np.asarray(h, dtype=np.float64)) * 255.0
           ).astype(np.uint8)
    # image convention: y upward -> flip rows; x along columns
    img = img.T[::-1]
    header = f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + img.tobytes())
    return path
