"""Worker-process side of the pipeline engine.

Each worker owns a *private* backend instance (rebuilt from the parent
backend's :meth:`~repro.core.kernels.ForceBackend.worker_factory` spec)
and loops on a shared task queue.  All bulk data -- sorted particle
positions/masses, cell monopoles, the CSR interaction lists, and the
output force arrays -- lives in POSIX shared memory created by the
parent; a task message carries only segment names and a sink range, so
IPC per batch is a few hundred bytes regardless of problem size.

Results are written straight into the shared output arrays (every sink
owns a disjoint slice, so writes never race); the completion message
carries the backend's performance-counter delta and the worker's busy
time, which the parent folds back into its own backend and the
observability layer.
"""

from __future__ import annotations

import pickle
import time
import traceback
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from ..core.traversal import InteractionLists
from .plan import assemble_sources

__all__ = ["worker_main", "ShmArrays", "create_shm", "open_shm"]

#: task-queue sentinel telling a worker to exit
STOP = "stop"


class ShmArrays:
    """A named set of numpy arrays backed by one shared-memory block.

    One block per *lifetime* (sweep or shard) keeps the segment count --
    and the attach/close traffic -- low: the constituent arrays are
    packed back-to-back at 64-byte alignment inside a single segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 layout: Tuple[Tuple[str, tuple, str, int], ...]) -> None:
        self.shm = shm
        self.layout = layout
        self.arrays: Dict[str, np.ndarray] = {}
        for name, shape, dtype, offset in layout:
            n = int(np.prod(shape, dtype=np.int64)) if shape else 1
            arr = np.frombuffer(shm.buf, dtype=np.dtype(dtype),
                                count=n, offset=offset)
            self.arrays[name] = arr.reshape(shape)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    @property
    def meta(self) -> Tuple[str, Tuple[Tuple[str, tuple, str, int], ...]]:
        """Picklable handle: ``(segment name, layout)``."""
        return (self.shm.name, self.layout)

    def close(self) -> None:
        self.arrays.clear()
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - stray view still alive;
            pass             # the mapping goes away at process exit

    def unlink(self) -> None:
        self.shm.unlink()


def _layout(arrays: Dict[str, np.ndarray]):
    """Pack arrays back-to-back; returns (layout, total_bytes)."""
    layout = []
    offset = 0
    for name, a in arrays.items():
        offset = (offset + 63) & ~63
        layout.append((name, tuple(a.shape), a.dtype.str, offset))
        offset += a.nbytes
    return tuple(layout), max(1, offset)


def create_shm(arrays: Dict[str, np.ndarray]) -> ShmArrays:
    """Create one shared block holding copies of ``arrays``."""
    layout, size = _layout(arrays)
    shm = shared_memory.SharedMemory(create=True, size=size)
    block = ShmArrays(shm, layout)
    for name, a in arrays.items():
        block[name][...] = a
    return block


def open_shm(meta) -> ShmArrays:
    """Attach a block created by :func:`create_shm` from its meta."""
    name, layout = meta
    return ShmArrays(shared_memory.SharedMemory(name=name), layout)


def _lists_from(block: ShmArrays) -> InteractionLists:
    return InteractionLists(
        n_sinks=int(block["cell_off"].shape[0]) - 1,
        cell_idx=block["cell_idx"], cell_off=block["cell_off"],
        part_idx=block["part_idx"], part_off=block["part_off"])


def _run_batch(backend, sweep: ShmArrays, shard: ShmArrays,
               a0: int, g0: int, g1: int, announce: bool) -> None:
    """Evaluate sinks ``[g0, g1)`` of one batch into the output arrays."""
    scalars = sweep["scalars"]
    eps = float(scalars[0])
    if announce and scalars[1] > 0.0:
        backend.set_domain(float(scalars[2]), float(scalars[3]))
    lists = _lists_from(shard)
    pos, pmass = sweep["pos"], sweep["pmass"]
    com, cmass = sweep["com"], sweep["cmass"]
    start, count = sweep["sink_start"], sweep["sink_count"]
    out_acc, out_pot = sweep["out_acc"], sweep["out_pot"]
    for g in range(g0, g1):
        s, n = int(start[g]), int(count[g])
        xi = pos[s:s + n]
        xj, mj = assemble_sources(pos, pmass, com, cmass, lists, g - a0)
        backend.submit(g, xi, xj, mj, eps)
        for _, a, p in backend.gather():
            out_acc[s:s + n] = a
            out_pot[s:s + n] = p


def worker_main(worker_id: int, factory_bytes: bytes,
                task_queue, result_queue) -> None:
    """Worker entry point: build the private backend, drain tasks.

    Messages (see :class:`repro.exec.engine.PipelineEngine` for the
    parent side):

    ``("batch", batch_id, sweep_id, sweep_meta, shard_meta, a0, g0, g1)``
        Evaluate sinks ``[g0, g1)`` (global ids; the shard's lists start
        at sink ``a0``) and reply
        ``("done", batch_id, worker_id, stats_delta, busy_s, n_sinks)``
        or ``("error", batch_id, worker_id, traceback_text)``.
    ``("stop",)``
        Close cached segments and exit.
    """
    # Workers only *attach* to segments the parent created and will
    # unlink; letting the worker-side resource tracker register them too
    # yields spurious "leaked shared_memory" warnings at exit and
    # double-unlink attempts (CPython bpo-38119).  Ownership is strictly
    # parental, so registration here is disabled.
    from multiprocessing import resource_tracker
    resource_tracker.register = lambda *a, **k: None
    fn, args, kwargs = pickle.loads(factory_bytes)
    backend = fn(*args, **kwargs)
    sweep_cache: Dict[int, ShmArrays] = {}
    shard_cache: Dict[str, ShmArrays] = {}
    domain_announced: set = set()

    def _drop_sweeps() -> None:
        for b in sweep_cache.values():
            b.close()
        for b in shard_cache.values():
            b.close()
        sweep_cache.clear()
        shard_cache.clear()

    try:
        while True:
            msg = task_queue.get()
            if msg[0] == STOP:
                break
            _, batch_id, sweep_id, sweep_meta, shard_meta, a0, g0, g1 = msg
            try:
                if sweep_id not in sweep_cache:
                    # a new sweep supersedes everything cached
                    _drop_sweeps()
                    sweep_cache[sweep_id] = open_shm(sweep_meta)
                sweep = sweep_cache[sweep_id]
                if shard_meta[0] not in shard_cache:
                    shard_cache[shard_meta[0]] = open_shm(shard_meta)
                shard = shard_cache[shard_meta[0]]

                t0 = time.perf_counter()
                stats0 = backend.snapshot_stats()
                announce = sweep_id not in domain_announced
                if announce:
                    domain_announced.add(sweep_id)
                # scoped helper: no shared-memory view survives the call,
                # so cached segments can be closed cleanly later
                _run_batch(backend, sweep, shard, a0, g0, g1, announce)
                stats1 = backend.snapshot_stats()
                delta = {k: stats1[k] - stats0.get(k, 0.0)
                         for k in stats1}
                busy = time.perf_counter() - t0
                result_queue.put(("done", batch_id, worker_id, delta,
                                  busy, g1 - g0))
            except Exception:  # pragma: no cover - exercised via engine
                result_queue.put(("error", batch_id, worker_id,
                                  traceback.format_exc()))
    finally:
        _drop_sweeps()
