"""Worker-process side of the pipeline engine.

Each worker owns a *private* backend instance (rebuilt from the parent
backend's :meth:`~repro.core.kernels.ForceBackend.worker_factory` spec)
and loops on a shared task queue.  All bulk data -- sorted particle
positions/masses, cell monopoles, the CSR interaction lists, and the
output force arrays -- lives in POSIX shared memory created by the
parent; a task message carries only segment names and a sink range, so
IPC per batch is a few hundred bytes regardless of problem size.

Results are written straight into the shared output arrays (every sink
owns a disjoint slice, so writes never race); the completion message
carries the backend's performance-counter delta, the worker's busy
time, and a CRC of the written output slice -- the parent recomputes
the CRC from shared memory, so corruption on the result path (or a
torn write from a dying worker) is detected and the batch retried.
Because every batch writes deterministic values to a disjoint slice,
*duplicate* execution of a batch is harmless: the parent accepts the
first completion and ignores the rest, which is what makes the
engine's crash/timeout resubmission safe.

A worker may also carry a :class:`~repro.faults.FaultInjector` built
from the engine's fault plan; it is consulted once per batch and can
crash the process, hang it, delay it, raise a transient error, or
scribble on the output slice after its checksum was taken.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import zlib
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.traversal import InteractionLists
from ..faults import FaultInjector, TransientBackendError
from .plan import assemble_sources

__all__ = ["worker_main", "ShmArrays", "create_shm", "open_shm",
           "batch_checksum"]

#: task-queue sentinel telling a worker to exit
STOP = "stop"

#: process exit code of an injected worker crash (visible in the
#: parent's ``exec.fault`` trace events)
CRASH_EXIT_CODE = 23


class ShmArrays:
    """A named set of numpy arrays backed by one shared-memory block.

    One block per *lifetime* (sweep or shard) keeps the segment count --
    and the attach/close traffic -- low: the constituent arrays are
    packed back-to-back at 64-byte alignment inside a single segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 layout: Tuple[Tuple[str, tuple, str, int], ...]) -> None:
        self.shm = shm
        self.layout = layout
        self.arrays: Dict[str, np.ndarray] = {}
        for name, shape, dtype, offset in layout:
            n = int(np.prod(shape, dtype=np.int64)) if shape else 1
            arr = np.frombuffer(shm.buf, dtype=np.dtype(dtype),
                                count=n, offset=offset)
            self.arrays[name] = arr.reshape(shape)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    @property
    def meta(self) -> Tuple[str, Tuple[Tuple[str, tuple, str, int], ...]]:
        """Picklable handle: ``(segment name, layout)``."""
        return (self.shm.name, self.layout)

    def close(self) -> None:
        self.arrays.clear()
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - stray view still alive;
            pass             # the mapping goes away at process exit

    def unlink(self) -> None:
        self.shm.unlink()


def _layout(arrays: Dict[str, np.ndarray]):
    """Pack arrays back-to-back; returns (layout, total_bytes)."""
    layout = []
    offset = 0
    for name, a in arrays.items():
        offset = (offset + 63) & ~63
        layout.append((name, tuple(a.shape), a.dtype.str, offset))
        offset += a.nbytes
    return tuple(layout), max(1, offset)


def create_shm(arrays: Dict[str, np.ndarray]) -> ShmArrays:
    """Create one shared block holding copies of ``arrays``."""
    layout, size = _layout(arrays)
    shm = shared_memory.SharedMemory(create=True, size=size)
    block = ShmArrays(shm, layout)
    for name, a in arrays.items():
        block[name][...] = a
    return block


def open_shm(meta) -> ShmArrays:
    """Attach a block created by :func:`create_shm` from its meta."""
    name, layout = meta
    return ShmArrays(shared_memory.SharedMemory(name=name), layout)


def _lists_from(block: ShmArrays) -> InteractionLists:
    return InteractionLists(
        n_sinks=int(block["cell_off"].shape[0]) - 1,
        cell_idx=block["cell_idx"], cell_off=block["cell_off"],
        part_idx=block["part_idx"], part_off=block["part_off"])


def batch_checksum(sweep: ShmArrays, g0: int, g1: int) -> int:
    """CRC32 of the output rows owned by sinks ``[g0, g1)``.

    Sinks are contiguous slices of the sorted particle arrays, so a
    batch owns one contiguous row range; the checksum covers its
    ``out_acc`` and ``out_pot`` bytes.  Computed by the worker after
    writing and recomputed by the parent on completion -- a mismatch
    means the result path corrupted the slice.
    """
    start, count = sweep["sink_start"], sweep["sink_count"]
    r0 = int(start[g0])
    r1 = int(start[g1 - 1]) + int(count[g1 - 1])
    crc = zlib.crc32(sweep["out_acc"][r0:r1].tobytes())
    return zlib.crc32(sweep["out_pot"][r0:r1].tobytes(), crc)


def _scribble(sweep: ShmArrays, g0: int, g1: int) -> None:
    """Corrupt the batch's output slice (the ``corrupt_result`` fault)."""
    start, count = sweep["sink_start"], sweep["sink_count"]
    r0 = int(start[g0])
    r1 = int(start[g1 - 1]) + int(count[g1 - 1])
    sweep["out_acc"][r0:r1] += 1.0
    sweep["out_pot"][r0:r1] -= 1.0


def _run_batch(backend, sweep: ShmArrays, shard: ShmArrays,
               a0: int, g0: int, g1: int, announce: bool,
               kernels: str = "python") -> None:
    """Evaluate sinks ``[g0, g1)`` of one batch into the output arrays.

    With a batched kernel set, the batch's CSR slice goes through
    :meth:`~repro.core.kernels.ForceBackend.eval_lists` in one call;
    the offsets view is *not* rebased (the kernels index the shard's
    full index arrays directly), so no list data is copied.  The serial
    fallback in the engine calls this same function, so an in-process
    retry evaluates through the identical code path as a worker.
    """
    scalars = sweep["scalars"]
    eps = float(scalars[0])
    if announce and scalars[1] > 0.0:
        backend.set_domain(float(scalars[2]), float(scalars[3]))
    lists = _lists_from(shard)
    pos, pmass = sweep["pos"], sweep["pmass"]
    com, cmass = sweep["com"], sweep["cmass"]
    start, count = sweep["sink_start"], sweep["sink_count"]
    out_acc, out_pot = sweep["out_acc"], sweep["out_pot"]
    from ..core.kernels import resolve_kernels
    if resolve_kernels(kernels).batched:
        l0, l1 = g0 - a0, g1 - a0
        view = InteractionLists(
            n_sinks=g1 - g0,
            cell_idx=lists.cell_idx,
            cell_off=lists.cell_off[l0:l1 + 1],
            part_idx=lists.part_idx,
            part_off=lists.part_off[l0:l1 + 1])
        backend.eval_lists(pos, pmass, com, cmass, view,
                           start[g0:g1], count[g0:g1], eps,
                           out_acc, out_pot)
        return
    for g in range(g0, g1):
        s, n = int(start[g]), int(count[g])
        xi = pos[s:s + n]
        xj, mj = assemble_sources(pos, pmass, com, cmass, lists, g - a0)
        backend.submit(g, xi, xj, mj, eps)
        for _, a, p in backend.gather():
            out_acc[s:s + n] = a
            out_pot[s:s + n] = p


def worker_main(worker_id: int, factory_bytes: bytes,
                task_queue, result_queue,
                fault_bytes: Optional[bytes] = None) -> None:
    """Worker entry point: build the private backend, drain tasks.

    Messages (see :class:`repro.exec.engine.PipelineEngine` for the
    parent side):

    ``("batch", batch_id, sweep_id, sweep_meta, shard_meta, a0, g0, g1,
    ctx, kernels, attempt)`` (see :func:`repro.exec.plan.batch_message`)
        Evaluate sinks ``[g0, g1)`` (global ids; the shard's lists start
        at sink ``a0``).  The worker first announces
        ``("start", batch_id, worker_id, sweep_id)`` -- the parent's
        assignment record for timeout and crash accounting -- then
        replies ``("done", batch_id, worker_id, sweep_id, stats_delta,
        busy_s, n_sinks, checksum, spans)`` or ``("error", batch_id,
        worker_id, sweep_id, traceback_text, transient)``.

        ``ctx`` is the submitting trace's
        :class:`~repro.obs.context.SpanContext` or ``None``; when set,
        the worker times its phases -- queue wait (from ``ctx.t_origin``
        to dequeue), shared-memory attach, and the evaluation itself --
        as plain span dicts (``{"name", "t_start", "t_end", "attrs"}``
        on the shared monotonic clock) shipped back on the ``done``
        message, where the parent stitches them under the submitting
        span.  ``spans`` is ``None`` when tracing is off, so the
        disabled path serialises nothing extra.
    ``("stop",)``
        Close cached segments and exit.

    ``fault_bytes`` is an optional pickled
    :class:`~repro.faults.FaultPlan`; when given, the worker consults
    a private :class:`~repro.faults.FaultInjector` once per batch.
    """
    # Workers only *attach* to segments the parent created and will
    # unlink; letting the worker-side resource tracker register them too
    # yields spurious "leaked shared_memory" warnings at exit and
    # double-unlink attempts (CPython bpo-38119).  Ownership is strictly
    # parental, so registration here is disabled.
    from multiprocessing import resource_tracker
    resource_tracker.register = lambda *a, **k: None
    fn, args, kwargs = pickle.loads(factory_bytes)
    backend = fn(*args, **kwargs)
    injector: Optional[FaultInjector] = None
    if fault_bytes is not None:
        injector = FaultInjector(pickle.loads(fault_bytes),
                                 worker=worker_id)
    sweep_cache: Dict[int, ShmArrays] = {}
    shard_cache: Dict[str, ShmArrays] = {}
    domain_announced: set = set()

    def _drop_sweeps() -> None:
        for b in sweep_cache.values():
            b.close()
        for b in shard_cache.values():
            b.close()
        sweep_cache.clear()
        shard_cache.clear()

    try:
        while True:
            msg = task_queue.get()
            t_recv = time.perf_counter()
            if msg[0] == STOP:
                break
            (_, batch_id, sweep_id, sweep_meta, shard_meta,
             a0, g0, g1, ctx, kernels, attempt) = msg
            spans: Optional[list] = [] if ctx is not None else None
            if spans is not None and ctx.t_origin:
                spans.append({"name": "exec.queue_wait",
                              "t_start": ctx.t_origin, "t_end": t_recv,
                              "attrs": {"worker": worker_id,
                                        "attempt": attempt}})
            result_queue.put(("start", batch_id, worker_id, sweep_id))
            try:
                fault = (injector.batch_fault(sweep=sweep_id,
                                              batch=batch_id,
                                              attempt=attempt)
                         if injector is not None else None)
                if fault is not None and fault.kind == "worker_crash":
                    os._exit(CRASH_EXIT_CODE)
                if fault is not None and fault.kind == "worker_hang":
                    time.sleep(fault.seconds
                               if fault.seconds is not None else 30.0)
                if fault is not None and fault.kind == "latency":
                    time.sleep(fault.seconds
                               if fault.seconds is not None else 0.05)
                if fault is not None and fault.kind == "transient_error":
                    raise TransientBackendError(
                        f"injected transient error in batch {batch_id}")

                t_shm = time.perf_counter()
                fresh_shm = (sweep_id not in sweep_cache
                             or shard_meta[0] not in shard_cache)
                if sweep_id not in sweep_cache:
                    # a new sweep supersedes everything cached
                    _drop_sweeps()
                    sweep_cache[sweep_id] = open_shm(sweep_meta)
                sweep = sweep_cache[sweep_id]
                if shard_meta[0] not in shard_cache:
                    shard_cache[shard_meta[0]] = open_shm(shard_meta)
                shard = shard_cache[shard_meta[0]]
                if spans is not None and fresh_shm:
                    spans.append({"name": "exec.shm_attach",
                                  "t_start": t_shm,
                                  "t_end": time.perf_counter(),
                                  "attrs": {"worker": worker_id}})

                t0 = time.perf_counter()
                stats0 = backend.snapshot_stats()
                announce = sweep_id not in domain_announced
                if announce:
                    domain_announced.add(sweep_id)
                # scoped helper: no shared-memory view survives the call,
                # so cached segments can be closed cleanly later
                _run_batch(backend, sweep, shard, a0, g0, g1, announce,
                           kernels)
                stats1 = backend.snapshot_stats()
                delta = {k: stats1[k] - stats0.get(k, 0.0)
                         for k in stats1}
                busy = time.perf_counter() - t0
                crc = batch_checksum(sweep, g0, g1)
                if spans is not None:
                    spans.append({"name": "exec.eval",
                                  "t_start": t0, "t_end": t0 + busy,
                                  "attrs": {"worker": worker_id,
                                            "sinks": g1 - g0}})
                if fault is not None and fault.kind == "corrupt_result":
                    _scribble(sweep, g0, g1)
                result_queue.put(("done", batch_id, worker_id, sweep_id,
                                  delta, busy, g1 - g0, crc, spans))
            except TransientBackendError:
                result_queue.put(("error", batch_id, worker_id, sweep_id,
                                  traceback.format_exc(), True))
            except Exception:  # pragma: no cover - exercised via engine
                result_queue.put(("error", batch_id, worker_id, sweep_id,
                                  traceback.format_exc(), False))
    finally:
        _drop_sweeps()
