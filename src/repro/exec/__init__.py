"""Parallel force-evaluation engines (the host/GRAPE overlap, in software).

Public surface:

* :class:`~repro.exec.engine.SerialEngine` /
  :class:`~repro.exec.engine.PipelineEngine` -- evaluate a
  :class:`~repro.exec.plan.SweepSpec` over any
  :class:`~repro.core.kernels.ForceBackend`;
* :func:`~repro.exec.engine.make_engine` -- name-based factory used by
  the CLI (``--engine {serial,pipeline} --workers N``);
* :func:`~repro.exec.plan.plan_batches` -- j-memory-capacity batching.

See ``docs/parallel_engine.md`` for the protocol and the paper mapping.
"""

from .engine import (ENGINE_NAMES, EngineError, EvalResult, ForceEngine,
                     PipelineEngine, SerialEngine, make_engine)
from .plan import DEFAULT_BATCH_NJ, SweepSpec, plan_batches

__all__ = [
    "ENGINE_NAMES", "EngineError", "EvalResult", "ForceEngine",
    "PipelineEngine", "SerialEngine", "make_engine",
    "DEFAULT_BATCH_NJ", "SweepSpec", "plan_batches",
]
