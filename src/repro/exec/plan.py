"""Force-evaluation sweep descriptions and batch planning.

One *sweep* is the eval phase of one tree force evaluation: a set of
sinks (Barnes groups, or single particles for the original algorithm),
each owning an interaction list over the shared source arrays (cell
monopoles + Morton-sorted particles).  :class:`SweepSpec` carries the
arrays plus a ``build_lists(a, b)`` callback so an engine can *stream*
the traversal: lists for sinks ``[a, b)`` are built on the host while
earlier sinks are already being evaluated -- the software analogue of
the paper's host/GRAPE overlap (host walks the tree for group *k+1*
while the GRAPE integrates the shared list of group *k*).

:func:`plan_batches` packs consecutive sinks into batches bounded by the
backend's j-memory capacity (``BackendCaps.max_nj``), mirroring how the
host chunks j-particle streaming into ``g5_set_xmj`` loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.traversal import InteractionLists

__all__ = ["SweepSpec", "assemble_sources", "plan_batches",
           "batch_message", "DEFAULT_BATCH_NJ"]

#: j-terms per batch for unbounded backends: big enough to amortise the
#: per-task IPC, small enough that a handful of batches per worker keeps
#: the queue balanced.
DEFAULT_BATCH_NJ = 1 << 16


@dataclass
class SweepSpec:
    """Everything an engine needs to evaluate one force sweep.

    Arrays are in the tree's Morton-sorted frame; ``acc``/``pot``
    results come back in the same frame (the caller scatters to the
    original order).
    """

    #: (N, 3) sorted particle positions / (N,) masses (G-scaled)
    pos: np.ndarray
    pmass: np.ndarray
    #: (C, 3) cell centers of mass / (C,) cell masses
    com: np.ndarray
    cmass: np.ndarray
    #: (S,)/(S,) slice of each sink into the sorted particle arrays
    sink_start: np.ndarray
    sink_count: np.ndarray
    #: Plummer softening of this sweep
    eps: float
    #: coordinate window to announce to device backends (lo, hi); None
    #: when the driver has not announced one
    domain: Optional[Tuple[float, float]]
    #: lists for the sink range [a, b) -- engines may call this in
    #: shards, interleaved with evaluation
    build_lists: Callable[[int, int], InteractionLists]
    #: kernel-set name governing list evaluation ("python" = per-sink
    #: reference loop, "numpy" = batched CSR eval_lists); shipped to
    #: workers so every shard evaluates with the selected kernels
    kernels: str = "python"

    @property
    def n_sinks(self) -> int:
        return int(self.sink_start.shape[0])

    @property
    def n_particles(self) -> int:
        return int(self.pos.shape[0])


def assemble_sources(spec_pos: np.ndarray, spec_pmass: np.ndarray,
                     spec_com: np.ndarray, spec_cmass: np.ndarray,
                     lists: InteractionLists, local: int
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """The (positions, masses) source list of one sink.

    Cell monopoles then direct particles, concatenated into one
    point-mass list -- the exact array the host ships to the GRAPE's
    particle data memory, and the exact concatenation order of the
    serial treecode path (bit-identity depends on it).
    """
    cells = lists.cells_of(local)
    parts = lists.parts_of(local)
    xj = np.concatenate([spec_com[cells], spec_pos[parts]])
    mj = np.concatenate([spec_cmass[cells], spec_pmass[parts]])
    return xj, mj


def batch_message(batch_id: int, sweep_id: int, sweep_meta, shard_meta,
                  a0: int, g0: int, g1: int, ctx=None,
                  kernels: str = "python") -> tuple:
    """The pipeline task message for one batch (sans trailing attempt).

    One place owns the wire shape shared by
    :class:`~repro.exec.engine.PipelineEngine` (producer) and
    :func:`~repro.exec.workers.worker_main` (consumer): evaluate sinks
    ``[g0, g1)`` whose shard lists start at sink ``a0``, reading and
    writing the named shared-memory blocks.  ``ctx`` is the optional
    :class:`~repro.obs.context.SpanContext` of the submitting trace --
    ``None`` when tracing is off, so the disabled path ships no extra
    bytes and workers skip all span bookkeeping.  ``kernels`` names the
    kernel set the worker must evaluate with.  The engine appends the
    attempt number at submit time.
    """
    return ("batch", batch_id, sweep_id, sweep_meta, shard_meta,
            a0, g0, g1, ctx, kernels)


def plan_batches(lengths: np.ndarray, max_nj: Optional[int]
                 ) -> List[Tuple[int, int]]:
    """Pack consecutive sinks into ``[a, b)`` batches of bounded j-load.

    ``lengths`` are per-sink list lengths; a batch closes once its total
    would exceed ``max_nj`` (a single over-long sink still gets its own
    batch -- the backend's own pass-splitting handles it, exactly as
    libg5 splits an oversized j-set into sequential loads).
    """
    cap = int(max_nj) if max_nj else DEFAULT_BATCH_NJ
    out: List[Tuple[int, int]] = []
    a = 0
    load = 0
    for i, ln in enumerate(np.asarray(lengths, dtype=np.int64)):
        if i > a and load + int(ln) > cap:
            out.append((a, i))
            a, load = i, 0
        load += int(ln)
    if a < len(lengths):
        out.append((a, len(lengths)))
    return out
