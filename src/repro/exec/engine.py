"""Force-evaluation engines: serial reference and multiprocess pipeline.

The paper's throughput rests on two overlaps the stock treecode loop
cannot express: the host walks the tree for the *next* Barnes group
while the GRAPE integrates the current group's shared list, and the
j-stream is chunked to the particle data memory's capacity.  An engine
reifies exactly that structure in software:

* :class:`SerialEngine` -- the reference implementation: one blocking
  ``submit``/``gather`` round-trip per sink, bit-identical to the
  historical inline loop (it *is* the same call sequence).
* :class:`PipelineEngine` -- a pool of worker processes over shared
  position/mass/list memory.  Sinks are traversed in contiguous
  *shards*; as soon as shard *k*'s interaction lists exist its batches
  are queued, so workers evaluate shard *k* while the host traverses
  shard *k+1*.  Batches are packed to the backend's j-memory capacity
  (:class:`~repro.core.kernels.BackendCaps.max_nj`).  With one worker
  the evaluation order and arithmetic are identical to the serial path,
  so results are bit-identical; with many workers they still are,
  because every sink's computation is independent and written to a
  disjoint output slice.

Engines are backend-agnostic: anything whose
:meth:`~repro.core.kernels.ForceBackend.capabilities` declares
``parallel_safe`` (and provides a ``worker_factory``) can ride the
pipeline; other backends must use the serial engine.

Self-healing
------------
The pipeline is built to finish sweeps despite faults, the host-side
recovery discipline of the PC-GRAPE cluster deployments.  Batches are
idempotent (deterministic values into disjoint slices), which makes
re-execution always safe; on top of that the engine layers a ladder:

1. worker liveness is polled during gather -- a dead worker is
   detected within :data:`POLL_SECONDS` and the pool is rebuilt on
   fresh queues (a process that dies inside a queue operation can
   leave the queue's lock held forever, so the old queues cannot be
   trusted), with every outstanding batch resubmitted;
2. a started batch that exceeds ``batch_timeout`` has its worker
   declared hung (hang containment) and triggers the same rebuild;
3. a batch whose result checksum mismatches, or whose worker reported
   a (transient) error, is resubmitted with backoff;
4. a batch that exhausts ``max_retries`` degrades to serial: the
   parent evaluates it inline through its own backend -- the same
   arithmetic, so results stay bit-identical to :class:`SerialEngine`.

Every rung increments an ``exec.fault.*`` counter and emits an
``exec.fault`` span event, so injected (or real) faults are visible in
metrics and traces; with a :class:`~repro.obs.flightrec.FlightRecorder`
attached (``flight=``), each fault and recovery decision also lands in
the black-box ring, flushed whenever a sweep saw faults or aborted.
With ``max_retries=0`` and ``degrade=False`` the ladder is disabled and
any fault raises :class:`EngineError` promptly.

Tracing crosses the process boundary: when the sweep runs under an
enabled tracer, each batch ships a :class:`~repro.obs.context.
SpanContext` and the worker's phase timings come back on the ``done``
message, stitched under the submitting ``eval`` span as ``exec.batch``
spans -- ``repro run --engine pipeline --trace out.jsonl`` yields one
coherent tree spanning host and workers.
"""

from __future__ import annotations

import logging
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.kernels import ForceBackend
from ..core.traversal import InteractionLists, concatenate_lists
from ..faults import as_fault_plan
from ..obs.context import SpanContext, new_span_id
from ..obs.trace import Span, as_tracer
from .plan import (DEFAULT_BATCH_NJ, SweepSpec, assemble_sources,
                   batch_message, plan_batches)
from .workers import (STOP, _run_batch, batch_checksum, create_shm,
                      worker_main)

__all__ = ["EngineError", "EvalResult", "ForceEngine", "SerialEngine",
           "PipelineEngine", "make_engine", "ENGINE_NAMES",
           "POLL_SECONDS"]

logger = logging.getLogger(__name__)

ENGINE_NAMES = ("serial", "pipeline")

#: result-queue poll period: the upper bound on how long a dead or hung
#: worker goes unnoticed while the parent is waiting for results
POLL_SECONDS = 0.1

#: one-line help strings for the ``exec.fault.*`` counters
_FAULT_HELP = {
    "worker_deaths": "worker processes found dead during a sweep",
    "respawns": "worker-pool rebuilds after a lost or hung worker",
    "timeouts": "batches exceeding batch_timeout (worker declared hung)",
    "corrupt_batches": "batches failing the result checksum",
    "transient_errors": "transient backend errors reported by workers",
    "batch_errors": "non-transient batch errors reported by workers",
    "batch_retries": "batch resubmissions",
    "serial_fallbacks": "batches degraded to in-process evaluation",
}


class EngineError(RuntimeError):
    """Engine misconfiguration or worker failure."""


@dataclass
class EvalResult:
    """Outcome of one sweep, in the tree's Morton-sorted frame."""

    acc: np.ndarray
    pot: np.ndarray
    #: merged interaction lists of every sink (feeds TreeStats)
    lists: InteractionLists
    #: host seconds spent inside ``spec.build_lists`` calls
    traverse_seconds: float
    #: backend/kernel seconds (worker busy time for the pipeline)
    kernel_seconds: float
    #: engine-specific extras (workers, batches, overlap, ...)
    stats: Dict[str, float] = field(default_factory=dict)


class ForceEngine:
    """Evaluates a :class:`~repro.exec.plan.SweepSpec` over a backend."""

    name: str = "abstract"

    def evaluate(self, backend: ForceBackend, spec: SweepSpec, *,
                 tracer: Optional[object] = None,
                 metrics: Optional[object] = None) -> EvalResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release engine resources (idempotent)."""

    def __enter__(self) -> "ForceEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SerialEngine(ForceEngine):
    """One submit/gather round-trip per sink, on the calling process.

    The call stream is exactly the historical inline loop's, so results
    (and the backend's per-call statistics) are bit-identical to it.
    """

    name = "serial"

    def evaluate(self, backend, spec, *, tracer=None, metrics=None):
        from ..core.kernels import resolve_kernels
        t0 = time.perf_counter()
        lists = spec.build_lists(0, spec.n_sinks)
        t_traverse = time.perf_counter() - t0

        acc = np.empty((spec.n_particles, 3), dtype=np.float64)
        pot = np.empty(spec.n_particles, dtype=np.float64)
        t_kernel = 0.0
        if resolve_kernels(spec.kernels).batched:
            sink_start = np.ascontiguousarray(spec.sink_start,
                                              dtype=np.int64)
            sink_count = np.ascontiguousarray(spec.sink_count,
                                              dtype=np.int64)
            k0 = time.perf_counter()
            backend.eval_lists(spec.pos, spec.pmass, spec.com, spec.cmass,
                               lists, sink_start, sink_count, spec.eps,
                               acc, pot)
            t_kernel = time.perf_counter() - k0
            return EvalResult(acc=acc, pot=pot, lists=lists,
                              traverse_seconds=t_traverse,
                              kernel_seconds=t_kernel,
                              stats={"workers": 0.0})
        for g in range(spec.n_sinks):
            s, n = int(spec.sink_start[g]), int(spec.sink_count[g])
            xi = spec.pos[s:s + n]
            xj, mj = assemble_sources(spec.pos, spec.pmass, spec.com,
                                      spec.cmass, lists, g)
            k0 = time.perf_counter()
            backend.submit(g, xi, xj, mj, spec.eps)
            results = backend.gather()
            t_kernel += time.perf_counter() - k0
            for _, a, p in results:
                acc[s:s + n] = a
                pot[s:s + n] = p
        return EvalResult(acc=acc, pot=pot, lists=lists,
                          traverse_seconds=t_traverse,
                          kernel_seconds=t_kernel,
                          stats={"workers": 0.0})


class PipelineEngine(ForceEngine):
    """Batched submit/gather over a pool of worker processes.

    Parameters
    ----------
    workers:
        Worker process count (default: ``os.cpu_count()``).
    batch_nj:
        Target j-terms per batch; the effective cap is the smaller of
        this and the backend's ``max_nj``.  Batching amortises the
        per-task IPC without changing any per-sink arithmetic.
    shards_per_worker:
        Traversal granularity: sinks are walked in about
        ``workers * shards_per_worker`` shards, each submitted as soon
        as its lists exist, so evaluation overlaps the remaining
        traversal.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (cheapest), else ``spawn``.
    faults:
        Optional fault plan (a :class:`~repro.faults.FaultPlan`, a JSON
        document/path, or the compact DSL -- see
        :func:`repro.faults.parse_fault_plan`) shipped to every worker
        for deterministic fault injection.
    max_retries:
        Resubmissions a batch gets before degrading to serial (0
        disables retries).
    batch_timeout:
        Wall seconds a *started* batch may take before its worker is
        declared hung, terminated and replaced.  ``None`` (default)
        disables hang detection -- no healthy batch is ever
        double-evaluated on a slow machine.
    retry_backoff:
        Base sleep before resubmission number *n* (``retry_backoff *
        n`` seconds).
    degrade:
        Evaluate a retry-exhausted batch inline through the parent's
        backend (bit-identical) instead of raising
        :class:`EngineError`.
    flight:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`.  Every
        fault-ladder event (and each recovery decision) is recorded
        into it, and the ring is flushed to its configured path
        whenever a sweep saw faults or aborted -- the engine-level
        black box.
    """

    name = "pipeline"

    def __init__(self, workers: Optional[int] = None, *,
                 batch_nj: Optional[int] = None,
                 shards_per_worker: int = 4,
                 start_method: Optional[str] = None,
                 faults: Optional[object] = None,
                 max_retries: int = 2,
                 batch_timeout: Optional[float] = None,
                 retry_backoff: float = 0.05,
                 degrade: bool = True,
                 flight: Optional[object] = None) -> None:
        import multiprocessing as mp
        import os
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise EngineError("workers must be >= 1")
        self.workers = int(workers)
        self.batch_nj = int(batch_nj) if batch_nj else None
        self.shards_per_worker = max(1, int(shards_per_worker))
        if max_retries < 0:
            raise EngineError("max_retries must be >= 0")
        self.faults = as_fault_plan(faults)
        self.max_retries = int(max_retries)
        self.batch_timeout = (float(batch_timeout)
                              if batch_timeout is not None else None)
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.degrade = bool(degrade)
        self.flight = flight
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._workers_map: Dict[int, object] = {}
        self._next_wid = 0
        self._task_q = None
        self._result_q = None
        self._factory_bytes: Optional[bytes] = None
        self._fault_bytes: Optional[bytes] = (
            pickle.dumps(self.faults) if self.faults is not None else None)
        self._sweep_counter = 0
        self._closed = False

    @property
    def self_healing(self) -> bool:
        """Whether any rung of the recovery ladder is enabled."""
        return self.max_retries > 0 or self.degrade

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (engine unusable)."""
        return self._closed

    def prewarm(self, backend: ForceBackend) -> "PipelineEngine":
        """Start the worker pool for ``backend`` ahead of the first
        sweep.

        Lease brokers call this when constructing a pooled engine so
        the multi-second worker startup is paid at lease-pool build
        time, not inside the first leased job's first force
        evaluation.  Idempotent for an unchanged backend; raises
        :class:`EngineError` for a closed engine or a backend that is
        not parallel-safe (same checks as :meth:`evaluate`).  Returns
        ``self`` for chaining.
        """
        self._ensure_pool(backend)
        return self

    # -- pool management ----------------------------------------------
    def _spawn_worker(self):
        wid = self._next_wid
        self._next_wid += 1
        p = self._ctx.Process(
            target=worker_main,
            args=(wid, self._factory_bytes, self._task_q, self._result_q,
                  self._fault_bytes),
            daemon=True, name=f"repro-exec-{wid}")
        p.start()
        self._workers_map[wid] = p
        return wid, p

    def _ensure_pool(self, backend: ForceBackend) -> None:
        if self._closed:
            raise EngineError("engine is closed")
        caps = backend.capabilities()
        factory = backend.worker_factory()
        if not caps.parallel_safe or factory is None:
            raise EngineError(
                f"backend {backend.name!r} is not parallel-safe; use the "
                "serial engine")
        factory_bytes = pickle.dumps(factory)
        if self._workers_map and factory_bytes != self._factory_bytes:
            # backend changed under us: restart workers with the new spec
            self._stop_workers()
        if not self._workers_map:
            self._factory_bytes = factory_bytes
            self._task_q = self._ctx.Queue()
            self._result_q = self._ctx.Queue()
            for _ in range(self.workers):
                self._spawn_worker()
            logger.debug("pipeline engine: started %d workers (%s)",
                         self.workers, self._ctx.get_start_method())

    def _kill_workers(self) -> None:
        """Forceful teardown: terminate the pool and drop its queues.

        Used when the queues can no longer be trusted (a worker died,
        or the sweep is aborting) -- no STOP sentinel is sent, because
        a worker that died inside a queue operation may have left the
        queue's lock held, wedging any peer that tries to drain it.
        """
        for p in self._workers_map.values():
            if p.is_alive():
                p.terminate()
        for p in self._workers_map.values():
            p.join(timeout=5.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._workers_map = {}
        self._task_q = self._result_q = None

    def _rebuild_pool(self) -> None:
        """Restart every worker on fresh queues.

        A worker that died (or was terminated) may have held a queue
        lock -- multiprocessing queues are poisoned by a death mid-get
        or mid-put -- so respawning a replacement onto the old queues
        can deadlock it.  Tearing down the whole pool and its queues is
        the only reliably safe recovery; batches are idempotent, so the
        caller simply resubmits everything still outstanding.
        """
        self._kill_workers()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        for _ in range(self.workers):
            self._spawn_worker()

    def _stop_workers(self) -> None:
        if not self._workers_map:
            return
        for _ in self._workers_map:
            try:
                self._task_q.put((STOP,))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for p in self._workers_map.values():
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                q.close()
        self._workers_map = {}
        self._task_q = self._result_q = None

    def close(self) -> None:
        self._stop_workers()
        self._closed = True

    # -- evaluation ----------------------------------------------------
    def evaluate(self, backend, spec, *, tracer=None, metrics=None):
        import queue as _queue
        tr = as_tracer(tracer)
        tracing = bool(getattr(tr, "enabled", False))
        fl = self.flight
        self._ensure_pool(backend)
        caps = backend.capabilities()
        cap_nj = min(c for c in (caps.max_nj,
                                 self.batch_nj or DEFAULT_BATCH_NJ)
                     if c is not None)
        w0 = time.perf_counter()
        sweep_id = self._sweep_counter
        self._sweep_counter += 1

        n = spec.n_particles
        s_count = spec.n_sinks
        domain = spec.domain
        scalars = np.array([spec.eps,
                            1.0 if domain is not None else 0.0,
                            domain[0] if domain is not None else 0.0,
                            domain[1] if domain is not None else 0.0],
                           dtype=np.float64)
        sweep_block = create_shm({
            "pos": spec.pos, "pmass": spec.pmass,
            "com": spec.com, "cmass": spec.cmass,
            "sink_start": np.ascontiguousarray(spec.sink_start,
                                               dtype=np.int64),
            "sink_count": np.ascontiguousarray(spec.sink_count,
                                               dtype=np.int64),
            "out_acc": np.zeros((n, 3), dtype=np.float64),
            "out_pot": np.zeros(n, dtype=np.float64),
            "scalars": scalars,
        })
        sweep_meta = sweep_block.meta

        n_shards = min(s_count, self.workers * self.shards_per_worker)
        shard_size = -(-s_count // n_shards) if n_shards else 0
        shard_blocks = []
        shard_by_name: Dict[str, object] = {}
        lists_parts: List[InteractionLists] = []
        #: batch_id -> base task message (kept until completion so the
        #: batch can be resubmitted or evaluated inline)
        pending_task: Dict[int, tuple] = {}
        attempts: Dict[int, int] = {}
        #: batch_id -> (worker_id, start wall time) from "start" msgs
        started: Dict[int, Tuple[int, float]] = {}
        outstanding: Set[int] = set()
        fault_counts: Dict[str, int] = {}
        next_batch = 0
        n_batches = 0
        t_traverse = 0.0
        t_fallback = 0.0
        busy_by_worker: Dict[int, float] = {}
        tasks_by_worker: Dict[int, int] = {}
        stats_total: Dict[str, float] = {}
        last_check = time.perf_counter()

        def _fault_event(kind: str, **attrs) -> None:
            fault_counts[kind] = fault_counts.get(kind, 0) + 1
            tr.record("exec.fault", 0.0, kind=kind, **attrs)
            if metrics is not None:
                metrics.counter(f"exec.fault.{kind}",
                                _FAULT_HELP.get(kind, "")).inc()
            if fl is not None:
                fl.record(f"fault.{kind}", sweep=sweep_id, **attrs)
            logger.warning("pipeline sweep %d: fault %s %s", sweep_id,
                           kind, attrs)

        def _submit(bid: int) -> None:
            self._task_q.put(pending_task[bid] + (attempts[bid],))

        def _complete(bid: int) -> None:
            outstanding.discard(bid)
            pending_task.pop(bid, None)
            attempts.pop(bid, None)
            started.pop(bid, None)

        def _serial_fallback(bid: int) -> None:
            """Last rung: evaluate the batch in-process through the
            parent's backend (identical arithmetic, so the sweep stays
            bit-identical to the serial engine)."""
            nonlocal t_fallback
            task = pending_task[bid]
            _, _, _, _, shard_meta, a0, g0, g1, _ctx, kern = task
            shard = shard_by_name[shard_meta[0]]
            _fault_event("serial_fallbacks", batch=bid)
            if fl is not None:
                fl.record("recovery", decision="serial_fallback",
                          sweep=sweep_id, batch=bid)
            k0 = time.perf_counter()
            # domain already announced on the parent backend by the
            # driver (TreeCode.set_domain precedes the sweep)
            _run_batch(backend, sweep_block, shard, a0, g0, g1, False,
                       kern)
            t_fallback += time.perf_counter() - k0
            _complete(bid)

        def _retry(bid: int, reason: str, error: str = "",
                   backoff: bool = True) -> None:
            if bid not in outstanding:
                return
            started.pop(bid, None)
            attempts[bid] += 1
            if attempts[bid] > self.max_retries:
                if self.degrade:
                    _serial_fallback(bid)
                    return
                raise EngineError(
                    f"batch {bid} failed after {self.max_retries} "
                    f"retries ({reason})"
                    + (f":\n{error}" if error else ""))
            _fault_event("batch_retries", batch=bid, reason=reason,
                         attempt=attempts[bid])
            if fl is not None:
                fl.record("recovery", decision="retry", sweep=sweep_id,
                          batch=bid, reason=reason,
                          attempt=attempts[bid])
            if backoff and self.retry_backoff:
                time.sleep(self.retry_backoff * attempts[bid])
            _submit(bid)

        def _heal(bad_wids: Set[int], reason: str) -> None:
            """Worker-loss recovery: rebuild the whole pool.

            A worker that died (or was declared hung) may have held a
            queue lock or an unflushed message, so the shared queues
            cannot be trusted -- the pool restarts on fresh queues and
            *every* outstanding batch is resubmitted as a counted
            attempt.  A batch the lost worker consumed without
            announcing is indistinguishable from a queued one, and the
            attempt bump is what keeps a deterministic ``attempt=0``
            fault from re-firing forever in the fresh workers.
            """
            self._rebuild_pool()
            _fault_event("respawns", reason=reason,
                         workers=len(bad_wids))
            if fl is not None:
                fl.record("recovery", decision="rebuild_pool",
                          sweep=sweep_id, reason=reason,
                          workers=sorted(bad_wids),
                          resubmitted=len(outstanding))
            started.clear()
            for bid in sorted(outstanding):
                _retry(bid, reason, backoff=False)

        def _check_liveness() -> None:
            dead = {wid: p for wid, p in self._workers_map.items()
                    if not p.is_alive()}
            if not dead:
                return
            for wid, p in dead.items():
                p.join(timeout=0.1)
                _fault_event("worker_deaths", worker=wid,
                             exitcode=p.exitcode)
            if not self.self_healing:
                p = next(iter(dead.values()))
                raise EngineError(
                    f"worker {p.name} died (exit {p.exitcode}); "
                    "sweep aborted")
            _heal(set(dead), "worker_crash")

        def _check_timeouts() -> None:
            if self.batch_timeout is None:
                return
            now = time.perf_counter()
            hung = {w for bid, (w, t0) in started.items()
                    if now - t0 > self.batch_timeout}
            if not hung:
                return
            for wid in hung:
                _fault_event("timeouts", worker=wid)
            if not self.self_healing:
                raise EngineError(
                    f"batch exceeded batch_timeout="
                    f"{self.batch_timeout}s on worker "
                    f"{sorted(hung)[0]}")
            _heal(hung, "timeout")

        def _checks() -> None:
            nonlocal last_check
            last_check = time.perf_counter()
            _check_liveness()
            _check_timeouts()

        def _handle(msg) -> None:
            kind = msg[0]
            if kind == "start":
                _, bid, wid, sid = msg
                if sid == sweep_id and bid in outstanding:
                    started[bid] = (wid, time.perf_counter())
                return
            if kind == "done":
                _, bid, wid, sid, delta, busy, _ns, crc, wspans = msg
                if sid != sweep_id or bid not in outstanding:
                    return  # stale or duplicate: stats dropped too
                task = pending_task[bid]
                if crc != batch_checksum(sweep_block, task[6], task[7]):
                    _fault_event("corrupt_batches", batch=bid,
                                 worker=wid)
                    if not self.self_healing:
                        raise EngineError(
                            f"batch {bid} failed its result checksum "
                            f"(worker {wid})")
                    _retry(bid, "corrupt_result")
                    return
                ctx = task[8]
                if ctx is not None and wspans:
                    # stitch the worker's phase timings into the parent
                    # trace: one exec.batch span (submit -> last worker
                    # phase, on the shared monotonic clock) whose id was
                    # pre-allocated at submit time, with the worker's
                    # queue-wait/shm-attach/eval spans as children.
                    bsp = Span("exec.batch", span_id=ctx.span_id,
                               attrs={"batch": bid, "worker": wid,
                                      "sweep": sid,
                                      "attempt": attempts.get(bid, 0)})
                    bsp.t_start = ctx.t_origin or wspans[0]["t_start"]
                    bsp.t_end = max(d["t_end"] for d in wspans)
                    for d in wspans:
                        child = Span(d["name"], attrs=d.get("attrs"))
                        child.t_start = d["t_start"]
                        child.t_end = d["t_end"]
                        bsp.children.append(child)
                    tr.attach(bsp)
                _complete(bid)
                busy_by_worker[wid] = busy_by_worker.get(wid, 0.0) \
                    + float(busy)
                tasks_by_worker[wid] = tasks_by_worker.get(wid, 0) + 1
                for k, v in delta.items():
                    stats_total[k] = stats_total.get(k, 0.0) + v
                return
            # "error"
            _, bid, wid, sid, tb, transient = msg
            if sid != sweep_id or bid not in outstanding:
                return
            _fault_event("transient_errors" if transient
                         else "batch_errors", batch=bid, worker=wid)
            if not self.self_healing:
                raise EngineError("worker batch failed:\n" + tb)
            _retry(bid, "transient_error" if transient
                   else "worker_error", error=tb)

        def _pump(block: bool) -> None:
            """Collect results; optionally wait until one arrives.

            Worker liveness and batch timeouts are checked on every
            empty poll and at least every ``2 * POLL_SECONDS`` even
            while results are flowing, so a dead or hung worker is
            noticed promptly instead of the gather loop spinning on the
            queue forever.
            """
            while outstanding:
                if time.perf_counter() - last_check > 2 * POLL_SECONDS:
                    _checks()
                try:
                    msg = self._result_q.get(
                        timeout=POLL_SECONDS if block else 0.0)
                except _queue.Empty:
                    if not block:
                        return
                    _checks()
                    continue
                _handle(msg)
                if not block:
                    return

        try:
            _checks()  # catch workers lost between sweeps up front
            for a in range(0, s_count, max(1, shard_size)):
                b = min(a + shard_size, s_count)
                t0 = time.perf_counter()
                lists = spec.build_lists(a, b)
                t_traverse += time.perf_counter() - t0
                lists_parts.append(lists)
                shard_block = create_shm({
                    "cell_idx": lists.cell_idx, "cell_off": lists.cell_off,
                    "part_idx": lists.part_idx, "part_off": lists.part_off,
                })
                shard_blocks.append(shard_block)
                shard_by_name[shard_block.meta[0]] = shard_block
                for (u, v) in plan_batches(lists.list_lengths, cap_nj):
                    bid = next_batch
                    next_batch += 1
                    n_batches += 1
                    outstanding.add(bid)
                    ctx = (SpanContext(getattr(tr, "trace_id", ""),
                                       new_span_id(),
                                       time.perf_counter())
                           if tracing else None)
                    pending_task[bid] = batch_message(
                        bid, sweep_id, sweep_meta, shard_block.meta,
                        a, a + u, a + v, ctx, spec.kernels)
                    attempts[bid] = 0
                    _submit(bid)
                    if metrics is not None:
                        metrics.histogram(
                            "exec.queue_depth",
                            "batches in flight at submit time"
                            ).observe(len(outstanding))
                # opportunistic, non-blocking collection keeps the
                # result queue short while we keep traversing
                _pump(block=False)
            _pump(block=True)
        except Exception as e:
            # workers may still be computing into the shared segments;
            # kill the pool before the memory goes away (the next sweep
            # restarts it).  Forceful on purpose: a graceful STOP drain
            # can hang on queues a dead worker left locked.
            if fl is not None:
                fl.record("sweep_abort", sweep=sweep_id,
                          error=f"{type(e).__name__}: {e}",
                          faults=dict(fault_counts))
                fl.flush()
            self._kill_workers()
            self._release(sweep_block, shard_blocks)
            raise

        acc = np.array(sweep_block["out_acc"])
        pot = np.array(sweep_block["out_pot"])
        self._release(sweep_block, shard_blocks)

        backend.absorb_stats(stats_total)
        wall = time.perf_counter() - w0
        busy_total = sum(busy_by_worker.values())
        overlap = busy_total / wall if wall > 0 else 0.0
        for wid in sorted(busy_by_worker):
            tr.record("exec.worker", busy_by_worker[wid], worker=wid,
                      batches=tasks_by_worker.get(wid, 0))
        if metrics is not None:
            m = metrics
            m.counter("exec.sweeps", "pipeline evaluation sweeps").inc()
            m.counter("exec.batches",
                      "force batches shipped to workers").inc(n_batches)
            m.counter("exec.sinks", "sinks evaluated").inc(s_count)
            m.counter("exec.worker_busy_seconds",
                      "summed worker busy seconds").inc(busy_total)
            m.gauge("exec.workers", "pipeline worker processes"
                    ).set(self.workers)
            m.gauge("exec.overlap",
                    "worker busy seconds per sweep wall second "
                    "(effective concurrency)").set(overlap)
        if fl is not None and fault_counts:
            fl.flush()
        logger.debug("pipeline sweep %d: sinks=%d batches=%d wall=%.3fs "
                     "busy=%.3fs overlap=%.2f faults=%s", sweep_id,
                     s_count, n_batches, wall, busy_total, overlap,
                     fault_counts or "none")
        stats = {"workers": float(self.workers),
                 "batches": float(n_batches),
                 "busy_seconds": busy_total,
                 "wall_seconds": wall,
                 "overlap": overlap}
        for k, v in fault_counts.items():
            stats[f"fault.{k}"] = float(v)
        return EvalResult(
            acc=acc, pot=pot, lists=concatenate_lists(lists_parts),
            traverse_seconds=t_traverse,
            kernel_seconds=busy_total + t_fallback, stats=stats)

    @staticmethod
    def _release(sweep_block, shard_blocks) -> None:
        for block in [sweep_block] + list(shard_blocks):
            try:
                block.close()
                block.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self._stop_workers()
        except Exception:
            pass


def make_engine(name: str, *, workers: Optional[int] = None,
                **kwargs) -> Optional[ForceEngine]:
    """CLI/driver factory.

    ``serial`` returns ``None`` -- drivers treat that as "use the
    built-in sequential path", which is the default and exactly
    today's behaviour.  ``pipeline`` returns a started-on-demand
    :class:`PipelineEngine`.
    """
    if name == "serial":
        return None
    if name == "pipeline":
        return PipelineEngine(workers=workers, **kwargs)
    raise EngineError(f"unknown engine {name!r} (choose from "
                      f"{', '.join(ENGINE_NAMES)})")
