"""Force-evaluation engines: serial reference and multiprocess pipeline.

The paper's throughput rests on two overlaps the stock treecode loop
cannot express: the host walks the tree for the *next* Barnes group
while the GRAPE integrates the current group's shared list, and the
j-stream is chunked to the particle data memory's capacity.  An engine
reifies exactly that structure in software:

* :class:`SerialEngine` -- the reference implementation: one blocking
  ``submit``/``gather`` round-trip per sink, bit-identical to the
  historical inline loop (it *is* the same call sequence).
* :class:`PipelineEngine` -- a pool of worker processes over shared
  position/mass/list memory.  Sinks are traversed in contiguous
  *shards*; as soon as shard *k*'s interaction lists exist its batches
  are queued, so workers evaluate shard *k* while the host traverses
  shard *k+1*.  Batches are packed to the backend's j-memory capacity
  (:class:`~repro.core.kernels.BackendCaps.max_nj`).  With one worker
  the evaluation order and arithmetic are identical to the serial path,
  so results are bit-identical; with many workers they still are,
  because every sink's computation is independent and written to a
  disjoint output slice.

Engines are backend-agnostic: anything whose
:meth:`~repro.core.kernels.ForceBackend.capabilities` declares
``parallel_safe`` (and provides a ``worker_factory``) can ride the
pipeline; other backends must use the serial engine.
"""

from __future__ import annotations

import logging
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.kernels import ForceBackend
from ..core.traversal import InteractionLists, concatenate_lists
from ..obs.trace import as_tracer
from .plan import (DEFAULT_BATCH_NJ, SweepSpec, assemble_sources,
                   plan_batches)
from .workers import STOP, create_shm, worker_main

__all__ = ["EngineError", "EvalResult", "ForceEngine", "SerialEngine",
           "PipelineEngine", "make_engine", "ENGINE_NAMES"]

logger = logging.getLogger(__name__)

ENGINE_NAMES = ("serial", "pipeline")


class EngineError(RuntimeError):
    """Engine misconfiguration or worker failure."""


@dataclass
class EvalResult:
    """Outcome of one sweep, in the tree's Morton-sorted frame."""

    acc: np.ndarray
    pot: np.ndarray
    #: merged interaction lists of every sink (feeds TreeStats)
    lists: InteractionLists
    #: host seconds spent inside ``spec.build_lists`` calls
    traverse_seconds: float
    #: backend/kernel seconds (worker busy time for the pipeline)
    kernel_seconds: float
    #: engine-specific extras (workers, batches, overlap, ...)
    stats: Dict[str, float] = field(default_factory=dict)


class ForceEngine:
    """Evaluates a :class:`~repro.exec.plan.SweepSpec` over a backend."""

    name: str = "abstract"

    def evaluate(self, backend: ForceBackend, spec: SweepSpec, *,
                 tracer: Optional[object] = None,
                 metrics: Optional[object] = None) -> EvalResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release engine resources (idempotent)."""

    def __enter__(self) -> "ForceEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SerialEngine(ForceEngine):
    """One submit/gather round-trip per sink, on the calling process.

    The call stream is exactly the historical inline loop's, so results
    (and the backend's per-call statistics) are bit-identical to it.
    """

    name = "serial"

    def evaluate(self, backend, spec, *, tracer=None, metrics=None):
        t0 = time.perf_counter()
        lists = spec.build_lists(0, spec.n_sinks)
        t_traverse = time.perf_counter() - t0

        acc = np.empty((spec.n_particles, 3), dtype=np.float64)
        pot = np.empty(spec.n_particles, dtype=np.float64)
        t_kernel = 0.0
        for g in range(spec.n_sinks):
            s, n = int(spec.sink_start[g]), int(spec.sink_count[g])
            xi = spec.pos[s:s + n]
            xj, mj = assemble_sources(spec.pos, spec.pmass, spec.com,
                                      spec.cmass, lists, g)
            k0 = time.perf_counter()
            backend.submit(g, xi, xj, mj, spec.eps)
            results = backend.gather()
            t_kernel += time.perf_counter() - k0
            for _, a, p in results:
                acc[s:s + n] = a
                pot[s:s + n] = p
        return EvalResult(acc=acc, pot=pot, lists=lists,
                          traverse_seconds=t_traverse,
                          kernel_seconds=t_kernel,
                          stats={"workers": 0.0})


class PipelineEngine(ForceEngine):
    """Batched submit/gather over a pool of worker processes.

    Parameters
    ----------
    workers:
        Worker process count (default: ``os.cpu_count()``).
    batch_nj:
        Target j-terms per batch; the effective cap is the smaller of
        this and the backend's ``max_nj``.  Batching amortises the
        per-task IPC without changing any per-sink arithmetic.
    shards_per_worker:
        Traversal granularity: sinks are walked in about
        ``workers * shards_per_worker`` shards, each submitted as soon
        as its lists exist, so evaluation overlaps the remaining
        traversal.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (cheapest), else ``spawn``.
    """

    name = "pipeline"

    def __init__(self, workers: Optional[int] = None, *,
                 batch_nj: Optional[int] = None,
                 shards_per_worker: int = 4,
                 start_method: Optional[str] = None) -> None:
        import multiprocessing as mp
        import os
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise EngineError("workers must be >= 1")
        self.workers = int(workers)
        self.batch_nj = int(batch_nj) if batch_nj else None
        self.shards_per_worker = max(1, int(shards_per_worker))
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._procs: List = []
        self._task_q = None
        self._result_q = None
        self._factory_bytes: Optional[bytes] = None
        self._sweep_counter = 0
        self._closed = False

    # -- pool management ----------------------------------------------
    def _ensure_pool(self, backend: ForceBackend) -> None:
        if self._closed:
            raise EngineError("engine is closed")
        caps = backend.capabilities()
        factory = backend.worker_factory()
        if not caps.parallel_safe or factory is None:
            raise EngineError(
                f"backend {backend.name!r} is not parallel-safe; use the "
                "serial engine")
        factory_bytes = pickle.dumps(factory)
        if self._procs and factory_bytes != self._factory_bytes:
            # backend changed under us: restart workers with the new spec
            self._stop_workers()
        if not self._procs:
            self._factory_bytes = factory_bytes
            self._task_q = self._ctx.Queue()
            self._result_q = self._ctx.Queue()
            self._procs = [
                self._ctx.Process(
                    target=worker_main,
                    args=(i, factory_bytes, self._task_q, self._result_q),
                    daemon=True, name=f"repro-exec-{i}")
                for i in range(self.workers)]
            for p in self._procs:
                p.start()
            logger.debug("pipeline engine: started %d workers (%s)",
                         self.workers, self._ctx.get_start_method())

    def _stop_workers(self) -> None:
        if not self._procs:
            return
        for _ in self._procs:
            try:
                self._task_q.put((STOP,))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                q.close()
        self._procs = []
        self._task_q = self._result_q = None

    def close(self) -> None:
        self._stop_workers()
        self._closed = True

    # -- evaluation ----------------------------------------------------
    def evaluate(self, backend, spec, *, tracer=None, metrics=None):
        tr = as_tracer(tracer)
        self._ensure_pool(backend)
        caps = backend.capabilities()
        cap_nj = min(c for c in (caps.max_nj,
                                 self.batch_nj or DEFAULT_BATCH_NJ)
                     if c is not None)
        w0 = time.perf_counter()
        sweep_id = self._sweep_counter
        self._sweep_counter += 1

        n = spec.n_particles
        s_count = spec.n_sinks
        domain = spec.domain
        scalars = np.array([spec.eps,
                            1.0 if domain is not None else 0.0,
                            domain[0] if domain is not None else 0.0,
                            domain[1] if domain is not None else 0.0],
                           dtype=np.float64)
        sweep_block = create_shm({
            "pos": spec.pos, "pmass": spec.pmass,
            "com": spec.com, "cmass": spec.cmass,
            "sink_start": np.ascontiguousarray(spec.sink_start,
                                               dtype=np.int64),
            "sink_count": np.ascontiguousarray(spec.sink_count,
                                               dtype=np.int64),
            "out_acc": np.zeros((n, 3), dtype=np.float64),
            "out_pot": np.zeros(n, dtype=np.float64),
            "scalars": scalars,
        })
        sweep_meta = sweep_block.meta

        n_shards = min(s_count, self.workers * self.shards_per_worker)
        shard_size = -(-s_count // n_shards) if n_shards else 0
        shard_blocks = []
        lists_parts: List[InteractionLists] = []
        outstanding: Dict[int, int] = {}
        next_batch = 0
        n_batches = 0
        t_traverse = 0.0
        busy_by_worker: Dict[int, float] = {}
        tasks_by_worker: Dict[int, int] = {}
        stats_total: Dict[str, float] = {}
        errors: List[str] = []

        def _drain(block: bool) -> None:
            """Collect completed batches; optionally wait for one."""
            import queue as _queue
            while outstanding:
                try:
                    msg = self._result_q.get(
                        timeout=1.0 if block else 0.0)
                except _queue.Empty:
                    if not block:
                        return
                    for p in self._procs:
                        if not p.is_alive():
                            raise EngineError(
                                f"worker {p.name} died (exit "
                                f"{p.exitcode}); sweep aborted")
                    continue
                if msg[0] == "done":
                    _, batch_id, wid, delta, busy, _n = msg
                    outstanding.pop(batch_id, None)
                    busy_by_worker[wid] = busy_by_worker.get(wid, 0.0) \
                        + float(busy)
                    tasks_by_worker[wid] = tasks_by_worker.get(wid, 0) + 1
                    for k, v in delta.items():
                        stats_total[k] = stats_total.get(k, 0.0) + v
                else:
                    _, batch_id, wid, tb = msg
                    outstanding.pop(batch_id, None)
                    errors.append(tb)
                if not block:
                    return

        try:
            for a in range(0, s_count, max(1, shard_size)):
                b = min(a + shard_size, s_count)
                t0 = time.perf_counter()
                lists = spec.build_lists(a, b)
                t_traverse += time.perf_counter() - t0
                lists_parts.append(lists)
                shard_block = create_shm({
                    "cell_idx": lists.cell_idx, "cell_off": lists.cell_off,
                    "part_idx": lists.part_idx, "part_off": lists.part_off,
                })
                shard_blocks.append(shard_block)
                for (u, v) in plan_batches(lists.list_lengths, cap_nj):
                    batch_id = next_batch
                    next_batch += 1
                    n_batches += 1
                    outstanding[batch_id] = 1
                    self._task_q.put(("batch", batch_id, sweep_id,
                                      sweep_meta, shard_block.meta,
                                      a, a + u, a + v))
                    if metrics is not None:
                        metrics.histogram(
                            "exec.queue_depth",
                            "batches in flight at submit time"
                            ).observe(len(outstanding))
                # opportunistic, non-blocking collection keeps the
                # result queue short while we keep traversing
                _drain(block=False)
            while outstanding:
                _drain(block=True)
        except Exception:
            # account for every batch before tearing the memory down, so
            # no worker is left computing into an unlinked segment
            try:
                while outstanding:
                    _drain(block=True)
            except Exception:  # pragma: no cover - worker died
                self._stop_workers()
            self._release(sweep_block, shard_blocks)
            raise

        acc = np.array(sweep_block["out_acc"])
        pot = np.array(sweep_block["out_pot"])
        self._release(sweep_block, shard_blocks)
        if errors:
            raise EngineError("worker batch failed:\n" + errors[0])

        backend.absorb_stats(stats_total)
        wall = time.perf_counter() - w0
        busy_total = sum(busy_by_worker.values())
        overlap = busy_total / wall if wall > 0 else 0.0
        for wid in sorted(busy_by_worker):
            tr.record("exec.worker", busy_by_worker[wid], worker=wid,
                      batches=tasks_by_worker.get(wid, 0))
        if metrics is not None:
            m = metrics
            m.counter("exec.sweeps", "pipeline evaluation sweeps").inc()
            m.counter("exec.batches",
                      "force batches shipped to workers").inc(n_batches)
            m.counter("exec.sinks", "sinks evaluated").inc(s_count)
            m.counter("exec.worker_busy_seconds",
                      "summed worker busy seconds").inc(busy_total)
            m.gauge("exec.workers", "pipeline worker processes"
                    ).set(self.workers)
            m.gauge("exec.overlap",
                    "worker busy seconds per sweep wall second "
                    "(effective concurrency)").set(overlap)
        logger.debug("pipeline sweep %d: sinks=%d batches=%d wall=%.3fs "
                     "busy=%.3fs overlap=%.2f", sweep_id, s_count,
                     n_batches, wall, busy_total, overlap)
        return EvalResult(
            acc=acc, pot=pot, lists=concatenate_lists(lists_parts),
            traverse_seconds=t_traverse, kernel_seconds=busy_total,
            stats={"workers": float(self.workers),
                   "batches": float(n_batches),
                   "busy_seconds": busy_total,
                   "wall_seconds": wall,
                   "overlap": overlap})

    @staticmethod
    def _release(sweep_block, shard_blocks) -> None:
        for block in [sweep_block] + list(shard_blocks):
            try:
                block.close()
                block.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            self._stop_workers()
        except Exception:
            pass


def make_engine(name: str, *, workers: Optional[int] = None,
                **kwargs) -> Optional[ForceEngine]:
    """CLI/driver factory.

    ``serial`` returns ``None`` -- drivers treat that as "use the
    built-in sequential path", which is the default and exactly
    today's behaviour.  ``pipeline`` returns a started-on-demand
    :class:`PipelineEngine`.
    """
    if name == "serial":
        return None
    if name == "pipeline":
        return PipelineEngine(workers=workers, **kwargs)
    raise EngineError(f"unknown engine {name!r} (choose from "
                      f"{', '.join(ENGINE_NAMES)})")
