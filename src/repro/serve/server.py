"""Asyncio HTTP front door for the simulation service.

Stdlib-only HTTP/1.1 over :func:`asyncio.start_server` -- the same
no-dependency discipline as the rest of the package.  Connections are
single-request (``Connection: close``), which keeps the parser
trivial and is plenty for a job-submission control plane.

Endpoints
---------
=======  ==========================  =====================================
method   path                        behaviour
=======  ==========================  =====================================
POST     /jobs                       submit a ``repro.job/v1`` document;
                                     201 + job doc, 400 on a malformed
                                     spec, **429 + Retry-After** when
                                     admission control rejects
GET      /jobs                       all job documents
GET      /jobs/{id}                  one job document (404 unknown)
GET      /jobs/{id}/events           NDJSON progress-event stream:
                                     replays recorded events, then
                                     follows live until the job stops
GET      /jobs/{id}/trace            the job's span tree
                                     (``repro.trace/v1``): queue wait,
                                     lease acquisition, run, steps,
                                     stitched worker batches
DELETE   /jobs/{id}                  cancel; returns the job document
POST     /jobs/{id}/pause            checkpoint + vacate the slot
POST     /jobs/{id}/resume           re-queue a paused job
GET      /healthz                    liveness + queue/lease snapshot
                                     (+ store kind, worker id, cache,
                                     fleet membership summary)
GET      /store                      durable-store snapshot: job counts
                                     by state, cache stats, integrity
                                     findings (``repro.store/v1``)
GET      /fleet                      fleet membership
                                     (``repro.fleet/v1``): registry
                                     rows, live/draining counts, store
                                     identity, shared-cache stats
POST     /fleet/drain                drain this worker: stop claiming,
                                     checkpoint + re-queue owned jobs,
                                     deregister; returns the summary
GET      /metrics                    Prometheus exposition of the
                                     scheduler registry (``obs.export``)
=======  ==========================  =====================================

The server owns no policy: every decision is the
:class:`~repro.serve.scheduler.Scheduler`'s, translated to status
codes here.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from typing import Dict, Optional, Tuple

from .jobs import JobError
from .scheduler import AdmissionError, Scheduler

__all__ = ["ServeError", "Server", "run_server"]

logger = logging.getLogger(__name__)

#: cap on request bodies (a job spec is tiny; anything bigger is abuse)
MAX_BODY = 1 << 20

#: poll period of the live event stream
_EVENT_POLL = 0.05


class ServeError(RuntimeError):
    """Service configuration/usage error (CLI exit 2)."""


def _response(status: int, reason: str, body: bytes,
              content_type: str = "application/json",
              extra: Optional[Dict[str, str]] = None) -> bytes:
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    for k, v in (extra or {}).items():
        head.append(f"{k}: {v}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, reason: str, doc,
                   extra: Optional[Dict[str, str]] = None) -> bytes:
    return _response(status, reason,
                     (json.dumps(doc) + "\n").encode("utf-8"),
                     extra=extra)


def _error(status: int, reason: str, message: str,
           extra: Optional[Dict[str, str]] = None) -> bytes:
    return _json_response(status, reason, {"error": message},
                          extra=extra)


class Server:
    """One scheduler behind one listening socket.

    ``port=0`` binds an ephemeral port (tests); the bound port is the
    ``port`` attribute after :meth:`start`.
    """

    def __init__(self, scheduler: Scheduler, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = int(port)
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "Server":
        self.scheduler.start()
        self.started_at = time.time()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on http://%s:%d/", self.host, self.port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # scheduler.stop joins worker threads; keep the loop responsive
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.stop)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- request plumbing ----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            await self._dispatch(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as e:  # pragma: no cover - defensive 500
            logger.exception("request handling failed")
            try:
                writer.write(_error(500, "Internal Server Error",
                                    f"{type(e).__name__}: {e}"))
            except Exception:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader
                            ) -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            h = await reader.readline()
            if h in (b"\r\n", b"\n", b""):
                break
            name, _, value = h.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = min(MAX_BODY, int(value.strip()))
                except ValueError:
                    length = 0
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        sched = self.scheduler
        route = (method, *[p for p in path.split("?")[0].split("/")
                           if p])

        if route == ("GET", "healthz"):
            with_jobs = sched.jobs()
            queued = sum(j.state == "queued" for j in with_jobs)

            def _store_view():
                # store calls may be fleet RPCs; keep them (and any
                # registry trouble) off the event loop and non-fatal
                try:
                    return (sched.store.fleet_summary(),
                            sched.store.cache_stats())
                except Exception:
                    return {}, {}

            fleet, cache = await asyncio.get_running_loop() \
                .run_in_executor(None, _store_view)
            writer.write(_json_response(200, "OK", {
                "status": "ok",
                "jobs": len(with_jobs),
                "queued": queued,
                "running": sum(j.state == "running" for j in
                               with_jobs),
                "slots": sched.slots,
                "leases_in_use": sched.broker.in_use,
                "queue_depth": queued,
                "queue_limit": sched.queue_depth,
                "store": sched.store.kind,
                "store_url": getattr(sched.store, "url", None),
                "worker": sched.worker_id,
                "draining": sched.draining,
                "fleet": fleet,
                "cache": cache,
                "uptime_seconds": (time.time() - self.started_at
                                   if self.started_at else 0.0),
            }))
            return
        if route == ("GET", "fleet"):
            # fleet_status reads the registry -- possibly over RPC
            status = await asyncio.get_running_loop() \
                .run_in_executor(None, sched.fleet_status)
            writer.write(_json_response(200, "OK", status))
            return
        if route == ("POST", "fleet", "drain"):
            # drain joins worker threads mid-job; off the event loop
            summary = await asyncio.get_running_loop() \
                .run_in_executor(None, sched.drain)
            writer.write(_json_response(200, "OK", summary))
            return
        if route == ("GET", "store"):
            store = sched.store
            writer.write(_json_response(200, "OK", {
                "schema": "repro.store/v1",
                "kind": store.kind,
                "worker": sched.worker_id,
                "jobs": store.counts(),
                "cache": store.cache_stats(),
                "findings": store.verify(),
            }))
            return
        if route == ("GET", "metrics"):
            from ..obs.export import format_prometheus
            writer.write(_response(
                200, "OK",
                format_prometheus(sched.metrics).encode("utf-8"),
                content_type="text/plain; version=0.0.4"))
            return
        if route == ("POST", "jobs"):
            await self._submit(body, writer)
            return
        if route == ("GET", "jobs"):
            writer.write(_json_response(
                200, "OK", {"jobs": [j.to_dict()
                                     for j in sched.jobs()]}))
            return
        if len(route) >= 3 and route[1] == "jobs":
            await self._job_route(route, writer)
            return
        writer.write(_error(404, "Not Found",
                            f"no route {method} {path}"))

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        from .jobs import JobSpec
        try:
            doc = json.loads(body.decode("utf-8") or "null")
            spec = JobSpec.from_dict(doc)
        except (ValueError, JobError) as e:
            writer.write(_error(400, "Bad Request", str(e)))
            return
        try:
            job = self.scheduler.submit(spec)
        except AdmissionError as e:
            writer.write(_error(
                429, "Too Many Requests", str(e),
                extra={"Retry-After":
                       str(max(1, round(e.retry_after)))}))
            return
        writer.write(_json_response(201, "Created", job.to_dict()))

    async def _job_route(self, route, writer) -> None:
        sched = self.scheduler
        method, _, job_id, *rest = route
        try:
            job = sched.get(job_id)
        except KeyError as e:
            writer.write(_error(404, "Not Found", str(e)))
            return
        try:
            if method == "GET" and not rest:
                writer.write(_json_response(200, "OK", job.to_dict()))
            elif method == "GET" and rest == ["events"]:
                await self._stream_events(job_id, writer)
            elif method == "GET" and rest == ["trace"]:
                from ..obs.export import span_events
                spans = (list(span_events(job.tracer))
                         if job.tracer is not None else [])
                writer.write(_json_response(200, "OK", {
                    "schema": "repro.trace/v1",
                    "job": job.id,
                    "state": job.state,
                    "trace_id": job.trace_id,
                    "spans": spans,
                }))
            elif method == "DELETE" and not rest:
                writer.write(_json_response(
                    200, "OK", sched.cancel(job_id).to_dict()))
            elif method == "POST" and rest == ["pause"]:
                writer.write(_json_response(
                    200, "OK", sched.pause(job_id).to_dict()))
            elif method == "POST" and rest == ["resume"]:
                writer.write(_json_response(
                    200, "OK", sched.resume(job_id).to_dict()))
            else:
                writer.write(_error(404, "Not Found",
                                    "no such job operation"))
        except JobError as e:
            writer.write(_error(409, "Conflict", str(e)))

    async def _stream_events(self, job_id: str,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON event stream: recorded events first, then live ones
        until the job reaches a resting state.  Events come through
        the scheduler (live list for locally-owned jobs, the store's
        durable event log for jobs another worker runs).  The body is
        EOF-terminated (no Content-Length), so plain ``http.client``
        readers just read lines until the connection closes."""
        sched = self.scheduler
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            job = sched.get(job_id)
            events = sched.events(job_id)
            while sent < len(events):
                writer.write((json.dumps(events[sent]) + "\n")
                             .encode("utf-8"))
                sent += 1
            await writer.drain()
            if job.terminal or job.state == "paused":
                writer.write((json.dumps(
                    {"event": "state", "state": job.state}) + "\n")
                    .encode("utf-8"))
                return
            await asyncio.sleep(_EVENT_POLL)


async def _run(server: Server) -> None:
    """Serve until SIGINT/SIGTERM, then shut down cleanly."""
    import signal
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops
    print(f"repro serve: listening on "
          f"http://{server.host}:{server.port}/ "
          f"({server.scheduler.slots} slot(s), queue bound "
          f"{server.scheduler.queue_depth}, store "
          f"{server.scheduler.store.kind}, worker "
          f"{server.scheduler.worker_id})", flush=True)
    await stop.wait()
    print("repro serve: shutting down", flush=True)
    await server.stop()


def run_server(*, host: str = "127.0.0.1", port: int = 8014,
               slots: int = 2, boards: int = 2, queue_depth: int = 16,
               workdir: Optional[object] = None,
               store: Optional[object] = None,
               worker_id: Optional[str] = None,
               claim_ttl: float = 30.0,
               quota: Optional[object] = None,
               cache: bool = True,
               cache_budget: Optional[int] = None,
               metrics: Optional[object] = None,
               tracer: Optional[object] = None) -> int:
    """Blocking entry point behind ``repro serve``.

    Builds the scheduler + server, runs the asyncio loop until a
    termination signal, and returns the process exit code.  The
    default ``worker_id`` is stable across restarts (``host:port``),
    so a restarted server reclaims its own orphaned jobs immediately
    instead of waiting out the claim TTL.
    """
    sched = Scheduler(slots=slots, boards=boards,
                      queue_depth=queue_depth,
                      workdir=workdir, store=store,
                      worker_id=worker_id or f"{host}:{port}",
                      claim_ttl=claim_ttl, quota=quota, cache=cache,
                      cache_budget=cache_budget,
                      metrics=metrics, tracer=tracer)
    server = Server(sched, host=host, port=port)
    try:
        asyncio.run(_run(server))
    except KeyboardInterrupt:
        sched.stop()
    return 0
