"""Job execution: one leased accelerator, one simulation, one result.

The runner is the bridge between a :class:`~repro.serve.jobs.Job` and
the simulation stack.  It executes on the scheduler's worker thread,
*inside* the job's lease: every force evaluation goes through the
leased slot's :class:`~repro.grape.api.G5Context` system (via
:func:`repro.sim.recipes.build_force`'s ``system=`` hook), so two
concurrent jobs never interleave staging traffic on one device.

Bit-identity
------------
A ``run`` job is constructed through :mod:`repro.sim.recipes` -- the
same code path as ``repro run`` -- and its result carries
``state_digest(pos, vel, t)``.  Served and interactive runs of the
same parameters therefore produce equal digests; the acceptance tests
check exactly that.

Robustness
----------
Each job gets a private workdir with rotated checkpoints
(``spec.checkpoint_every > 0``): a fault that exhausts the
engine/backend retry budgets rolls the job back through
``Simulation.run``'s recovery path (bounded by
``spec.max_recoveries``), and a scheduler-level restart of the job
(crash requeue, pause/resume) continues from the newest intact
generation instead of step 0.  Cancel and pause flags are polled
between steps.
"""

from __future__ import annotations

import hashlib
import logging
import time
from pathlib import Path
from typing import Any, Dict, Optional

from .jobs import Job, JobCancelled, JobPaused

__all__ = ["run_job"]

logger = logging.getLogger(__name__)

#: fixed eps of the sweep/force_eval synthetic snapshots (matches the
#: CLI's ``sweep`` hard-coded softening)
_EPS_SYNTH = 0.01


def _job_engine(spec, lease, plan, flight=None):
    """The force-evaluation engine for this job (None = serial).

    Pipeline jobs normally ride the lease slot's prewarmed pool; a job
    carrying its own fault plan gets a *private* engine instead so the
    injected faults stay scoped to it.  With ``max_retries=0`` the
    private engine's self-healing ladder is fully disabled
    (``degrade=False``), so an injected worker crash escalates to
    :class:`~repro.exec.EngineError` and the job recovers through its
    own checkpoints -- the chaos path the scheduler tests exercise.
    The job's flight recorder rides into the private engine so every
    ladder decision lands in the job's black box.
    """
    if spec.engine != "pipeline":
        return None, False
    if plan is None:
        return lease.engine, False
    from ..exec import PipelineEngine
    eng = PipelineEngine(workers=spec.workers, faults=plan,
                         max_retries=spec.max_retries,
                         degrade=spec.max_retries > 0,
                         flight=flight)
    return eng, True


def _poll_flags(job: Job, sim, ckpt: Optional[Path]) -> None:
    """Between-step control point: honour cancel/pause requests."""
    if job.cancel_event.is_set():
        raise JobCancelled(job.id)
    if job.pause_event.is_set():
        if ckpt is not None:
            from ..sim.checkpoint import save_checkpoint
            save_checkpoint(ckpt, sim, rotate=True)
        raise JobPaused(job.id)


def _run_run(job: Job, lease, *, tracer, metrics) -> Dict[str, Any]:
    """Kind ``run``: the scaled paper experiment, shared recipe with
    ``repro run``, checkpoint-backed restart/recovery."""
    from ..cosmo import SCDM
    from ..faults import FaultInjector, parse_fault_plan
    from ..sim import Simulation
    from ..sim.checkpoint import (CheckpointCorrupt, last_good_entries,
                                  load_latest, save_checkpoint)
    from ..sim.diagnostics import interaction_totals
    from ..sim.recipes import (build_force, carve_run_region,
                               run_schedule, state_digest)

    spec, p = job.spec, job.spec.params
    plan = parse_fault_plan(spec.faults) if spec.faults else None
    injector = (FaultInjector(plan, flight=job.flight)
                if plan is not None else None)
    engine, private_engine = _job_engine(spec, lease, plan,
                                         flight=job.flight)
    force, gb = build_force(
        theta=p["theta"], ncrit=p["ncrit"], backend=p["backend"],
        system=(lease.context.system if p["backend"] == "grape"
                else None),
        engine=engine, tracer=tracer, metrics=metrics,
        fault_injector=injector, max_retries=spec.max_retries,
        kernels=spec.kernels)

    ckpt = (Path(job.workdir) / "checkpoint.npz" if job.workdir
            else None)
    sim = None
    has_ckpt = ckpt is not None and (
        ckpt.exists()
        or ckpt.with_name(ckpt.name + ".last_good").exists())
    if has_ckpt:
        try:
            sim = load_latest(ckpt, force=force)
            sim.tracer, sim.metrics = tracer, metrics
            gens = last_good_entries(ckpt)
            job.add_event("resumed", steps_done=len(sim.history),
                          attempt=job.attempt,
                          generation=(gens[0].get("sha256", "")[:12]
                                      if gens else None))
            logger.info("job %s: resumed from %s at step %d "
                        "(attempt %d)", job.id, ckpt,
                        len(sim.history), job.attempt)
        except (FileNotFoundError, CheckpointCorrupt):
            sim = None
    if sim is None:
        region = carve_run_region(ngrid=p["ngrid"], seed=p["seed"],
                                  z_init=p["z_init"])
        sim = Simulation.from_sphere(region, force=force,
                                     tracer=tracer, metrics=metrics)
        sim.t = SCDM.age(p["z_init"])
    sim.flight = job.flight

    dts = run_schedule(z_init=p["z_init"], z_final=p["z_final"],
                       steps=p["steps"])
    job.steps_total = len(dts)
    job.steps_done = len(sim.history)
    remaining = dts[len(sim.history):]

    def _progress(s, rec):
        job.steps_done = len(s.history)
        job.add_event("step", step=rec.step, t=rec.t,
                      wall=rec.wall_seconds,
                      mean_list=rec.mean_list_length)
        _poll_flags(job, s, ckpt)

    try:
        if remaining:
            sim.run(remaining, callback=_progress,
                    checkpoint_path=ckpt,
                    checkpoint_every=spec.checkpoint_every,
                    resume_on_fault=ckpt is not None
                    and spec.checkpoint_every > 0,
                    max_recoveries=spec.max_recoveries,
                    fault_injector=injector)
        job.recoveries += sim.fault_recoveries
    finally:
        sim.close()
        if private_engine and engine is not None:
            engine.close()
    if ckpt is not None:
        c0 = time.perf_counter()
        save_checkpoint(ckpt, sim, rotate=True)
        from ..obs import as_tracer
        as_tracer(tracer).record("serve.checkpoint",
                                 time.perf_counter() - c0,
                                 job=job.id, final=True)
    d = interaction_totals(sim)
    return {
        "digest": state_digest(sim.pos, sim.vel, sim.t),
        "n_particles": sim.n_particles,
        "steps": int(d["steps"]),
        "interactions": float(d["interactions"]),
        "mean_list_length": float(d["mean_list_length"]),
        "t_final": float(sim.t),
        "fault_recoveries": int(sim.fault_recoveries),
    }


def _run_sweep(job: Job, lease, *, tracer, metrics) -> Dict[str, Any]:
    """Kind ``sweep``: the section-3 group-size sweep (as ``repro
    sweep``), on the leased accelerator."""
    import numpy as np
    from ..sim.models import plummer_model
    from ..sim.recipes import build_force

    spec, p = job.spec, job.spec.params
    rng = np.random.default_rng(p["seed"])
    pos, _, mass = plummer_model(p["n"], rng)
    rows = []
    for ncrit in (64, 256, 1024, 4096):
        _poll_flags(job, None, None)
        tc, _ = build_force(theta=p["theta"], ncrit=ncrit,
                            system=lease.context.system,
                            tracer=tracer, metrics=metrics,
                            max_retries=spec.max_retries,
                            kernels=spec.kernels)
        tc.accelerations(pos, mass, _EPS_SYNTH)
        s = tc.last_stats
        rows.append({"n_crit": ncrit,
                     "n_g": round(s.mean_group_size, 1),
                     "mean_list": round(s.interactions_per_particle),
                     "interactions": int(s.total_interactions)})
        job.steps_done += 1
        job.add_event("sweep_point", n_crit=ncrit)
    return {"rows": rows, "n": p["n"]}


def _run_force_eval(job: Job, lease, *, tracer,
                    metrics) -> Dict[str, Any]:
    """Kind ``force_eval``: one treecode force sweep over a Plummer
    snapshot; the digest makes repeated evaluations comparable."""
    import numpy as np
    from ..sim.models import plummer_model
    from ..sim.recipes import build_force

    spec, p = job.spec, job.spec.params
    rng = np.random.default_rng(p["seed"])
    pos, _, mass = plummer_model(p["n"], rng)
    tc, _ = build_force(theta=p["theta"], ncrit=p["ncrit"],
                        system=lease.context.system,
                        tracer=tracer, metrics=metrics,
                        max_retries=spec.max_retries,
                        kernels=spec.kernels)
    acc, pot = tc.accelerations(pos, mass, p["eps"])
    s = tc.last_stats
    job.steps_done = job.steps_total = 1
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(acc, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(pot, dtype=np.float64).tobytes())
    return {
        "digest": h.hexdigest(),
        "n": p["n"],
        "interactions": int(s.total_interactions),
        "mean_list_length": float(s.interactions_per_particle),
    }


_KIND_RUNNERS = {"run": _run_run, "sweep": _run_sweep,
                 "force_eval": _run_force_eval}


def run_job(job: Job, lease, *, tracer=None,
            metrics=None) -> Dict[str, Any]:
    """Execute ``job`` inside ``lease`` and return its result document.

    Called on the scheduler's worker thread (the thread holding the
    lease's context latch).  Raises :class:`JobCancelled` /
    :class:`JobPaused` when the corresponding flag is observed, and
    lets simulation errors propagate for the scheduler to record.
    The whole execution runs inside an *open* ``serve.job`` span (job
    id, kind, lease, outcome), so every span the simulation stack
    produces -- steps, evaluations, stitched worker batches -- nests
    under it in the job's trace.
    """
    from ..obs import NULL_TRACER
    tr = tracer if tracer is not None else NULL_TRACER
    t0 = time.perf_counter()
    outcome = "done"
    sp = tr.span("serve.job", job=job.id, kind=job.spec.kind,
                 lease=lease.id)
    try:
        with sp:
            result = _KIND_RUNNERS[job.spec.kind](job, lease,
                                                  tracer=tr,
                                                  metrics=metrics)
            result["lease"] = lease.id
            return result
    except JobCancelled:
        outcome = "cancelled"
        raise
    except JobPaused:
        outcome = "paused"
        raise
    except Exception:
        outcome = "failed"
        raise
    finally:
        sp.set(outcome=outcome)
        if metrics is not None:
            metrics.histogram(
                "serve.job_seconds",
                "wall seconds per executed job attempt"
                ).observe(time.perf_counter() - t0)
