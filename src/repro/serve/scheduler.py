"""Stateless scheduler workers over a durable job store.

The paper's host feeds one GRAPE; the service multiplexes many
tenants onto a fixed pool of leased accelerators.  Since PR 8 the
scheduler owns no durable state: every job document, lifecycle
transition, claim and progress event lives in a pluggable
:class:`~repro.serve.store.JobStore` (in-memory or SQLite-WAL), and a
:class:`Scheduler` is just a *worker* over that store -- several
scheduler instances (or processes) can share one store file, claim
jobs via atomic compare-and-swap leases with heartbeat expiry, and
take over each other's jobs when a worker dies.  A restarted worker
resumes running jobs from their last-good checkpoint generations
(``sim.checkpoint``'s SHA-256 pointer), reaching a ``state_digest``
bit-identical to an uninterrupted run.

Picking order (highest first) -- computed store-wide, so fair share
holds across replicated workers:

1. ``spec.priority`` (larger wins);
2. fair share -- among equal priorities, the tenant with the fewest
   active + served jobs in the *store* wins, so one chatty tenant
   cannot starve others on any worker;
3. FIFO (store-allocated submission sequence).

Admission control is layered, every layer answering ``429 +
Retry-After`` through :class:`~repro.serve.quotas.AdmissionError`:

* a hard bound on *queued* jobs store-wide (``queue_depth``);
* per-tenant active-job quotas and token-bucket rate limits
  (:class:`~repro.serve.quotas.AdmissionController`).

A repeated identical submission (same kind/params/kernels, no fault
plan) is served from the store's content-addressed result cache
without acquiring a GRAPE lease -- ``serve.cache_hits`` counts them
and the job document carries ``cache_hit: true``.

Faults stay contained exactly as before: a crash inside a running job
is recovered *inside its slot* by ``Simulation.run``'s checkpoint
rollback, and a job that still fails only marks itself failed.  A
crash of the *worker process* is recovered by any surviving (or
restarted) worker through :meth:`JobStore.recover`.
"""

from __future__ import annotations

import logging
import os
import itertools
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..obs import FlightRecorder, Tracer, new_trace_id
from .jobs import JOB_KINDS, Job, JobCancelled, JobError, JobPaused, \
    JobSpec
from .leases import LeaseBroker
from .quotas import AdmissionController, AdmissionError, TenantPolicy
from .runner import run_job
from .store import JobStore, StoreError, open_store, spec_hash

__all__ = ["AdmissionError", "Scheduler"]

logger = logging.getLogger(__name__)

#: job kinds eligible for the content-addressed result cache (all of
#: them -- results are bit-identical by construction; jobs carrying a
#: fault plan are excluded because chaos runs are about the journey)
_CACHEABLE_KINDS = frozenset({"run", "sweep", "force_eval"})

_worker_counter = itertools.count(1)


class Scheduler:
    """One stateless worker: claim, lease, run, record -- all durable
    state in the :class:`~repro.serve.store.JobStore`.

    Parameters
    ----------
    slots:
        Worker threads = concurrent jobs = accelerator leases.
    boards:
        GRAPE-5 boards behind each slot; the lease broker reserves the
        slot's physical board *set* exclusively for each lease (see
        :class:`~repro.serve.leases.LeaseBroker`).
    queue_depth:
        Maximum *queued* jobs store-wide before submissions are
        rejected with :class:`AdmissionError`.
    workdir:
        Directory for per-job workdirs (checkpoints).  Pass a real
        path together with a durable store so restarts find the
        checkpoints; a temporary directory is created when omitted.
    store:
        ``None`` (private in-memory store), a path (SQLite-WAL store,
        shareable between workers), an ``http://host:port`` URL (the
        fleet network store of :mod:`repro.fleet`, shareable between
        *hosts*), or a :class:`JobStore` instance.
    cache_budget:
        Byte bound on the store's result cache (LRU eviction); only
        honoured for stores this scheduler opens itself -- a remote
        store's budget is the store server's policy.
    worker_id:
        This worker's claim identity.  Give restarts of the same
        logical worker the same id and :meth:`start` reclaims its
        own orphaned jobs immediately instead of waiting out the TTL.
    claim_ttl / heartbeat_interval / poll_interval:
        Claim lease seconds; heartbeat cadence (default ``ttl/3``);
        how often idle workers poll the store for jobs submitted
        through *other* workers.
    cache:
        Serve repeat submissions from the store's result cache
        (default on).
    quota:
        Admission policy: an :class:`AdmissionController`, a
        :class:`~repro.serve.quotas.TenantPolicy` (applied to every
        tenant), or a ``{tenant: TenantPolicy}`` dict.
    metrics / tracer / system_factory:
        As before (PR 5/6).
    """

    def __init__(self, *, slots: int = 2, boards: int = 2,
                 queue_depth: int = 16,
                 workdir: Optional[object] = None,
                 store: Optional[object] = None,
                 worker_id: Optional[str] = None,
                 claim_ttl: float = 30.0,
                 heartbeat_interval: Optional[float] = None,
                 poll_interval: float = 0.25,
                 cache: bool = True,
                 cache_budget: Optional[int] = None,
                 quota: Optional[object] = None,
                 metrics: Optional[object] = None,
                 tracer: Optional[object] = None,
                 system_factory: Optional[object] = None) -> None:
        from ..obs import MetricsRegistry, NULL_TRACER
        if queue_depth < 1:
            raise JobError("queue_depth must be >= 1")
        if claim_ttl <= 0:
            raise JobError("claim_ttl must be > 0")
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.slots = int(slots)
        self.boards = int(boards)
        self.queue_depth = int(queue_depth)
        self.store: JobStore = open_store(store,
                                          cache_budget=cache_budget)
        self.worker_id = worker_id or \
            f"w-{os.getpid()}-{next(_worker_counter)}"
        self.host = socket.gethostname()
        self._draining = False
        self.claim_ttl = float(claim_ttl)
        self.heartbeat_interval = (float(heartbeat_interval)
                                   if heartbeat_interval is not None
                                   else max(0.05, self.claim_ttl / 3.0))
        self.poll_interval = float(poll_interval)
        self.cache_enabled = bool(cache)
        if isinstance(quota, AdmissionController):
            self.admission = quota
        elif isinstance(quota, TenantPolicy):
            self.admission = AdmissionController(default=quota)
        elif isinstance(quota, dict):
            self.admission = AdmissionController(per_tenant=quota)
        elif quota is None:
            self.admission = AdmissionController()
        else:
            raise JobError(f"unsupported quota {quota!r}")
        self.broker = LeaseBroker(self.slots, boards=int(boards),
                                  system_factory=system_factory,
                                  metrics=self.metrics)
        self._workdir = Path(workdir) if workdir is not None else \
            Path(tempfile.mkdtemp(prefix="repro-serve-"))
        self._workdir.mkdir(parents=True, exist_ok=True)
        #: runtime Job objects this worker has touched (submitted to
        #: it or claimed by it); the store is authoritative for the
        #: rest
        self._jobs: Dict[str, Job] = {}
        self._done_seconds: List[float] = []
        self._cv = threading.Condition()
        self._stopping = False
        self._threads: List[threading.Thread] = []
        m = self.metrics
        m.gauge("serve.queue_depth", "jobs waiting for a slot").set(
            len(self.store.queued()))
        m.gauge("serve.queue_limit",
                "admission-control queue bound").set(self.queue_depth)
        m.gauge("serve.jobs_running", "jobs executing in a slot").set(0)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Scheduler":
        """Recover orphaned claims, then spawn the worker +
        housekeeping threads (idempotent)."""
        with self._cv:
            if self._threads:
                return self
            self._stopping = False
            try:
                requeued = self.store.recover(now=time.time(),
                                              worker=self.worker_id)
            except StoreError as e:
                logger.warning("startup recovery failed: %s", e)
                requeued = []
            if requeued:
                self.metrics.counter(
                    "serve.jobs_requeued",
                    "jobs re-queued after a lost/expired claim"
                    ).inc(len(requeued))
                logger.info("recovered %d orphaned job(s): %s",
                            len(requeued), ", ".join(requeued))
            self._draining = False
            try:
                self.store.fleet_register(self._fleet_doc(),
                                          now=time.time(),
                                          ttl=self.claim_ttl)
            except StoreError as e:
                logger.warning("fleet registration failed: %s", e)
            for i in range(self.slots):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"repro-serve-{i}",
                                     daemon=True)
                t.start()
                self._threads.append(t)
            hk = threading.Thread(target=self._housekeeping_loop,
                                  name="repro-serve-housekeeping",
                                  daemon=True)
            hk.start()
            self._threads.append(hk)
        logger.info("scheduler %s started: %d slot(s), queue bound %d, "
                    "store %s, workdir %s", self.worker_id, self.slots,
                    self.queue_depth, self.store.kind, self._workdir)
        return self

    def stop(self, *, timeout: float = 30.0,
             drain: Optional[bool] = None) -> None:
        """Shut down this worker.

        ``drain`` (default: on for durable stores, off for in-memory)
        checkpoints running jobs via the pause path and re-queues them
        in the store, so another worker -- or this one after a restart
        -- resumes them bit-identically.  Without drain, running jobs
        are cancelled and, on a volatile store, queued jobs too
        (nothing would ever serve them).  Idempotent.
        """
        with self._cv:
            if self._stopping and not self._threads:
                return
            self._stopping = True
            if drain is None:
                drain = self.store.kind != "memory"
            for job in list(self._jobs.values()):
                if job.worker == self.worker_id and \
                        job.state in ("scheduled", "running"):
                    (job.pause_event if drain
                     else job.cancel_event).set()
                elif job.state == "queued" and not drain:
                    if self.store.request_cancel(job.id) == "cancelled":
                        job.advance("cancelled")
                        self._count_terminal(job)
            self._set_gauges_locked()
            self._cv.notify_all()
            threads, self._threads = self._threads, []
        for t in threads:
            t.join(timeout=timeout)
        if drain:
            with self._cv:
                for job in list(self._jobs.values()):
                    if job.state == "paused" and \
                            job.worker == self.worker_id:
                        try:
                            if self.store.requeue(job.id):
                                job.state = "queued"
                                job.pause_event.clear()
                        except StoreError as e:
                            logger.warning("drain requeue of %s "
                                           "failed: %s", job.id, e)
        try:
            self.store.fleet_deregister(self.worker_id)
        except StoreError as e:
            logger.warning("fleet deregistration failed: %s", e)
        self.broker.close()
        logger.info("scheduler %s stopped", self.worker_id)

    def drain(self, *, timeout: float = 30.0) -> Dict[str, Any]:
        """Take this worker out of the fleet without stopping it.

        Drain semantics (the fleet's maintenance primitive): the
        worker immediately stops claiming, asks every owned
        scheduled/running job to checkpoint and vacate via the pause
        path, re-queues the paused jobs so any other worker resumes
        them bit-identically, and deregisters from the worker
        registry.  The HTTP surface stays up -- a drained worker still
        answers ``/jobs``, ``/fleet`` and ``/metrics`` -- and
        :meth:`start`-after-:meth:`stop` (or a restart) re-registers
        and resumes claiming.  Idempotent; returns a summary document.
        """
        with self._cv:
            already = self._draining
            self._draining = True
            owned = [j for j in self._jobs.values()
                     if j.worker == self.worker_id
                     and j.state in ("scheduled", "running")]
            for job in owned:
                job.pause_event.set()
            self._cv.notify_all()
        try:
            self.store.fleet_heartbeat(self.worker_id,
                                       now=time.time(),
                                       ttl=self.claim_ttl,
                                       state="draining")
        except StoreError as e:
            logger.warning("drain heartbeat failed: %s", e)
        requeued: List[str] = []
        with self._cv:
            self._cv.wait_for(
                lambda: all(j.state not in ("scheduled", "running")
                            for j in owned), timeout=timeout)
            for job in owned:
                if job.state == "paused" \
                        and job.worker == self.worker_id:
                    try:
                        if self.store.requeue(job.id):
                            job.state = "queued"
                            job.pause_event.clear()
                            requeued.append(job.id)
                    except StoreError as e:
                        logger.warning("drain requeue of %s failed: "
                                       "%s", job.id, e)
            self._set_gauges_locked()
        try:
            self.store.fleet_deregister(self.worker_id)
        except StoreError as e:
            logger.warning("drain deregistration failed: %s", e)
        if not already:
            self.metrics.counter(
                "fleet.drains",
                "drain requests this worker has served").inc()
        logger.info("scheduler %s drained: %d owned job(s), %d "
                    "re-queued", self.worker_id, len(owned),
                    len(requeued))
        return {"worker": self.worker_id, "draining": True,
                "owned": [j.id for j in owned], "requeued": requeued}

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has taken this worker out of
        claiming."""
        return self._draining

    def _fleet_doc(self) -> Dict[str, Any]:
        """This worker's registry row: identity + capabilities."""
        return {"worker": self.worker_id, "host": self.host,
                "pid": os.getpid(), "slots": self.slots,
                "boards": self.boards,
                "kinds": sorted(JOB_KINDS),
                "state": "draining" if self._draining else "up",
                "registered_at": time.time()}

    def fleet_status(self) -> Dict[str, Any]:
        """The ``GET /fleet`` membership document: this worker's view
        of the registry plus the shared cache counters."""
        now = time.time()
        try:
            workers = self.store.fleet_workers(now=now)
        except StoreError:
            workers = []
        try:
            cache = self.store.cache_stats()
        except StoreError:
            cache = {}
        live = [w for w in workers if w.get("live")]
        return {
            "schema": "repro.fleet/v1",
            "worker": self.worker_id,
            "host": self.host,
            "draining": self._draining,
            "store": {"kind": self.store.kind,
                      "url": getattr(self.store, "url", None)},
            "workers": workers,
            "live": len(live),
            "draining_count": sum(1 for w in live
                                  if w.get("state") == "draining"),
            "cache": cache,
        }

    # -- submission / control ------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit a job or raise :class:`AdmissionError` (429):
        queue bound, tenant quota and rate limit, in that order."""
        with self._cv:
            if self._stopping:
                raise AdmissionError("scheduler is shutting down",
                                     retry_after=5.0)
            queued = len(self.store.queued())
            if queued >= self.queue_depth:
                self.metrics.counter(
                    "serve.jobs_rejected",
                    "submissions refused by admission control").inc()
                raise AdmissionError(
                    f"queue full ({queued}/{self.queue_depth} jobs "
                    "waiting)", retry_after=self._retry_after(queued))
            try:
                self.admission.admit(
                    spec.tenant,
                    active=self.store.tenant_active(spec.tenant))
            except AdmissionError:
                self.metrics.counter(
                    "serve.jobs_rejected",
                    "submissions refused by admission control").inc()
                self.metrics.counter(
                    "serve.quota_rejected",
                    "submissions refused by tenant quota/rate "
                    "limits").inc()
                raise
            jid, seq = self.store.allocate()
            job = Job(spec=spec, id=jid)
            job.seq = seq
            wd = self._workdir / job.id
            wd.mkdir(parents=True, exist_ok=True)
            job.workdir = str(wd)
            # per-job observability: a trace identity + tracer at
            # admission (every span from queue wait to worker batches
            # carries it) and a flight-recorder ring pointed at the
            # job's workdir
            job.trace_id = new_trace_id()
            job.tracer = Tracer(trace_id=job.trace_id)
            job.flight = FlightRecorder(path=wd / "flightrec.jsonl")
            job.event_sink = self._event_sink
            self._jobs[job.id] = job
            self.store.insert(job.to_store_doc())
            job.add_event("submitted", tenant=spec.tenant)
            self.metrics.counter("serve.jobs_submitted",
                                 "jobs admitted to the queue").inc()
            self._set_gauges_locked()
            # notify_all, not notify: the housekeeping thread waits on
            # the same condition and a single notify it swallows would
            # leave a free slot asleep for a whole poll interval
            self._cv.notify_all()
            return job

    def get(self, job_id: str) -> Job:
        """The runtime job if this worker owns it, else a view
        hydrated from the store (and kept in sync with it)."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is not None:
                doc = None
                if job.worker != self.worker_id and not job.terminal:
                    try:
                        doc = self.store.get(job_id)
                    except StoreError:
                        doc = None
                if doc is not None:
                    self._sync_from_store(job, doc)
                return job
        try:
            doc = self.store.get(job_id)
        except StoreError:
            doc = None
        if doc is None:
            raise KeyError(f"no such job {job_id!r}")
        return Job.from_store_doc(doc)

    def jobs(self) -> List[Job]:
        """All jobs in the store, submission order, with this
        worker's live runtime objects substituted where it owns
        them."""
        docs = self.store.list()
        out: List[Job] = []
        with self._cv:
            for doc in docs:
                job = self._jobs.get(doc["id"])
                if job is None:
                    out.append(Job.from_store_doc(doc))
                else:
                    if job.worker != self.worker_id \
                            and not job.terminal:
                        self._sync_from_store(job, doc)
                    out.append(job)
        return sorted(out, key=lambda j: j.seq)

    def events(self, job_id: str) -> List[Dict]:
        """A job's progress events: live for locally owned jobs,
        from the store's event log otherwise."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.events
        return self.store.events(job_id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately for queued/paused (wherever it
        lives), by flag for running -- the owning worker observes the
        flag through its heartbeat and between steps."""
        job = self.get(job_id)
        with self._cv:
            outcome = self.store.request_cancel(job_id)
            local = self._jobs.get(job_id)
            if local is not None:
                local.cancel_event.set()
                if outcome == "cancelled" and \
                        local.state in ("queued", "paused"):
                    local.advance("cancelled")
                    self._count_terminal(local)
                job = local
            elif outcome == "cancelled":
                job.state = "cancelled"
            self._set_gauges_locked()
            self._cv.notify_all()
        return job

    def pause(self, job_id: str) -> Job:
        """Ask a running job to checkpoint and vacate its slot."""
        job = self.get(job_id)
        if job.terminal:
            raise JobError(f"job {job_id} is already {job.state}")
        job.pause_event.set()
        return job

    def resume(self, job_id: str) -> Job:
        """Re-queue a paused job; any worker on the store continues
        it from its checkpoint."""
        job = self.get(job_id)
        with self._cv:
            if job.state != "paused":
                raise JobError(f"job {job_id} is {job.state}, "
                               "not paused")
            if not self.store.requeue(job.id, from_state="paused"):
                raise JobError(f"job {job_id} changed state in the "
                               "store; resume lost the race")
            job.pause_event.clear()
            job.submitted_mono = time.perf_counter()
            if self._jobs.get(job_id) is job:
                job.advance("queued")
            else:
                job.state = "queued"
            self._set_gauges_locked()
            self._cv.notify_all()
        return job

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal (or paused); returns
        whether it stopped within ``timeout``.  Works for jobs run by
        other workers too (the housekeeping tick re-polls the
        store)."""
        with self._cv:
            return self._cv.wait_for(
                lambda: self._resting_locked(job_id), timeout=timeout)

    # -- internals -----------------------------------------------------
    def _event_sink(self, job_id: str, event: Dict) -> None:
        try:
            self.store.append_event(job_id, event)
        except StoreError as e:  # pragma: no cover - log must not kill
            logger.warning("event append for %s failed: %s", job_id, e)

    def _resting_locked(self, job_id: str) -> bool:
        job = self._jobs.get(job_id)
        if job is not None and (job.worker == self.worker_id
                                or job.terminal):
            return job.terminal or job.state == "paused"
        try:
            doc = self.store.get(job_id)
        except StoreError:
            return False
        if doc is None:
            raise KeyError(f"no such job {job_id!r}")
        if job is not None:
            self._sync_from_store(job, doc)
        return doc["state"] in ("done", "failed", "cancelled",
                                "paused")

    def _sync_from_store(self, job: Job, doc: Dict) -> None:
        """Fold the store's view of a job *not* owned by this worker
        into its local runtime object (callers hold the cv lock)."""
        if doc.get("worker") == self.worker_id:
            return
        job.state = doc.get("state", job.state)
        job.started_at = doc.get("started_at")
        job.finished_at = doc.get("finished_at")
        job.error = doc.get("error")
        job.result = doc.get("result")
        job.lease = doc.get("lease")
        job.recoveries = int(doc.get("recoveries", 0))
        job.attempt = int(doc.get("attempt", 0))
        job.worker = doc.get("worker")
        job.cache_hit = bool(doc.get("cache_hit", False))
        progress = doc.get("progress", {})
        job.steps_done = int(progress.get("steps_done",
                                          job.steps_done))
        job.steps_total = int(progress.get("steps_total",
                                           job.steps_total))

    def _retry_after(self, queued: int) -> float:
        """Backoff hint: about one average job duration per queued job
        ahead, across the slot pool (floor 1 s)."""
        avg = (sum(self._done_seconds) / len(self._done_seconds)
               if self._done_seconds else 1.0)
        return max(1.0, avg * queued / max(1, self.slots))

    def _set_gauges_locked(self) -> None:
        try:
            queued = len(self.store.queued())
        except StoreError:  # pragma: no cover - damaged store
            return
        self.metrics.gauge("serve.queue_depth",
                           "jobs waiting for a slot").set(queued)
        running = sum(1 for j in self._jobs.values()
                      if j.worker == self.worker_id
                      and j.state == "running")
        self.metrics.gauge("serve.jobs_running",
                           "jobs executing in a slot").set(running)

    def _count_terminal(self, job: Job) -> None:
        self.metrics.counter(f"serve.jobs_{job.state}",
                             f"jobs finished {job.state}").inc()

    def _persist(self, job: Job) -> bool:
        """Write the job's durable projection, guarded by this
        worker's claim; a lost claim is counted, not fatal (the
        taking-over worker owns the story now)."""
        try:
            ok = self.store.update(job.to_store_doc(),
                                   worker=self.worker_id)
        except StoreError as e:
            logger.warning("persist of %s failed: %s", job.id, e)
            return False
        if not ok:
            self.metrics.counter(
                "serve.claims_lost",
                "updates dropped because the claim moved on").inc()
        return ok

    # -- claim / pick --------------------------------------------------
    def _claim_next_locked(self) -> Optional[Job]:
        """Best queued job under priority -> store-wide fair share ->
        FIFO, claimed by CAS (first success wins; a lost race just
        moves to the next candidate).  A draining worker claims
        nothing."""
        if self._draining:
            return None
        try:
            docs = self.store.list()
        except StoreError as e:
            logger.warning("store list failed: %s", e)
            return None
        queued = [d for d in docs if d.get("state") == "queued"]
        if not queued:
            return None
        load: Dict[str, int] = {}
        for d in docs:
            if d.get("state") != "queued":
                load[d.get("tenant", "default")] = \
                    load.get(d.get("tenant", "default"), 0) + 1

        def rank(d):
            return (-int(d.get("priority", 0)),
                    load.get(d.get("tenant", "default"), 0),
                    int(d.get("seq", 0)))

        now = time.time()
        for d in sorted(queued, key=rank):
            t0 = time.perf_counter()
            try:
                won = self.store.claim(d["id"], self.worker_id,
                                       now=now, ttl=self.claim_ttl)
            except StoreError as e:
                logger.warning("claim of %s failed: %s", d["id"], e)
                return None
            self.metrics.histogram(
                "serve.store.claim_seconds",
                "seconds per claim compare-and-swap"
                ).observe(time.perf_counter() - t0)
            if won:
                return self._adopt_locked(d)
        return None

    def _adopt_locked(self, doc: Dict) -> Job:
        """Turn a just-claimed store document into this worker's
        runtime job (rebuilding tracer/flight recorder for jobs that
        were submitted elsewhere or re-queued after a crash)."""
        job = self._jobs.get(doc["id"])
        if job is None:
            job = Job.from_store_doc(doc)
            job.events = []
            job.trace_id = job.trace_id or new_trace_id()
            job.tracer = Tracer(trace_id=job.trace_id)
            if job.workdir:
                Path(job.workdir).mkdir(parents=True, exist_ok=True)
                job.flight = FlightRecorder(
                    path=Path(job.workdir) / "flightrec.jsonl")
            job.event_sink = self._event_sink
            self._jobs[job.id] = job
        job.state = "scheduled"
        job.worker = self.worker_id
        job.attempt = int(doc.get("attempt", job.attempt))
        job.cancel_event.clear()
        return job

    # -- the worker loop -----------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                if self._stopping:
                    return
                job = self._claim_next_locked()
                if job is None:
                    # poll: jobs submitted through *other* workers
                    # arrive without a local notify
                    self._cv.wait(timeout=self.poll_interval)
                    continue
                wait = max(0.0,
                           time.perf_counter() - job.submitted_mono)
                if job.tracer is not None:
                    job.tracer.record("serve.queue_wait", wait,
                                      job=job.id, attempt=job.attempt)
                self.metrics.histogram(
                    "serve.queue_wait_seconds",
                    "seconds jobs waited in the queue for a slot"
                    ).observe(wait)
                self._set_gauges_locked()
            if not self._serve_from_cache(job):
                self._execute(job)
            with self._cv:
                self._set_gauges_locked()
                self._cv.notify_all()

    def _housekeeping_loop(self) -> None:
        """Heartbeats for owned jobs *and* this worker's registry
        row, takeover of expired claims, gauge refresh -- the
        store-side metronome of every worker."""
        while True:
            with self._cv:
                if self._cv.wait_for(lambda: self._stopping,
                                     timeout=self.heartbeat_interval):
                    return
                owned = [j for j in self._jobs.values()
                         if j.worker == self.worker_id
                         and j.state in ("scheduled", "running")]
            now = time.time()
            for job in owned:
                try:
                    row = self.store.heartbeat(
                        job.id, self.worker_id, now=now,
                        ttl=self.claim_ttl, doc=job.to_store_doc())
                except StoreError as e:
                    logger.warning("heartbeat for %s failed: %s",
                                   job.id, e)
                    continue
                if row is None:
                    # expired claim taken over elsewhere: stop our
                    # copy -- the new owner resumes from checkpoints
                    self.metrics.counter(
                        "serve.claims_lost",
                        "updates dropped because the claim moved "
                        "on").inc()
                    job.cancel_event.set()
                elif row.get("cancel_requested"):
                    job.cancel_event.set()
            t0 = time.perf_counter()
            try:
                requeued = self.store.recover(now=now)
            except StoreError as e:
                logger.warning("recover scan failed: %s", e)
                requeued = []
            if requeued:
                self.metrics.counter(
                    "serve.takeovers",
                    "expired claims re-queued for takeover"
                    ).inc(len(requeued))
                self.tracer.record("serve.store.recover",
                                   time.perf_counter() - t0,
                                   requeued=len(requeued))
                logger.info("re-queued %d expired claim(s): %s",
                            len(requeued), ", ".join(requeued))
            try:
                if not self.store.fleet_heartbeat(
                        self.worker_id, now=now, ttl=self.claim_ttl,
                        state=("draining" if self._draining
                               else "up")) and not self._draining:
                    # TTL lapsed (or the store was rebuilt): rejoin
                    self.store.fleet_register(self._fleet_doc(),
                                              now=now,
                                              ttl=self.claim_ttl)
                summary = self.store.fleet_summary(now=now)
                self.metrics.gauge(
                    "fleet.workers_live",
                    "registry rows with a fresh heartbeat").set(
                    summary["live"])
                self.metrics.gauge(
                    "fleet.workers_draining",
                    "live workers currently draining").set(
                    summary["draining"])
            except StoreError as e:
                logger.warning("fleet heartbeat failed: %s", e)
            try:
                cstats = self.store.cache_stats()
                self.metrics.gauge(
                    "serve.cache_entries",
                    "content-addressed result-cache entries").set(
                    cstats["entries"])
                self.metrics.gauge(
                    "serve.cache_bytes",
                    "bytes held by the result cache").set(
                    cstats.get("bytes", 0))
                self.metrics.gauge(
                    "serve.cache_evictions",
                    "cache entries evicted to stay under the byte "
                    "budget").set(cstats.get("evictions", 0))
            except StoreError:  # pragma: no cover - damaged store
                pass
            with self._cv:
                self._set_gauges_locked()
                # wake wait()ers so they re-poll foreign job state
                self._cv.notify_all()

    # -- execution -----------------------------------------------------
    def _serve_from_cache(self, job: Job) -> bool:
        """Serve a repeat submission from the content-addressed
        cache; returns whether it was a hit.  Misses remember the key
        so the computed result is cached on completion."""
        spec = job.spec
        if not self.cache_enabled or spec.faults is not None \
                or spec.kind not in _CACHEABLE_KINDS:
            return False
        key = spec_hash(spec)
        t0 = time.perf_counter()
        try:
            hit = self.store.cache_get(key)
        except StoreError as e:
            logger.warning("cache lookup failed: %s", e)
            hit = None
        jtr = job.tracer if job.tracer is not None else self.tracer
        jtr.record("serve.store.cache", time.perf_counter() - t0,
                   job=job.id, key=key[:12],
                   outcome="hit" if hit is not None else "miss")
        if hit is None:
            self.metrics.counter(
                "serve.cache_misses",
                "result-cache lookups that had to compute").inc()
            job._cache_key = key
            return False
        with self._cv:
            job.advance("running")
            job.cache_hit = True
            job.result = hit
            job.add_event("cache_hit", key=key[:12],
                          digest=hit.get("digest"))
            job.advance("done")
            self._count_terminal(job)
            if job.finished_at and job.submitted_at:
                self._done_seconds.append(
                    job.finished_at - job.submitted_at)
                del self._done_seconds[:-32]
                self.metrics.histogram(
                    "serve.submit_to_done_seconds",
                    "submission-to-completion wall seconds of "
                    "successful jobs").observe(
                    job.finished_at - job.submitted_at)
            self._persist(job)
        self.metrics.counter(
            "serve.cache_hits",
            "jobs served from the result cache without a GRAPE "
            "lease").inc()
        return True

    def _flight_dump(self, job: Job) -> None:
        """Dump the job's black box when it is worth keeping: the job
        died, recovered from a fault, or ran under an injected fault
        plan.  Clean, fault-free jobs leave no ``flightrec.jsonl``."""
        fl = job.flight
        if fl is None:
            return
        if (job.state == "failed" or job.recoveries > 0
                or job.spec.faults or fl.count("fault") > 0):
            try:
                fl.flush()
            except OSError:  # pragma: no cover - workdir gone
                pass

    def _cache_store(self, job: Job) -> None:
        """Record a freshly computed result under its spec hash (the
        lease id is per-run noise and stays out of the cache)."""
        key = getattr(job, "_cache_key", None)
        if key is None or job.result is None:
            return
        try:
            self.store.cache_put(
                key, job.result.get("digest"),
                {k: v for k, v in job.result.items() if k != "lease"})
        except StoreError as e:  # pragma: no cover - damaged store
            logger.warning("cache put failed: %s", e)

    def _execute(self, job: Job) -> None:
        """One slot occupancy: lease, run, record the outcome."""
        spec = job.spec
        jtr = job.tracer if job.tracer is not None else self.tracer
        t_lease = time.perf_counter()
        try:
            lease = self.broker.acquire(engine=spec.engine,
                                        workers=spec.workers,
                                        timeout=60.0)
        except Exception as e:
            with self._cv:
                job.error = f"lease acquisition failed: {e}"
                job.advance("failed")
                self._count_terminal(job)
                self._persist(job)
            job.add_event("failed", error=job.error)
            self._flight_dump(job)
            return
        jtr.record("serve.lease_acquire",
                   time.perf_counter() - t_lease,
                   job=job.id, lease=lease.id, slot=lease.slot)
        job.lease = lease.id
        job.add_event("leased", lease=lease.id, slot=lease.slot,
                      attempt=job.attempt)
        try:
            with self._cv:
                job.advance("running")
                self._persist(job)
                self._set_gauges_locked()
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)
            result = run_job(job, lease, tracer=jtr,
                             metrics=self.metrics)
            with self._cv:
                job.result = result
                job.advance("done")
                self._count_terminal(job)
                if job.finished_at and job.started_at:
                    self._done_seconds.append(
                        job.finished_at - job.submitted_at)
                    del self._done_seconds[:-32]
                self.metrics.histogram(
                    "serve.submit_to_done_seconds",
                    "submission-to-completion wall seconds of "
                    "successful jobs").observe(
                    job.finished_at - job.submitted_at)
                self._persist(job)
            self._cache_store(job)
            job.add_event("done")
        except JobCancelled:
            with self._cv:
                job.advance("cancelled")
                self._count_terminal(job)
                self._persist(job)
            job.add_event("cancelled")
        except JobPaused:
            with self._cv:
                job.advance("paused")
                self._persist(job)
            job.add_event("paused", steps_done=job.steps_done)
        except Exception as e:
            logger.exception("job %s failed", job.id)
            with self._cv:
                job.error = f"{type(e).__name__}: {e}"
                job.advance("failed")
                self._count_terminal(job)
                self._persist(job)
            job.add_event("failed", error=job.error)
        finally:
            self._flight_dump(job)
            try:
                self.broker.release(lease)
            except Exception:  # pragma: no cover - broker closed
                pass
