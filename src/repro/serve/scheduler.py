"""Priority + fair-share job scheduler with admission control.

The paper's host feeds one GRAPE; the service multiplexes many
tenants onto a fixed pool of leased accelerators.  The scheduler owns
that multiplexing: a bounded queue in front of ``slots`` worker
threads, each of which repeatedly picks the best queued job, checks
out a lease from the :class:`~repro.serve.leases.LeaseBroker`, and
executes the job via :func:`repro.serve.runner.run_job`.

Picking order (highest first):

1. ``spec.priority`` (larger wins);
2. fair share -- among equal priorities, the tenant with the fewest
   *running* jobs wins, so one chatty tenant cannot starve others;
3. FIFO (submission sequence).

Admission control is a hard bound on *queued* jobs
(``queue_depth``): a submit past the bound raises
:class:`AdmissionError` carrying a ``retry_after`` hint, which the
HTTP layer turns into ``429 Retry-After``.  Running jobs do not count
against the bound -- the queue is the backpressure surface, the slots
are the capacity.

Faults stay contained: a fault-injected (or real) crash inside a
running job is recovered *inside its slot* by
``Simulation.run``'s checkpoint rollback (bounded by the job's
``max_recoveries``), and a job that still fails only marks itself
failed -- the worker thread survives and serves the next queued job.
"""

from __future__ import annotations

import logging
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import FlightRecorder, Tracer, new_trace_id
from .jobs import Job, JobCancelled, JobError, JobPaused, JobSpec
from .leases import LeaseBroker
from .runner import run_job

__all__ = ["AdmissionError", "Scheduler"]

logger = logging.getLogger(__name__)


class AdmissionError(RuntimeError):
    """Queue bound hit; ``retry_after`` is the client's backoff hint
    in seconds (HTTP 429 Retry-After)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class Scheduler:
    """Bounded queue, fair-share pick, leased execution.

    Parameters
    ----------
    slots:
        Worker threads = concurrent jobs = accelerator leases.
    queue_depth:
        Maximum *queued* (not running) jobs before submissions are
        rejected with :class:`AdmissionError`.
    workdir:
        Directory for per-job workdirs (checkpoints); a temporary
        directory is created when omitted.
    metrics / tracer:
        Shared :class:`~repro.obs.metrics.MetricsRegistry` /
        :class:`~repro.obs.trace.Tracer`; the registry feeds the
        server's ``/metrics`` endpoint.
    system_factory:
        Forwarded to the broker (one emulated GRAPE per slot).
    """

    def __init__(self, *, slots: int = 2, queue_depth: int = 16,
                 workdir: Optional[object] = None,
                 metrics: Optional[object] = None,
                 tracer: Optional[object] = None,
                 system_factory: Optional[object] = None) -> None:
        from ..obs import MetricsRegistry, NULL_TRACER
        if queue_depth < 1:
            raise JobError("queue_depth must be >= 1")
        self.metrics = metrics if metrics is not None else \
            MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.slots = int(slots)
        self.queue_depth = int(queue_depth)
        self.broker = LeaseBroker(self.slots,
                                  system_factory=system_factory,
                                  metrics=self.metrics)
        self._workdir = Path(workdir) if workdir is not None else \
            Path(tempfile.mkdtemp(prefix="repro-serve-"))
        self._workdir.mkdir(parents=True, exist_ok=True)
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []
        self._tenant_running: Dict[str, int] = {}
        self._tenant_served: Dict[str, int] = {}
        self._done_seconds: List[float] = []
        self._cv = threading.Condition()
        self._stopping = False
        self._threads: List[threading.Thread] = []
        m = self.metrics
        m.gauge("serve.queue_depth", "jobs waiting for a slot").set(0)
        m.gauge("serve.queue_limit",
                "admission-control queue bound").set(self.queue_depth)
        m.gauge("serve.jobs_running", "jobs executing in a slot").set(0)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Scheduler":
        """Spawn the worker threads (idempotent)."""
        with self._cv:
            if self._threads:
                return self
            self._stopping = False
            for i in range(self.slots):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"repro-serve-{i}",
                                     daemon=True)
                t.start()
                self._threads.append(t)
        logger.info("scheduler started: %d slot(s), queue bound %d, "
                    "workdir %s", self.slots, self.queue_depth,
                    self._workdir)
        return self

    def stop(self, *, timeout: float = 30.0) -> None:
        """Shut down: cancel queued jobs, flag running ones, join the
        workers, release the accelerator pool.  Idempotent."""
        with self._cv:
            if self._stopping and not self._threads:
                return
            self._stopping = True
            for jid in list(self._queue):
                self._jobs[jid].advance("cancelled")
            self._queue.clear()
            for job in self._jobs.values():
                if not job.terminal:
                    job.cancel_event.set()
            self._set_queue_gauge()
            self._cv.notify_all()
            threads, self._threads = self._threads, []
        for t in threads:
            t.join(timeout=timeout)
        self.broker.close()
        logger.info("scheduler stopped")

    # -- submission / control ------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit a job or raise :class:`AdmissionError` (429)."""
        with self._cv:
            if self._stopping:
                raise AdmissionError("scheduler is shutting down",
                                     retry_after=5.0)
            if len(self._queue) >= self.queue_depth:
                self.metrics.counter(
                    "serve.jobs_rejected",
                    "submissions refused by admission control").inc()
                raise AdmissionError(
                    f"queue full ({len(self._queue)}/"
                    f"{self.queue_depth} jobs waiting)",
                    retry_after=self._retry_after())
            job = Job(spec=spec)
            wd = self._workdir / job.id
            wd.mkdir(parents=True, exist_ok=True)
            job.workdir = str(wd)
            # per-job observability: a trace identity + tracer at
            # admission (every span from queue wait to worker batches
            # carries it) and a flight-recorder ring pointed at the
            # job's workdir
            job.trace_id = new_trace_id()
            job.tracer = Tracer(trace_id=job.trace_id)
            job.flight = FlightRecorder(path=wd / "flightrec.jsonl")
            job.flight.record("job.submitted", job=job.id,
                              kind=spec.kind, tenant=spec.tenant)
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self.metrics.counter("serve.jobs_submitted",
                                 "jobs admitted to the queue").inc()
            self._set_queue_gauge()
            self._cv.notify()
            return job

    def get(self, job_id: str) -> Job:
        with self._cv:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"no such job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """All known jobs, submission order."""
        with self._cv:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately for queued/paused, by flag (the
        runner polls between steps) for running."""
        job = self.get(job_id)
        with self._cv:
            job.cancel_event.set()
            if job.state == "queued":
                self._queue.remove(job.id)
                job.advance("cancelled")
                self._count_terminal(job)
                self._set_queue_gauge()
            elif job.state == "paused":
                job.advance("cancelled")
                self._count_terminal(job)
            self._cv.notify_all()
        return job

    def pause(self, job_id: str) -> Job:
        """Ask a running job to checkpoint and vacate its slot."""
        job = self.get(job_id)
        if job.terminal:
            raise JobError(f"job {job_id} is already {job.state}")
        job.pause_event.set()
        return job

    def resume(self, job_id: str) -> Job:
        """Re-queue a paused job; it continues from its checkpoint."""
        job = self.get(job_id)
        with self._cv:
            if job.state != "paused":
                raise JobError(f"job {job_id} is {job.state}, "
                               "not paused")
            job.pause_event.clear()
            job.submitted_mono = time.perf_counter()
            job.advance("queued")
            self._queue.append(job.id)
            self._set_queue_gauge()
            self._cv.notify()
        return job

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal (or paused); returns whether
        it stopped within ``timeout``."""
        job = self.get(job_id)
        with self._cv:
            return self._cv.wait_for(
                lambda: job.terminal or job.state == "paused",
                timeout=timeout)

    # -- internals -----------------------------------------------------
    def _retry_after(self) -> float:
        """Backoff hint: about one average job duration per queued job
        ahead, across the slot pool (floor 1 s)."""
        avg = (sum(self._done_seconds) / len(self._done_seconds)
               if self._done_seconds else 1.0)
        return max(1.0, avg * len(self._queue) / max(1, self.slots))

    def _set_queue_gauge(self) -> None:
        self.metrics.gauge("serve.queue_depth",
                           "jobs waiting for a slot"
                           ).set(len(self._queue))

    def _count_terminal(self, job: Job) -> None:
        self.metrics.counter(f"serve.jobs_{job.state}",
                             f"jobs finished {job.state}").inc()

    def _pick_locked(self) -> Optional[Job]:
        """Best queued job under priority -> fair share -> FIFO."""
        if not self._queue:
            return None
        def rank(jid: str):
            j = self._jobs[jid]
            t = j.spec.tenant
            # fair share: tenants with fewer slots held *and* fewer
            # jobs already served yield to the underdog, so a deep
            # single-tenant backlog cannot starve a newcomer
            return (-j.spec.priority,
                    self._tenant_running.get(t, 0)
                    + self._tenant_served.get(t, 0),
                    j.seq)
        jid = min(self._queue, key=rank)
        self._queue.remove(jid)
        return self._jobs[jid]

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                self._cv.wait_for(
                    lambda: self._stopping or bool(self._queue))
                if self._stopping:
                    return
                job = self._pick_locked()
                if job is None:  # pragma: no cover - race safety
                    continue
                job.advance("scheduled")
                wait = time.perf_counter() - job.submitted_mono
                if job.tracer is not None:
                    job.tracer.record("serve.queue_wait", wait,
                                      job=job.id)
                self.metrics.histogram(
                    "serve.queue_wait_seconds",
                    "seconds jobs waited in the queue for a slot"
                    ).observe(wait)
                t = job.spec.tenant
                self._tenant_running[t] = \
                    self._tenant_running.get(t, 0) + 1
                self._tenant_served[t] = \
                    self._tenant_served.get(t, 0) + 1
                self._set_queue_gauge()
                self.metrics.gauge("serve.jobs_running",
                                   "jobs executing in a slot").set(
                    sum(self._tenant_running.values()))
            self._execute(job)
            with self._cv:
                t = job.spec.tenant
                self._tenant_running[t] = \
                    max(0, self._tenant_running.get(t, 0) - 1)
                self.metrics.gauge("serve.jobs_running",
                                   "jobs executing in a slot").set(
                    sum(self._tenant_running.values()))
                self._cv.notify_all()

    def _flight_dump(self, job: Job) -> None:
        """Dump the job's black box when it is worth keeping: the job
        died, recovered from a fault, or ran under an injected fault
        plan.  Clean, fault-free jobs leave no ``flightrec.jsonl``."""
        fl = job.flight
        if fl is None:
            return
        if (job.state == "failed" or job.recoveries > 0
                or job.spec.faults or fl.count("fault") > 0):
            try:
                fl.flush()
            except OSError:  # pragma: no cover - workdir gone
                pass

    def _execute(self, job: Job) -> None:
        """One slot occupancy: lease, run, record the outcome."""
        spec = job.spec
        jtr = job.tracer if job.tracer is not None else self.tracer
        t_lease = time.perf_counter()
        try:
            lease = self.broker.acquire(engine=spec.engine,
                                        workers=spec.workers,
                                        timeout=60.0)
        except Exception as e:
            with self._cv:
                job.error = f"lease acquisition failed: {e}"
                job.advance("failed")
                self._count_terminal(job)
            job.add_event("failed", error=job.error)
            self._flight_dump(job)
            return
        jtr.record("serve.lease_acquire",
                   time.perf_counter() - t_lease,
                   job=job.id, lease=lease.id, slot=lease.slot)
        job.lease = lease.id
        job.add_event("leased", lease=lease.id, slot=lease.slot)
        try:
            job.advance("running")
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)
            result = run_job(job, lease, tracer=jtr,
                             metrics=self.metrics)
            with self._cv:
                job.result = result
                job.advance("done")
                self._count_terminal(job)
                if job.finished_at and job.started_at:
                    self._done_seconds.append(
                        job.finished_at - job.submitted_at)
                    del self._done_seconds[:-32]
                self.metrics.histogram(
                    "serve.submit_to_done_seconds",
                    "submission-to-completion wall seconds of "
                    "successful jobs").observe(
                    job.finished_at - job.submitted_at)
            job.add_event("done")
        except JobCancelled:
            with self._cv:
                job.advance("cancelled")
                self._count_terminal(job)
            job.add_event("cancelled")
        except JobPaused:
            with self._cv:
                job.advance("paused")
            job.add_event("paused", steps_done=job.steps_done)
        except Exception as e:
            logger.exception("job %s failed", job.id)
            with self._cv:
                job.error = f"{type(e).__name__}: {e}"
                job.advance("failed")
                self._count_terminal(job)
            job.add_event("failed", error=job.error)
        finally:
            self._flight_dump(job)
            try:
                self.broker.release(lease)
            except Exception:  # pragma: no cover - broker closed
                pass
