"""Admission policy: per-tenant quotas and token-bucket rate limits.

The queue bound (PR 5) protects the *service*; quotas and rate limits
protect the *tenants from each other*.  Both are enforced at
admission, before a job touches the store or a GRAPE lease, and both
reject with an :class:`AdmissionError` carrying a ``retry_after``
hint, which the HTTP layer turns into ``429 Retry-After`` -- the same
backpressure contract clients already speak
(:class:`~repro.serve.client.Backpressure`).

Two independent checks per tenant:

* **active-job quota** (``max_active``) -- a ceiling on jobs that are
  queued, scheduled, running or paused at once, counted store-wide so
  replicated schedulers enforce one shared budget;
* **submission rate** (``rate`` jobs/second, ``burst`` bucket depth) --
  a classic token bucket: each admission spends one token, tokens
  refill continuously, an empty bucket rejects with the exact time
  until the next token accrues.

The controller is deliberately clock-injectable (``now`` parameters)
so the tests need no sleeps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["AdmissionError", "QuotaExceeded", "RateLimited",
           "TenantPolicy", "AdmissionController"]


class AdmissionError(RuntimeError):
    """Submission refused; ``retry_after`` is the client's backoff
    hint in seconds (HTTP 429 Retry-After)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class QuotaExceeded(AdmissionError):
    """The tenant's active-job ceiling is reached."""


class RateLimited(AdmissionError):
    """The tenant's token bucket is empty."""


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant (``None`` = unlimited).

    ``burst`` only matters with a ``rate``: it is the bucket depth,
    i.e. how many submissions may arrive back-to-back before the
    refill rate governs.
    """

    #: max queued+scheduled+running+paused jobs at once
    max_active: Optional[int] = None
    #: sustained submissions per second
    rate: Optional[float] = None
    #: token-bucket depth (default: allow short bursts of 4)
    burst: int = 4

    def __post_init__(self) -> None:
        if self.max_active is not None and self.max_active < 1:
            raise ValueError("max_active must be >= 1 (or None)")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be > 0 (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class _Bucket:
    """One tenant's token bucket (continuous refill)."""

    __slots__ = ("tokens", "last")

    def __init__(self, burst: int, now: float) -> None:
        self.tokens = float(burst)
        self.last = now

    def spend(self, policy: TenantPolicy, now: float) -> Optional[float]:
        """Take one token; returns ``None`` on success or the seconds
        until the next token accrues."""
        self.tokens = min(float(policy.burst),
                          self.tokens + (now - self.last) * policy.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / policy.rate


class AdmissionController:
    """Per-tenant admission checks for the scheduler's submit path.

    ``default`` applies to tenants without an explicit entry in
    ``per_tenant``.  Thread-safe; the scheduler calls :meth:`admit`
    under its own condition lock anyway, but the controller does not
    rely on that.
    """

    def __init__(self, default: Optional[TenantPolicy] = None,
                 per_tenant: Optional[Dict[str, TenantPolicy]] = None
                 ) -> None:
        self.default = default if default is not None else TenantPolicy()
        self.per_tenant = dict(per_tenant or {})
        self._buckets: Dict[str, _Bucket] = {}
        self._lock = threading.Lock()

    def policy(self, tenant: str) -> TenantPolicy:
        return self.per_tenant.get(tenant, self.default)

    def admit(self, tenant: str, *, active: int,
              now: Optional[float] = None) -> None:
        """Raise :class:`QuotaExceeded` / :class:`RateLimited` unless
        the tenant may submit one more job right now.

        ``active`` is the tenant's current store-wide non-terminal job
        count; ``now`` is a monotonic timestamp (injectable for
        tests).  Rate tokens are only spent on otherwise-admissible
        submissions, so hammering a full quota does not also drain the
        bucket.
        """
        p = self.policy(tenant)
        if p.max_active is not None and active >= p.max_active:
            raise QuotaExceeded(
                f"tenant {tenant!r} has {active} active job(s), "
                f"quota {p.max_active}", retry_after=5.0)
        if p.rate is None:
            return
        t = time.monotonic() if now is None else now
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _Bucket(p.burst, t)
            wait = bucket.spend(p, t)
        if wait is not None:
            raise RateLimited(
                f"tenant {tenant!r} exceeds {p.rate:g} submissions/s "
                f"(burst {p.burst})", retry_after=wait)
