"""Stdlib HTTP client for the simulation service.

A thin, dependency-free wrapper over :mod:`http.client` speaking the
``repro.job/v1`` wire format of :mod:`repro.serve.server`.  Used by
the ``repro submit`` / ``repro jobs`` CLI verbs, the acceptance
tests, and the service benchmark -- one client implementation so they
all exercise the same protocol.

Error mapping: HTTP 4xx/5xx raise :class:`ServeHTTPError`; the 429
backpressure response raises the :class:`Backpressure` subclass
carrying the server's ``Retry-After`` hint so callers can implement
polite retry loops (see :meth:`ServeClient.submit_wait`).
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["ServeHTTPError", "Backpressure", "ServeClient"]


class ServeHTTPError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = message


class Backpressure(ServeHTTPError):
    """429: admission control rejected the submission; retry after
    ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = float(retry_after)


class ServeClient:
    """Client for one service endpoint (``host:port``).

    Connections are per-request (the server speaks ``Connection:
    close``), so a client object is cheap, stateless and
    thread-safe.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8014, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Dict[str, Any]:
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"}
                         if payload else {})
            resp = conn.getresponse()
            raw = resp.read()
            if resp.status >= 400:
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                if resp.status == 429:
                    raise Backpressure(
                        message,
                        float(resp.headers.get("Retry-After", 1)))
                raise ServeHTTPError(resp.status, message)
            return json.loads(raw) if raw.strip() else {}
        finally:
            conn.close()

    # -- API -----------------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a ``repro.job/v1`` document; returns the job document.

        Raises :class:`Backpressure` on 429 (queue bound hit)."""
        return self._request("POST", "/jobs", body=spec)

    def submit_wait(self, spec: Dict[str, Any], *,
                    deadline: float = 120.0) -> Dict[str, Any]:
        """Submit with polite backpressure retries up to ``deadline``
        seconds, honouring each 429's Retry-After hint."""
        t_end = time.monotonic() + deadline
        while True:
            try:
                return self.submit(spec)
            except Backpressure as e:
                wait = min(e.retry_after, max(0.0,
                                              t_end - time.monotonic()))
                if time.monotonic() + wait >= t_end:
                    raise
                time.sleep(wait)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def pause(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/resume")

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final document.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        """
        t_end = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= t_end:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after "
                    f"{timeout}s")
            time.sleep(poll)

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's ``repro.trace/v1`` document: its ``trace_id`` and
        flat span events (pre-order ``span_id``/``parent_id``/``path``,
        suitable for ``repro obs tree`` / ``critical-path``)."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Follow the NDJSON progress stream of a job.

        Yields event dicts until the server closes the stream (job
        reached a resting state)."""
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw.decode("utf-8", "replace")
                raise ServeHTTPError(resp.status, message)
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def healthz(self) -> Dict[str, Any]:
        """The liveness snapshot: job/queue counts plus scheduler
        ``queue_depth``/``queue_limit``, ``leases_in_use``, the store
        kind (+ ``store_url`` for a fleet store), worker id and
        ``draining`` flag, the ``fleet`` membership summary
        (workers/live/draining), cache stats and server
        ``uptime_seconds``."""
        return self._request("GET", "/healthz")

    def fleet(self) -> Dict[str, Any]:
        """The ``repro.fleet/v1`` membership document: registry rows,
        live/draining counts, store identity, shared-cache stats."""
        return self._request("GET", "/fleet")

    def drain(self) -> Dict[str, Any]:
        """Drain this worker: it stops claiming, checkpoints +
        re-queues its owned jobs and deregisters; returns the drain
        summary (``owned``/``requeued`` job ids)."""
        return self._request("POST", "/fleet/drain")

    def store(self) -> Dict[str, Any]:
        """The durable-store snapshot (``repro.store/v1``): job counts
        by state, result-cache stats, integrity findings."""
        return self._request("GET", "/store")

    def metrics(self) -> str:
        """The Prometheus exposition text of /metrics."""
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            raw = resp.read()
            if resp.status >= 400:
                raise ServeHTTPError(resp.status,
                                     raw.decode("utf-8", "replace"))
            return raw.decode("utf-8")
        finally:
            conn.close()
