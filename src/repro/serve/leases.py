"""Resource leases: exclusive accelerator/engine handles per job.

The paper's GRAPE-5 is one shared device fed by one host process; a
service running many jobs at once must give each job the same
illusion -- *my* board set, *my* worker pool -- without letting two
jobs interleave staging traffic on one device.  The broker models
that: it owns a fixed pool of slots, each slot backed by its own
:class:`~repro.grape.api.G5Context` (wrapping a private
:class:`~repro.grape.system.Grape5System` in the paper configuration,
so arithmetic is identical across slots) and, for pipeline jobs, a
lazily built :class:`~repro.exec.engine.PipelineEngine`.

A :class:`Lease` is checked out with :meth:`LeaseBroker.acquire`
(blocking with timeout) and returned with
:meth:`LeaseBroker.release`; the context is latched to the leasing
thread via :meth:`G5Context.acquire`, so a second job touching a
leased context fails loudly instead of corrupting j-memory.
Double-releasing a lease raises :class:`LeaseError`, mirroring the
context's own double-release guard.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LeaseError", "Lease", "LeaseBroker"]


class LeaseError(RuntimeError):
    """Lease protocol misuse or exhaustion."""


@dataclass
class Lease:
    """One checked-out slot: the accelerator context behind it plus an
    optional prewarmed pipeline engine.

    ``context.system`` is the :class:`Grape5System` the leased job
    must compute on -- the runner passes it to
    :func:`repro.sim.recipes.build_force` so the force solver adopts
    the leased boards instead of building private ones.
    """

    id: str
    slot: int
    context: object
    #: ident of the thread the context latch belongs to
    holder: int = 0
    engine: Optional[object] = None
    #: physical board ids reserved for this lease, exclusively, for its
    #: whole lifetime (see :class:`repro.cluster.BoardSetRegistry`)
    board_set: tuple = ()
    active: bool = field(default=True, repr=False)


class LeaseBroker:
    """Fixed pool of accelerator slots handed out one job at a time.

    Parameters
    ----------
    slots:
        Concurrent leases (= concurrently running jobs).  Each slot
        wraps an independent emulated GRAPE in the same configuration,
        so a job computes identically whichever slot it lands on.
    boards:
        GRAPE-5 boards behind each slot.  The broker owns a rack of
        ``slots * boards`` physical board ids tracked by a
        :class:`~repro.cluster.BoardSetRegistry`; each lease checks out
        its slot's *set* (ids ``[slot*boards, (slot+1)*boards)``)
        exclusively, so overlapping reservations fail loudly.  The
        default 2 is the paper machine; other counts rebuild each
        slot's timing model accordingly.
    system_factory:
        Zero-argument callable building one slot's
        :class:`Grape5System`; defaults to the paper configuration
        (honouring ``boards``).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the
        broker keeps ``serve.leases_in_use`` / ``serve.lease_slots``
        gauges and a ``serve.lease_waits`` counter current.
    """

    def __init__(self, slots: int = 2, *, boards: int = 2,
                 system_factory: Optional[object] = None,
                 metrics: Optional[object] = None) -> None:
        from ..cluster import BoardSetRegistry
        from ..grape import G5Context, Grape5System
        from ..grape.timing import GrapeTimingModel
        if slots < 1:
            raise LeaseError("broker needs at least one slot")
        if boards < 1:
            raise LeaseError("broker needs at least one board per slot")
        self.slots = int(slots)
        self.boards = int(boards)
        self._metrics = metrics
        if system_factory is not None:
            factory = system_factory
        elif self.boards == 2:
            factory = Grape5System   # paper configuration, bit-for-bit
        else:
            def factory():
                return Grape5System(
                    timing=GrapeTimingModel(n_boards=self.boards))
        self.board_registry = BoardSetRegistry(self.slots * self.boards)
        self._contexts: List[object] = []
        for _ in range(self.slots):
            ctx = G5Context()
            ctx.open(factory())
            self._contexts.append(ctx)
        self._engines: List[Optional[object]] = [None] * self.slots
        self._free: List[int] = list(range(self.slots))
        self._by_id: Dict[str, Lease] = {}
        self._next = 0
        self._cv = threading.Condition()
        self._closed = False
        if metrics is not None:
            metrics.gauge("serve.lease_slots",
                          "accelerator lease slots").set(self.slots)
            metrics.gauge("serve.leases_in_use",
                          "accelerator leases checked out").set(0)

    # -- introspection -------------------------------------------------
    @property
    def in_use(self) -> int:
        with self._cv:
            return self.slots - len(self._free)

    @property
    def available(self) -> int:
        with self._cv:
            return len(self._free)

    # -- checkout ------------------------------------------------------
    def acquire(self, *, engine: str = "serial",
                workers: Optional[int] = None,
                timeout: Optional[float] = None,
                engine_options: Optional[dict] = None) -> Lease:
        """Check out a slot, blocking up to ``timeout`` seconds.

        The slot's :class:`G5Context` is latched to the *calling*
        thread (jobs lease from their own worker thread), so staging
        calls from anywhere else fail.  ``engine="pipeline"`` attaches
        the slot's worker pool, built on first use with ``workers``
        processes and any ``engine_options`` (fault plans, retry
        budgets) and prewarmed against a probe backend so the job's
        first sweep does not pay worker startup.
        """
        with self._cv:
            if self._closed:
                raise LeaseError("broker is closed")
            if timeout is not None and not self._free:
                if self._metrics is not None:
                    self._metrics.counter(
                        "serve.lease_waits",
                        "lease acquisitions that had to wait").inc()
            if not self._cv.wait_for(lambda: bool(self._free)
                                     or self._closed, timeout=timeout):
                raise LeaseError(
                    f"no lease available within {timeout}s "
                    f"({self.slots} slots, all busy)")
            if self._closed:
                raise LeaseError("broker is closed")
            slot = self._free.pop(0)
            self._next += 1
            lease = Lease(id=f"L{self._next:04d}", slot=slot,
                          context=self._contexts[slot],
                          holder=threading.get_ident())
            self._by_id[lease.id] = lease
            self._set_gauge()
        # Latch outside the broker lock: the latch belongs to the
        # leasing thread, and a G5Error here must not wedge the broker.
        try:
            lease.context.acquire()
            try:
                lease.board_set = self.board_registry.reserve(
                    range(slot * self.boards, (slot + 1) * self.boards),
                    owner=lease.id)
            except Exception:
                lease.context.release()
                raise
        except Exception:
            with self._cv:
                self._by_id.pop(lease.id, None)
                self._free.append(slot)
                self._free.sort()
                self._set_gauge()
                self._cv.notify()
            raise
        if engine == "pipeline":
            lease.engine = self._slot_engine(slot, workers,
                                             engine_options or {})
        return lease

    def release(self, lease: Lease) -> None:
        """Return a lease; the slot becomes available to other jobs.

        Must be called by the thread that acquired the lease (the
        context latch enforces this); releasing a lease twice raises
        :class:`LeaseError`.
        """
        with self._cv:
            if not lease.active or lease.id not in self._by_id:
                raise LeaseError(
                    f"lease {lease.id} is not checked out "
                    "(double release?)")
            lease.active = False
            del self._by_id[lease.id]
        lease.context.release()
        if lease.board_set:
            self.board_registry.release(lease.board_set)
            lease.board_set = ()
        with self._cv:
            self._free.append(lease.slot)
            self._free.sort()
            self._set_gauge()
            self._cv.notify()

    # -- internals -----------------------------------------------------
    def _slot_engine(self, slot: int, workers: Optional[int],
                     options: dict):
        """The slot's pipeline engine, built and prewarmed on first
        use and reused (worker pools are expensive) until close."""
        from ..exec import PipelineEngine
        from ..grape import GrapeBackend
        eng = self._engines[slot]
        if eng is None or getattr(eng, "closed", False):
            eng = PipelineEngine(workers=workers, **options)
            eng.prewarm(GrapeBackend())
            self._engines[slot] = eng
        return eng

    def _set_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge(
                "serve.leases_in_use",
                "accelerator leases checked out"
                ).set(self.slots - len(self._free))

    def close(self) -> None:
        """Tear down every slot (idempotent).  Outstanding leases are
        invalidated; their release becomes a no-op failure."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._by_id.clear()
            self._cv.notify_all()
        for eng in self._engines:
            if eng is not None:
                eng.close()
        for ctx in self._contexts:
            # administrative teardown: the holder thread may be gone,
            # so drop any latch directly rather than via release()
            ctx._holder = None
            if ctx.system is not None:
                ctx.close()
