"""The job model: typed specs, the ``repro.job/v1`` schema, lifecycle.

A *job* is one unit of simulation work a tenant submits to the
service: a scaled paper run, a group-size sweep, or a single force
evaluation.  The spec is plain data (JSON in, JSON out) under the
versioned ``repro.job/v1`` schema so clients, the wire format and
stored job documents stay mutually intelligible across releases --
the same discipline as ``repro.bench_result/v1`` and
``repro.run_summary/v1``.

Lifecycle
---------
::

    queued --> scheduled --> running --> done
       |            |           |------> failed
       |            |           |------> cancelled
       |            |           `------> paused --> queued (resume)
       `------------`-----------------> cancelled

``queued``
    Admitted, waiting for a scheduler slot.
``scheduled``
    Picked by a slot, lease acquisition in progress.
``running``
    Executing on a leased accelerator/engine.
``paused``
    Checkpointed to the job workdir and evicted from its slot; a
    resume re-queues it and the runner continues from the checkpoint
    (``sim.checkpoint`` generations, the same rollback machinery the
    fault-recovery path uses).
``done`` / ``failed`` / ``cancelled``
    Terminal.

Transitions outside this graph raise :class:`JobError`; the scheduler
is the only writer, so the table doubles as its internal sanity
check.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["JOB_SCHEMA", "JOB_KINDS", "JOB_STATES", "TERMINAL_STATES",
           "JobError", "JobCancelled", "JobPaused", "JobSpec", "Job"]

#: Versioned wire-format identifier of a job document.
JOB_SCHEMA = "repro.job/v1"

#: Workload kinds the runner knows how to execute.
JOB_KINDS = ("run", "sweep", "force_eval")

#: Every lifecycle state, roughly in forward order.
JOB_STATES = ("queued", "scheduled", "running", "paused", "done",
              "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: state -> states it may move to (the lifecycle graph above)
_TRANSITIONS: Dict[str, frozenset] = {
    "queued": frozenset({"scheduled", "cancelled"}),
    "scheduled": frozenset({"running", "queued", "cancelled", "failed"}),
    "running": frozenset({"done", "failed", "cancelled", "paused"}),
    "paused": frozenset({"queued", "cancelled"}),
    "done": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
}

#: per-kind parameter names with (type, default); ``None`` default
#: means the parameter is filled by the runner when absent
_PARAM_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "run": {
        "ngrid": (int, 16), "steps": (int, 20),
        "z_init": (float, 24.0), "z_final": (float, 0.0),
        "theta": (float, 0.75), "ncrit": (int, 256),
        "seed": (int, 1999), "backend": (str, "grape"),
    },
    "sweep": {
        "n": (int, 8192), "theta": (float, 0.75), "seed": (int, 3),
    },
    "force_eval": {
        "n": (int, 2048), "theta": (float, 0.75), "ncrit": (int, 256),
        "seed": (int, 7), "eps": (float, 0.01),
    },
}


class JobError(ValueError):
    """Malformed job document or illegal lifecycle transition."""


class JobCancelled(Exception):
    """Control-flow signal: the running job observed its cancel flag."""


class JobPaused(Exception):
    """Control-flow signal: the running job checkpointed and yielded."""


@dataclass
class JobSpec:
    """What the tenant asked for -- immutable once admitted.

    ``params`` are the kind-specific workload knobs (validated and
    default-filled against the ``repro.job/v1`` parameter schema);
    everything else is scheduling/robustness policy.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: larger runs first; ties broken by tenant fair-share then FIFO
    priority: int = 0
    #: fair-share accounting key
    tenant: str = "default"
    engine: str = "serial"
    workers: Optional[int] = None
    #: run-level checkpoint recoveries (``Simulation.run``)
    max_recoveries: int = 3
    #: rotated checkpoint cadence in steps (0 = no periodic writes;
    #: pause/resume and fault recovery need it > 0)
    checkpoint_every: int = 0
    #: optional deterministic fault plan (chaos testing), any form
    #: accepted by :func:`repro.faults.parse_fault_plan`
    faults: Optional[str] = None
    #: engine/backend retry budget
    max_retries: int = 2
    #: kernel-set selection (``repro.core.kernels`` registry name);
    #: ``None`` means the default pure-python reference set
    kernels: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {self.kind!r} "
                           f"(choose from {', '.join(JOB_KINDS)})")
        if self.engine not in ("serial", "pipeline"):
            raise JobError(f"unknown engine {self.engine!r}")
        if self.kernels is not None:
            from ..core.kernels import resolve_kernels
            try:
                self.kernels = resolve_kernels(self.kernels).name
            except (TypeError, ValueError) as e:
                raise JobError(str(e)) from e
        if self.max_recoveries < 0 or self.max_retries < 0:
            raise JobError("retry/recovery budgets must be >= 0")
        if self.checkpoint_every < 0:
            raise JobError("checkpoint_every must be >= 0")
        if not isinstance(self.params, dict):
            raise JobError("params must be an object")
        schema = _PARAM_SCHEMA[self.kind]
        unknown = sorted(set(self.params) - set(schema))
        if unknown:
            raise JobError(
                f"unknown parameter(s) for kind {self.kind!r}: "
                f"{', '.join(unknown)} (known: "
                f"{', '.join(sorted(schema))})")
        filled: Dict[str, Any] = {}
        for name, (typ, default) in schema.items():
            raw = self.params.get(name, default)
            try:
                filled[name] = typ(raw)
            except (TypeError, ValueError) as e:
                raise JobError(
                    f"parameter {name!r} of kind {self.kind!r} must "
                    f"be {typ.__name__}: {raw!r}") from e
        self.params = filled

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "params": dict(self.params),
            "priority": self.priority, "tenant": self.tenant,
            "engine": self.engine, "workers": self.workers,
            "max_recoveries": self.max_recoveries,
            "checkpoint_every": self.checkpoint_every,
            "faults": self.faults, "max_retries": self.max_retries,
            "kernels": self.kernels,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobSpec":
        """Validate an incoming job document (the POST /jobs body)."""
        if not isinstance(doc, dict):
            raise JobError("job document must be a JSON object")
        doc = dict(doc)
        schema = doc.pop("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise JobError(f"unsupported job schema {schema!r} "
                           f"(this server speaks {JOB_SCHEMA})")
        if "kind" not in doc:
            raise JobError("job document is missing 'kind'")
        known = {"kind", "params", "priority", "tenant", "engine",
                 "workers", "max_recoveries", "checkpoint_every",
                 "faults", "max_retries", "kernels"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise JobError(f"unknown job field(s): {', '.join(unknown)}")
        try:
            return cls(**doc)
        except TypeError as e:
            raise JobError(str(e)) from e


_job_counter = itertools.count(1)


@dataclass
class Job:
    """One admitted job: the spec plus everything the service learned.

    Mutable runtime record owned by the scheduler; every field the
    wire format exposes is mirrored by :meth:`to_dict`.  The embedded
    ``threading.Event`` flags are the cancel/pause control surface the
    runner polls between steps.
    """

    spec: JobSpec
    id: str = ""
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    #: lease id the job ran (or is running) under
    lease: Optional[str] = None
    #: run-level checkpoint recoveries performed
    recoveries: int = 0
    #: monotone submission sequence (FIFO tie-break)
    seq: int = 0
    #: progress events appended by the runner, streamed by the server
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: steps completed / planned (run kind)
    steps_done: int = 0
    steps_total: int = 0
    #: job-private workdir (checkpoints, artifacts)
    workdir: Optional[str] = None
    #: execution attempt (0 = first; a crash-requeue by
    #: :meth:`~repro.serve.store.JobStore.recover` bumps it)
    attempt: int = 0
    #: scheduler worker currently (or last) holding the claim
    worker: Optional[str] = None
    #: the result was served from the content-addressed cache
    #: (no GRAPE lease was acquired)
    cache_hit: bool = False
    #: distributed-trace identity, assigned at admission; every span
    #: this job produces (scheduler, runner, engine, workers) carries it
    trace_id: str = ""
    #: admission time on the monotonic clock (queue-wait attribution;
    #: reset on resume so a pause does not count as queue wait)
    submitted_mono: float = field(default_factory=time.perf_counter)
    #: per-job :class:`~repro.obs.trace.Tracer` (assigned at admission)
    tracer: Optional[Any] = field(default=None, repr=False)
    #: per-job :class:`~repro.obs.flightrec.FlightRecorder`; its ring
    #: mirrors progress events and fault-layer decisions, dumped to the
    #: workdir when the job dies or recovered from a fault
    flight: Optional[Any] = field(default=None, repr=False)

    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False)
    pause_event: threading.Event = field(default_factory=threading.Event,
                                         repr=False)
    #: optional durable event sink (the scheduler points this at
    #: ``JobStore.append_event`` so progress survives restarts)
    event_sink: Optional[Any] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.id:
            n = next(_job_counter)
            self.id = f"j{n:06d}"
            self.seq = n

    # -- lifecycle -----------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(self, state: str) -> None:
        """Move to ``state``, enforcing the lifecycle graph."""
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise JobError(
                f"illegal transition {self.state} -> {state} "
                f"(job {self.id})")
        self.state = state
        if state == "running" and self.started_at is None:
            self.started_at = time.time()
        if state in TERMINAL_STATES:
            self.finished_at = time.time()

    def add_event(self, kind: str, **attrs: Any) -> Dict[str, Any]:
        """Append one progress event (thread-safe by list append);
        mirrored into the flight-recorder ring when one is attached."""
        ev = {"event": kind, "t_wall": time.time(), **attrs}
        self.events.append(ev)
        if self.flight is not None:
            self.flight.record(f"job.{kind}", job=self.id, **attrs)
        if self.event_sink is not None:
            try:
                self.event_sink(self.id, ev)
            except Exception:  # pragma: no cover - sink must not kill
                pass           # the job it is recording
        return ev

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The ``repro.job/v1`` document served by GET /jobs/{id}."""
        return {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "state": self.state,
            **self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result": self.result,
            "lease": self.lease,
            "recoveries": self.recoveries,
            "trace_id": self.trace_id,
            "attempt": self.attempt,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "progress": {"steps_done": self.steps_done,
                         "steps_total": self.steps_total,
                         "events": len(self.events)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    # -- durable projection --------------------------------------------
    def to_store_doc(self) -> Dict[str, Any]:
        """The document a :class:`~repro.serve.store.JobStore`
        persists: the wire document plus ``seq`` and ``workdir`` (the
        restart path needs the checkpoint location)."""
        doc = self.to_dict()
        doc["seq"] = self.seq
        doc["workdir"] = self.workdir
        return doc

    @classmethod
    def from_store_doc(cls, doc: Dict[str, Any]) -> "Job":
        """Rebuild a runtime :class:`Job` from a stored document.

        The spec round-trips through validation; runtime state is
        restored field-by-field (``advance`` is bypassed -- the store
        is authoritative about where the job already is).  Events are
        *not* loaded here; the caller decides whether to hydrate them
        from the store's event log.
        """
        spec = JobSpec.from_dict(
            {k: doc[k] for k in ("kind", "params", "priority",
                                 "tenant", "engine", "workers",
                                 "max_recoveries", "checkpoint_every",
                                 "faults", "max_retries", "kernels")
             if k in doc})
        job = cls(spec=spec, id=doc["id"])
        job.seq = int(doc.get("seq", 0))
        job.state = doc.get("state", "queued")
        job.submitted_at = float(doc.get("submitted_at", 0.0))
        job.started_at = doc.get("started_at")
        job.finished_at = doc.get("finished_at")
        job.error = doc.get("error")
        job.result = doc.get("result")
        job.lease = doc.get("lease")
        job.recoveries = int(doc.get("recoveries", 0))
        job.trace_id = doc.get("trace_id", "")
        job.workdir = doc.get("workdir")
        job.attempt = int(doc.get("attempt", 0))
        job.worker = doc.get("worker")
        job.cache_hit = bool(doc.get("cache_hit", False))
        progress = doc.get("progress", {})
        job.steps_done = int(progress.get("steps_done", 0))
        job.steps_total = int(progress.get("steps_total", 0))
        return job
