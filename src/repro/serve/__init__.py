"""repro.serve: multi-tenant simulation service.

The paper's deployment is one host feeding one GRAPE-5; this package
is the service-shaped generalisation the ROADMAP's north star asks
for: many tenants submit jobs over HTTP, a scheduler multiplexes them
onto a pool of leased (emulated) accelerators, and backpressure keeps
the queue bounded.  Stdlib-only, like every layer below it.

Layering (each module only depends on the ones above it):

``jobs``
    Typed :class:`JobSpec`/:class:`Job`, the versioned
    ``repro.job/v1`` document format, the lifecycle state machine.
``leases``
    :class:`LeaseBroker`: exclusive :class:`~repro.grape.api.G5Context`
    (+ optional pipeline-engine pool) per running job.
``runner``
    Executes one job inside its lease through
    :mod:`repro.sim.recipes` -- the same construction path as the
    CLI, so served runs are bit-identical to ``repro run``.
``scheduler``
    Priority + fair-share queue, admission control,
    :class:`AdmissionError` backpressure.
``server`` / ``client``
    Asyncio HTTP API and its stdlib client (``repro serve`` /
    ``repro submit`` / ``repro jobs``).

See ``docs/service.md`` for the API and schema reference.
"""

from .client import Backpressure, ServeClient, ServeHTTPError
from .jobs import (JOB_KINDS, JOB_SCHEMA, JOB_STATES, Job, JobError,
                   JobSpec)
from .leases import Lease, LeaseBroker, LeaseError
from .scheduler import AdmissionError, Scheduler
from .server import ServeError, Server, run_server

__all__ = [
    "JOB_SCHEMA", "JOB_KINDS", "JOB_STATES", "JobSpec", "Job",
    "JobError", "Lease", "LeaseBroker", "LeaseError", "Scheduler",
    "AdmissionError", "Server", "ServeError", "run_server",
    "ServeClient", "ServeHTTPError", "Backpressure",
]
