"""repro.serve: multi-tenant simulation service.

The paper's deployment is one host feeding one GRAPE-5; this package
is the service-shaped generalisation the ROADMAP's north star asks
for: many tenants submit jobs over HTTP, a scheduler multiplexes them
onto a pool of leased (emulated) accelerators, and backpressure keeps
the queue bounded.  Stdlib-only, like every layer below it.

Layering (each module only depends on the ones above it):

``jobs``
    Typed :class:`JobSpec`/:class:`Job`, the versioned
    ``repro.job/v1`` document format, the lifecycle state machine.
``store``
    Durable :class:`JobStore` (in-memory reference + SQLite-WAL with
    an append-only event log): job documents, compare-and-swap claim
    leases, the content-addressed result cache.  Multiple scheduler
    workers share one store and take over each other's expired claims.
``quotas``
    Per-tenant admission policy: active-job quotas and token-bucket
    rate limits (:class:`AdmissionController`).
``leases``
    :class:`LeaseBroker`: exclusive :class:`~repro.grape.api.G5Context`
    (+ optional pipeline-engine pool) per running job.
``runner``
    Executes one job inside its lease through
    :mod:`repro.sim.recipes` -- the same construction path as the
    CLI, so served runs are bit-identical to ``repro run``.
``scheduler``
    A stateless worker over the store: priority + store-wide
    fair-share picking, admission control, cache serving,
    :class:`AdmissionError` backpressure.
``server`` / ``client``
    Asyncio HTTP API and its stdlib client (``repro serve`` /
    ``repro submit`` / ``repro jobs``).

Beyond one box, :mod:`repro.fleet` puts the store behind a TCP
socket (``repro store serve`` + ``open_store("http://...")``) and the
store's worker registry turns N servers into a drainable fleet
(``GET /fleet``, ``repro fleet ...``).

See ``docs/service.md`` for the API and schema reference and
``docs/fleet.md`` for the cross-host fleet.
"""

from .client import Backpressure, ServeClient, ServeHTTPError
from .jobs import (JOB_KINDS, JOB_SCHEMA, JOB_STATES, Job, JobError,
                   JobSpec)
from .leases import Lease, LeaseBroker, LeaseError
from .quotas import (AdmissionController, AdmissionError, QuotaExceeded,
                     RateLimited, TenantPolicy)
from .scheduler import Scheduler
from .server import ServeError, Server, run_server
from .store import (JobStore, MemoryJobStore, SQLiteJobStore,
                    StoreCorrupt, StoreError, open_store, spec_hash)

__all__ = [
    "JOB_SCHEMA", "JOB_KINDS", "JOB_STATES", "JobSpec", "Job",
    "JobError", "Lease", "LeaseBroker", "LeaseError", "Scheduler",
    "AdmissionError", "QuotaExceeded", "RateLimited", "TenantPolicy",
    "AdmissionController", "JobStore", "MemoryJobStore",
    "SQLiteJobStore", "StoreError", "StoreCorrupt", "open_store",
    "spec_hash", "Server", "ServeError", "run_server",
    "ServeClient", "ServeHTTPError", "Backpressure",
]
